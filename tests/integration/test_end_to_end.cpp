/**
 * @file
 * Integration tests: the complete paper pipeline, end to end.
 *
 * These mirror the paper's validation methodology: known-miss-count
 * microbenchmarks through the full EM chain (Table II), simulator
 * power traces against ground truth (Table III), refresh
 * classification (Fig. 5), bandwidth effects (Fig. 12) and boot
 * profiling (Fig. 13).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/boot_profile.hpp"
#include "profiler/marker.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"
#include "workloads/boot.hpp"
#include "workloads/microbenchmark.hpp"
#include "workloads/spec.hpp"

namespace emprof {
namespace {

profiler::EmProfConfig
profilerFor(const devices::DeviceModel &device)
{
    profiler::EmProfConfig cfg;
    cfg.clockHz = device.clockHz();
    return cfg;
}

TEST(EndToEnd, MicrobenchmarkCountWithinOnePercentOnOlimex)
{
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 1024;
    mb_cfg.consecutiveMisses = 10;
    workloads::Microbenchmark mb(mb_cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);

    const auto sections = profiler::findMarkerSections(cap.magnitude);
    ASSERT_GE(sections.markers.size(), 2u);
    const auto section = profiler::slice(cap.magnitude, sections.measured);
    const auto result =
        profiler::EmProf::analyze(section, profilerFor(device));

    const double accuracy =
        100.0 * (1.0 - std::abs(static_cast<double>(
                           result.report.totalEvents) -
                       1024.0) /
                           1024.0);
    EXPECT_GE(accuracy, 99.0);
}

TEST(EndToEnd, SimulatorPowerTraceMissAndStallAccuracy)
{
    // Table III methodology: EMPROF on the raw power side channel,
    // compared to simulator ground truth.
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 512;
    mb_cfg.consecutiveMisses = 10;
    workloads::Microbenchmark mb(mb_cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    dsp::TimeSeries power;
    simulator.runWithPowerTrace(mb, power);

    auto cfg = profilerFor(device);
    cfg.sampleRateHz = power.sampleRateHz;
    const auto result = profiler::EmProf::analyze(power, cfg);
    const auto &gt = simulator.groundTruth();

    const auto gt_events = gt.countIntervalsAtLeast(60);
    const double miss_acc =
        100.0 * (1.0 - std::abs(static_cast<double>(
                           result.report.totalEvents) -
                       static_cast<double>(gt_events)) /
                           static_cast<double>(gt_events));
    EXPECT_GE(miss_acc, 97.0);

    const double stall_acc =
        100.0 *
        (1.0 - std::abs(result.report.totalStallCycles -
                        static_cast<double>(gt.missStallCycles())) /
                   static_cast<double>(gt.missStallCycles()));
    EXPECT_GE(stall_acc, 95.0);
}

TEST(EndToEnd, RefreshCoincidentStallsDetectedAtPaperCadence)
{
    // Fig. 5: one ~2-3 us stall at least every ~70 us of miss traffic.
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 2048;
    mb_cfg.consecutiveMisses = 16;
    workloads::Microbenchmark mb(mb_cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);
    const auto result =
        profiler::EmProf::analyze(cap.magnitude, profilerFor(device));

    const double duration_us =
        static_cast<double>(cap.magnitude.samples.size()) /
        cap.magnitude.sampleRateHz * 1e6;
    const double expected_refreshes = duration_us / 70.0;
    EXPECT_GT(result.report.refreshEvents, 0u);
    EXPECT_NEAR(static_cast<double>(result.report.refreshEvents),
                expected_refreshes, expected_refreshes * 0.7 + 2.0);

    // Refresh-coincident stalls last microseconds, not hundreds of ns.
    for (const auto &ev : result.events) {
        if (ev.kind == profiler::StallKind::RefreshCoincident)
            EXPECT_GT(ev.durationNs, 1200.0);
    }
}

TEST(EndToEnd, NarrowBandwidthUndercountsOnAlcatel)
{
    // Fig. 12 / Sec. VI-B: at 20 MHz the Alcatel capture misses most
    // stalls; by 60-80 MHz detection stabilises.
    auto device = devices::makeAlcatel();
    auto run_at = [&](double bw) {
        auto wl = workloads::makeSpec("mcf", 1'500'000, 42);
        auto probe = device.probe;
        probe.receiver.bandwidthHz = bw;
        sim::Simulator simulator(device.sim);
        const auto cap = em::captureRun(simulator, *wl, probe);
        return profiler::EmProf::analyze(cap.magnitude,
                                         profilerFor(device));
    };
    const auto narrow = run_at(20e6);
    const auto mid = run_at(80e6);
    EXPECT_LT(narrow.report.totalEvents, mid.report.totalEvents);
    // What narrow bandwidth does find is biased to long stalls.
    EXPECT_GT(narrow.report.avgStallCycles, mid.report.avgStallCycles);
}

TEST(EndToEnd, BootRunsAreConsistentButNotIdentical)
{
    auto device = devices::makeOlimex();
    auto profile_boot = [&](uint64_t seed) {
        workloads::BootConfig boot_cfg;
        boot_cfg.scaleOps = 1'500'000;
        boot_cfg.seed = seed;
        auto boot = workloads::makeBoot(boot_cfg);
        sim::Simulator simulator(device.sim);
        const auto cap = em::captureRun(simulator, *boot, device.probe);
        const auto result =
            profiler::EmProf::analyze(cap.magnitude, profilerFor(device));
        return profiler::makeBootProfile(result.events,
                                         cap.magnitude.sampleRateHz,
                                         cap.magnitude.samples.size(),
                                         100e-6);
    };
    const auto run1 = profile_boot(1);
    const auto run2 = profile_boot(2);
    const double similarity = profiler::bootProfileSimilarity(run1, run2);
    EXPECT_GT(similarity, 0.5);  // same phase structure
    EXPECT_LT(similarity, 0.999); // but distinct runs
}

TEST(EndToEnd, PrefetcherReducesSamsungStreamMisses)
{
    // Sec. VI-A: the Samsung prefetcher hides stream misses that the
    // Olimex takes in full.
    auto run_on = [&](const devices::DeviceModel &device) {
        auto wl = workloads::makeSpec("bzip2", 4'000'000, 7);
        sim::Simulator simulator(device.sim);
        simulator.run(*wl);
        return simulator.groundTruth().rawLlcMisses();
    };
    const auto samsung = run_on(devices::makeSamsung());
    const auto olimex = run_on(devices::makeOlimex());
    EXPECT_LT(3 * samsung, olimex);
}

TEST(EndToEnd, AlcatelLargeLlcCutsCapacityMisses)
{
    // Capacity differentiation needs enough accesses to warm the
    // working set; short runs are compulsory-miss-bound on every LLC.
    auto run_on = [&](const devices::DeviceModel &device) {
        auto wl = workloads::makeSpec("twolf", 20'000'000, 7);
        sim::Simulator simulator(device.sim);
        simulator.run(*wl);
        return simulator.groundTruth().rawLlcMisses();
    };
    const auto alcatel = run_on(devices::makeAlcatel());
    const auto olimex = run_on(devices::makeOlimex());
    EXPECT_LT(5 * alcatel, 4 * olimex);
}

TEST(EndToEnd, StallHistogramHasMainModeNearMemoryLatency)
{
    auto device = devices::makeOlimex();
    auto wl = workloads::makeSpec("mcf", 2'000'000, 11);
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, *wl, device.probe);
    const auto result =
        profiler::EmProf::analyze(cap.magnitude, profilerFor(device));
    ASSERT_GT(result.report.totalEvents, 100u);
    // Median stall within 2x of the DRAM latency.
    const double latency = device.sim.memory.accessLatency;
    EXPECT_GT(result.report.medianStallCycles, latency / 2);
    EXPECT_LT(result.report.medianStallCycles, latency * 2);
}

} // namespace
} // namespace emprof
