/**
 * @file
 * Slow end-to-end resilience sweep (ctest label: slow).
 *
 * Pushes the golden fixture signal through the impairment injector at
 * a ladder of SNRs — always with slow gain drift, the condition the
 * paper identifies as fatal for absolute thresholds — and measures
 * recall of the planted dips for the resilient analyzer and for the
 * naive fixed-threshold strawman:
 *
 *   - recall stays >= 99% at comfortable SNR (>= 30 dB),
 *   - the adaptive pipeline strictly outperforms the naive detector
 *     once the channel degrades (15 and 10 dB),
 *   - quarantined blocks never leak events,
 *   - the streaming and 8-way parallel paths agree bit-for-bit at
 *     every rung.
 *
 * A 1000-seed impairment fuzz rides along: it exists mostly for the
 * nightly ASan run, shaking pointer and state errors out of the
 * injector and the resilient analyzer across many random streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dsp/impairment.hpp"
#include "profiler/naive_threshold.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"
#include "profiler/signal_quality.hpp"
#include "golden_common.hpp"

namespace emprof::profiler {
namespace {

struct Span
{
    uint64_t begin; // inclusive
    uint64_t end;   // inclusive
};

/** The dips planted by golden::goldenSignal(), by construction. */
std::vector<Span>
truthSpans()
{
    std::vector<Span> truth;
    for (std::size_t start = 256; start + 64 < golden::kSamples;
         start += 512) {
        const std::size_t width = 4 + (start / 512) % 15;
        truth.push_back({start, start + width - 1});
    }
    for (std::size_t start : {std::size_t{3000}, std::size_t{6500}})
        truth.push_back({start, start + 59});
    std::sort(truth.begin(), truth.end(),
              [](const Span &a, const Span &b) { return a.begin < b.begin; });
    return truth;
}

struct DetectorScore
{
    double recall = 0.0;    // truth spans matched by some event
    double precision = 0.0; // events that match some truth span
    std::size_t events = 0;
};

bool
matches(const StallEvent &ev, const Span &t, uint64_t min_duration_samples)
{
    // A match must overlap the truth span (+-8 samples of slack for
    // edge smearing) AND have a sane duration — a detector that fuses
    // half the capture into one giant "stall" straddling a dip gets no
    // credit for it.
    const uint64_t truth_dur = t.end - t.begin + 1;
    const uint64_t max_dur = 6 * std::max(truth_dur, min_duration_samples);
    return ev.startSample <= t.end + 8 && ev.endSample + 8 >= t.begin &&
           ev.durationSamples() <= max_dur;
}

DetectorScore
scoreAgainstTruth(const std::vector<StallEvent> &events,
                  const std::vector<Span> &truth,
                  uint64_t min_duration_samples)
{
    DetectorScore score;
    score.events = events.size();
    std::size_t matched_truth = 0, matched_events = 0;
    for (const Span &t : truth)
        for (const StallEvent &ev : events)
            if (matches(ev, t, min_duration_samples)) {
                ++matched_truth;
                break;
            }
    for (const StallEvent &ev : events)
        for (const Span &t : truth)
            if (matches(ev, t, min_duration_samples)) {
                ++matched_events;
                break;
            }
    score.recall = static_cast<double>(matched_truth) /
                   static_cast<double>(truth.size());
    // An empty detection set is vacuously precise: it makes no claims.
    score.precision = events.empty()
                          ? 1.0
                          : static_cast<double>(matched_events) /
                                static_cast<double>(events.size());
    return score;
}

/** Independent recomputation of the quality blocks via the public
 *  accumulator, used to cross-check the no-events-in-quarantine
 *  guarantee from outside the analyzer. */
std::vector<SignalBlock>
referenceBlocks(const dsp::TimeSeries &series, const EmProfConfig &config)
{
    const std::size_t q = config.qualityBlockSamples();
    const std::size_t n = series.samples.size();
    std::vector<SignalBlock> blocks;
    BlockAccumulator acc;
    for (std::size_t bs = 0; bs < n; bs += q) {
        const std::size_t be = std::min(bs + q, n);
        acc.begin(bs);
        for (std::size_t i = bs; i < be; ++i)
            acc.push(series.samples[i]);
        blocks.push_back(acc.finish(be, config.signal));
    }
    return blocks;
}

void
expectNoEventInUnusableBlocks(const std::vector<StallEvent> &events,
                              const std::vector<SignalBlock> &blocks,
                              double snr_db)
{
    for (const StallEvent &ev : events)
        for (const SignalBlock &b : blocks) {
            if (b.end <= ev.startSample || b.begin >= ev.endSample + 1)
                continue;
            EXPECT_NE(b.cls, BlockClass::Unusable)
                << "event [" << ev.startSample << ", " << ev.endSample
                << "] overlaps quarantined block [" << b.begin << ", "
                << b.end << ") at " << snr_db << " dB";
        }
}

void
expectSameEvents(const std::vector<StallEvent> &a,
                 const std::vector<StallEvent> &b, double snr_db)
{
    ASSERT_EQ(a.size(), b.size()) << "at " << snr_db << " dB";
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].startSample, b[i].startSample) << snr_db << " dB";
        EXPECT_EQ(a[i].endSample, b[i].endSample) << snr_db << " dB";
        EXPECT_EQ(a[i].depth, b[i].depth) << snr_db << " dB";
        EXPECT_EQ(a[i].durationNs, b[i].durationNs) << snr_db << " dB";
        EXPECT_EQ(a[i].stallCycles, b[i].stallCycles) << snr_db << " dB";
        EXPECT_EQ(a[i].confidence, b[i].confidence) << snr_db << " dB";
        EXPECT_EQ(a[i].kind, b[i].kind) << snr_db << " dB";
    }
}

TEST(SnrLadder, RecallDegradesGracefullyAndBeatsNaiveThreshold)
{
    const auto truth = truthSpans();
    ASSERT_EQ(truth.size(), 18u);

    EmProfConfig config = golden::goldenConfig();
    config.signal.enabled = true;
    // The fixture's shallow dips (floor 0.25 against a 0.08 deep floor)
    // normalise to ~0.20; widen the entry threshold so they carry a
    // real margin under noise.  Hysteresis spacing is preserved.
    config.enterThreshold = 0.27;
    config.exitThreshold = 0.43;
    const uint64_t min_dur = config.minDurationSamples();

    const double ladder[] = {40.0, 30.0, 20.0, 15.0, 10.0, 5.0, 0.0};
    std::vector<DetectorScore> adaptive, naive_scores;
    std::vector<double> coverage;

    for (std::size_t rung = 0; rung < std::size(ladder); ++rung) {
        const double snr_db = ladder[rung];
        // Every rung carries the same slow +-35% gain swing (period
        // 120 us against a 204.8 us capture): the regime where a
        // prefix-calibrated absolute threshold goes blind.
        char spec_text[96];
        std::snprintf(spec_text, sizeof(spec_text),
                      "snr=%g,drift=0.35:0.00012,seed=%u", snr_db,
                      static_cast<unsigned>(1234 + rung));
        dsp::ImpairmentSpec spec;
        ASSERT_TRUE(dsp::parseImpairmentSpec(spec_text, spec));

        auto series = golden::goldenSignal();
        dsp::applyImpairments(series, spec);

        const auto streaming = EmProf::analyze(series, config);

        // Parallel path must agree bit-for-bit at every rung.
        ParallelAnalyzerConfig pcfg;
        pcfg.threads = 8;
        pcfg.chunkSamples = 1024;
        const auto parallel = analyzeParallel(series, config, pcfg);
        expectSameEvents(streaming.events, parallel.events, snr_db);

        // Quarantine guarantee, checked against an independent
        // recomputation of the block classification.
        expectNoEventInUnusableBlocks(
            streaming.events, referenceBlocks(series, config), snr_db);

        // Naive strawman: best-case calibration from the capture's
        // first 1024 samples.
        NaiveThresholdConfig naive;
        naive.clockHz = config.clockHz;
        naive.minDurationSamples = min_dur;
        naive.threshold = calibrateNaiveThreshold(series, 1024);
        const auto naive_events = naiveDetect(series, naive);

        adaptive.push_back(
            scoreAgainstTruth(streaming.events, truth, min_dur));
        naive_scores.push_back(
            scoreAgainstTruth(naive_events, truth, min_dur));
        coverage.push_back(streaming.report.quality.coverageFraction);
        std::printf("  %5.1f dB: adaptive r=%.3f p=%.3f n=%-4zu "
                    "naive r=%.3f p=%.3f n=%-5zu coverage %.3f\n",
                    snr_db, adaptive.back().recall,
                    adaptive.back().precision, adaptive.back().events,
                    naive_scores.back().recall,
                    naive_scores.back().precision,
                    naive_scores.back().events, coverage.back());
        for (const Span &t : truth) {
            bool hit = false;
            for (const StallEvent &ev : streaming.events)
                hit = hit || matches(ev, t, min_dur);
            if (!hit)
                std::printf("           missed truth [%llu, %llu]\n",
                            static_cast<unsigned long long>(t.begin),
                            static_cast<unsigned long long>(t.end));
        }
    }

    const auto f1 = [](const DetectorScore &s) {
        return s.recall + s.precision > 0.0
                   ? 2.0 * s.recall * s.precision /
                         (s.recall + s.precision)
                   : 0.0;
    };

    // Comfortable SNR: perfect recall, near-perfect precision.
    EXPECT_GE(adaptive[0].recall, 0.99) << "40 dB";
    EXPECT_GE(adaptive[1].recall, 0.99) << "30 dB";
    EXPECT_GE(adaptive[0].precision, 0.99) << "40 dB";
    EXPECT_GE(adaptive[1].precision, 0.9) << "30 dB";
    // Recall holds all the way into the degraded regime.
    EXPECT_GE(adaptive[2].recall, 0.99) << "20 dB";
    EXPECT_GE(adaptive[3].recall, 0.99) << "15 dB";
    EXPECT_GE(adaptive[4].recall, 0.99) << "10 dB";
    // Coverage never recovers as the channel worsens: quarantine kicks
    // in monotonically down the ladder.
    for (std::size_t i = 1; i < coverage.size(); ++i)
        EXPECT_LE(coverage[i], coverage[i - 1] + 1e-9)
            << "coverage not monotone at rung " << i;
    // The paper's failure mode: under gain drift the prefix-calibrated
    // absolute threshold goes blind — it floods the report with false
    // events and its precision collapses.  The adaptive pipeline is
    // more precise at every rung and strictly better on F1 in the
    // degraded regime.
    for (std::size_t i = 0; i < adaptive.size(); ++i)
        EXPECT_GT(adaptive[i].precision, naive_scores[i].precision)
            << "precision at " << ladder[i] << " dB";
    EXPECT_GT(f1(adaptive[3]), f1(naive_scores[3])) << "15 dB";
    EXPECT_GT(f1(adaptive[4]), f1(naive_scores[4])) << "10 dB";
    EXPECT_LT(naive_scores[3].precision, 0.15) << "15 dB naive precision";
    EXPECT_LT(naive_scores[6].precision, 0.1) << "0 dB naive precision";
    // At the bottom of the ladder the resilient analyzer refuses to
    // guess: the capture is quarantined rather than misreported.
    EXPECT_LT(coverage[6], 0.1) << "0 dB coverage";
    EXPECT_EQ(adaptive[6].events, 0u) << "0 dB events";
}

TEST(ImpairmentFuzz, ThousandSeedsThroughHarshChainAndAnalyzer)
{
    // Mostly an ASan/UBSan target: many distinct RNG streams through
    // every impairment at once, each run twice to confirm determinism,
    // then through the resilient analyzer.
    EmProfConfig config = golden::goldenConfig();
    config.signal.enabled = true;

    dsp::TimeSeries base;
    base.sampleRateHz = golden::kSampleRateHz;
    base.samples.assign(2048, 1.0f);
    for (std::size_t i = 256; i < 2048; i += 512)
        for (std::size_t k = 0; k < 8; ++k)
            base.samples[i + k] = 0.1f;

    for (unsigned seed = 0; seed < 1000; ++seed) {
        dsp::ImpairmentSpec spec;
        const std::string text = "harsh,seed=" + std::to_string(seed);
        ASSERT_TRUE(dsp::parseImpairmentSpec(text, spec));

        auto a = base;
        auto b = base;
        dsp::applyImpairments(a, spec);
        dsp::applyImpairments(b, spec);
        ASSERT_EQ(a.samples, b.samples) << "seed " << seed;

        const auto result = EmProf::analyze(a, config);
        ASSERT_LE(result.report.quality.coverageFraction, 1.0)
            << "seed " << seed;
        for (const auto &ev : result.events) {
            ASSERT_LT(ev.startSample, a.samples.size()) << "seed " << seed;
            ASSERT_GE(ev.confidence, 0.0) << "seed " << seed;
            ASSERT_LE(ev.confidence, 1.0) << "seed " << seed;
        }
    }
}

} // namespace
} // namespace emprof::profiler
