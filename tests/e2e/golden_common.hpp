/**
 * @file
 * Shared definitions for the golden end-to-end regression fixture.
 *
 * The generator (golden_gen.cpp) and the regression test
 * (test_golden_pipeline.cpp) both include this header, so the signal,
 * the analysis configuration, and the expected-events file format are
 * defined exactly once.  The fixture is checked in; the generator
 * exists to (re)create it deliberately when the pipeline's *intended*
 * output changes — never as part of the build.
 *
 * Doubles are serialised as the hex of their IEEE-754 bit pattern, so
 * the comparison in the test is bit-exact: a change of a single ULP in
 * any event field fails the suite.
 */

#ifndef EMPROF_TESTS_E2E_GOLDEN_COMMON_HPP
#define EMPROF_TESTS_E2E_GOLDEN_COMMON_HPP

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "profiler/events.hpp"
#include "profiler/profiler.hpp"
#include "store/capture_writer.hpp"

namespace emprof::golden {

/// Fixture file names inside EMPROF_GOLDEN_DIR.
inline constexpr const char *kCaptureFile = "golden.emcap";
inline constexpr const char *kTruncatedFile = "golden_truncated.emcap";
inline constexpr const char *kExpectedFile = "golden_expected.json";
inline constexpr const char *kTruncatedExpectedFile =
    "golden_truncated_expected.json";

/// Signal shape.
inline constexpr std::size_t kSamples = 8192;
inline constexpr double kSampleRateHz = 40e6;
inline constexpr uint64_t kSeed = 0x601dfeedull;

/// Capture container shape: 8 full chunks of 1024 samples.
inline constexpr std::size_t kChunkSamples = 1024;

/// The truncated variant ends mid-way through the 6th chunk, so
/// recovery salvages exactly 5 chunks (5120 samples).
inline constexpr std::size_t kTruncatedSalvagedChunks = 5;

/// Device name exercises JSON escaping in the metrics label path.
inline constexpr const char *kDeviceName = "golden \"probe\\1\"";

/**
 * Deterministic synthetic magnitude trace: a noisy plateau around 1.0
 * with planted dips of varying width and depth, including two wide
 * (refresh-class) dips.  Pure dsp::Rng arithmetic — no time, no
 * platform dependence.
 */
inline dsp::TimeSeries
goldenSignal()
{
    dsp::TimeSeries s;
    s.sampleRateHz = kSampleRateHz;
    s.samples.resize(kSamples);
    dsp::Rng rng(kSeed);
    for (std::size_t i = 0; i < kSamples; ++i)
        s.samples[i] =
            static_cast<dsp::Sample>(1.0 + rng.uniform(-0.05, 0.05));

    // Dips every 512 samples; width cycles 4..18 samples, floor level
    // cycles between deep (0.08) and shallow-but-valid (0.25).
    for (std::size_t start = 256; start + 64 < kSamples; start += 512) {
        const std::size_t width = 4 + (start / 512) % 15;
        const double floor_level = (start / 512) % 2 == 0 ? 0.08 : 0.25;
        for (std::size_t i = 0; i < width; ++i)
            s.samples[start + i] = static_cast<dsp::Sample>(
                floor_level + rng.uniform(0.0, 0.02));
    }
    // Two refresh-class dips (>1200 ns = >48 samples at 40 MHz).
    for (std::size_t start : {std::size_t{3000}, std::size_t{6500}}) {
        for (std::size_t i = 0; i < 60; ++i)
            s.samples[start + i] = static_cast<dsp::Sample>(
                0.1 + rng.uniform(0.0, 0.02));
    }
    return s;
}

/** Analysis configuration the whole fixture is pinned to. */
inline profiler::EmProfConfig
goldenConfig()
{
    profiler::EmProfConfig config;
    config.sampleRateHz = kSampleRateHz;
    config.clockHz = 1e9;
    // 1024-sample normalisation window (25.6 us at 40 MHz).
    config.normWindowSeconds = 25.6e-6;
    return config;
}

/** Writer options for the checked-in capture. */
inline store::WriterOptions
goldenWriterOptions()
{
    store::WriterOptions wopt;
    wopt.sampleRateHz = kSampleRateHz;
    wopt.clockHz = 1e9;
    wopt.deviceName = kDeviceName;
    wopt.codec = store::SampleCodec::F32;
    wopt.chunkSamples = kChunkSamples;
    return wopt;
}

inline std::string
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, bits);
    return buf;
}

inline double
bitsToDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/**
 * Render events as JSON: valid JSON for external tooling, and
 * line-per-event so the test can parse it back with sscanf alone.
 */
inline std::string
eventsToJson(const std::vector<profiler::StallEvent> &events)
{
    // Version 2 added the service-level attribution fields (level as
    // its enum integer, level_confidence as IEEE-754 bits).
    std::string out = "{\n\"version\": 2,\n\"count\": " +
                      std::to_string(events.size()) +
                      ",\n\"events\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        char line[320];
        std::snprintf(
            line, sizeof(line),
            "{\"start\": %llu, \"end\": %llu, \"depth\": \"%s\", "
            "\"duration_ns\": \"%s\", \"stall_cycles\": \"%s\", "
            "\"kind\": %d, \"level\": %d, "
            "\"level_confidence\": \"%s\"}%s\n",
            static_cast<unsigned long long>(ev.startSample),
            static_cast<unsigned long long>(ev.endSample),
            doubleBits(ev.depth).c_str(),
            doubleBits(ev.durationNs).c_str(),
            doubleBits(ev.stallCycles).c_str(),
            static_cast<int>(ev.kind), static_cast<int>(ev.level),
            doubleBits(ev.levelConfidence).c_str(),
            i + 1 < events.size() ? "," : "");
        out += line;
    }
    out += "]\n}\n";
    return out;
}

/**
 * Parse the eventsToJson format.  Returns false (with a reason) on any
 * structural mismatch, including a count that disagrees with the
 * number of event lines.
 */
inline bool
eventsFromJson(const std::string &text,
               std::vector<profiler::StallEvent> &events,
               std::string *why = nullptr)
{
    const auto fail = [&](const char *reason) {
        if (why != nullptr)
            *why = reason;
        return false;
    };
    events.clear();
    long long declared = -1;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;

        if (std::sscanf(line.c_str(), "\"count\": %lld", &declared) == 1)
            continue;
        unsigned long long start = 0, end = 0;
        uint64_t depth = 0, duration = 0, cycles = 0, level_conf = 0;
        int kind = 0, level = 0;
        if (std::sscanf(line.c_str(),
                        "{\"start\": %llu, \"end\": %llu, "
                        "\"depth\": \"%" SCNx64 "\", "
                        "\"duration_ns\": \"%" SCNx64 "\", "
                        "\"stall_cycles\": \"%" SCNx64 "\", "
                        "\"kind\": %d, \"level\": %d, "
                        "\"level_confidence\": \"%" SCNx64 "\"",
                        &start, &end, &depth, &duration, &cycles, &kind,
                        &level, &level_conf) == 8) {
            profiler::StallEvent ev;
            ev.startSample = start;
            ev.endSample = end;
            ev.depth = bitsToDouble(depth);
            ev.durationNs = bitsToDouble(duration);
            ev.stallCycles = bitsToDouble(cycles);
            ev.kind = static_cast<profiler::StallKind>(kind);
            ev.level = static_cast<profiler::ServiceLevel>(level);
            ev.levelConfidence = bitsToDouble(level_conf);
            events.push_back(ev);
        }
    }
    if (declared < 0)
        return fail("no count line");
    if (static_cast<std::size_t>(declared) != events.size())
        return fail("count disagrees with number of event lines");
    return true;
}

} // namespace emprof::golden

#endif // EMPROF_TESTS_E2E_GOLDEN_COMMON_HPP
