/**
 * @file
 * golden_gen — (re)generate the golden end-to-end fixture.
 *
 *   golden_gen [output-dir]
 *
 * Writes the deterministic capture, its deliberately-truncated
 * variant, and the two expected-events files described in
 * golden_common.hpp.  Run it only when the pipeline's intended output
 * changes; the point of the checked-in fixture is that an *unintended*
 * change anywhere between the container format and the event math
 * fails test_golden_pipeline instead of silently shifting the truth.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/io/checked_file.hpp"
#include "golden_common.hpp"
#include "store/capture_reader.hpp"

using namespace emprof;

namespace {

bool
writeFile(const std::string &path, const void *data, std::size_t size)
{
    common::io::CheckedFile file;
    const bool ok =
        file.open(path, common::io::CheckedFile::Mode::WriteTruncate) &&
        file.writeAll(data, size, "fixture") && file.close();
    if (!ok)
        std::fprintf(stderr, "%s\n", file.error().describe().c_str());
    return ok;
}

bool
writeText(const std::string &path, const std::string &text)
{
    return writeFile(path, text.data(), text.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : ".";

    const dsp::TimeSeries signal = golden::goldenSignal();
    const std::string capture_path =
        dir + "/" + golden::kCaptureFile;
    std::string error;
    if (!store::writeCapture(capture_path, signal,
                             golden::goldenWriterOptions(), nullptr,
                             &error)) {
        std::fprintf(stderr, "write capture: %s\n", error.c_str());
        return 1;
    }

    // Truncate a copy mid-way through the chunk after the last
    // salvageable one, and drop the footer with it.
    store::CaptureReader reader;
    if (!reader.open(capture_path, &error)) {
        std::fprintf(stderr, "reopen capture: %s\n", error.c_str());
        return 1;
    }
    if (reader.chunkCount() <= golden::kTruncatedSalvagedChunks) {
        std::fprintf(stderr, "fixture has too few chunks to truncate\n");
        return 1;
    }
    const uint64_t cut =
        reader.chunk(golden::kTruncatedSalvagedChunks).fileOffset + 7;

    std::vector<uint8_t> raw(cut);
    common::io::CheckedFile in;
    if (!in.open(capture_path, common::io::CheckedFile::Mode::Read) ||
        !in.readAll(raw.data(), raw.size(), "fixture reread")) {
        std::fprintf(stderr, "%s\n", in.error().describe().c_str());
        return 1;
    }
    if (!writeFile(dir + "/" + golden::kTruncatedFile, raw.data(),
                   raw.size()))
        return 1;

    // Expected events: the streaming path is the definition of truth;
    // the parallel and recovered paths must reproduce it bit-for-bit.
    const auto result =
        profiler::EmProf::analyze(signal, golden::goldenConfig());
    if (!writeText(dir + "/" + golden::kExpectedFile,
                   golden::eventsToJson(result.events)))
        return 1;

    store::CaptureReader recovered;
    store::RecoveryReport report;
    if (!recovered.openRecovered(dir + "/" + golden::kTruncatedFile,
                                 &report, &error)) {
        std::fprintf(stderr, "recover: %s\n", error.c_str());
        return 1;
    }
    if (report.salvagedChunks != golden::kTruncatedSalvagedChunks) {
        std::fprintf(stderr, "expected %zu salvaged chunks, got %llu\n",
                      golden::kTruncatedSalvagedChunks,
                      static_cast<unsigned long long>(
                          report.salvagedChunks));
        return 1;
    }
    dsp::TimeSeries salvaged;
    if (!recovered.readAll(salvaged, &error)) {
        std::fprintf(stderr, "read salvage: %s\n", error.c_str());
        return 1;
    }
    const auto truncated_result =
        profiler::EmProf::analyze(salvaged, golden::goldenConfig());
    if (!writeText(dir + "/" + golden::kTruncatedExpectedFile,
                   golden::eventsToJson(truncated_result.events)))
        return 1;

    std::printf("golden fixture written to %s: %zu events full, "
                "%zu events truncated (%llu bytes cut)\n",
                dir.c_str(), result.events.size(),
                truncated_result.events.size(),
                static_cast<unsigned long long>(cut));
    return 0;
}
