/**
 * @file
 * Edge-case tests for the analysis thread pool: empty lifetime, more
 * tasks than workers, exception propagation through futures, and
 * destruction with work still in flight.  TSan runs these in CI, so
 * the tests double as a data-race check on the queue.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"

using namespace emprof;

TEST(ThreadPool, ConstructsAndDestroysWithZeroTasks)
{
    common::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    // Destructor must join idle workers without a single submit.
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    common::ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(common::ThreadPool::hardwareThreads(),
              pool.size());
}

TEST(ThreadPool, RunsManyMoreTasksThanThreads)
{
    common::ThreadPool pool(2);
    constexpr int kTasks = 500;
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
        futures.push_back(pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, ThrowingTaskSurfacesThroughFutureAndPoolSurvives)
{
    common::ThreadPool pool(2);
    auto bad = pool.submit(
        [] { throw std::runtime_error("task exploded"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The worker that ran the throwing task must still be alive and
    // able to run subsequent work.
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DestructionDrainsSubmittedWork)
{
    // The destructor contract is "joins all workers after draining
    // already-submitted tasks": every future obtained before the pool
    // dies must become ready, even when the queue is deep and tasks
    // are still executing at destruction time.
    constexpr int kTasks = 64;
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    {
        common::ThreadPool pool(2);
        for (int i = 0; i < kTasks; ++i)
            futures.push_back(pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                done.fetch_add(1, std::memory_order_relaxed);
            }));
        // Pool destroyed here with most of the queue still pending.
    }
    for (auto &f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, DrainRunsQueuedWorkThenRejectsLateSubmissions)
{
    common::ThreadPool pool(2);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            done.fetch_add(1, std::memory_order_relaxed);
        }));
    pool.drain();
    // Everything submitted before drain() ran to completion...
    EXPECT_EQ(done.load(), 32);
    for (auto &f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    EXPECT_TRUE(pool.draining());
    // ...and a late enqueue is rejected with a typed error instead of
    // being silently dropped, run, or deadlocking.
    auto late = pool.submit([] { ADD_FAILURE() << "ran after drain"; });
    EXPECT_THROW(late.get(), common::ThreadPool::PoolDrained);
}

TEST(ThreadPool, DrainIsIdempotentAndDestructorAfterDrainIsSafe)
{
    common::ThreadPool pool(2);
    std::atomic<int> done{0};
    auto f = pool.submit(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    pool.drain();
    pool.drain(); // second drain must be a no-op, not a double join
    f.get();
    EXPECT_EQ(done.load(), 1);
    // Destructor runs drain() a third time on scope exit.
}

TEST(ThreadPool, EnqueueFromRunningTaskDuringDrainDoesNotDeadlock)
{
    // The server-shutdown race: a worker task tries to submit more
    // work while another thread is draining the pool.  Whichever way
    // the race goes, the inner future must resolve — either the task
    // ran (submitted before the stop flag) or it was rejected.
    for (int round = 0; round < 20; ++round) {
        common::ThreadPool pool(2);
        std::atomic<int> ran{0};
        std::future<void> inner;
        std::promise<void> inner_ready;
        auto outer = pool.submit([&] {
            inner = pool.submit(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            inner_ready.set_value();
        });
        pool.drain();
        outer.get();
        inner_ready.get_future().get();
        bool rejected = false;
        try {
            inner.get();
        } catch (const common::ThreadPool::PoolDrained &) {
            rejected = true;
        }
        EXPECT_TRUE(rejected || ran.load() == 1);
    }
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers)
{
    // Two workers must be able to be inside tasks at the same time;
    // a rendezvous that requires both proves the pool is not secretly
    // serialising the queue.
    common::ThreadPool pool(2);
    std::atomic<int> arrived{0};
    auto wait_for_peer = [&arrived] {
        arrived.fetch_add(1);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
        while (arrived.load() < 2) {
            if (std::chrono::steady_clock::now() > deadline)
                return; // fail via the assertion below, not a hang
            std::this_thread::yield();
        }
    };
    auto a = pool.submit(wait_for_peer);
    auto b = pool.submit(wait_for_peer);
    a.get();
    b.get();
    EXPECT_EQ(arrived.load(), 2);
}
