/**
 * @file
 * I/O fault-injection tests.
 *
 * ScopedFaultPlan arms one fault at a cumulative byte position inside
 * CheckedFile's transfer loops; the tests sweep that position across
 * entire write and read streams to prove every I/O site in the capture
 * path either surfaces a typed IoError or (for EINTR) recovers
 * transparently — and that whatever a failed writer leaves on disk is
 * either cleanly rejected or salvageable with bit-exact samples.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/io/checked_file.hpp"
#include "common/io/fault_injection.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_io.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

namespace emprof::store {
namespace {

using common::io::CheckedFile;
using common::io::FaultInjector;
using common::io::FaultPlan;
using common::io::IoError;
using common::io::IoErrorKind;
using common::io::ScopedFaultPlan;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

dsp::TimeSeries
plateauSeries(std::size_t n, uint64_t seed)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(n, 1.0f);
    dsp::Rng rng(seed);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    return s;
}

WriterOptions
baseOptions(std::size_t chunkSamples = 1000)
{
    WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1.008e9;
    opt.deviceName = "TestDevice";
    opt.chunkSamples = chunkSamples;
    return opt;
}

FaultPlan
plan(FaultPlan::Kind kind, uint64_t trigger)
{
    FaultPlan p;
    p.kind = kind;
    p.triggerByte = trigger;
    return p;
}

uint64_t
fileSize(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return static_cast<uint64_t>(size);
}

// --- CheckedFile-level behaviour ------------------------------------

TEST(FaultInjection, TornWriteSurfacesShortWriteAndInvalidates)
{
    const auto path = tempPath("torn.bin");
    CheckedFile file;
    ASSERT_TRUE(file.open(path, CheckedFile::Mode::WriteTruncate));

    std::vector<uint8_t> data(100, 0xAB);
    {
        ScopedFaultPlan fault(plan(FaultPlan::Kind::TornWrite, 40));
        EXPECT_FALSE(file.writeAll(data.data(), data.size(), "blob"));
        EXPECT_TRUE(FaultInjector::fired());
    }
    EXPECT_EQ(file.error().kind, IoErrorKind::ShortWrite);
    EXPECT_EQ(file.error().context, "blob");
    EXPECT_FALSE(file.error().describe().empty());

    // First-error-wins: later operations fail, the error is preserved.
    EXPECT_FALSE(file.writeAll(data.data(), data.size(), "later"));
    EXPECT_EQ(file.error().kind, IoErrorKind::ShortWrite);
    EXPECT_EQ(file.error().context, "blob");
    EXPECT_FALSE(file.close());

    // The torn bytes really landed (that is what makes it "torn").
    EXPECT_EQ(fileSize(path), 40u);
    std::remove(path.c_str());
}

TEST(FaultInjection, NoSpaceSurfacesEnospc)
{
    const auto path = tempPath("nospace.bin");
    CheckedFile file;
    ASSERT_TRUE(file.open(path, CheckedFile::Mode::WriteTruncate));
    std::vector<uint8_t> data(64, 0x11);
    {
        ScopedFaultPlan fault(plan(FaultPlan::Kind::NoSpace, 10));
        EXPECT_FALSE(file.writeAll(data.data(), data.size(), "blob"));
    }
    EXPECT_EQ(file.error().kind, IoErrorKind::NoSpace);
    EXPECT_EQ(file.error().sysErrno, ENOSPC);
    std::remove(path.c_str());
}

TEST(FaultInjection, EintrIsRetriedTransparently)
{
    const auto path = tempPath("eintr.bin");
    CheckedFile file;
    ASSERT_TRUE(file.open(path, CheckedFile::Mode::WriteTruncate));
    std::vector<uint8_t> data(128);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    {
        ScopedFaultPlan fault(plan(FaultPlan::Kind::Eintr, 50));
        EXPECT_TRUE(file.writeAll(data.data(), data.size(), "blob"));
        EXPECT_TRUE(FaultInjector::fired());
    }
    EXPECT_TRUE(file.error().ok());
    ASSERT_TRUE(file.close());
    EXPECT_EQ(fileSize(path), data.size());
    std::remove(path.c_str());
}

TEST(FaultInjection, ShortReadAndFailReadSurfaceTypedErrors)
{
    const auto path = tempPath("readfault.bin");
    {
        CheckedFile file;
        ASSERT_TRUE(file.open(path, CheckedFile::Mode::WriteTruncate));
        std::vector<uint8_t> data(64, 0x5A);
        ASSERT_TRUE(file.writeAll(data.data(), data.size(), "blob"));
        ASSERT_TRUE(file.close());
    }
    uint8_t buf[64];
    {
        CheckedFile file;
        ASSERT_TRUE(file.open(path, CheckedFile::Mode::Read));
        ScopedFaultPlan fault(plan(FaultPlan::Kind::ShortRead, 32));
        EXPECT_FALSE(file.readAll(buf, sizeof(buf), "blob"));
        EXPECT_EQ(file.error().kind, IoErrorKind::ShortRead);
    }
    {
        CheckedFile file;
        ASSERT_TRUE(file.open(path, CheckedFile::Mode::Read));
        ScopedFaultPlan fault(plan(FaultPlan::Kind::FailRead, 0));
        EXPECT_FALSE(file.readAll(buf, sizeof(buf), "blob"));
        EXPECT_EQ(file.error().kind, IoErrorKind::ReadFailed);
    }
    // Real EOF (no injection) is a ShortRead too.
    {
        CheckedFile file;
        ASSERT_TRUE(file.open(path, CheckedFile::Mode::Read));
        uint8_t big[100];
        EXPECT_FALSE(file.readAll(big, sizeof(big), "blob"));
        EXPECT_EQ(file.error().kind, IoErrorKind::ShortRead);
    }
    std::remove(path.c_str());
}

// --- capture-writer path --------------------------------------------

TEST(FaultInjection, WriterFaultAtEveryByteFailsCleanOrRecovers)
{
    // The central sweep: arm a fault at every byte position of the
    // writer's output stream, for each failure shape.  writeCapture
    // must report a typed error, and what it leaves on disk must be
    // cleanly rejectable or salvageable with bit-exact samples —
    // never crash, never a wrong count.
    const auto series = plateauSeries(500, 202);
    const auto path = tempPath("sweep.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(100), nullptr,
                             &error))
        << error;
    const uint64_t total_bytes = fileSize(path);

    // Expected salvage boundaries from the intact file's index.
    CaptureReader intact;
    ASSERT_TRUE(intact.open(path, &error)) << error;
    std::vector<std::pair<uint64_t, uint64_t>> spans; // endByte, samples
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < intact.chunkCount(); ++i) {
        const auto &e = intact.chunk(i);
        cumulative += e.sampleCount;
        spans.push_back({e.fileOffset + e.storedBytes, cumulative});
    }
    intact.close();
    std::remove(path.c_str());

    for (const auto kind :
         {FaultPlan::Kind::FailWrite, FaultPlan::Kind::TornWrite,
          FaultPlan::Kind::NoSpace}) {
        // The write stream re-writes the 72-byte header during
        // finalize, so the stream is total_bytes + 72 long.
        for (uint64_t trigger = 0; trigger < total_bytes + 72;
             ++trigger) {
            bool ok;
            std::string sweep_error;
            {
                ScopedFaultPlan fault(plan(kind, trigger));
                ok = writeCapture(path, series, baseOptions(100),
                                  nullptr, &sweep_error);
            }
            ASSERT_FALSE(ok) << "kind=" << static_cast<int>(kind)
                             << " trigger=" << trigger;
            ASSERT_FALSE(sweep_error.empty()) << "trigger=" << trigger;

            // Strict open must never report a wrong sample count; if
            // it accepts the file at all, the file must be complete.
            {
                CaptureReader strict;
                std::string open_error;
                if (strict.open(path, &open_error)) {
                    dsp::TimeSeries loaded;
                    ASSERT_TRUE(strict.readAll(loaded, &open_error));
                    ASSERT_EQ(loaded.samples.size(),
                              series.samples.size())
                        << "trigger=" << trigger;
                }
            }

            // Recovery: fails cleanly, or salvages a bit-exact prefix
            // aligned to a flushed-chunk boundary.
            CaptureReader reader;
            RecoveryReport report;
            std::string rec_error;
            if (!reader.openRecovered(path, &report, &rec_error)) {
                ASSERT_FALSE(rec_error.empty())
                    << "trigger=" << trigger;
                continue;
            }
            bool on_boundary = report.salvagedSamples == 0;
            for (const auto &span : spans)
                on_boundary |= report.salvagedSamples == span.second;
            ASSERT_TRUE(on_boundary)
                << "salvaged " << report.salvagedSamples
                << " samples at trigger=" << trigger;

            dsp::TimeSeries salvaged;
            ASSERT_TRUE(reader.readAll(salvaged, &rec_error))
                << "trigger=" << trigger << ": " << rec_error;
            ASSERT_EQ(salvaged.samples.size(), report.salvagedSamples);
            if (!salvaged.samples.empty())
                ASSERT_EQ(
                    std::memcmp(salvaged.samples.data(),
                                series.samples.data(),
                                salvaged.samples.size() *
                                    sizeof(float)),
                    0)
                    << "trigger=" << trigger;
        }
    }
    std::remove(path.c_str());
}

TEST(FaultInjection, WriterSurvivesEintrAnywhere)
{
    // EINTR is not an error: wherever it lands in the stream, the
    // retry loop must absorb it and produce a byte-identical capture.
    const auto series = plateauSeries(500, 203);
    const auto path = tempPath("eintr.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(100), nullptr,
                             &error))
        << error;
    const uint64_t total_bytes = fileSize(path);

    for (uint64_t trigger = 0; trigger < total_bytes + 72;
         trigger += 7) {
        bool ok;
        {
            ScopedFaultPlan fault(
                plan(FaultPlan::Kind::Eintr, trigger));
            ok = writeCapture(path, series, baseOptions(100), nullptr,
                              &error);
        }
        ASSERT_TRUE(ok) << "trigger=" << trigger << ": " << error;

        CaptureReader reader;
        ASSERT_TRUE(reader.open(path, &error)) << error;
        dsp::TimeSeries loaded;
        ASSERT_TRUE(reader.readAll(loaded, &error)) << error;
        ASSERT_EQ(loaded.samples.size(), series.samples.size());
        ASSERT_EQ(std::memcmp(loaded.samples.data(),
                              series.samples.data(),
                              series.samples.size() * sizeof(float)),
                  0)
            << "trigger=" << trigger;
    }
    std::remove(path.c_str());
}

TEST(FaultInjection, WriterInvalidatesAfterMidCaptureFault)
{
    // Streaming use: a fault during append() must invalidate the
    // writer — further appends fail fast, finalize reports the first
    // error, and no footer gets written over the damage.
    const auto series = plateauSeries(500, 204);
    const auto path = tempPath("invalidate.emcap");

    CaptureWriter writer;
    ASSERT_TRUE(writer.open(path, baseOptions(100)));

    bool append_ok, finalize_ok = false;
    {
        // Somewhere inside the chunk stream (byte counting starts at
        // arm(), i.e. after the 72-byte provisional header).
        ScopedFaultPlan fault(plan(FaultPlan::Kind::TornWrite, 450));
        append_ok = writer.append(series.samples.data(),
                                  series.samples.size());
        if (append_ok)
            finalize_ok = writer.finalize(); // fault lands in footer
    }
    EXPECT_FALSE(append_ok && finalize_ok);
    EXPECT_FALSE(writer.isOpen());
    EXPECT_EQ(writer.lastError().kind, IoErrorKind::ShortWrite);
    // Invalidated: everything after the first failure fails fast and
    // preserves that first error.
    EXPECT_FALSE(writer.append(series.samples.data(), 100));
    EXPECT_FALSE(writer.finalize());
    EXPECT_EQ(writer.lastError().kind, IoErrorKind::ShortWrite);

    // The partial file never gained a footer.
    CaptureReader strict;
    std::string error;
    EXPECT_FALSE(strict.open(path, &error));
    std::remove(path.c_str());
}

// --- signal_io path --------------------------------------------------

TEST(FaultInjection, SaveSignalSurfacesDiskFull)
{
    const auto series = plateauSeries(400, 205);
    const auto path = tempPath("fault.emsig");
    IoError error;
    {
        ScopedFaultPlan fault(plan(FaultPlan::Kind::NoSpace, 600));
        EXPECT_FALSE(dsp::saveSignal(path, series, &error));
    }
    EXPECT_EQ(error.kind, IoErrorKind::NoSpace);
    EXPECT_EQ(error.sysErrno, ENOSPC);
    std::remove(path.c_str());
}

TEST(FaultInjection, LoadSignalEveryTruncationIsATypedError)
{
    // An .emsig whose payload is cut at any byte must be a typed
    // error, never a shorter-but-plausible signal.
    const auto series = plateauSeries(64, 206);
    const auto path = tempPath("trunc.emsig");
    IoError error;
    ASSERT_TRUE(dsp::saveSignal(path, series, &error))
        << error.describe();
    const uint64_t size = fileSize(path);

    std::vector<uint8_t> bytes(size);
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
    const auto cut = tempPath("trunc_cut.emsig");
    for (uint64_t len = 0; len < size; ++len) {
        std::FILE *f = std::fopen(cut.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (len > 0)
            ASSERT_EQ(std::fwrite(bytes.data(), 1, len, f), len);
        std::fclose(f);

        dsp::TimeSeries out;
        IoError cut_error;
        EXPECT_FALSE(dsp::loadSignal(cut, out, &cut_error))
            << "len=" << len;
        EXPECT_FALSE(cut_error.ok()) << "len=" << len;
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(FaultInjection, LoadRawRejectsTrailingPartialSample)
{
    const auto path = tempPath("ragged.f32");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const uint8_t junk[10] = {}; // 2.5 floats
        ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
        std::fclose(f);
    }
    dsp::TimeSeries out;
    IoError error;
    EXPECT_FALSE(dsp::loadRawF32(path, 40e6, false, out, &error));
    EXPECT_EQ(error.kind, IoErrorKind::Format);
    std::remove(path.c_str());
}

} // namespace
} // namespace emprof::store
