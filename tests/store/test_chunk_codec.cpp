/**
 * @file
 * Chunk codec tests: the F32 path must be bit-exact, the QuantI16 path
 * must honour the scale/2 error bound, and decode must reject anything
 * that does not reproduce the declared sample count exactly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "dsp/rng.hpp"
#include "store/chunk_codec.hpp"

namespace emprof::store {
namespace {

std::vector<dsp::Sample>
plateauSignal(std::size_t n, uint64_t seed)
{
    std::vector<dsp::Sample> s(n, 1.0f);
    dsp::Rng rng(seed);
    for (auto &x : s)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    for (std::size_t i = n / 3; i < n / 3 + 40 && i < n; ++i)
        s[i] = 0.2f; // a dip, as the detector would see
    return s;
}

std::vector<dsp::Sample>
roundTrip(const std::vector<dsp::Sample> &in,
          const EncoderOptions &options)
{
    const auto enc = encodeChunk(in.data(), in.size(), options);
    std::vector<dsp::Sample> out(in.size());
    EXPECT_TRUE(decodeChunk(enc.payload.data(), enc.payload.size(),
                            enc.encoding, options.codec, enc.scale,
                            in.size(), out.data()));
    return out;
}

TEST(ChunkCodec, F32RoundTripIsBitExact)
{
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{127}, std::size_t{128},
                                std::size_t{129}, std::size_t{5000}}) {
        const auto in = plateauSignal(n, 11 + n);
        const auto out = roundTrip(in, EncoderOptions{});
        ASSERT_EQ(out.size(), in.size());
        // Bit patterns, not just values: NaN payloads and -0.0f must
        // survive, since "lossless" is what makes EMCAP-fed analysis
        // bit-identical to the raw path.
        if (n != 0) {
            EXPECT_EQ(std::memcmp(out.data(), in.data(),
                                  n * sizeof(dsp::Sample)),
                      0)
                << "n=" << n;
        }
    }
}

TEST(ChunkCodec, F32PreservesSpecialValues)
{
    std::vector<dsp::Sample> in = {
        0.0f,
        -0.0f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        std::numeric_limits<float>::denorm_min(),
        std::numeric_limits<float>::max(),
        -1e-30f,
    };
    const auto out = roundTrip(in, EncoderOptions{});
    EXPECT_EQ(std::memcmp(out.data(), in.data(),
                          in.size() * sizeof(dsp::Sample)),
              0);
}

TEST(ChunkCodec, QuantI16ErrorBoundedByHalfScale)
{
    for (const unsigned bits : {2u, 8u, 12u, 16u}) {
        const auto in = plateauSignal(4000, bits);
        EncoderOptions opt;
        opt.codec = SampleCodec::QuantI16;
        opt.quantBits = bits;
        const auto enc = encodeChunk(in.data(), in.size(), opt);
        ASSERT_GT(enc.scale, 0.0f);
        std::vector<dsp::Sample> out(in.size());
        ASSERT_TRUE(decodeChunk(enc.payload.data(), enc.payload.size(),
                                enc.encoding, opt.codec, enc.scale,
                                in.size(), out.data()));
        for (std::size_t i = 0; i < in.size(); ++i) {
            ASSERT_LE(std::abs(out[i] - in[i]), enc.scale * 0.5f + 1e-7f)
                << "bits=" << bits << " i=" << i;
        }
    }
}

TEST(ChunkCodec, QuantizeClampsAndZeroesNaN)
{
    const float scale = 0.01f;
    EXPECT_EQ(quantize(1e9f, scale, 16), 32767);
    EXPECT_EQ(quantize(-1e9f, scale, 16), -32767);
    EXPECT_EQ(quantize(std::numeric_limits<float>::quiet_NaN(), scale,
                       16),
              0);
    EXPECT_EQ(quantize(0.0049f, scale, 16), 0);  // rounds down
    EXPECT_EQ(quantize(0.0051f, scale, 16), 1);  // rounds up
    EXPECT_EQ(quantize(-0.0051f, scale, 16), -1);
}

TEST(ChunkCodec, CompressibleSignalActuallyCompresses)
{
    const auto in = plateauSignal(65536, 99);
    EncoderOptions opt;
    opt.codec = SampleCodec::QuantI16;
    const auto enc = encodeChunk(in.data(), in.size(), opt);
    EXPECT_EQ(enc.encoding, ChunkEncoding::DeltaPacked);
    // The i16 acceptance bar: at least 2x smaller than raw f32.
    EXPECT_LT(enc.payload.size(), in.size() * sizeof(float) / 2);
}

TEST(ChunkCodec, IncompressibleSignalFallsBackToRaw)
{
    // White noise over the full float range defeats delta packing; the
    // encoder must fall back rather than inflate.
    std::vector<dsp::Sample> in(4096);
    dsp::Rng rng(7);
    for (auto &x : in)
        x = static_cast<float>((rng.uniform() - 0.5) * 2e30);
    const auto enc = encodeChunk(in.data(), in.size(), EncoderOptions{});
    EXPECT_EQ(enc.encoding, ChunkEncoding::Raw);
    EXPECT_EQ(enc.payload.size(), in.size() * sizeof(float));
}

TEST(ChunkCodec, NoCompressForcesRawEncoding)
{
    const auto in = plateauSignal(1000, 3);
    EncoderOptions opt;
    opt.compress = false;
    const auto enc = encodeChunk(in.data(), in.size(), opt);
    EXPECT_EQ(enc.encoding, ChunkEncoding::Raw);
    const auto out = roundTrip(in, opt);
    EXPECT_EQ(std::memcmp(out.data(), in.data(),
                          in.size() * sizeof(dsp::Sample)),
              0);
}

TEST(ChunkCodec, DecodeRejectsTruncatedOrPaddedPayloads)
{
    const auto in = plateauSignal(1000, 21);
    const auto enc = encodeChunk(in.data(), in.size(), EncoderOptions{});
    ASSERT_EQ(enc.encoding, ChunkEncoding::DeltaPacked);
    std::vector<dsp::Sample> out(in.size());

    // Truncated payload at several cut points.
    for (const std::size_t cut : {std::size_t{0}, std::size_t{4},
                                  std::size_t{8},
                                  enc.payload.size() - 1}) {
        EXPECT_FALSE(decodeChunk(enc.payload.data(), cut, enc.encoding,
                                 SampleCodec::F32, enc.scale, in.size(),
                                 out.data()))
            << "cut=" << cut;
    }
    // Trailing garbage must be rejected too (exact consumption).
    auto padded = enc.payload;
    padded.push_back(0xAB);
    EXPECT_FALSE(decodeChunk(padded.data(), padded.size(), enc.encoding,
                             SampleCodec::F32, enc.scale, in.size(),
                             out.data()));
    // Wrong declared sample count.
    std::vector<dsp::Sample> big(in.size() + 1);
    EXPECT_FALSE(decodeChunk(enc.payload.data(), enc.payload.size(),
                             enc.encoding, SampleCodec::F32, enc.scale,
                             big.size(), big.data()));
    // Raw encoding with a size that is not count * 4.
    EXPECT_FALSE(decodeChunk(enc.payload.data(), enc.payload.size(),
                             ChunkEncoding::Raw, SampleCodec::F32,
                             enc.scale, in.size(), out.data()));
}

} // namespace
} // namespace emprof::store
