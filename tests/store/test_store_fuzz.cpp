/**
 * @file
 * Corruption robustness for the EMCAP container.
 *
 * Two guarantees are tested here:
 *  1. Detection — for EVERY byte offset in a small capture, flipping
 *     that byte makes open() or verify() report damage.  Nothing in
 *     the file is allowed to change silently (this is what makes
 *     `emprof_store verify` trustworthy).
 *  2. Safety — 1000 random multi-byte mutations are opened and fully
 *     decoded without crashing; under ASan/UBSan (the CI store job)
 *     this doubles as a memory-safety fuzz of every parse path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

namespace emprof::store {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<uint8_t>
makeCaptureBytes(SampleCodec codec)
{
    dsp::TimeSeries series;
    series.sampleRateHz = 40e6;
    series.samples.assign(300, 1.0f);
    dsp::Rng rng(11);
    for (auto &x : series.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));

    WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1e9;
    opt.deviceName = "fuzz";
    opt.codec = codec;
    opt.chunkSamples = 100; // 3 chunks
    const auto path = tempPath("fuzz_src.emcap");
    EXPECT_TRUE(writeCapture(path, series, opt));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<uint8_t> bytes(static_cast<std::size_t>(std::ftell(f)));
    std::rewind(f);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
    std::remove(path.c_str());
    return bytes;
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}

/** open + verify: true only if the file is fully intact. */
bool
opensCleanly(const std::string &path)
{
    CaptureReader reader;
    if (!reader.open(path))
        return false;
    return reader.verify().ok;
}

TEST(StoreFuzz, EverySingleFlippedByteIsDetected)
{
    for (const SampleCodec codec :
         {SampleCodec::F32, SampleCodec::QuantI16}) {
        const auto good = makeCaptureBytes(codec);
        const auto path = tempPath("flip.emcap");
        writeBytes(path, good);
        ASSERT_TRUE(opensCleanly(path));

        // Whole-byte inversion and a single-bit flip at every offset:
        // each must be caught by a magic check or a CRC.
        for (std::size_t i = 0; i < good.size(); ++i) {
            for (const uint8_t mask : {uint8_t{0xFF}, uint8_t{0x01}}) {
                auto bad = good;
                bad[i] ^= mask;
                writeBytes(path, bad);
                EXPECT_FALSE(opensCleanly(path))
                    << "flip at byte " << i << " mask " << int(mask)
                    << " went undetected";
            }
        }
        std::remove(path.c_str());
    }
}

TEST(StoreFuzz, RandomMutationsNeverCrashTheDecoder)
{
    const auto good = makeCaptureBytes(SampleCodec::F32);
    const auto path = tempPath("mutate.emcap");
    dsp::Rng rng(1234);

    for (int round = 0; round < 1000; ++round) {
        auto bad = good;
        // 1..8 byte-level mutations; occasionally truncate or extend,
        // so header/footer size math gets hostile inputs too.
        const std::size_t edits = 1 + rng.below(8);
        for (std::size_t e = 0; e < edits; ++e)
            bad[rng.below(bad.size())] =
                static_cast<uint8_t>(rng.below(256));
        if (round % 7 == 0)
            bad.resize(rng.below(bad.size() + 1));
        else if (round % 11 == 0)
            bad.insert(bad.end(), rng.below(64), uint8_t{0xEE});
        writeBytes(path, bad);

        // Every parse path must terminate with a clean bool, never a
        // crash or an out-of-bounds read (ASan watches in CI).
        CaptureReader reader;
        if (!reader.open(path))
            continue;
        (void)reader.verify();
        std::vector<dsp::Sample> scratch;
        for (std::size_t i = 0; i < reader.chunkCount(); ++i)
            (void)reader.decodeChunk(i, scratch);
        dsp::TimeSeries all;
        (void)reader.readAll(all);
        (void)reader.readRange(0, 1, scratch);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace emprof::store
