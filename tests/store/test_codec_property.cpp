/**
 * @file
 * Property-based round-trip tests for the chunk codec.
 *
 * ~200 seeded random configurations sweep chunk sizes, quantiser
 * resolutions, compression on/off, and signal shapes (plateau noise,
 * constants, ramps, denormals, huge magnitudes, alternating extremes).
 * Every configuration must satisfy the codec's contract:
 *
 *  - F32 is bit-exact: the decoded floats carry the identical bit
 *    patterns, whatever the input (including denormals and -0.0).
 *  - QuantI16 stays within the documented bound
 *    |x - decoded| <= scale/2, with the per-chunk scale the encoder
 *    actually chose.
 *
 * Seeds are fixed, so a failure names a reproducible configuration.
 */

#include <cfloat>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "store/chunk_codec.hpp"

using namespace emprof;
using namespace emprof::store;

namespace {

enum class Shape
{
    PlateauNoise, ///< the intended workload: 1.0 plus small noise
    Constant,     ///< zero deltas end to end
    Ramp,         ///< monotone, constant delta
    Denormal,     ///< tiny values around FLT_MIN and below
    Huge,         ///< +/- values near FLT_MAX / 2
    Alternating,  ///< worst-case deltas between extremes
    kCount
};

std::vector<dsp::Sample>
makeSignal(Shape shape, std::size_t n, dsp::Rng &rng)
{
    std::vector<dsp::Sample> s(n);
    switch (shape) {
      case Shape::PlateauNoise:
        for (auto &x : s)
            x = static_cast<dsp::Sample>(1.0 +
                                         rng.uniform(-0.05, 0.05));
        break;
      case Shape::Constant: {
        const auto v =
            static_cast<dsp::Sample>(rng.uniform(-2.0, 2.0));
        for (auto &x : s)
            x = v;
        break;
      }
      case Shape::Ramp:
        for (std::size_t i = 0; i < n; ++i)
            s[i] = static_cast<dsp::Sample>(
                -1.0 + 2.0 * static_cast<double>(i) /
                           static_cast<double>(n ? n : 1));
        break;
      case Shape::Denormal:
        for (auto &x : s)
            x = static_cast<dsp::Sample>(rng.uniform(0.0, 1.0) *
                                         1e-40);
        break;
      case Shape::Huge:
        for (auto &x : s)
            x = static_cast<dsp::Sample>(rng.uniform(-1.0, 1.0) *
                                         1.5e38);
        break;
      case Shape::Alternating:
        for (std::size_t i = 0; i < n; ++i)
            s[i] = (i % 2 == 0) ? 1.0e30f : -1.0e30f;
        break;
      case Shape::kCount:
        break;
    }
    return s;
}

const char *
shapeName(Shape shape)
{
    switch (shape) {
      case Shape::PlateauNoise: return "plateau-noise";
      case Shape::Constant: return "constant";
      case Shape::Ramp: return "ramp";
      case Shape::Denormal: return "denormal";
      case Shape::Huge: return "huge";
      case Shape::Alternating: return "alternating";
      case Shape::kCount: break;
    }
    return "?";
}

struct Config
{
    Shape shape;
    std::size_t chunk;
    unsigned quantBits; ///< 0 = F32
    bool compress;
    uint64_t seed;
};

std::vector<Config>
makeConfigs()
{
    // Deterministic sweep: 6 shapes x chunk sizes x codec settings,
    // a little over 200 configurations.
    const std::size_t chunks[] = {1, 2, 127, 128, 129, 1024, 65536};
    const unsigned bit_settings[] = {0, 2, 3, 8, 15, 16};
    std::vector<Config> configs;
    uint64_t seed = 1;
    for (int shape = 0; shape < static_cast<int>(Shape::kCount);
         ++shape) {
        for (std::size_t chunk : chunks) {
            for (unsigned bits : bit_settings) {
                // Alternate compression; huge chunks only once per
                // codec to keep the suite fast.
                if (chunk == 65536 && bits != 0 && bits != 16)
                    continue;
                configs.push_back({static_cast<Shape>(shape), chunk,
                                   bits, (seed % 2) == 0, seed});
                ++seed;
            }
        }
    }
    return configs;
}

} // namespace

TEST(CodecProperty, RoundTripHoldsAcrossTwoHundredConfigs)
{
    const auto configs = makeConfigs();
    ASSERT_GE(configs.size(), 200u);

    for (const auto &config : configs) {
        SCOPED_TRACE(testing::Message()
                     << shapeName(config.shape) << " chunk="
                     << config.chunk << " bits=" << config.quantBits
                     << " compress=" << config.compress
                     << " seed=" << config.seed);

        dsp::Rng rng(config.seed);
        const auto samples =
            makeSignal(config.shape, config.chunk, rng);

        EncoderOptions enc;
        enc.codec = config.quantBits == 0 ? SampleCodec::F32
                                          : SampleCodec::QuantI16;
        enc.quantBits = config.quantBits == 0 ? 16 : config.quantBits;
        enc.compress = config.compress;
        const EncodedChunk chunk =
            encodeChunk(samples.data(), samples.size(), enc);

        std::vector<dsp::Sample> decoded(samples.size());
        ASSERT_TRUE(decodeChunk(chunk.payload.data(),
                                chunk.payload.size(), chunk.encoding,
                                enc.codec, chunk.scale, decoded.size(),
                                decoded.data()));

        if (enc.codec == SampleCodec::F32) {
            for (std::size_t i = 0; i < samples.size(); ++i) {
                uint32_t a, b;
                std::memcpy(&a, &samples[i], sizeof(a));
                std::memcpy(&b, &decoded[i], sizeof(b));
                ASSERT_EQ(a, b) << "F32 not bit-exact at sample " << i;
            }
        } else {
            // Documented bound is scale/2 from the quantiser, plus the
            // float dequantise multiply (q * scale), worth a couple of
            // ULPs of the sample magnitude.
            const double half_step =
                static_cast<double>(chunk.scale) / 2.0;
            for (std::size_t i = 0; i < samples.size(); ++i) {
                const double bound =
                    half_step +
                    2.0 * FLT_EPSILON *
                        std::abs(static_cast<double>(samples[i]));
                ASSERT_LE(std::abs(static_cast<double>(samples[i]) -
                                   static_cast<double>(decoded[i])),
                          bound)
                    << "QuantI16 error bound exceeded at sample " << i
                    << " (scale " << chunk.scale << ")";
            }
        }
    }
}

TEST(CodecProperty, QuantizerScaleCoversFullRange)
{
    // The per-chunk scale must make the documented bound tight-ish:
    // the largest-magnitude sample quantises to the top of the range,
    // so halving quantBits roughly doubles the error bound.
    dsp::Rng rng(7);
    std::vector<dsp::Sample> samples(512);
    for (auto &x : samples)
        x = static_cast<dsp::Sample>(rng.uniform(-3.0, 3.0));

    float prev_scale = 0.0f;
    for (unsigned bits : {16u, 8u, 4u}) {
        EncoderOptions enc;
        enc.codec = SampleCodec::QuantI16;
        enc.quantBits = bits;
        const EncodedChunk chunk =
            encodeChunk(samples.data(), samples.size(), enc);
        EXPECT_GT(chunk.scale, prev_scale)
            << "fewer bits must mean a coarser step";
        prev_scale = chunk.scale;
    }
}
