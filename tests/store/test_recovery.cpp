/**
 * @file
 * EMCAP crash-recovery tests.
 *
 * The core property: for a capture truncated at ANY byte boundary —
 * the file a crashed or power-cut writer leaves behind —
 * CaptureReader::openRecovered either fails with a clean typed error
 * (nothing salvageable) or salvages a prefix of fully-flushed chunks
 * whose samples are bit-identical to the original.  Never a crash,
 * never a silently wrong sample count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

namespace emprof::store {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

dsp::TimeSeries
plateauSeries(std::size_t n, uint64_t seed)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(n, 1.0f);
    dsp::Rng rng(seed);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    return s;
}

WriterOptions
baseOptions(std::size_t chunkSamples = 1000)
{
    WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1.008e9;
    opt.deviceName = "TestDevice";
    opt.chunkSamples = chunkSamples;
    return opt;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

void
writeFile(const std::string &path, const uint8_t *data, std::size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (len > 0)
        ASSERT_EQ(std::fwrite(data, 1, len, f), len);
    ASSERT_EQ(std::fclose(f), 0);
}

void
flipByte(const std::string &path, long offset, uint8_t mask = 0xFF)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ mask, f);
    std::fclose(f);
}

TEST(Recovery, EveryByteTruncationSalvagesCleanPrefixOrFailsCleanly)
{
    const auto series = plateauSeries(2500, 101);
    const auto path = tempPath("trunc_src.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(500), nullptr,
                             &error))
        << error;

    // The finalized file's own index gives the expected salvage for
    // any truncation length: chunk i survives iff its header AND whole
    // payload are inside the prefix.
    CaptureReader intact;
    ASSERT_TRUE(intact.open(path, &error)) << error;
    struct ChunkSpan
    {
        uint64_t endByte;
        uint64_t samplesThrough; // cumulative samples up to this chunk
    };
    std::vector<ChunkSpan> spans;
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < intact.chunkCount(); ++i) {
        const auto &e = intact.chunk(i);
        cumulative += e.sampleCount;
        spans.push_back({e.fileOffset + e.storedBytes, cumulative});
    }
    intact.close();

    const auto bytes = readFile(path);
    ASSERT_GT(bytes.size(), sizeof(FileHeader));
    const auto trunc_path = tempPath("trunc_cut.emcap");

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeFile(trunc_path, bytes.data(), len);

        CaptureReader reader;
        RecoveryReport report;
        std::string rec_error;
        const bool ok =
            reader.openRecovered(trunc_path, &report, &rec_error);

        if (len < sizeof(FileHeader)) {
            EXPECT_FALSE(ok) << "len=" << len;
            EXPECT_FALSE(rec_error.empty()) << "len=" << len;
            continue;
        }
        // Header is written once and never moves, so any prefix that
        // covers it is recoverable.
        ASSERT_TRUE(ok) << "len=" << len << ": " << rec_error;

        uint64_t expect_samples = 0;
        for (const auto &span : spans)
            if (span.endByte <= len)
                expect_samples = span.samplesThrough;
        ASSERT_EQ(report.salvagedSamples, expect_samples)
            << "len=" << len;
        ASSERT_EQ(reader.info().totalSamples, expect_samples)
            << "len=" << len;

        dsp::TimeSeries salvaged;
        ASSERT_TRUE(reader.readAll(salvaged, &rec_error))
            << "len=" << len << ": " << rec_error;
        ASSERT_EQ(salvaged.samples.size(), expect_samples);
        if (expect_samples > 0)
            EXPECT_EQ(std::memcmp(salvaged.samples.data(),
                                  series.samples.data(),
                                  expect_samples * sizeof(float)),
                      0)
                << "len=" << len;
    }
    std::remove(path.c_str());
    std::remove(trunc_path.c_str());
}

TEST(Recovery, FinalizedCaptureRecoversInFull)
{
    const auto series = plateauSeries(3500, 7);
    const auto path = tempPath("full.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(), nullptr,
                             &error))
        << error;

    CaptureReader reader;
    RecoveryReport report;
    ASSERT_TRUE(reader.openRecovered(path, &report, &error)) << error;
    EXPECT_EQ(report.salvagedChunks, 4u);
    EXPECT_EQ(report.salvagedSamples, 3500u);
    // The dropped tail is exactly the footer (index + tail), which the
    // scan cannot mistake for a chunk.
    EXPECT_EQ(report.droppedTailBytes,
              4 * sizeof(ChunkIndexEntry) + sizeof(FooterTail));

    dsp::TimeSeries loaded;
    ASSERT_TRUE(reader.readAll(loaded, &error)) << error;
    ASSERT_EQ(loaded.samples.size(), series.samples.size());
    EXPECT_EQ(std::memcmp(loaded.samples.data(), series.samples.data(),
                          series.samples.size() * sizeof(float)),
              0);
    std::remove(path.c_str());
}

TEST(Recovery, CorruptMidChunkStopsSalvageBeforeIt)
{
    const auto series = plateauSeries(4000, 9);
    const auto path = tempPath("midcorrupt.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(), nullptr,
                             &error))
        << error;

    CaptureReader intact;
    ASSERT_TRUE(intact.open(path, &error)) << error;
    ASSERT_GE(intact.chunkCount(), 3u);
    // Flip a payload byte in chunk 2.
    const auto &bad = intact.chunk(2);
    const long victim = static_cast<long>(bad.fileOffset) +
                        static_cast<long>(sizeof(ChunkHeader)) + 5;
    const uint64_t expect =
        intact.chunk(0).sampleCount + intact.chunk(1).sampleCount;
    intact.close();
    flipByte(path, victim);

    CaptureReader reader;
    RecoveryReport report;
    ASSERT_TRUE(reader.openRecovered(path, &report, &error)) << error;
    EXPECT_EQ(report.salvagedChunks, 2u);
    EXPECT_EQ(report.salvagedSamples, expect);
    EXPECT_FALSE(report.stopReason.empty());

    dsp::TimeSeries salvaged;
    ASSERT_TRUE(reader.readAll(salvaged, &error)) << error;
    ASSERT_EQ(salvaged.samples.size(), expect);
    EXPECT_EQ(std::memcmp(salvaged.samples.data(), series.samples.data(),
                          expect * sizeof(float)),
              0);
    std::remove(path.c_str());
}

TEST(Recovery, DamagedHeaderIsNotRecoverable)
{
    const auto series = plateauSeries(1500, 3);
    const auto path = tempPath("badheader.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(), nullptr,
                             &error))
        << error;
    flipByte(path, 10); // inside the 72-byte header

    CaptureReader reader;
    RecoveryReport report;
    EXPECT_FALSE(reader.openRecovered(path, &report, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(Recovery, QuantizedCaptureRecoversPerChunkScale)
{
    // QuantI16 keeps its dequantisation scale in each chunk header, so
    // recovery needs nothing from the footer.  The salvage must decode
    // to exactly what the intact reader decodes.
    const auto series = plateauSeries(3000, 21);
    const auto path = tempPath("quantrec.emcap");
    auto opt = baseOptions();
    opt.codec = SampleCodec::QuantI16;
    opt.quantBits = 12;
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, opt, nullptr, &error))
        << error;

    CaptureReader intact;
    ASSERT_TRUE(intact.open(path, &error)) << error;
    dsp::TimeSeries full;
    ASSERT_TRUE(intact.readAll(full, &error)) << error;
    const uint64_t cut_end =
        intact.chunk(1).fileOffset + intact.chunk(1).storedBytes;
    intact.close();

    // Truncate right after chunk 1 (two complete chunks survive).
    const auto bytes = readFile(path);
    const auto cut = tempPath("quantrec_cut.emcap");
    writeFile(cut, bytes.data(), static_cast<std::size_t>(cut_end));

    CaptureReader reader;
    RecoveryReport report;
    ASSERT_TRUE(reader.openRecovered(cut, &report, &error)) << error;
    EXPECT_EQ(report.salvagedChunks, 2u);
    EXPECT_EQ(reader.info().codec, SampleCodec::QuantI16);
    EXPECT_EQ(reader.info().quantBits, 12u);

    dsp::TimeSeries salvaged;
    ASSERT_TRUE(reader.readAll(salvaged, &error)) << error;
    ASSERT_EQ(salvaged.samples.size(), report.salvagedSamples);
    EXPECT_EQ(std::memcmp(salvaged.samples.data(), full.samples.data(),
                          salvaged.samples.size() * sizeof(float)),
              0);
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(Recovery, RecoveredReaderFeedsParallelAnalyzerIdentically)
{
    // A recovered reader must be a drop-in source for the parallel
    // analyzer: same events as streaming the salvaged prefix.
    auto series = plateauSeries(6000, 33);
    for (std::size_t i = 1200; i < 1300; ++i)
        series.samples[i] = 0.2f;
    for (std::size_t i = 3480; i < 3560; ++i)
        series.samples[i] = 0.2f;
    const auto path = tempPath("recanalyze.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(500), nullptr,
                             &error))
        << error;

    CaptureReader intact;
    ASSERT_TRUE(intact.open(path, &error)) << error;
    const uint64_t cut_end =
        intact.chunk(7).fileOffset + intact.chunk(7).storedBytes;
    intact.close();
    const auto bytes = readFile(path);
    const auto cut = tempPath("recanalyze_cut.emcap");
    writeFile(cut, bytes.data(), static_cast<std::size_t>(cut_end));

    CaptureReader reader;
    ASSERT_TRUE(reader.openRecovered(cut, nullptr, &error)) << error;
    ASSERT_EQ(reader.info().totalSamples, 4000u);

    profiler::EmProfConfig config;
    config.clockHz = 1.008e9;
    config.normWindowSeconds = 20e-6;

    dsp::TimeSeries prefix;
    prefix.sampleRateHz = series.sampleRateHz;
    prefix.samples.assign(series.samples.begin(),
                          series.samples.begin() + 4000);
    const auto streaming = profiler::EmProf::analyze(prefix, config);
    ASSERT_GE(streaming.events.size(), 1u);

    profiler::ParallelAnalyzerConfig pcfg;
    pcfg.threads = 4;
    pcfg.chunkSamples = 500;
    profiler::ProfileResult parallel;
    ASSERT_TRUE(profiler::analyzeCaptureParallel(reader, config,
                                                 parallel, pcfg, &error))
        << error;

    ASSERT_EQ(parallel.events.size(), streaming.events.size());
    for (std::size_t i = 0; i < streaming.events.size(); ++i) {
        EXPECT_EQ(parallel.events[i].startSample,
                  streaming.events[i].startSample);
        EXPECT_EQ(parallel.events[i].endSample,
                  streaming.events[i].endSample);
        EXPECT_EQ(parallel.events[i].depth, streaming.events[i].depth);
        EXPECT_EQ(parallel.events[i].kind, streaming.events[i].kind);
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(Recovery, SalvageRewritesToAVerifiableCapture)
{
    // The emprof_store recover path: salvage, re-encode, and the
    // result is a fully finalized capture that passes strict open()
    // and verify().
    const auto series = plateauSeries(2200, 55);
    const auto path = tempPath("rewrite_src.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(400), nullptr,
                             &error))
        << error;
    const auto bytes = readFile(path);
    const auto cut = tempPath("rewrite_cut.emcap");
    // Chop 40% off the end: some chunks plus the footer vanish.
    writeFile(cut, bytes.data(), bytes.size() * 6 / 10);

    CaptureReader reader;
    RecoveryReport report;
    ASSERT_TRUE(reader.openRecovered(cut, &report, &error)) << error;
    ASSERT_GT(report.salvagedSamples, 0u);

    dsp::TimeSeries salvaged;
    ASSERT_TRUE(reader.readAll(salvaged, &error)) << error;
    const auto out = tempPath("rewrite_out.emcap");
    ASSERT_TRUE(writeCapture(out, salvaged, baseOptions(400), nullptr,
                             &error))
        << error;

    CaptureReader fixed;
    ASSERT_TRUE(fixed.open(out, &error)) << error;
    const auto verdict = fixed.verify();
    EXPECT_TRUE(verdict.ok) << verdict.error;
    dsp::TimeSeries roundtrip;
    ASSERT_TRUE(fixed.readAll(roundtrip, &error)) << error;
    ASSERT_EQ(roundtrip.samples.size(), salvaged.samples.size());
    EXPECT_EQ(std::memcmp(roundtrip.samples.data(),
                          salvaged.samples.data(),
                          salvaged.samples.size() * sizeof(float)),
              0);
    std::remove(path.c_str());
    std::remove(cut.c_str());
    std::remove(out.c_str());
}

TEST(Recovery, StrictOpenOfTruncatedFileNamesRecovery)
{
    // The strict reader's error for a footer-less file must point the
    // operator at recovery.
    const auto series = plateauSeries(1500, 77);
    const auto path = tempPath("hint.emcap");
    std::string error;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(), nullptr,
                             &error))
        << error;
    const auto bytes = readFile(path);
    writeFile(path, bytes.data(), bytes.size() / 2);

    CaptureReader reader;
    EXPECT_FALSE(reader.open(path, &error));
    EXPECT_NE(error.find("recovery"), std::string::npos) << error;
    std::remove(path.c_str());
}

} // namespace
} // namespace emprof::store
