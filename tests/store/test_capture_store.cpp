/**
 * @file
 * CaptureWriter / CaptureReader container tests: round-trips, footer
 * seeking at chunk boundaries, metadata, streaming appends, and the
 * per-chunk damage-containment story (one corrupt chunk must not take
 * the rest of the capture with it).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

namespace emprof::store {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

dsp::TimeSeries
plateauSeries(std::size_t n, uint64_t seed)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(n, 1.0f);
    dsp::Rng rng(seed);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    return s;
}

WriterOptions
baseOptions(std::size_t chunkSamples = 1000)
{
    WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1.008e9;
    opt.deviceName = "TestDevice";
    opt.chunkSamples = chunkSamples;
    return opt;
}

/** Flip one byte in a file. */
void
flipByte(const std::string &path, long offset, uint8_t mask = 0xFF)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ mask, f);
    std::fclose(f);
}

TEST(CaptureStore, LosslessRoundTripIsBitExact)
{
    // 3.5 chunks: exercises the partial final chunk.
    const auto series = plateauSeries(3500, 1);
    const auto path = tempPath("roundtrip.emcap");
    WriterStats stats;
    ASSERT_TRUE(writeCapture(path, series, baseOptions(), &stats));
    EXPECT_EQ(stats.samples, 3500u);
    EXPECT_EQ(stats.chunks, 4u);

    CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_EQ(reader.info().totalSamples, 3500u);
    EXPECT_EQ(reader.info().codec, SampleCodec::F32);
    EXPECT_DOUBLE_EQ(reader.info().sampleRateHz, 40e6);
    EXPECT_DOUBLE_EQ(reader.info().clockHz, 1.008e9);
    EXPECT_EQ(reader.info().deviceName, "TestDevice");
    EXPECT_EQ(reader.chunkCount(), 4u);

    dsp::TimeSeries loaded;
    ASSERT_TRUE(reader.readAll(loaded, &error)) << error;
    EXPECT_DOUBLE_EQ(loaded.sampleRateHz, 40e6);
    ASSERT_EQ(loaded.samples.size(), series.samples.size());
    EXPECT_EQ(std::memcmp(loaded.samples.data(), series.samples.data(),
                          series.samples.size() * sizeof(float)),
              0);
    std::remove(path.c_str());
}

TEST(CaptureStore, QuantizedRoundTripWithinErrorBound)
{
    const auto series = plateauSeries(5000, 2);
    const auto path = tempPath("quant.emcap");
    auto opt = baseOptions();
    opt.codec = SampleCodec::QuantI16;
    opt.quantBits = 16;
    WriterStats stats;
    ASSERT_TRUE(writeCapture(path, series, opt, &stats));
    // The acceptance bar: i16 beats raw f32 by at least 2x.
    EXPECT_GE(stats.compressionRatio(), 2.0);

    CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_EQ(reader.info().codec, SampleCodec::QuantI16);
    EXPECT_EQ(reader.info().quantBits, 16u);

    dsp::TimeSeries loaded;
    ASSERT_TRUE(reader.readAll(loaded, &error)) << error;
    ASSERT_EQ(loaded.samples.size(), series.samples.size());
    // maxAbs is just over 1.0, so scale/2 stays under 2e-5.
    for (std::size_t i = 0; i < series.samples.size(); ++i)
        ASSERT_NEAR(loaded.samples[i], series.samples[i], 2e-5)
            << "i=" << i;
    std::remove(path.c_str());
}

TEST(CaptureStore, EmptyCaptureRoundTrips)
{
    dsp::TimeSeries empty;
    empty.sampleRateHz = 40e6;
    const auto path = tempPath("empty.emcap");
    ASSERT_TRUE(writeCapture(path, empty, baseOptions()));

    CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_EQ(reader.info().totalSamples, 0u);
    EXPECT_EQ(reader.chunkCount(), 0u);
    dsp::TimeSeries loaded;
    EXPECT_TRUE(reader.readAll(loaded, &error)) << error;
    EXPECT_TRUE(loaded.samples.empty());
    EXPECT_TRUE(reader.verify().ok);
    std::remove(path.c_str());
}

TEST(CaptureStore, StreamingAppendEqualsOneShot)
{
    const auto series = plateauSeries(4321, 3);
    const auto one = tempPath("oneshot.emcap");
    const auto dripped = tempPath("dripped.emcap");
    ASSERT_TRUE(writeCapture(one, series, baseOptions()));

    // Same samples pushed in awkward piece sizes must produce an
    // identical chunk layout (chunking is by count, not by append).
    CaptureWriter writer;
    ASSERT_TRUE(writer.open(dripped, baseOptions()));
    std::size_t pos = 0;
    const std::size_t pieces[] = {1, 999, 1000, 1, 0, 1500, 820};
    for (const std::size_t piece : pieces) {
        ASSERT_TRUE(
            writer.append(series.samples.data() + pos, piece));
        pos += piece;
    }
    ASSERT_EQ(pos, series.samples.size());
    ASSERT_TRUE(writer.finalize());

    // Byte-identical files, not just equivalent ones.
    std::FILE *fa = std::fopen(one.c_str(), "rb");
    std::FILE *fb = std::fopen(dripped.c_str(), "rb");
    ASSERT_NE(fa, nullptr);
    ASSERT_NE(fb, nullptr);
    for (;;) {
        const int a = std::fgetc(fa);
        const int b = std::fgetc(fb);
        ASSERT_EQ(a, b);
        if (a == EOF)
            break;
    }
    std::fclose(fa);
    std::fclose(fb);
    std::remove(one.c_str());
    std::remove(dripped.c_str());
}

TEST(CaptureStore, ReadRangeSeeksCorrectlyAtChunkBoundaries)
{
    const std::size_t chunk = 500;
    const auto series = plateauSeries(4 * chunk + 123, 4);
    const auto path = tempPath("seek.emcap");
    ASSERT_TRUE(writeCapture(path, series, baseOptions(chunk)));

    CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    ASSERT_EQ(reader.chunkCount(), 5u);

    // chunkContaining at every boundary flavour.
    EXPECT_EQ(reader.chunkContaining(0), 0u);
    EXPECT_EQ(reader.chunkContaining(chunk - 1), 0u);
    EXPECT_EQ(reader.chunkContaining(chunk), 1u);
    EXPECT_EQ(reader.chunkContaining(4 * chunk), 4u);
    EXPECT_EQ(reader.chunkContaining(4 * chunk + 122), 4u);

    struct Case
    {
        uint64_t first, count;
    };
    const Case cases[] = {
        {0, 1},                    // first sample
        {0, chunk},                // exactly chunk 0
        {chunk, chunk},            // exactly chunk 1
        {chunk - 1, 2},            // straddles one boundary
        {chunk - 1, 2 * chunk},    // straddles two boundaries
        {3 * chunk + 7, chunk},    // partial tail chunk involved
        {4 * chunk + 122, 1},      // very last sample
        {0, 4 * chunk + 123},      // everything
    };
    for (const auto &c : cases) {
        std::vector<dsp::Sample> got;
        ASSERT_TRUE(reader.readRange(c.first, c.count, got, &error))
            << "first=" << c.first << " count=" << c.count << ": "
            << error;
        ASSERT_EQ(got.size(), c.count);
        EXPECT_EQ(std::memcmp(got.data(),
                              series.samples.data() + c.first,
                              c.count * sizeof(float)),
                  0)
            << "first=" << c.first << " count=" << c.count;
    }

    // Out-of-range and overflowing requests must fail cleanly.
    std::vector<dsp::Sample> got;
    EXPECT_FALSE(reader.readRange(4 * chunk + 123, 1, got));
    EXPECT_FALSE(reader.readRange(0, 4 * chunk + 124, got));
    EXPECT_FALSE(reader.readRange(~uint64_t{0}, 2, got));
    // Empty range at a valid position is fine.
    EXPECT_TRUE(reader.readRange(chunk, 0, got, &error)) << error;
    EXPECT_TRUE(got.empty());
    std::remove(path.c_str());
}

TEST(CaptureStore, CorruptChunkIsContainedToThatChunk)
{
    const std::size_t chunk = 400;
    const auto series = plateauSeries(5 * chunk, 5);
    const auto path = tempPath("corrupt.emcap");
    ASSERT_TRUE(writeCapture(path, series, baseOptions(chunk)));

    CaptureReader clean;
    std::string error;
    ASSERT_TRUE(clean.open(path, &error)) << error;
    ASSERT_EQ(clean.chunkCount(), 5u);
    // Damage the middle of chunk 2's payload.
    const long target = static_cast<long>(clean.chunk(2).fileOffset +
                                          sizeof(ChunkHeader) +
                                          clean.chunk(2).storedBytes / 2);
    clean.close();
    flipByte(path, target);

    CaptureReader reader;
    ASSERT_TRUE(reader.open(path, &error)) << error; // header+footer OK

    // verify() names exactly the damaged chunk.
    const auto result = reader.verify();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.chunksChecked, 5u);
    ASSERT_EQ(result.badChunks.size(), 1u);
    EXPECT_EQ(result.badChunks[0], 2u);

    // The damaged chunk refuses to decode; every other chunk still
    // round-trips bit-exactly — damage is contained.
    std::vector<dsp::Sample> got;
    EXPECT_FALSE(reader.decodeChunk(2, got));
    for (const std::size_t i : {0u, 1u, 3u, 4u}) {
        ASSERT_TRUE(reader.decodeChunk(i, got, &error)) << error;
        ASSERT_EQ(got.size(), chunk);
        EXPECT_EQ(std::memcmp(got.data(),
                              series.samples.data() + i * chunk,
                              chunk * sizeof(float)),
                  0)
            << "chunk " << i;
    }
    // readRange through the bad chunk fails; around it, succeeds.
    EXPECT_FALSE(reader.readRange(2 * chunk + 10, 10, got));
    EXPECT_TRUE(reader.readRange(chunk, chunk, got, &error)) << error;
    EXPECT_TRUE(reader.readRange(3 * chunk, 2 * chunk, got, &error))
        << error;
    std::remove(path.c_str());
}

TEST(CaptureStore, WriterRejectsUnusableOptions)
{
    const auto path = tempPath("badopt.emcap");
    CaptureWriter writer;
    auto opt = baseOptions();
    opt.chunkSamples = 0;
    EXPECT_FALSE(writer.open(path, opt));

    opt = baseOptions();
    opt.codec = SampleCodec::QuantI16;
    opt.quantBits = 1;
    EXPECT_FALSE(writer.open(path, opt));
    opt.quantBits = 17;
    EXPECT_FALSE(writer.open(path, opt));
    opt.quantBits = 16;
    EXPECT_TRUE(writer.open(path, opt));
    EXPECT_TRUE(writer.finalize());
    std::remove(path.c_str());
}

TEST(CaptureStore, DeviceNameIsTruncatedNotOverflowed)
{
    const auto path = tempPath("longname.emcap");
    auto opt = baseOptions();
    opt.deviceName = "a-device-name-much-longer-than-the-header-field";
    ASSERT_TRUE(writeCapture(path, plateauSeries(10, 6), opt));

    CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_EQ(reader.info().deviceName,
              opt.deviceName.substr(0, sizeof(FileHeader::deviceName) - 1));
    std::remove(path.c_str());
}

TEST(CaptureStore, IsEmcapProbe)
{
    const auto path = tempPath("probe.emcap");
    ASSERT_TRUE(writeCapture(path, plateauSeries(10, 7), baseOptions()));
    EXPECT_TRUE(CaptureReader::isEmcap(path));

    const auto other = tempPath("probe.bin");
    std::FILE *f = std::fopen(other.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a capture at all", f);
    std::fclose(f);
    EXPECT_FALSE(CaptureReader::isEmcap(other));
    EXPECT_FALSE(CaptureReader::isEmcap(tempPath("missing.emcap")));
    std::remove(path.c_str());
    std::remove(other.c_str());
}

} // namespace
} // namespace emprof::store
