/**
 * @file
 * CRC32C unit tests: known-answer vectors, incremental equivalence,
 * and the error-detection property the container leans on (any
 * single-byte change flips the CRC).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "store/crc32c.hpp"

namespace emprof::store {
namespace {

uint32_t
oneShot(const void *data, std::size_t len)
{
    return crc32c(0, data, len);
}

TEST(Crc32c, KnownAnswerVectors)
{
    // RFC 3720 appendix B.4 test vectors (iSCSI uses CRC32C).
    EXPECT_EQ(oneShot("", 0), 0u);
    EXPECT_EQ(oneShot("123456789", 9), 0xE3069283u);

    const std::vector<uint8_t> zeros(32, 0x00);
    EXPECT_EQ(oneShot(zeros.data(), zeros.size()), 0x8A9136AAu);

    const std::vector<uint8_t> ones(32, 0xFF);
    EXPECT_EQ(oneShot(ones.data(), ones.size()), 0x62A8AB43u);

    std::vector<uint8_t> ascending(32);
    for (std::size_t i = 0; i < ascending.size(); ++i)
        ascending[i] = static_cast<uint8_t>(i);
    EXPECT_EQ(oneShot(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32c, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> data(301);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 31 + 7);

    const uint32_t whole = oneShot(data.data(), data.size());
    // Split at every position, including 0 and size().
    for (std::size_t split = 0; split <= data.size(); split += 17) {
        uint32_t crc = crc32c(0, data.data(), split);
        crc = crc32c(crc, data.data() + split, data.size() - split);
        EXPECT_EQ(crc, whole) << "split at " << split;
    }
}

TEST(Crc32c, DetectsEverySingleByteChange)
{
    std::string data = "EMCAP chunk payload exercising the table slices";
    const uint32_t good = oneShot(data.data(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        for (const uint8_t delta : {0x01, 0x80, 0xFF}) {
            std::string bad = data;
            bad[i] = static_cast<char>(bad[i] ^ delta);
            EXPECT_NE(oneShot(bad.data(), bad.size()), good)
                << "byte " << i << " xor " << int(delta);
        }
    }
}

TEST(Crc32c, AlignmentIndependent)
{
    // The slicing-by-8 loop has a byte-at-a-time head; starting at any
    // misalignment must give the same digest for the same bytes.
    std::vector<uint8_t> arena(128 + 8);
    for (std::size_t i = 0; i < arena.size(); ++i)
        arena[i] = static_cast<uint8_t>(i ^ 0x5A);
    const uint32_t ref = oneShot(arena.data(), 64);
    for (std::size_t shift = 1; shift < 8; ++shift) {
        std::memmove(arena.data() + shift, arena.data(), 64);
        EXPECT_EQ(oneShot(arena.data() + shift, 64), ref)
            << "shift " << shift;
        std::memmove(arena.data(), arena.data() + shift, 64);
    }
}

} // namespace
} // namespace emprof::store
