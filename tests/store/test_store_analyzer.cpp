/**
 * @file
 * EMCAP → ParallelAnalyzer equivalence: feeding a lossless capture to
 * analyzeCapture must produce events bit-identical to loading the same
 * samples into memory and running the streaming analyzer — for any
 * stored chunk size and thread count, including stored chunks much
 * smaller than the analysis spans.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dsp/rng.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

namespace emprof::profiler {
namespace {

EmProfConfig
testConfig()
{
    EmProfConfig cfg;
    cfg.clockHz = 1e9;
    cfg.sampleRateHz = 40e6;
    cfg.normWindowSeconds = 20e-6; // 800-sample envelope window
    return cfg;
}

dsp::TimeSeries
busySignalWithDips(std::size_t total, uint64_t seed)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(seed);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 600;
    while (pos + 70 < total) {
        const std::size_t len = 2 + rng.below(59);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 20 + rng.below(2000);
    }
    return s;
}

void
expectIdentical(const ProfileResult &a, const ProfileResult &b)
{
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < b.events.size(); ++i) {
        EXPECT_EQ(a.events[i].startSample, b.events[i].startSample);
        EXPECT_EQ(a.events[i].endSample, b.events[i].endSample);
        EXPECT_EQ(a.events[i].depth, b.events[i].depth);
        EXPECT_EQ(a.events[i].durationNs, b.events[i].durationNs);
        EXPECT_EQ(a.events[i].stallCycles, b.events[i].stallCycles);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    }
    EXPECT_EQ(a.report.totalEvents, b.report.totalEvents);
}

std::string
writeEmcap(const dsp::TimeSeries &sig, const char *name,
           std::size_t chunkSamples)
{
    store::WriterOptions opt;
    opt.sampleRateHz = sig.sampleRateHz;
    opt.chunkSamples = chunkSamples;
    const std::string path = std::string(::testing::TempDir()) + name;
    EXPECT_TRUE(store::writeCapture(path, sig, opt));
    return path;
}

TEST(StoreAnalyzer, EmcapMatchesStreamingAcrossChunkSizesAndThreads)
{
    const auto sig = busySignalWithDips(50000, 1);
    const auto streaming = EmProf::analyze(sig, testConfig());

    // Stored chunks both smaller and larger than the analysis spans;
    // span grouping must align to whatever is on disk.
    for (const std::size_t stored :
         {std::size_t{512}, std::size_t{3000}, std::size_t{20000}}) {
        const auto path = writeEmcap(sig, "eq.emcap", stored);
        store::CaptureReader reader;
        std::string error;
        ASSERT_TRUE(reader.open(path, &error)) << error;
        for (const std::size_t threads :
             {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            SCOPED_TRACE(::testing::Message() << "stored=" << stored
                                              << " threads=" << threads);
            ParallelAnalyzerConfig pcfg;
            pcfg.threads = threads;
            ProfileResult result;
            ASSERT_TRUE(analyzeCaptureParallel(reader, testConfig(),
                                               result, pcfg, &error))
                << error;
            expectIdentical(result, streaming);
        }
        std::remove(path.c_str());
    }
}

TEST(StoreAnalyzer, ExplicitChunkSizeAlignsToStoredBoundaries)
{
    const auto sig = busySignalWithDips(30000, 2);
    const auto streaming = EmProf::analyze(sig, testConfig());
    const auto path = writeEmcap(sig, "aligned.emcap", 700);
    store::CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;

    // Requested span sizes that do not divide the stored chunk size.
    for (const std::size_t span :
         {std::size_t{1000}, std::size_t{2048}, std::size_t{9999}}) {
        SCOPED_TRACE(::testing::Message() << "span=" << span);
        ParallelAnalyzerConfig pcfg;
        pcfg.threads = 4;
        pcfg.chunkSamples = span;
        ProfileResult result;
        ASSERT_TRUE(analyzeCaptureParallel(reader, testConfig(), result,
                                           pcfg, &error))
            << error;
        expectIdentical(result, streaming);
    }
    std::remove(path.c_str());
}

TEST(StoreAnalyzer, SingleThreadFallsBackToStreaming)
{
    const auto sig = busySignalWithDips(20000, 3);
    const auto streaming = EmProf::analyze(sig, testConfig());
    const auto path = writeEmcap(sig, "fallback.emcap", 4096);
    store::CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;

    ParallelAnalyzerConfig one;
    one.threads = 1;
    ProfileResult result;
    ASSERT_TRUE(
        analyzeCaptureParallel(reader, testConfig(), result, one, &error))
        << error;
    expectIdentical(result, streaming);
    std::remove(path.c_str());
}

TEST(StoreAnalyzer, CorruptChunkFailsAnalysisWithError)
{
    const auto sig = busySignalWithDips(20000, 4);
    const auto path = writeEmcap(sig, "corrupted.emcap", 1024);

    // Flip a payload byte in the middle of the file.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40000, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    std::fseek(f, 40000, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);

    store::CaptureReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    ParallelAnalyzerConfig pcfg;
    pcfg.threads = 4;
    ProfileResult result;
    EXPECT_FALSE(analyzeCaptureParallel(reader, testConfig(), result,
                                        pcfg, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace emprof::profiler
