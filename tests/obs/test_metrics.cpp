/**
 * @file
 * MetricsRegistry tests: the disabled no-op contract, multithreaded
 * shard merging, log2 bucket math, gauge semantics, kind-mismatch and
 * exhaustion behaviour, JSON escaping, and the --metrics-out writer
 * (which must go through the checked I/O layer, so a bad path is a
 * reported failure, not a silent half-file).
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

using namespace emprof;
using namespace emprof::obs;

namespace {

/** Enable metrics for one test, restoring the previous state after. */
class MetricsOn
{
  public:
    MetricsOn()
    {
        was_ = MetricsRegistry::enabled();
        MetricsRegistry::setEnabled(true);
        MetricsRegistry::instance().resetValues();
    }
    ~MetricsOn()
    {
        MetricsRegistry::instance().resetValues();
        MetricsRegistry::setEnabled(was_);
    }

  private:
    bool was_;
};

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return {};
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

} // namespace

TEST(MetricsRegistry, DisabledUpdatesAreDropped)
{
    ASSERT_FALSE(MetricsRegistry::enabled())
        << "tests assume observability defaults to off";
    auto &registry = MetricsRegistry::instance();
    const Counter c = registry.counter("test.disabled.counter");
    const Histogram h = registry.histogram("test.disabled.hist");
    const Gauge g = registry.gauge("test.disabled.gauge");
    c.add(1000);
    h.observe(42);
    g.set(7);

    const MetricsSnapshot snap = registry.scrape();
    EXPECT_EQ(snap.counters.at("test.disabled.counter"), 0u);
    EXPECT_EQ(snap.histograms.at("test.disabled.hist").count, 0u);
    EXPECT_EQ(snap.gauges.at("test.disabled.gauge"), 0);
}

TEST(MetricsRegistry, HistogramBucketMathIsBitWidth)
{
    EXPECT_EQ(histogramBucket(0), 0u);
    EXPECT_EQ(histogramBucket(1), 1u);
    EXPECT_EQ(histogramBucket(2), 2u);
    EXPECT_EQ(histogramBucket(3), 2u);
    EXPECT_EQ(histogramBucket(4), 3u);
    EXPECT_EQ(histogramBucket(1023), 10u);
    EXPECT_EQ(histogramBucket(1024), 11u);
    EXPECT_EQ(histogramBucket(UINT64_MAX), 64u);

    EXPECT_EQ(histogramBucketLo(0), 0u);
    EXPECT_EQ(histogramBucketLo(1), 0u);
    EXPECT_EQ(histogramBucketLo(2), 2u);
    EXPECT_EQ(histogramBucketLo(11), 1024u);
}

TEST(MetricsRegistry, CountersMergeAcrossThreads)
{
    MetricsOn on;
    auto &registry = MetricsRegistry::instance();
    const Counter c = registry.counter("test.merge.counter");
    const Histogram h = registry.histogram("test.merge.hist");

    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                c.inc();
                h.observe(100);
            }
        });
    for (auto &t : threads)
        t.join();

    const MetricsSnapshot snap = registry.scrape();
    EXPECT_EQ(snap.counters.at("test.merge.counter"),
              static_cast<uint64_t>(kThreads) * kPerThread);
    const auto &hist = snap.histograms.at("test.merge.hist");
    EXPECT_EQ(hist.count, static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(hist.sum, 100ull * kThreads * kPerThread);
    // 100 has bit width 7: every observation lands in bucket 7.
    EXPECT_EQ(hist.buckets[7], hist.count);
    EXPECT_DOUBLE_EQ(hist.mean(), 100.0);
}

TEST(MetricsRegistry, GaugeSetAddMax)
{
    MetricsOn on;
    auto &registry = MetricsRegistry::instance();
    const Gauge g = registry.gauge("test.gauge");
    g.set(10);
    g.add(5);
    EXPECT_EQ(registry.scrape().gauges.at("test.gauge"), 15);
    g.max(12); // below: no change
    EXPECT_EQ(registry.scrape().gauges.at("test.gauge"), 15);
    g.max(99); // above: raises
    EXPECT_EQ(registry.scrape().gauges.at("test.gauge"), 99);
    g.set(-3);
    EXPECT_EQ(registry.scrape().gauges.at("test.gauge"), -3);
}

TEST(MetricsRegistry, SameNameSameKindIsTheSameMetric)
{
    MetricsOn on;
    auto &registry = MetricsRegistry::instance();
    const Counter a = registry.counter("test.dedup");
    const Counter b = registry.counter("test.dedup");
    a.add(2);
    b.add(3);
    EXPECT_EQ(registry.scrape().counters.at("test.dedup"), 5u);
}

TEST(MetricsRegistry, KindMismatchYieldsInertHandle)
{
    MetricsOn on;
    auto &registry = MetricsRegistry::instance();
    const Counter c = registry.counter("test.kind.clash");
    ASSERT_TRUE(c.valid());
    const Histogram h = registry.histogram("test.kind.clash");
    EXPECT_FALSE(h.valid());
    h.observe(1); // must be a harmless no-op
    c.inc();
    const MetricsSnapshot snap = registry.scrape();
    EXPECT_EQ(snap.counters.at("test.kind.clash"), 1u);
    EXPECT_GE(snap.droppedRegistrations, 1u);
}

TEST(MetricsRegistry, LabelsAreScrapedAndResettable)
{
    MetricsOn on;
    auto &registry = MetricsRegistry::instance();
    registry.setLabel("test.device", "golden \"probe\\1\"");
    EXPECT_EQ(registry.scrape().labels.at("test.device"),
              "golden \"probe\\1\"");
    registry.resetValues();
    EXPECT_EQ(registry.scrape().labels.count("test.device"), 0u);
}

TEST(MetricsRegistry, JsonEscapeHandlesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
    EXPECT_EQ(jsonEscape("golden \"probe\\1\""),
              "golden \\\"probe\\\\1\\\"");
}

TEST(MetricsExport, MetricsJsonRoundTripsThroughTheFile)
{
    MetricsOn on;
    auto &registry = MetricsRegistry::instance();
    registry.counter("test.export.counter").add(0); // ensure exists
    const Counter c = registry.counter("test.export.counter");
    c.add(41);
    c.inc();
    registry.setLabel("test.export.device", "dev \"x\\y\"");

    const std::string path =
        testing::TempDir() + "metrics_export_test.json";
    std::string error;
    ASSERT_TRUE(writeMetricsJson(path, &error)) << error;

    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"test.export.counter\": 42"),
              std::string::npos)
        << text;
    // The device label must appear escaped, never verbatim.
    EXPECT_NE(text.find("dev \\\"x\\\\y\\\""), std::string::npos)
        << text;
    std::remove(path.c_str());
}

TEST(MetricsExport, UnwritablePathIsAReportedError)
{
    MetricsOn on;
    std::string error;
    EXPECT_FALSE(writeMetricsJson(
        "/nonexistent-dir-for-sure/metrics.json", &error));
    EXPECT_FALSE(error.empty());
}
