/**
 * @file
 * Tracer tests: disabled no-op, parent links across nesting, thread
 * numbering, bounded-ring rotation, and the Chrome trace JSON export.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/tracer.hpp"

using namespace emprof;
using namespace emprof::obs;

namespace {

/** Enable tracing for one test, restoring and clearing after. */
class TracingOn
{
  public:
    explicit TracingOn(std::size_t capacity = Tracer::kDefaultCapacity)
    {
        was_ = Tracer::enabled();
        Tracer::instance().resetForTest(capacity);
        Tracer::setEnabled(true);
    }
    ~TracingOn()
    {
        Tracer::setEnabled(was_);
        Tracer::instance().resetForTest();
    }

  private:
    bool was_;
};

} // namespace

TEST(Tracer, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(Tracer::enabled());
    Tracer::instance().resetForTest();
    {
        SpanScope span("test.disabled");
        EXPECT_FALSE(span.active());
    }
    EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST(Tracer, NestedSpansLinkToTheirParents)
{
    TracingOn on;
    {
        SpanScope outer("outer");
        {
            SpanScope inner("inner");
            (void)inner;
        }
        (void)outer;
    }
    const auto spans = Tracer::instance().snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Inner closes first, so it is recorded first.
    EXPECT_STREQ(spans[0].name, "inner");
    EXPECT_STREQ(spans[1].name, "outer");
    EXPECT_EQ(spans[0].parent, spans[1].id);
    EXPECT_EQ(spans[1].parent, 0u);
    EXPECT_EQ(spans[0].tid, spans[1].tid);
    // The inner interval must lie within the outer one.
    EXPECT_GE(spans[0].startNs, spans[1].startNs);
    EXPECT_LE(spans[0].startNs + spans[0].durationNs,
              spans[1].startNs + spans[1].durationNs);
}

TEST(Tracer, SiblingSpansShareAParentAndRestoreIt)
{
    TracingOn on;
    {
        SpanScope outer("outer");
        { SpanScope a("a"); (void)a; }
        { SpanScope b("b"); (void)b; }
        (void)outer;
    }
    const auto spans = Tracer::instance().snapshot();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_STREQ(spans[0].name, "a");
    EXPECT_STREQ(spans[1].name, "b");
    EXPECT_EQ(spans[0].parent, spans[2].id);
    EXPECT_EQ(spans[1].parent, spans[2].id)
        << "the second sibling must see outer restored as parent, "
           "not its closed sibling";
}

TEST(Tracer, ThreadsGetDistinctDenseNumbers)
{
    TracingOn on;
    { SpanScope here("main-thread"); (void)here; }
    std::thread other([] {
        SpanScope there("other-thread");
        (void)there;
    });
    other.join();

    const auto spans = Tracer::instance().snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_NE(spans[0].tid, spans[1].tid);
    EXPECT_GE(spans[0].tid, 1u);
    EXPECT_GE(spans[1].tid, 1u);
}

TEST(Tracer, RingIsBoundedAndKeepsTheNewestSpans)
{
    TracingOn on(8);
    EXPECT_EQ(Tracer::instance().capacity(), 8u);
    for (uint64_t i = 0; i < 20; ++i) {
        SpanRecord span;
        span.name = "filler";
        span.id = i + 1;
        span.startNs = i;
        Tracer::instance().record(span);
    }
    const auto spans = Tracer::instance().snapshot();
    ASSERT_EQ(spans.size(), 8u);
    EXPECT_EQ(Tracer::instance().droppedSpans(), 12u);
    // Oldest-first snapshot of the 8 newest records: startNs 12..19.
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].startNs, 12 + i);
}

TEST(Tracer, TraceJsonIsChromeLoadable)
{
    TracingOn on;
    {
        SpanScope outer("tool.test");
        { SpanScope inner("stage.inner"); (void)inner; }
        (void)outer;
    }
    const std::string json = traceToJson();
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"tool.test\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);

    const std::string path = testing::TempDir() + "trace_test.json";
    std::string error;
    ASSERT_TRUE(writeTraceJson(path, &error)) << error;
    std::remove(path.c_str());
}
