/**
 * @file
 * Tests for the strict CLI numeric parsers, with death tests for the
 * exit-2 rejection paths (the parsers call std::exit by design — the
 * tools use them straight off argv before anything is open).
 *
 * The size-suffix cases pin the bugfix for case-insensitive suffixes:
 * "64mi" and "64KI" are 64 MiB / 64 KiB like their canonical
 * spellings, while a trailing lowercase 'b' ("64Kib", "64kb") is a
 * bits-vs-bytes typo and must be rejected with a pointed message, not
 * silently read as bytes.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "../../tools/cli_parse.hpp"

using namespace emprof::tools;

namespace {
constexpr uint64_t kNoMax = UINT64_MAX;
}

TEST(CliParseSize, PlainBytesAndCanonicalSuffixes)
{
    EXPECT_EQ(parseSizeFlag("--x", "4096", 0, kNoMax), 4096u);
    EXPECT_EQ(parseSizeFlag("--x", "64Ki", 0, kNoMax),
              uint64_t{64} << 10);
    EXPECT_EQ(parseSizeFlag("--x", "64KiB", 0, kNoMax),
              uint64_t{64} << 10);
    EXPECT_EQ(parseSizeFlag("--x", "2Mi", 0, kNoMax),
              uint64_t{2} << 20);
    EXPECT_EQ(parseSizeFlag("--x", "1Gi", 0, kNoMax),
              uint64_t{1} << 30);
    EXPECT_EQ(parseSizeFlag("--x", "64K", 0, kNoMax), 64000u);
    EXPECT_EQ(parseSizeFlag("--x", "64KB", 0, kNoMax), 64000u);
    EXPECT_EQ(parseSizeFlag("--x", "3M", 0, kNoMax), 3000000u);
    EXPECT_EQ(parseSizeFlag("--x", "2G", 0, kNoMax), 2000000000u);
}

TEST(CliParseSize, SuffixLettersAreCaseInsensitive)
{
    EXPECT_EQ(parseSizeFlag("--x", "64ki", 0, kNoMax),
              uint64_t{64} << 10);
    EXPECT_EQ(parseSizeFlag("--x", "64KI", 0, kNoMax),
              uint64_t{64} << 10);
    EXPECT_EQ(parseSizeFlag("--x", "64kI", 0, kNoMax),
              uint64_t{64} << 10);
    EXPECT_EQ(parseSizeFlag("--x", "8mi", 0, kNoMax),
              uint64_t{8} << 20);
    EXPECT_EQ(parseSizeFlag("--x", "8MI", 0, kNoMax),
              uint64_t{8} << 20);
    EXPECT_EQ(parseSizeFlag("--x", "1gi", 0, kNoMax),
              uint64_t{1} << 30);
    EXPECT_EQ(parseSizeFlag("--x", "64k", 0, kNoMax), 64000u);
    EXPECT_EQ(parseSizeFlag("--x", "3m", 0, kNoMax), 3000000u);
    EXPECT_EQ(parseSizeFlag("--x", "2g", 0, kNoMax), 2000000000u);
    EXPECT_EQ(parseSizeFlag("--x", "64kiB", 0, kNoMax),
              uint64_t{64} << 10);
}

TEST(CliParseSizeDeath, LowercaseBIsRejectedAsBitsTypo)
{
    EXPECT_EXIT(parseSizeFlag("--x", "64Kib", 0, kNoMax),
                testing::ExitedWithCode(2),
                "lowercase 'b' reads as bits");
    EXPECT_EXIT(parseSizeFlag("--x", "64kib", 0, kNoMax),
                testing::ExitedWithCode(2),
                "lowercase 'b' reads as bits");
    EXPECT_EXIT(parseSizeFlag("--x", "8Mib", 0, kNoMax),
                testing::ExitedWithCode(2),
                "lowercase 'b' reads as bits");
    EXPECT_EXIT(parseSizeFlag("--x", "64kb", 0, kNoMax),
                testing::ExitedWithCode(2),
                "lowercase 'b' reads as bits");
}

TEST(CliParseSizeDeath, GarbageAndRangeViolationsExitTwo)
{
    EXPECT_EXIT(parseSizeFlag("--x", "junk", 0, kNoMax),
                testing::ExitedWithCode(2), "not a size");
    EXPECT_EXIT(parseSizeFlag("--x", "64X", 0, kNoMax),
                testing::ExitedWithCode(2), "unknown size suffix");
    EXPECT_EXIT(parseSizeFlag("--x", "64KiBs", 0, kNoMax),
                testing::ExitedWithCode(2), "unknown size suffix");
    EXPECT_EXIT(parseSizeFlag("--x", "-1", 0, kNoMax),
                testing::ExitedWithCode(2), "unsigned");
    EXPECT_EXIT(parseSizeFlag("--x", "", 0, kNoMax),
                testing::ExitedWithCode(2), "empty");
    EXPECT_EXIT(parseSizeFlag("--x", "999Gi", 0, 1024),
                testing::ExitedWithCode(2), "outside the accepted");
    EXPECT_EXIT(parseSizeFlag("--x", "99999999999Gi", 0, kNoMax),
                testing::ExitedWithCode(2), "overflows");
}

TEST(CliParseNumeric, DoubleU64AndDurationRoundTrip)
{
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--x", "2.5", 0.0, 10.0), 2.5);
    EXPECT_EQ(parseU64Flag("--x", "42", 0, 100), 42u);
    EXPECT_DOUBLE_EQ(parseDurationFlag("--x", "250ms", 0.0, 10.0),
                     0.25);
    EXPECT_DOUBLE_EQ(parseDurationFlag("--x", "2m", 0.0, 1000.0),
                     120.0);
    EXPECT_DOUBLE_EQ(parseDurationFlag("--x", "30", 0.0, 100.0), 30.0);
}

TEST(CliParseNumericDeath, StrictRejection)
{
    EXPECT_EXIT(parseDoubleFlag("--x", "1.5x", 0.0, 10.0),
                testing::ExitedWithCode(2), "not a number");
    EXPECT_EXIT(parseU64Flag("--x", "12.5", 0, 100),
                testing::ExitedWithCode(2), "not an unsigned");
    EXPECT_EXIT(parseDurationFlag("--x", "5h", 0.0, 1e9),
                testing::ExitedWithCode(2), "unknown duration");
}
