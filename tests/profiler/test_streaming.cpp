/**
 * @file
 * Tests for the streaming/extension features: live event callbacks,
 * chunked-delivery equivalence, and per-region dominant-frequency
 * estimation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/rng.hpp"
#include "profiler/attribution.hpp"
#include "profiler/naive_threshold.hpp"
#include "profiler/profiler.hpp"

namespace emprof::profiler {
namespace {

dsp::TimeSeries
signalWithDips(std::size_t total, std::size_t num_dips)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(3);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    for (std::size_t d = 0; d < num_dips; ++d) {
        const std::size_t start = 500 + d * (total - 1000) / num_dips;
        for (std::size_t i = start; i < start + 8; ++i)
            s.samples[i] = 0.2f;
    }
    return s;
}

EmProfConfig
testConfig()
{
    EmProfConfig cfg;
    cfg.clockHz = 1e9;
    cfg.sampleRateHz = 40e6;
    cfg.normWindowSeconds = 20e-6;
    return cfg;
}

TEST(Streaming, CallbackFiresOncePerEvent)
{
    const auto sig = signalWithDips(20000, 25);
    EmProf prof(testConfig());
    std::size_t fired = 0;
    uint64_t last_end = 0;
    prof.onEvent([&](const StallEvent &ev) {
        ++fired;
        EXPECT_GE(ev.startSample, last_end);
        last_end = ev.endSample;
        EXPECT_GT(ev.stallCycles, 0.0);
    });
    for (float x : sig.samples)
        prof.push(x);
    const auto result = prof.finish();
    EXPECT_EQ(fired, 25u);
    EXPECT_EQ(result.events.size(), 25u);
}

TEST(Streaming, CallbackSeesClassifiedKind)
{
    // One long (refresh-class) dip among short ones.
    auto sig = signalWithDips(20000, 5);
    for (std::size_t i = 10000; i < 10100; ++i)
        sig.samples[i] = 0.2f; // 2.5 us
    EmProf prof(testConfig());
    std::size_t refresh_seen = 0;
    prof.onEvent([&](const StallEvent &ev) {
        refresh_seen += ev.kind == StallKind::RefreshCoincident;
    });
    for (float x : sig.samples)
        prof.push(x);
    prof.finish();
    EXPECT_EQ(refresh_seen, 1u);
}

TEST(Streaming, ChunkedDeliveryMatchesWholeSignal)
{
    // Delivering the signal in arbitrary chunk sizes (as an SDR driver
    // would) must not change the result.
    const auto sig = signalWithDips(30000, 40);
    const auto whole = EmProf::analyze(sig, testConfig());

    EmProf prof(testConfig());
    std::size_t pos = 0;
    dsp::Rng rng(11);
    while (pos < sig.samples.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng.below(700),
                                  sig.samples.size() - pos);
        for (std::size_t i = 0; i < chunk; ++i)
            prof.push(sig.samples[pos + i]);
        pos += chunk;
    }
    const auto chunked = prof.finish();

    ASSERT_EQ(chunked.events.size(), whole.events.size());
    for (std::size_t i = 0; i < whole.events.size(); ++i) {
        EXPECT_EQ(chunked.events[i].startSample,
                  whole.events[i].startSample);
        EXPECT_EQ(chunked.events[i].endSample,
                  whole.events[i].endSample);
    }
}

TEST(Attribution, DominantFrequencyTracksLoopRate)
{
    // Two regions with loop periodicities of 25 kHz and 160 kHz.
    dsp::TimeSeries s;
    s.sampleRateHz = 1e6;
    dsp::Rng rng(5);
    auto add_tone = [&](double hz, std::size_t n) {
        const std::size_t start = s.samples.size();
        for (std::size_t i = 0; i < n; ++i) {
            const double t =
                static_cast<double>(start + i) / s.sampleRateHz;
            s.samples.push_back(static_cast<float>(
                1.0 + 0.3 * std::sin(2.0 * std::numbers::pi * hz * t) +
                0.02 * (rng.uniform() - 0.5)));
        }
    };
    add_tone(25e3, 50000);
    add_tone(160e3, 50000);

    AttributionConfig cfg;
    cfg.stft.frameSize = 512;
    cfg.stft.hop = 256;
    cfg.smoothFrames = 4;
    cfg.minRegionFrames = 8;
    SpectralAttributor attributor(cfg);
    const auto regions = attributor.segment(s);
    ASSERT_EQ(regions.size(), 2u);

    const double bin_width = 1e6 / 512.0;
    EXPECT_NEAR(regions[0].dominantFrequencyHz, 25e3, bin_width + 1.0);
    EXPECT_NEAR(regions[1].dominantFrequencyHz, 160e3, bin_width + 1.0);
}

TEST(NaiveThreshold, MatchesEmprofOnStationarySignal)
{
    const auto sig = signalWithDips(20000, 25);
    NaiveThresholdConfig cfg;
    cfg.clockHz = 1e9;
    cfg.threshold = calibrateNaiveThreshold(sig, 2000);
    const auto events = naiveDetect(sig, cfg);
    EXPECT_EQ(events.size(), 25u);
}

TEST(NaiveThreshold, BreaksUnderGainDriftWhileEmprofDoesNot)
{
    // Scale the signal by a slow ramp (probe drifting away): the
    // fixed threshold calibrated at the start ends up above the busy
    // level near the end, while EMPROF's normalisation tracks it.
    auto sig = signalWithDips(40000, 50);
    for (std::size_t i = 0; i < sig.samples.size(); ++i) {
        const float gain = 1.0f - 0.7f * static_cast<float>(i) /
                                      static_cast<float>(
                                          sig.samples.size());
        sig.samples[i] *= gain;
    }

    NaiveThresholdConfig cfg;
    cfg.clockHz = 1e9;
    cfg.threshold = calibrateNaiveThreshold(sig, 2000);
    const auto naive = naiveDetect(sig, cfg);

    // True stall time: 50 dips x 8 samples.
    const double true_stall_samples = 50.0 * 8.0;
    double naive_stall_samples = 0.0;
    for (const auto &ev : naive)
        naive_stall_samples +=
            static_cast<double>(ev.durationSamples());
    // Once the drifting busy level sinks below the fixed threshold,
    // the tail of the run is reported as one giant stall: the
    // reported stall time explodes by an order of magnitude.
    EXPECT_GT(naive_stall_samples, 10.0 * true_stall_samples);

    auto em_cfg = testConfig();
    em_cfg.normWindowSeconds = 50e-6;
    const auto emprof = EmProf::analyze(sig, em_cfg);
    EXPECT_NEAR(static_cast<double>(emprof.report.totalEvents), 50.0,
                2.0);
    double emprof_stall_samples = 0.0;
    for (const auto &ev : emprof.events)
        emprof_stall_samples +=
            static_cast<double>(ev.durationSamples());
    EXPECT_NEAR(emprof_stall_samples, true_stall_samples,
                0.25 * true_stall_samples);
}

TEST(NaiveThreshold, CalibrationHandlesEmptySignal)
{
    dsp::TimeSeries empty;
    empty.sampleRateHz = 1e6;
    EXPECT_DOUBLE_EQ(calibrateNaiveThreshold(empty, 100), 0.0);
}

} // namespace
} // namespace emprof::profiler
