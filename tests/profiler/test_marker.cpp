/**
 * @file
 * Unit tests for marker-loop section isolation.
 */

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "profiler/marker.hpp"

namespace emprof::profiler {
namespace {

/**
 * Build a microbenchmark-shaped signal: noisy startup, stable marker,
 * dip-rich measured section, stable marker, noisy teardown.
 */
dsp::TimeSeries
benchShape(std::size_t marker_len, std::size_t section_len)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    dsp::Rng rng(3);
    auto noisy = [&](std::size_t n, double level, double spread) {
        for (std::size_t i = 0; i < n; ++i)
            s.samples.push_back(static_cast<float>(
                level + spread * (rng.uniform() - 0.5)));
    };
    noisy(3000, 0.8, 0.5);           // startup
    noisy(marker_len, 1.0, 0.02);    // marker 1
    for (std::size_t i = 0; i < section_len; ++i) {
        const bool dip = (i % 40) < 8;
        s.samples.push_back(static_cast<float>(
            (dip ? 0.2 : 0.95) + 0.04 * (rng.uniform() - 0.5)));
    }
    noisy(marker_len, 1.0, 0.02);    // marker 2
    noisy(3000, 0.8, 0.5);           // teardown
    return s;
}

TEST(Marker, FindsBothMarkersAndTheSectionBetween)
{
    const std::size_t marker_len = 4000, section_len = 8000;
    const auto sig = benchShape(marker_len, section_len);
    const auto sections = findMarkerSections(sig);
    ASSERT_GE(sections.markers.size(), 2u);
    ASSERT_FALSE(sections.measured.empty());

    // The measured interval must cover the dip-rich middle.
    const uint64_t section_start = 3000 + marker_len;
    const uint64_t section_end = section_start + section_len;
    EXPECT_NEAR(static_cast<double>(sections.measured.begin),
                static_cast<double>(section_start), 300.0);
    EXPECT_NEAR(static_cast<double>(sections.measured.end),
                static_cast<double>(section_end), 300.0);
}

TEST(Marker, NoMarkersInPureNoise)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    dsp::Rng rng(9);
    for (int i = 0; i < 20000; ++i)
        s.samples.push_back(static_cast<float>(0.5 + 0.8 * rng.uniform()));
    const auto sections = findMarkerSections(s);
    EXPECT_LT(sections.markers.size(), 2u);
}

TEST(Marker, SingleMarkerYieldsNoMeasuredSection)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    dsp::Rng rng(11);
    for (int i = 0; i < 5000; ++i)
        s.samples.push_back(static_cast<float>(0.5 + 0.8 * rng.uniform()));
    for (int i = 0; i < 4000; ++i)
        s.samples.push_back(1.0f);
    for (int i = 0; i < 5000; ++i)
        s.samples.push_back(static_cast<float>(0.5 + 0.8 * rng.uniform()));
    const auto sections = findMarkerSections(s);
    EXPECT_TRUE(sections.measured.empty());
}

TEST(Marker, MinBlocksFiltersShortStableRuns)
{
    MarkerConfig cfg;
    cfg.minBlocks = 100; // demand very long markers
    const auto sig = benchShape(2000, 4000); // markers ~31 blocks
    const auto sections = findMarkerSections(sig, cfg);
    EXPECT_LT(sections.markers.size(), 2u);
}

TEST(Marker, SliceExtractsInterval)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1000.0;
    for (int i = 0; i < 100; ++i)
        s.samples.push_back(static_cast<float>(i));
    const auto cut = slice(s, {10, 20});
    ASSERT_EQ(cut.samples.size(), 10u);
    EXPECT_FLOAT_EQ(cut.samples[0], 10.0f);
    EXPECT_FLOAT_EQ(cut.samples[9], 19.0f);
    EXPECT_DOUBLE_EQ(cut.sampleRateHz, 1000.0);
}

TEST(Marker, SliceClampsOutOfRange)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1000.0;
    s.samples.assign(50, 1.0f);
    const auto cut = slice(s, {40, 200});
    EXPECT_EQ(cut.samples.size(), 10u);
}

} // namespace
} // namespace emprof::profiler
