/**
 * @file
 * Unit tests for the EMPROF facade.
 */

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "profiler/profiler.hpp"

namespace emprof::profiler {
namespace {

/** Synthesise a magnitude signal with planted stalls. */
dsp::TimeSeries
makeSignal(double rate_hz, const std::vector<std::pair<std::size_t,
                                                       std::size_t>> &dips,
           std::size_t total, double busy = 1.0, double stall = 0.2)
{
    dsp::TimeSeries s;
    s.sampleRateHz = rate_hz;
    s.samples.assign(total, static_cast<float>(busy));
    dsp::Rng rng(5);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    for (const auto &[start, len] : dips) {
        for (std::size_t i = start; i < start + len && i < total; ++i)
            s.samples[i] = static_cast<float>(stall);
    }
    return s;
}

EmProfConfig
testConfig(double rate = 40e6)
{
    EmProfConfig cfg;
    cfg.clockHz = 1e9;
    cfg.sampleRateHz = rate;
    cfg.normWindowSeconds = 20e-6;
    return cfg;
}

TEST(EmProf, DetectsPlantedStallsWithCorrectDurations)
{
    // 10 dips of 8 samples each at 40 MHz = 200 ns = 200 cycles.
    std::vector<std::pair<std::size_t, std::size_t>> dips;
    for (std::size_t i = 0; i < 10; ++i)
        dips.push_back({1000 + i * 100, 8});
    const auto sig = makeSignal(40e6, dips, 5000);
    const auto result = EmProf::analyze(sig, testConfig());
    ASSERT_EQ(result.report.totalEvents, 10u);
    for (const auto &ev : result.events) {
        EXPECT_NEAR(ev.durationNs, 200.0, 1e-6);
        EXPECT_NEAR(ev.stallCycles, 200.0, 1e-6);
        EXPECT_EQ(ev.kind, StallKind::LlcMiss);
    }
}

TEST(EmProf, ClassifiesRefreshCoincidentStalls)
{
    // One 2.5 us stall among ordinary 200 ns stalls.
    std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {1000, 8}, {2000, 100}, {4000, 8}}; // 100 samples = 2.5 us
    const auto sig = makeSignal(40e6, dips, 8000);
    const auto result = EmProf::analyze(sig, testConfig());
    ASSERT_EQ(result.report.totalEvents, 3u);
    EXPECT_EQ(result.report.refreshEvents, 1u);
    EXPECT_EQ(result.report.missEvents, 2u);
}

TEST(EmProf, DurationThresholdRejectsOnChipStalls)
{
    // 1-sample dips (25 ns) are below the 60 ns threshold.
    std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {1000, 1}, {1100, 1}, {1200, 8}};
    const auto sig = makeSignal(40e6, dips, 3000);
    const auto result = EmProf::analyze(sig, testConfig());
    EXPECT_EQ(result.report.totalEvents, 1u);
}

TEST(EmProf, ReportPercentagesAddUp)
{
    std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {1000, 40}, {3000, 40}};
    const auto sig = makeSignal(40e6, dips, 10000);
    const auto result = EmProf::analyze(sig, testConfig());
    // 80 of 10000 samples stalled -> 0.8 %.
    EXPECT_NEAR(result.report.stallPercent, 0.8, 0.05);
    EXPECT_NEAR(result.report.executionCycles, 250000.0, 1.0);
}

TEST(EmProf, StreamingMatchesBatch)
{
    std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {500, 8}, {900, 12}, {1500, 6}};
    const auto sig = makeSignal(40e6, dips, 3000);

    const auto batch = EmProf::analyze(sig, testConfig());

    EmProfConfig cfg = testConfig();
    EmProf streaming(cfg);
    for (float x : sig.samples)
        streaming.push(x);
    const auto stream_result = streaming.finish();

    ASSERT_EQ(batch.events.size(), stream_result.events.size());
    for (std::size_t i = 0; i < batch.events.size(); ++i) {
        EXPECT_EQ(batch.events[i].startSample,
                  stream_result.events[i].startSample);
        EXPECT_EQ(batch.events[i].endSample,
                  stream_result.events[i].endSample);
    }
}

TEST(EmProf, AnalyzeUsesSeriesSampleRate)
{
    // Same dip, half the sample rate -> twice the reported cycles.
    std::vector<std::pair<std::size_t, std::size_t>> dips = {{1000, 8}};
    auto sig = makeSignal(20e6, dips, 3000);
    const auto result = EmProf::analyze(sig, testConfig(40e6));
    ASSERT_EQ(result.events.size(), 1u);
    EXPECT_NEAR(result.events[0].stallCycles, 400.0, 1e-6);
}

TEST(EmProf, LatencyStatisticsOrdered)
{
    std::vector<std::pair<std::size_t, std::size_t>> dips;
    dsp::Rng rng(17);
    std::size_t pos = 500;
    for (int i = 0; i < 200; ++i) {
        dips.push_back({pos, 4 + rng.below(20)});
        pos += 150;
    }
    const auto sig = makeSignal(40e6, dips, pos + 500);
    const auto result = EmProf::analyze(sig, testConfig());
    const auto &r = result.report;
    EXPECT_LE(r.medianStallCycles, r.p95StallCycles);
    EXPECT_LE(r.p95StallCycles, r.p99StallCycles);
    EXPECT_LE(r.p99StallCycles, r.maxStallCycles);
    EXPECT_GT(r.avgStallCycles, 0.0);
}

TEST(EmProf, ConfigDerivedQuantities)
{
    EmProfConfig cfg;
    cfg.sampleRateHz = 40e6;
    cfg.normWindowSeconds = 1e-3;
    cfg.minStallNs = 60.0;
    EXPECT_EQ(cfg.normWindowSamples(), 40000u);
    // The noise-robustness floor dominates at low sample rates...
    EXPECT_EQ(cfg.minDurationSamples(), cfg.minDurationFloorSamples);
    // ...and the nanosecond threshold dominates at high ones.
    cfg.sampleRateHz = 160e6;
    EXPECT_EQ(cfg.minDurationSamples(), 10u);
    cfg.minDurationFloorSamples = 1;
    cfg.sampleRateHz = 40e6;
    EXPECT_EQ(cfg.minDurationSamples(), 2u);
}

TEST(EmProf, ReportTextContainsHeadlineNumbers)
{
    std::vector<std::pair<std::size_t, std::size_t>> dips = {{1000, 10}};
    const auto sig = makeSignal(40e6, dips, 3000);
    const auto result = EmProf::analyze(sig, testConfig());
    const auto text = result.report.toText("title-line");
    EXPECT_NE(text.find("title-line"), std::string::npos);
    EXPECT_NE(text.find("events: 1"), std::string::npos);
}

TEST(LatencyHistogram, BinsEvents)
{
    std::vector<StallEvent> events(3);
    events[0].stallCycles = 50;
    events[1].stallCycles = 500;
    events[2].stallCycles = 5000;
    const auto hist = latencyHistogram(events, 20.0, 20000.0, 10);
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_EQ(hist.underflow() + hist.overflow(), 0u);
}

} // namespace
} // namespace emprof::profiler
