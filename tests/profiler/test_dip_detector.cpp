/**
 * @file
 * Unit and property tests for the dip detector.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/rng.hpp"
#include "profiler/dip_detector.hpp"

namespace emprof::profiler {
namespace {

DipDetectorConfig
testConfig(uint64_t min_dur = 2)
{
    DipDetectorConfig cfg;
    cfg.enterThreshold = 0.25;
    cfg.exitThreshold = 0.40;
    cfg.minDurationSamples = min_dur;
    return cfg;
}

/** Run a normalised sequence through the detector; collect events. */
std::vector<StallEvent>
detect(const std::vector<double> &signal, DipDetectorConfig cfg)
{
    DipDetector det(cfg);
    std::vector<StallEvent> events;
    StallEvent ev;
    for (double x : signal) {
        if (det.push(x, ev))
            events.push_back(ev);
    }
    if (det.finish(ev))
        events.push_back(ev);
    return events;
}

TEST(DipDetector, FindsSingleDip)
{
    std::vector<double> sig(100, 1.0);
    for (int i = 40; i < 50; ++i)
        sig[i] = 0.05;
    const auto events = detect(sig, testConfig());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].startSample, 40u);
    EXPECT_EQ(events[0].endSample, 49u);
    EXPECT_EQ(events[0].durationSamples(), 10u);
    EXPECT_NEAR(events[0].depth, 0.05, 1e-9);
}

TEST(DipDetector, RejectsShortDips)
{
    std::vector<double> sig(100, 1.0);
    sig[50] = 0.0; // 1-sample glitch
    const auto events = detect(sig, testConfig(2));
    EXPECT_TRUE(events.empty());
}

TEST(DipDetector, HysteresisBridgesEdgeNoise)
{
    std::vector<double> sig(100, 1.0);
    // Dip with a mid-level (between thresholds) excursion inside.
    for (int i = 40; i < 60; ++i)
        sig[i] = 0.05;
    sig[50] = 0.32; // above enter, below exit: must not split
    const auto events = detect(sig, testConfig());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].durationSamples(), 20u);
}

TEST(DipDetector, CleanGapSplitsDips)
{
    std::vector<double> sig(100, 1.0);
    for (int i = 30; i < 40; ++i)
        sig[i] = 0.05;
    for (int i = 45; i < 55; ++i)
        sig[i] = 0.05;
    const auto events = detect(sig, testConfig());
    EXPECT_EQ(events.size(), 2u);
}

TEST(DipDetector, TrailingDipEmittedByFinish)
{
    std::vector<double> sig(50, 1.0);
    for (int i = 40; i < 50; ++i)
        sig[i] = 0.1;
    const auto events = detect(sig, testConfig());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].endSample, 49u);
}

TEST(DipDetector, NoDipsInCleanSignal)
{
    std::vector<double> sig(1000, 0.9);
    EXPECT_TRUE(detect(sig, testConfig()).empty());
}

struct PlantedCase
{
    std::size_t num_dips;
    std::size_t dip_len;
    std::size_t gap;
};

class PlantedDips : public ::testing::TestWithParam<PlantedCase>
{};

TEST_P(PlantedDips, DetectsExactlyThePlantedCount)
{
    const auto param = GetParam();
    std::vector<double> sig;
    dsp::Rng rng(99);
    auto busy = [&] { return 0.85 + 0.1 * rng.uniform(); };
    auto stall = [&] { return 0.02 + 0.05 * rng.uniform(); };

    for (std::size_t i = 0; i < 20; ++i)
        sig.push_back(busy());
    for (std::size_t d = 0; d < param.num_dips; ++d) {
        for (std::size_t i = 0; i < param.dip_len; ++i)
            sig.push_back(stall());
        for (std::size_t i = 0; i < param.gap; ++i)
            sig.push_back(busy());
    }
    const auto events = detect(sig, testConfig());
    EXPECT_EQ(events.size(), param.num_dips);
    for (const auto &ev : events)
        EXPECT_EQ(ev.durationSamples(), param.dip_len);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedDips,
    ::testing::Values(PlantedCase{1, 4, 10}, PlantedCase{10, 2, 3},
                      PlantedCase{100, 8, 5}, PlantedCase{256, 12, 2},
                      PlantedCase{50, 3, 20}, PlantedCase{1000, 2, 2}));

TEST(DipDetector, CountsSamplesSeen)
{
    DipDetector det(testConfig());
    StallEvent ev;
    for (int i = 0; i < 123; ++i)
        det.push(1.0, ev);
    EXPECT_EQ(det.samplesSeen(), 123u);
}

TEST(DipDetector, DepthIsMeanOfDipSamples)
{
    std::vector<double> sig(30, 1.0);
    sig[10] = 0.1;
    sig[11] = 0.2;
    sig[12] = 0.0;
    const auto events = detect(sig, testConfig());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_NEAR(events[0].depth, 0.1, 1e-9);
}

// --- threshold boundary semantics -----------------------------------
//
// The comparisons are strict in both directions: a sample exactly AT
// enterThreshold does not open a dip, and a sample exactly AT
// exitThreshold does not close one.  These are locked down because the
// parallel stitcher replays prefixes assuming exactly these semantics;
// an off-by-one here silently desynchronises streaming and parallel
// results.

TEST(DipDetector, SampleExactlyAtEnterThresholdDoesNotEnter)
{
    const auto cfg = testConfig();
    std::vector<double> sig(40, 1.0);
    for (int i = 10; i < 20; ++i)
        sig[i] = cfg.enterThreshold; // == enter: strictly-below required
    EXPECT_TRUE(detect(sig, cfg).empty());

    // One ulp below the threshold does enter.
    std::vector<double> below(40, 1.0);
    for (int i = 10; i < 20; ++i)
        below[i] = std::nextafter(cfg.enterThreshold, 0.0);
    EXPECT_EQ(detect(below, cfg).size(), 1u);
}

TEST(DipDetector, SampleExactlyAtExitThresholdStaysInDip)
{
    const auto cfg = testConfig();
    std::vector<double> sig(40, 1.0);
    for (int i = 10; i < 14; ++i)
        sig[i] = 0.05;
    // Samples at exactly exitThreshold must extend the dip, not end it.
    for (int i = 14; i < 18; ++i)
        sig[i] = cfg.exitThreshold;
    const auto events = detect(sig, cfg);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].startSample, 10u);
    EXPECT_EQ(events[0].endSample, 17u); // last ==exit sample included

    // One ulp above exit closes the dip at the previous sample.
    std::vector<double> above(40, 1.0);
    for (int i = 10; i < 14; ++i)
        above[i] = 0.05;
    above[14] = std::nextafter(cfg.exitThreshold, 1.0);
    const auto closed = detect(above, cfg);
    ASSERT_EQ(closed.size(), 1u);
    EXPECT_EQ(closed[0].endSample, 13u);
}

TEST(DipDetector, BackToBackDipsWithOneRecoverySample)
{
    // A single above-exit sample between two dips must yield two
    // events, not one bridged event.
    std::vector<double> sig(40, 1.0);
    for (int i = 10; i < 15; ++i)
        sig[i] = 0.05;
    sig[15] = 0.9;
    for (int i = 16; i < 21; ++i)
        sig[i] = 0.05;
    const auto events = detect(sig, testConfig());
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].startSample, 10u);
    EXPECT_EQ(events[0].endSample, 14u);
    EXPECT_EQ(events[1].startSample, 16u);
    EXPECT_EQ(events[1].endSample, 20u);
}

TEST(DipDetector, OpenDipAtStreamEndRespectsMinDuration)
{
    // finish() applies the same duration floor as a closed dip: an
    // open dip one sample short of the floor is dropped, one exactly
    // at the floor is emitted.
    const uint64_t min_dur = 4;
    std::vector<double> short_dip(20, 1.0);
    for (std::size_t i = 17; i < 20; ++i)
        short_dip[i] = 0.05; // 3 samples, floor is 4
    EXPECT_TRUE(detect(short_dip, testConfig(min_dur)).empty());

    std::vector<double> exact(20, 1.0);
    for (std::size_t i = 16; i < 20; ++i)
        exact[i] = 0.05; // exactly 4 samples
    const auto events = detect(exact, testConfig(min_dur));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].startSample, 16u);
    EXPECT_EQ(events[0].endSample, 19u);
}

} // namespace
} // namespace emprof::profiler
