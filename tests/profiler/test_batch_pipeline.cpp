/**
 * @file
 * Bit-parity tests for the AVX2 batch analysis kernel against the
 * streaming per-chunk reference (see batch_pipeline.hpp for the
 * contract).  Every comparison here is exact — same events, same
 * double-precision normalised values, same accumulator contents — over
 * adversarial window sizes (tiny, odd, prime, vector-width straddling),
 * chunk geometries (no halo, partial halo, full halo, unaligned
 * lengths), and both analysis paths (classic and resilient).
 *
 * The AVX2-specific tests skip on hardware without AVX2 or when
 * EMPROF_SIMD=scalar / EMPROF_DISABLE_SIMD disables the kernel; the
 * end-to-end equivalence tests run everywhere (they then exercise the
 * streaming fallback against itself, which must also hold).
 */

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/batch_minmax.hpp"
#include "profiler/batch_pipeline.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"

namespace emprof::profiler {
namespace {

bool
batchKernelAvailable()
{
#if defined(EMPROF_DISABLE_SIMD)
    return false;
#else
    return batchPipelineActive();
#endif
}

/** Config with an exact normalisation window of @p w samples. */
EmProfConfig
configWithWindow(std::size_t w)
{
    EmProfConfig config;
    config.sampleRateHz = 1e6;
    // Half-sample nudge so the seconds -> samples truncation can't
    // round down through double rounding.
    config.normWindowSeconds = (static_cast<double>(w) + 0.5) * 1e-6;
    EXPECT_EQ(config.normWindowSamples(), std::max<std::size_t>(w, 2));
    return config;
}

/**
 * Noisy busy level with planted dips every ~150 samples, plus flat and
 * zero stretches so the quality classifier sees every branch.
 */
std::vector<dsp::Sample>
makeSignal(std::size_t n, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> noise(-0.01f, 0.01f);
    std::uniform_int_distribution<int> gap(40, 160);
    std::uniform_int_distribution<int> len(2, 20);

    std::vector<dsp::Sample> x(n, 1.0f);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = 1.0f + noise(rng);
    std::size_t pos = 25;
    while (pos < n) {
        const std::size_t dipLen =
            std::min<std::size_t>(static_cast<std::size_t>(len(rng)),
                                  n - pos);
        for (std::size_t k = 0; k < dipLen; ++k)
            x[pos + k] = 0.2f + noise(rng);
        pos += dipLen + static_cast<std::size_t>(gap(rng));
    }
    // A flat shelf (repeats) and a dead stretch (zeros) if they fit.
    for (std::size_t i = n / 2; i < std::min(n / 2 + 9, n); ++i)
        x[i] = 0.75f;
    for (std::size_t i = 2 * n / 3; i < std::min(2 * n / 3 + 7, n); ++i)
        x[i] = 0.0f;
    return x;
}

void
expectSameResult(const ChunkResult &a, const ChunkResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.begin, b.begin);
    EXPECT_EQ(a.end, b.end);

    ASSERT_EQ(a.prefixNorms.size(), b.prefixNorms.size());
    for (std::size_t i = 0; i < a.prefixNorms.size(); ++i)
        EXPECT_EQ(a.prefixNorms[i], b.prefixNorms[i]) << "prefix " << i;

    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].startSample, b.events[i].startSample)
            << "event " << i;
        EXPECT_EQ(a.events[i].endSample, b.events[i].endSample)
            << "event " << i;
        EXPECT_EQ(a.events[i].depth, b.events[i].depth) << "event " << i;
    }

    EXPECT_EQ(a.open.inDip, b.open.inDip);
    EXPECT_EQ(a.open.start, b.open.start);
    EXPECT_EQ(a.open.lastBelowExit, b.open.lastBelowExit);
    EXPECT_EQ(a.open.depthSum, b.open.depthSum);
    EXPECT_EQ(a.open.depthCount, b.open.depthCount);

    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        const auto &ba = a.blocks[i];
        const auto &bb = b.blocks[i];
        EXPECT_EQ(ba.begin, bb.begin) << "block " << i;
        EXPECT_EQ(ba.end, bb.end) << "block " << i;
        EXPECT_EQ(ba.samplesAtMax, bb.samplesAtMax) << "block " << i;
        EXPECT_EQ(ba.zeroSamples, bb.zeroSamples) << "block " << i;
        EXPECT_EQ(ba.repeatSamples, bb.repeatSamples) << "block " << i;
        EXPECT_EQ(ba.minValue, bb.minValue) << "block " << i;
        EXPECT_EQ(ba.maxValue, bb.maxValue) << "block " << i;
        EXPECT_EQ(ba.mean, bb.mean) << "block " << i;
        EXPECT_EQ(ba.noiseSigma, bb.noiseSigma) << "block " << i;
        EXPECT_EQ(ba.snrDb, bb.snrDb) << "block " << i;
        EXPECT_EQ(ba.cls, bb.cls) << "block " << i;
    }
}

#if !defined(EMPROF_DISABLE_SIMD)
void
compareChunk(const std::vector<dsp::Sample> &x, uint64_t begin,
             uint64_t end, bool is_final, const EmProfConfig &config,
             const std::string &what)
{
    const ChunkResult ref = detail::analyzeChunkStreaming(
        x.data(), 0, begin, end, is_final, config);
    const ChunkResult simd = detail::analyzeChunkBatchAvx2(
        x.data(), 0, begin, end, is_final, config, /*fastMath=*/false);
    expectSameResult(ref, simd, what);
}

TEST(BatchPipeline, ClassicChunkBitParityAcrossWindows)
{
    if (!batchKernelAvailable())
        GTEST_SKIP() << "AVX2 batch kernel not active";

    const auto x = makeSignal(6000, 0xca97);
    for (std::size_t w :
         {std::size_t{2}, std::size_t{3}, std::size_t{5}, std::size_t{7},
          std::size_t{8}, std::size_t{9}, std::size_t{16},
          std::size_t{17}, std::size_t{31}, std::size_t{64},
          std::size_t{100}, std::size_t{257}}) {
        const EmProfConfig config = configWithWindow(w);
        // Whole series as one chunk (pure warm-up start)...
        compareChunk(x, 0, x.size(), true, config,
                     "w=" + std::to_string(w) + " whole");
        // ...an interior chunk with a full halo and unaligned length...
        compareChunk(x, 1999, 4501, false, config,
                     "w=" + std::to_string(w) + " interior");
        // ...a chunk whose halo is clipped by the series start...
        compareChunk(x, std::min<uint64_t>(w / 2 + 1, 100), 3000, false,
                     config, "w=" + std::to_string(w) + " clipped");
        // ...and a final chunk shorter than one vector.
        compareChunk(x, x.size() - 5, x.size(), true, config,
                     "w=" + std::to_string(w) + " tail");
    }
}

TEST(BatchPipeline, ResilientChunkBitParity)
{
    if (!batchKernelAvailable())
        GTEST_SKIP() << "AVX2 batch kernel not active";

    const auto x = makeSignal(6000, 0x5eed);
    for (std::size_t w :
         {std::size_t{3}, std::size_t{8}, std::size_t{17},
          std::size_t{64}, std::size_t{129}}) {
        for (std::size_t s :
             {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
            EmProfConfig config = configWithWindow(w);
            config.signal.enabled = true;
            config.signal.smootherSamples = s;
            const std::string base = "w=" + std::to_string(w) +
                                     " s=" + std::to_string(s);
            // Default quality blocks (= window).
            compareChunk(x, 0, x.size(), true, config, base + " whole");
            compareChunk(x, 2000, 4500, false, config,
                         base + " interior");
            // Small unaligned quality blocks, q < w.
            config.signal.blockSamples = 37;
            compareChunk(x, 0, x.size(), true, config,
                         base + " q=37 whole");
            compareChunk(x, 1998, 4503, false, config,
                         base + " q=37 interior");
            compareChunk(x, x.size() - 3, x.size(), true, config,
                         base + " q=37 tail");
        }
    }
}

TEST(BatchPipeline, ResilientSmootherWiderThanFirstBlock)
{
    if (!batchKernelAvailable())
        GTEST_SKIP() << "AVX2 batch kernel not active";

    // Window smaller than the smoother: the warm-up ramp of growing
    // boxcar windows spans several envelope blocks.
    const auto x = makeSignal(1200, 0xb10c);
    EmProfConfig config = configWithWindow(3);
    config.signal.enabled = true;
    config.signal.smootherSamples = 11;
    compareChunk(x, 0, x.size(), true, config, "w=3 s=11 whole");
    compareChunk(x, 7, 900, false, config, "w=3 s=11 clipped halo");
}

TEST(BatchPipeline, ConstantAndZeroSignals)
{
    if (!batchKernelAvailable())
        GTEST_SKIP() << "AVX2 batch kernel not active";

    for (float level : {0.0f, 1.0f}) {
        std::vector<dsp::Sample> x(700, level);
        for (bool resilient : {false, true}) {
            EmProfConfig config = configWithWindow(16);
            config.signal.enabled = resilient;
            compareChunk(x, 0, x.size(), true, config,
                         std::string("level=") + std::to_string(level) +
                             (resilient ? " resilient" : " classic"));
        }
    }
}

TEST(BatchPipeline, AutoDispatchMatchesExplicitKernel)
{
    if (!batchKernelAvailable())
        GTEST_SKIP() << "AVX2 batch kernel not active";

    const auto x = makeSignal(4000, 0xd15b);
    const EmProfConfig config = configWithWindow(32);
    const ChunkResult autoR =
        analyzeChunkAuto(x.data(), 0, 500, 3500, false, config);
    const ChunkResult simd = detail::analyzeChunkBatchAvx2(
        x.data(), 0, 500, 3500, false, config, false);
    expectSameResult(autoR, simd, "auto vs explicit");
}
#endif // !EMPROF_DISABLE_SIMD

TEST(BatchPipeline, ParallelMatchesStreamingEndToEnd)
{
    // Runs on every build flavour: with the kernel active this checks
    // batch+stitch against streaming; without it, chunked streaming
    // against streaming.
    dsp::TimeSeries series;
    series.sampleRateHz = 1e6;
    series.samples = makeSignal(50000, 0xe2e);

    for (bool resilient : {false, true}) {
        EmProfConfig config = configWithWindow(160);
        config.signal.enabled = resilient;
        const ProfileResult ref = EmProf::analyze(series, config);

        ParallelAnalyzerConfig pcfg;
        pcfg.threads = 8;
        pcfg.chunkSamples = 7321; // unaligned, many stitch boundaries
        const ProfileResult par =
            analyzeParallel(series, config, pcfg);

        ASSERT_EQ(ref.events.size(), par.events.size())
            << (resilient ? "resilient" : "classic");
        for (std::size_t i = 0; i < ref.events.size(); ++i) {
            EXPECT_EQ(ref.events[i].startSample,
                      par.events[i].startSample);
            EXPECT_EQ(ref.events[i].endSample, par.events[i].endSample);
            EXPECT_EQ(ref.events[i].depth, par.events[i].depth);
            EXPECT_EQ(ref.events[i].confidence,
                      par.events[i].confidence);
        }
        EXPECT_EQ(ref.report.totalStallCycles,
                  par.report.totalStallCycles);
    }
}

TEST(BatchPipeline, FastMathStaysWithinUlpBound)
{
    // fastMath relaxes the classic normalise to single precision; dips
    // planted far from the thresholds must still come out identically,
    // and every normalised depth must agree to the documented ~2 float
    // ULP relative bound.
    dsp::TimeSeries series;
    series.sampleRateHz = 1e6;
    series.samples = makeSignal(40000, 0xfa57);

    const EmProfConfig config = configWithWindow(160);
    const ProfileResult ref = EmProf::analyze(series, config);

    ParallelAnalyzerConfig pcfg;
    pcfg.threads = 4;
    pcfg.chunkSamples = 9001;
    pcfg.fastMathSimd = true;
    const ProfileResult fast = analyzeParallel(series, config, pcfg);

    ASSERT_EQ(ref.events.size(), fast.events.size());
    for (std::size_t i = 0; i < ref.events.size(); ++i) {
        EXPECT_EQ(ref.events[i].startSample, fast.events[i].startSample);
        EXPECT_EQ(ref.events[i].endSample, fast.events[i].endSample);
        EXPECT_NEAR(ref.events[i].depth, fast.events[i].depth, 1e-5);
    }
}

} // namespace
} // namespace emprof::profiler
