/**
 * @file
 * 1000-seed classifier fuzz (nightly ASan/UBSan lane, labelled slow).
 *
 * Each seed draws a random-but-valid band configuration and a batch of
 * random dips, then checks the classifier's invariants: every derived
 * field finite, the level always the analytic duration band, kind
 * consistent with the refresh boundary, confidence inside [0, 1] and
 * zero only on a boundary or a rejected event.  A slice of the seeds
 * runs hostile configs (NaN, infinities, denormals) that must take the
 * zeroed reject path, and another slice runs whole random signals
 * through the streaming and parallel analyzers, which must agree on
 * every label bit for bit.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "profiler/profiler.hpp"

namespace emprof::profiler {
namespace {

constexpr int kSeeds = 1000;

ServiceLevel
expectedLevel(double duration_ns, const EmProfConfig &cfg)
{
    const double dram_min = cfg.prefetchMaskedMaxNs > 0.0
                                ? cfg.prefetchMaskedMaxNs
                                : cfg.llcHitMaxNs;
    if (duration_ns >= cfg.refreshStallNs)
        return ServiceLevel::DramRefresh;
    if (duration_ns >= dram_min)
        return ServiceLevel::Dram;
    if (duration_ns >= cfg.llcHitMaxNs)
        return ServiceLevel::PrefetchMasked;
    return ServiceLevel::LlcHit;
}

/** Random config that must pass validate(): bands drawn in order. */
EmProfConfig
randomConfig(dsp::Rng &rng)
{
    EmProfConfig cfg;
    cfg.sampleRateHz = 1e6 + rng.uniform() * 999e6;
    cfg.clockHz = 1e8 + rng.uniform() * 1.9e9;
    cfg.llcHitMaxNs = rng.uniform() * 400.0;
    cfg.refreshStallNs =
        cfg.llcHitMaxNs + rng.uniform() * 4000.0;
    // Half the configs disable the prefetch band.
    cfg.prefetchMaskedMaxNs =
        rng.uniform() < 0.5
            ? 0.0
            : cfg.llcHitMaxNs +
                  rng.uniform() *
                      (cfg.refreshStallNs - cfg.llcHitMaxNs);
    return cfg;
}

uint64_t
bits(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

} // namespace

TEST(ClassifierFuzz, BandInvariantsHoldForRandomConfigsAndDips)
{
    for (int seed = 0; seed < kSeeds; ++seed) {
        dsp::Rng rng(0xC1A5'5000 + static_cast<uint64_t>(seed));
        const EmProfConfig cfg = randomConfig(rng);
        std::string why;
        ASSERT_TRUE(cfg.validate(&why)) << "seed " << seed << ": " << why;

        for (int i = 0; i < 64; ++i) {
            StallEvent ev;
            ev.startSample = rng.below(1u << 30);
            ev.endSample =
                ev.startSample + rng.below(1'000'000);
            classifyStall(ev, cfg);

            ASSERT_TRUE(std::isfinite(ev.durationNs))
                << "seed " << seed;
            ASSERT_TRUE(std::isfinite(ev.stallCycles))
                << "seed " << seed;
            ASSERT_GE(ev.levelConfidence, 0.0) << "seed " << seed;
            ASSERT_LE(ev.levelConfidence, 1.0) << "seed " << seed;
            ASSERT_EQ(ev.level, expectedLevel(ev.durationNs, cfg))
                << "seed " << seed << " duration " << ev.durationNs;
            ASSERT_EQ(ev.kind,
                      ev.durationNs >= cfg.refreshStallNs
                          ? StallKind::RefreshCoincident
                          : StallKind::LlcMiss)
                << "seed " << seed;
            // DramRefresh if and only if refresh-coincident: the level
            // taxonomy refines the legacy kind split, never contradicts
            // it.
            ASSERT_EQ(ev.level == ServiceLevel::DramRefresh,
                      ev.kind == StallKind::RefreshCoincident)
                << "seed " << seed;
        }
    }
}

TEST(ClassifierFuzz, HostileConfigsAlwaysTakeTheZeroedRejectPath)
{
    const double hostile[] = {
        0.0,
        -1.0,
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
    };
    for (int seed = 0; seed < kSeeds; ++seed) {
        dsp::Rng rng(0xBAD'F00D + static_cast<uint64_t>(seed));
        EmProfConfig cfg = randomConfig(rng);
        const std::size_t n = sizeof(hostile) / sizeof(hostile[0]);
        cfg.sampleRateHz = hostile[rng.below(n)];
        if (rng.uniform() < 0.5)
            cfg.clockHz = hostile[rng.below(n)];

        StallEvent ev;
        ev.startSample = rng.below(1u << 20);
        ev.endSample = ev.startSample + rng.below(1u << 24);
        classifyStall(ev, cfg);

        // Either the classification succeeded with finite fields (a
        // hostile value can still be usable, e.g. max sample rate) or
        // the event came back fully zeroed — never NaN/Inf leakage.
        if (ev.levelConfidence == 0.0 && ev.durationNs == 0.0) {
            ASSERT_EQ(ev.stallCycles, 0.0) << "seed " << seed;
            ASSERT_EQ(ev.level, ServiceLevel::LlcHit)
                << "seed " << seed;
        } else {
            ASSERT_TRUE(std::isfinite(ev.durationNs))
                << "seed " << seed;
            ASSERT_TRUE(std::isfinite(ev.stallCycles))
                << "seed " << seed;
        }
    }
}

TEST(ClassifierFuzz, StreamingAndParallelAgreeOnEveryLabelBit)
{
    // Whole-pipeline slice: random dip trains, both batch paths.  100
    // signals keeps the nightly lane inside its budget.
    for (int seed = 0; seed < kSeeds / 10; ++seed) {
        dsp::Rng rng(0x5160'4211 + static_cast<uint64_t>(seed));

        EmProfConfig cfg;
        cfg.clockHz = 1e9;
        cfg.sampleRateHz = 40e6;
        cfg.normWindowSeconds = 40e-6;
        cfg.minStallNs = 40.0;
        cfg.minDurationFloorSamples = 2;
        cfg.llcHitMaxNs = 50.0 + rng.uniform() * 100.0;
        cfg.refreshStallNs = 800.0 + rng.uniform() * 1000.0;
        cfg.prefetchMaskedMaxNs =
            rng.uniform() < 0.5
                ? 0.0
                : cfg.llcHitMaxNs +
                      rng.uniform() *
                          (cfg.refreshStallNs - cfg.llcHitMaxNs);

        dsp::TimeSeries sig;
        sig.sampleRateHz = cfg.sampleRateHz;
        sig.samples.assign(16'384, 1.0f);
        for (auto &x : sig.samples)
            x += static_cast<float>(0.04 * (rng.uniform() - 0.5));
        std::size_t pos = 500;
        while (pos + 200 < sig.samples.size()) {
            const std::size_t len = 2 + rng.below(120);
            for (std::size_t i = pos; i < pos + len; ++i)
                sig.samples[i] = 0.2f;
            pos += len + 60 + rng.below(400);
        }

        const auto streaming = EmProf::analyze(sig, cfg);
        const auto parallel = EmProf::analyzeParallel(sig, cfg, 3);

        ASSERT_EQ(streaming.events.size(), parallel.events.size())
            << "seed " << seed;
        for (std::size_t i = 0; i < streaming.events.size(); ++i) {
            const auto &a = streaming.events[i];
            const auto &b = parallel.events[i];
            ASSERT_EQ(a.level, b.level) << "seed " << seed;
            ASSERT_EQ(bits(a.levelConfidence),
                      bits(b.levelConfidence))
                << "seed " << seed;
            ASSERT_EQ(bits(a.durationNs), bits(b.durationNs))
                << "seed " << seed;
            ASSERT_EQ(a.level, expectedLevel(a.durationNs, cfg))
                << "seed " << seed;
        }
    }
}

} // namespace emprof::profiler
