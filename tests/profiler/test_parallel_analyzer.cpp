/**
 * @file
 * Chunk-boundary equivalence tests for the parallel batch analyzer:
 * for any chunk size and thread count, analyzeParallel must produce a
 * result bit-identical to the streaming path — same event count, same
 * start/end samples, same depth (exact floating-point equality, which
 * the stitcher guarantees by replaying prefix samples in order), same
 * classification.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsp/rng.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"

namespace emprof::profiler {
namespace {

EmProfConfig
testConfig()
{
    EmProfConfig cfg;
    cfg.clockHz = 1e9;
    cfg.sampleRateHz = 40e6;
    cfg.normWindowSeconds = 20e-6; // 800-sample envelope window
    return cfg;
}

/** Busy signal with small noise; dips are written in explicitly. */
dsp::TimeSeries
busySignal(std::size_t total, uint64_t seed)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(seed);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    return s;
}

void
writeDip(dsp::TimeSeries &s, std::size_t start, std::size_t len,
         float level = 0.2f)
{
    for (std::size_t i = start; i < start + len && i < s.samples.size();
         ++i)
        s.samples[i] = level;
}

void
expectIdentical(const ProfileResult &parallel,
                const ProfileResult &streaming)
{
    ASSERT_EQ(parallel.events.size(), streaming.events.size());
    for (std::size_t i = 0; i < streaming.events.size(); ++i) {
        const auto &p = parallel.events[i];
        const auto &s = streaming.events[i];
        EXPECT_EQ(p.startSample, s.startSample) << "event " << i;
        EXPECT_EQ(p.endSample, s.endSample) << "event " << i;
        EXPECT_EQ(p.depth, s.depth) << "event " << i;
        EXPECT_EQ(p.durationNs, s.durationNs) << "event " << i;
        EXPECT_EQ(p.stallCycles, s.stallCycles) << "event " << i;
        EXPECT_EQ(p.kind, s.kind) << "event " << i;
    }
    EXPECT_EQ(parallel.report.totalEvents, streaming.report.totalEvents);
}

void
expectParallelMatchesStreaming(const dsp::TimeSeries &sig,
                               const EmProfConfig &cfg,
                               std::size_t chunk, std::size_t threads)
{
    const auto streaming = EmProf::analyze(sig, cfg);
    ParallelAnalyzerConfig pcfg;
    pcfg.threads = threads;
    pcfg.chunkSamples = chunk;
    const auto parallel = analyzeParallel(sig, cfg, pcfg);
    SCOPED_TRACE(::testing::Message()
                 << "chunk=" << chunk << " threads=" << threads);
    expectIdentical(parallel, streaming);
}

TEST(ParallelAnalyzer, DipsPlacedExactlyOnChunkEdges)
{
    for (const std::size_t chunk :
         {std::size_t{128}, std::size_t{256}, std::size_t{1000}}) {
        auto sig = busySignal(8 * chunk + chunk / 2, 17);
        // A dip at every flavour of boundary alignment: starting
        // exactly at an edge, ending exactly at an edge, straddling an
        // edge, and fully inside a chunk.
        writeDip(sig, 1 * chunk, 8);       // starts on the edge
        writeDip(sig, 2 * chunk - 8, 8);   // ends just before the edge
        writeDip(sig, 3 * chunk - 4, 8);   // straddles the edge
        writeDip(sig, 4 * chunk - 1, 2);   // last sample / first sample
        writeDip(sig, 5 * chunk + 10, 8);  // interior control
        writeDip(sig, 6 * chunk - 5, 5);   // ends exactly at edge - 1
        for (const std::size_t threads :
             {std::size_t{2}, std::size_t{4}, std::size_t{8}})
            expectParallelMatchesStreaming(sig, testConfig(), chunk,
                                           threads);
    }
}

TEST(ParallelAnalyzer, DipSpanningThreeChunks)
{
    const std::size_t chunk = 100;
    auto sig = busySignal(1200, 5);
    // 250 low samples starting mid-chunk: the dip enters at chunk 3,
    // covers all of chunks 4 and 5, and exits inside chunk 6.
    writeDip(sig, 350, 250);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}})
        expectParallelMatchesStreaming(sig, testConfig(), chunk, threads);
}

TEST(ParallelAnalyzer, CaptureEndingMidDip)
{
    const std::size_t chunk = 256;
    auto sig = busySignal(4 * chunk, 31);
    // The dip runs through the final chunk boundary and off the end of
    // the capture, so only the finish()-style flush can emit it.
    writeDip(sig, sig.samples.size() - chunk - 20, chunk + 20);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}})
        expectParallelMatchesStreaming(sig, testConfig(), chunk, threads);

    // Variant ending mid-dip *and* mid-chunk.
    auto sig2 = busySignal(4 * chunk + 57, 32);
    writeDip(sig2, sig2.samples.size() - 30, 30);
    expectParallelMatchesStreaming(sig2, testConfig(), chunk, 4);
}

TEST(ParallelAnalyzer, RandomizedDipsAcrossChunkSizesAndThreads)
{
    // Property-style sweep: random dip layouts (lengths 2..60, some
    // merging into each other), several chunk sizes including ones
    // smaller than the normalisation window, several thread counts.
    for (const uint64_t seed : {1u, 2u, 3u}) {
        auto sig = busySignal(50000, seed);
        dsp::Rng rng(seed * 977);
        std::size_t pos = 600;
        while (pos + 70 < sig.samples.size()) {
            const std::size_t len = 2 + rng.below(59);
            writeDip(sig, pos, len);
            pos += len + 20 + rng.below(2000);
        }
        for (const std::size_t chunk :
             {std::size_t{64}, std::size_t{333}, std::size_t{4096}})
            for (const std::size_t threads :
                 {std::size_t{2}, std::size_t{4}})
                expectParallelMatchesStreaming(sig, testConfig(), chunk,
                                               threads);
    }
}

TEST(ParallelAnalyzer, SingleThreadAndShortInputFallBackToStreaming)
{
    auto sig = busySignal(20000, 77);
    writeDip(sig, 5000, 8);
    writeDip(sig, 15000, 8);
    const auto streaming = EmProf::analyze(sig, testConfig());

    // threads == 1 takes the streaming path outright.
    ParallelAnalyzerConfig one;
    one.threads = 1;
    expectIdentical(analyzeParallel(sig, testConfig(), one), streaming);

    // Auto chunking on a short input falls back too (and the facade
    // default must match it).
    ParallelAnalyzerConfig aut;
    aut.threads = 4;
    expectIdentical(analyzeParallel(sig, testConfig(), aut), streaming);
    expectIdentical(EmProf::analyzeParallel(sig, testConfig(), 4),
                    streaming);
}

TEST(ParallelAnalyzer, RefreshClassificationSurvivesStitching)
{
    // A >1.2 us dip (refresh-coincident) that straddles a chunk edge
    // must keep its classification after the stitcher reassembles it.
    const std::size_t chunk = 500;
    auto sig = busySignal(8 * chunk, 13);
    writeDip(sig, 3 * chunk - 30, 100); // 2.5 us at 40 MHz
    const auto streaming = EmProf::analyze(sig, testConfig());
    ASSERT_EQ(streaming.events.size(), 1u);
    ASSERT_EQ(streaming.events[0].kind, StallKind::RefreshCoincident);

    ParallelAnalyzerConfig pcfg;
    pcfg.threads = 4;
    pcfg.chunkSamples = chunk;
    expectIdentical(analyzeParallel(sig, testConfig(), pcfg), streaming);
}

TEST(ParallelAnalyzer, WholeChunksBelowExitStayOneEvent)
{
    // Chunks entirely below the exit threshold exercise the
    // "prefix == whole chunk" carry path in the stitcher.
    const std::size_t chunk = 50;
    auto sig = busySignal(2000, 3);
    writeDip(sig, 480, 400); // 8 whole chunks below exit
    const auto streaming = EmProf::analyze(sig, testConfig());
    ASSERT_EQ(streaming.events.size(), 1u);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}})
        expectParallelMatchesStreaming(sig, testConfig(), chunk, threads);
}

TEST(ParallelAnalyzer, LowContrastRegionsMatchStreaming)
{
    // Exactly-flat stretches make the normaliser's low-contrast gate
    // report "busy"; the halo re-feed must reproduce the same gated
    // windows at every chunk seam.  Mixed flat/noisy/dipped content
    // with seams landing inside each region locks the equivalence.
    auto sig = busySignal(4000, 7);
    for (std::size_t i = 600; i < 1400; ++i)
        sig.samples[i] = 1.0f; // bit-exact flat: zero contrast
    writeDip(sig, 1900, 60);
    for (std::size_t i = 2500; i < 3100; ++i)
        sig.samples[i] = 0.5f; // flat at a different level
    writeDip(sig, 3500, 40);
    for (const std::size_t chunk :
         {std::size_t{97}, std::size_t{256}, std::size_t{800}})
        for (const std::size_t threads :
             {std::size_t{2}, std::size_t{4}})
            expectParallelMatchesStreaming(sig, testConfig(), chunk,
                                           threads);
}

TEST(ParallelAnalyzer, BackToBackDipsStraddlingChunkSeams)
{
    // Two dips separated by a single recovery sample, positioned so a
    // chunk boundary falls between them (and, for chunk 100, ON the
    // recovery sample): the stitcher must not bridge them into one.
    auto sig = busySignal(2000, 11);
    writeDip(sig, 380, 19);
    sig.samples[399] = 1.2f; // recovery sample at a chunk-100 boundary
    writeDip(sig, 400, 20);
    for (const std::size_t chunk :
         {std::size_t{100}, std::size_t{200}, std::size_t{390}})
        expectParallelMatchesStreaming(sig, testConfig(), chunk, 4);
}

} // namespace
} // namespace emprof::profiler
