/**
 * @file
 * Unit tests for moving min/max normalisation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profiler/normalizer.hpp"

namespace emprof::profiler {
namespace {

TEST(Normalizer, MapsFloorToZeroCeilingToOne)
{
    MovingMinMaxNormalizer norm(100, 0.1);
    // Alternate busy (1.0) and stall (0.2) levels.
    for (int i = 0; i < 50; ++i) {
        norm.push(1.0);
        norm.push(0.2);
    }
    EXPECT_NEAR(norm.push(0.2), 0.0, 1e-9);
    EXPECT_NEAR(norm.push(1.0), 1.0, 1e-9);
    EXPECT_NEAR(norm.push(0.6), 0.5, 1e-9);
}

TEST(Normalizer, GainDriftCancels)
{
    // The paper's core requirement: a multiplicative gain change must
    // not change the normalised signal.
    MovingMinMaxNormalizer a(64, 0.1), b(64, 0.1);
    for (int i = 0; i < 200; ++i) {
        const double busy = (i % 4 == 0) ? 0.3 : 1.0;
        const double na = a.push(busy);
        const double nb = b.push(busy * 7.3); // 7.3x probe gain
        EXPECT_NEAR(na, nb, 1e-9);
    }
}

TEST(Normalizer, LowContrastWindowReadsBusy)
{
    MovingMinMaxNormalizer norm(32, 0.2);
    // Constant level with tiny noise: no stall floor in the window.
    for (int i = 0; i < 100; ++i) {
        const double x = 1.0 + 0.001 * ((i % 2 == 0) ? 1.0 : -1.0);
        EXPECT_DOUBLE_EQ(norm.push(x), 1.0);
    }
}

TEST(Normalizer, ContrastAppearsWhenDipArrives)
{
    MovingMinMaxNormalizer norm(64, 0.2);
    for (int i = 0; i < 64; ++i)
        norm.push(1.0);
    // Dip: contrast emerges, dip samples normalise to ~0.
    double last = 1.0;
    for (int i = 0; i < 5; ++i)
        last = norm.push(0.25);
    EXPECT_NEAR(last, 0.0, 1e-9);
}

TEST(Normalizer, OldExtremaExpireWithWindow)
{
    MovingMinMaxNormalizer norm(16, 0.1);
    norm.push(0.0); // transient floor
    for (int i = 0; i < 16; ++i)
        norm.push(1.0);
    // Floor expired: window is flat again -> busy.
    EXPECT_DOUBLE_EQ(norm.push(1.0), 1.0);
}

TEST(Normalizer, ClampsOutliers)
{
    MovingMinMaxNormalizer norm(8, 0.05);
    for (int i = 0; i < 8; ++i)
        norm.push((i % 2 == 0) ? 1.0 : 0.2);
    const double n = norm.push(0.1); // below the expiring floor? clamp
    EXPECT_GE(n, 0.0);
    EXPECT_LE(n, 1.0);
}

TEST(Normalizer, EnvelopeAccessors)
{
    MovingMinMaxNormalizer norm(8, 0.05);
    norm.push(0.4);
    norm.push(1.2);
    EXPECT_DOUBLE_EQ(norm.envelopeMin(), 0.4);
    EXPECT_DOUBLE_EQ(norm.envelopeMax(), 1.2);
    EXPECT_FALSE(norm.warm());
}

// --- low-contrast boundary semantics --------------------------------
//
// The contrast gate is `range < minContrast * hi`: a window whose
// contrast is exactly at the threshold is treated as contrasted (it
// normalises), strictly below as flat (reports 1.0).  The parallel
// analyzer's halo re-feed reproduces these windows at chunk seams, so
// the exact boundary behaviour is part of the streaming/parallel
// equivalence contract.

TEST(Normalizer, ContrastExactlyAtThresholdNormalises)
{
    // hi = 1.0, lo = 0.75 -> range 0.25 == minContrast * hi with
    // minContrast 0.25 (all exactly representable): NOT below the
    // threshold, so the window normalises.
    MovingMinMaxNormalizer norm(4, 0.25);
    norm.push(1.0);
    norm.push(1.0);
    norm.push(0.75);
    const double n = norm.push(0.75);
    EXPECT_DOUBLE_EQ(n, 0.0); // 0.75 is the window floor
}

TEST(Normalizer, ContrastJustBelowThresholdReadsBusy)
{
    // Same shape, floor one ulp higher: range dips below the gate and
    // every sample reports fully busy.
    const double floor = std::nextafter(0.75, 1.0);
    MovingMinMaxNormalizer norm(4, 0.25);
    norm.push(1.0);
    norm.push(1.0);
    norm.push(floor);
    EXPECT_DOUBLE_EQ(norm.push(floor), 1.0);
}

TEST(Normalizer, AllZeroWindowReadsBusy)
{
    // hi == 0 has no usable ceiling; the gate must report busy rather
    // than divide by a zero range.
    MovingMinMaxNormalizer norm(4, 0.2);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(norm.push(0.0), 1.0);
}

TEST(Normalizer, NegativeCeilingReadsBusy)
{
    // A window of negative values (hi <= 0) is degenerate for a
    // magnitude signal; it must read busy, not produce values outside
    // [0, 1] from the negative range arithmetic.
    MovingMinMaxNormalizer norm(4, 0.2);
    for (int i = 0; i < 8; ++i) {
        const double n = norm.push(-1.0 - 0.1 * i);
        EXPECT_DOUBLE_EQ(n, 1.0);
    }
}

} // namespace
} // namespace emprof::profiler
