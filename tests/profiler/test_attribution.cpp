/**
 * @file
 * Unit tests for spectral segmentation and attribution.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/rng.hpp"
#include "profiler/attribution.hpp"

namespace emprof::profiler {
namespace {

/** Append a tone-modulated region (distinct loop periodicity). */
void
appendRegion(dsp::TimeSeries &s, double tone_hz, std::size_t n,
             dsp::Rng &rng)
{
    const double rate = s.sampleRateHz;
    const std::size_t start = s.samples.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(start + i) / rate;
        const double x =
            1.0 + 0.3 * std::sin(2.0 * std::numbers::pi * tone_hz * t) +
            0.02 * (rng.uniform() - 0.5);
        s.samples.push_back(static_cast<float>(x));
    }
}

AttributionConfig
testConfig()
{
    AttributionConfig cfg;
    cfg.stft.frameSize = 512;
    cfg.stft.hop = 256;
    cfg.smoothFrames = 4;
    cfg.minRegionFrames = 8;
    return cfg;
}

TEST(Attribution, SegmentsThreeDistinctRegions)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1e6;
    dsp::Rng rng(7);
    appendRegion(s, 20e3, 40000, rng);
    appendRegion(s, 90e3, 20000, rng);
    appendRegion(s, 200e3, 60000, rng);

    SpectralAttributor attr(testConfig());
    const auto regions = attr.segment(s);
    ASSERT_EQ(regions.size(), 3u);
    // Boundaries near the true transitions (in samples).
    EXPECT_NEAR(static_cast<double>(regions[0].endSample), 40000.0, 3000.0);
    EXPECT_NEAR(static_cast<double>(regions[1].endSample), 60000.0, 3000.0);
    // All three regions have distinct labels.
    EXPECT_NE(regions[0].label, regions[1].label);
    EXPECT_NE(regions[1].label, regions[2].label);
}

TEST(Attribution, HomogeneousSignalIsOneRegion)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1e6;
    dsp::Rng rng(13);
    appendRegion(s, 50e3, 80000, rng);
    SpectralAttributor attr(testConfig());
    const auto regions = attr.segment(s);
    EXPECT_EQ(regions.size(), 1u);
}

TEST(Attribution, RepeatedRegionSharesLabel)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1e6;
    dsp::Rng rng(19);
    appendRegion(s, 25e3, 40000, rng);
    appendRegion(s, 150e3, 40000, rng);
    appendRegion(s, 25e3, 40000, rng); // same code as region 0

    SpectralAttributor attr(testConfig());
    const auto regions = attr.segment(s);
    ASSERT_EQ(regions.size(), 3u);
    EXPECT_EQ(regions[0].label, regions[2].label);
    EXPECT_NE(regions[0].label, regions[1].label);
}

TEST(Attribution, TooShortSignalYieldsNothing)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1e6;
    s.samples.assign(1000, 1.0f);
    SpectralAttributor attr(testConfig());
    EXPECT_TRUE(attr.segment(s).empty());
}

TEST(Attribution, AttributesEventsToContainingRegion)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 1e6;
    dsp::Rng rng(23);
    appendRegion(s, 20e3, 40000, rng);
    appendRegion(s, 120e3, 40000, rng);

    SpectralAttributor attr(testConfig());
    const auto regions = attr.segment(s);
    ASSERT_EQ(regions.size(), 2u);

    std::vector<StallEvent> events;
    // 5 events in region 0, 20 events in region 1, 100 cycles each.
    for (int i = 0; i < 5; ++i) {
        StallEvent ev;
        ev.startSample = 5000 + i * 1000;
        ev.endSample = ev.startSample + 3;
        ev.stallCycles = 100.0;
        events.push_back(ev);
    }
    for (int i = 0; i < 20; ++i) {
        StallEvent ev;
        ev.startSample = 45000 + i * 1000;
        ev.endSample = ev.startSample + 3;
        ev.stallCycles = 100.0;
        events.push_back(ev);
    }

    const auto profiles = attr.attribute(regions, events, 1e6, 1e9);
    ASSERT_EQ(profiles.size(), 2u);
    EXPECT_EQ(profiles[0].totalMisses, 5u);
    EXPECT_EQ(profiles[1].totalMisses, 20u);
    EXPECT_GT(profiles[1].missRatePerMCycles,
              profiles[0].missRatePerMCycles);
    EXPECT_NEAR(profiles[0].avgMissLatencyCycles, 100.0, 1e-9);
    EXPECT_NEAR(profiles[0].timeSharePercent +
                    profiles[1].timeSharePercent,
                100.0, 1e-6);
}

TEST(Attribution, TableRenderingUsesNames)
{
    RegionProfile p;
    p.region.label = 0;
    p.totalMisses = 42;
    const auto text = SpectralAttributor::toText({p}, {"read_dictionary"});
    EXPECT_NE(text.find("read_dictionary"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

} // namespace
} // namespace emprof::profiler
