/**
 * @file
 * Unit tests for boot-profile construction.
 */

#include <gtest/gtest.h>

#include "profiler/boot_profile.hpp"

namespace emprof::profiler {
namespace {

StallEvent
eventAt(uint64_t start, uint64_t len)
{
    StallEvent ev;
    ev.startSample = start;
    ev.endSample = start + len - 1;
    return ev;
}

TEST(BootProfile, BucketsEventsByTime)
{
    // 1 ms of signal at 1 MHz = 1000 samples; 0.1 ms buckets.
    std::vector<StallEvent> events = {eventAt(50, 10), eventAt(60, 10),
                                      eventAt(550, 10)};
    const auto profile = makeBootProfile(events, 1e6, 1000, 1e-4);
    ASSERT_EQ(profile.buckets.size(), 10u);
    EXPECT_EQ(profile.buckets[0].events, 2u);
    EXPECT_EQ(profile.buckets[5].events, 1u);
    EXPECT_EQ(profile.buckets[9].events, 0u);
}

TEST(BootProfile, RatesAreEventsPerMillisecond)
{
    std::vector<StallEvent> events = {eventAt(10, 5), eventAt(20, 5)};
    const auto profile = makeBootProfile(events, 1e6, 1000, 1e-4);
    // 2 events in a 0.1 ms bucket = 20 events/ms.
    EXPECT_NEAR(profile.buckets[0].eventsPerMs, 20.0, 1e-9);
}

TEST(BootProfile, StallPercentReflectsDipTime)
{
    // One 50-sample stall in a 100-sample bucket = 50 %.
    std::vector<StallEvent> events = {eventAt(0, 50)};
    const auto profile = makeBootProfile(events, 1e6, 1000, 1e-4);
    EXPECT_NEAR(profile.buckets[0].stallPercent, 50.0, 1e-9);
}

TEST(BootProfile, LateEventsClampToLastBucket)
{
    std::vector<StallEvent> events = {eventAt(999, 10)};
    const auto profile = makeBootProfile(events, 1e6, 1000, 1e-4);
    EXPECT_EQ(profile.buckets.back().events, 1u);
}

TEST(BootProfile, EmptyInputsAreSafe)
{
    EXPECT_TRUE(makeBootProfile({}, 0.0, 0, 1e-3).buckets.empty());
    EXPECT_TRUE(makeBootProfile({}, 1e6, 100, 0.0).buckets.empty());
    const auto profile = makeBootProfile({}, 1e6, 1000, 1e-4);
    EXPECT_EQ(profile.buckets.size(), 10u);
    EXPECT_EQ(profile.buckets[3].events, 0u);
}

TEST(BootProfile, SimilarityOfIdenticalProfilesIsOne)
{
    std::vector<StallEvent> events = {eventAt(50, 10), eventAt(550, 10)};
    const auto a = makeBootProfile(events, 1e6, 1000, 1e-4);
    EXPECT_NEAR(bootProfileSimilarity(a, a), 1.0, 1e-12);
}

TEST(BootProfile, SimilarityOfDisjointProfilesIsZero)
{
    const auto a =
        makeBootProfile({eventAt(50, 10)}, 1e6, 1000, 1e-4);
    const auto b =
        makeBootProfile({eventAt(850, 10)}, 1e6, 1000, 1e-4);
    EXPECT_NEAR(bootProfileSimilarity(a, b), 0.0, 1e-12);
}

TEST(BootProfile, SimilarityHandlesEmpty)
{
    BootProfile empty;
    EXPECT_DOUBLE_EQ(bootProfileSimilarity(empty, empty), 0.0);
}

TEST(BootProfile, TextRenderingShowsBars)
{
    const auto profile =
        makeBootProfile({eventAt(50, 10)}, 1e6, 1000, 1e-4);
    const auto text = profile.toText();
    EXPECT_NE(text.find("ev/ms"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
}

} // namespace
} // namespace emprof::profiler
