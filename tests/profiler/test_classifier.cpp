/**
 * @file
 * Service-level classifier tests (DESIGN.md §16): the guard against
 * non-finite arithmetic (including the denormal-rate regression where
 * every config field passes validate-style entry checks yet the
 * derived duration overflows to infinity), a property sweep over dip
 * durations at every level-transition boundary, and the classifier on
 * the resilient and recovered-capture paths.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

namespace emprof::profiler {
namespace {

StallEvent
dipOfSamples(uint64_t samples)
{
    StallEvent ev;
    ev.startSample = 10'000;
    ev.endSample = 10'000 + samples - 1;
    return ev;
}

/** The band classifyStall must pick for @p duration_ns under @p cfg. */
ServiceLevel
expectedLevel(double duration_ns, const EmProfConfig &cfg)
{
    const double dram_min = cfg.prefetchMaskedMaxNs > 0.0
                                ? cfg.prefetchMaskedMaxNs
                                : cfg.llcHitMaxNs;
    if (duration_ns >= cfg.refreshStallNs)
        return ServiceLevel::DramRefresh;
    if (duration_ns >= dram_min)
        return ServiceLevel::Dram;
    if (duration_ns >= cfg.llcHitMaxNs)
        return ServiceLevel::PrefetchMasked;
    return ServiceLevel::LlcHit;
}

/** Synthesise a magnitude signal with planted stalls. */
dsp::TimeSeries
makeSignal(double rate_hz,
           const std::vector<std::pair<std::size_t, std::size_t>> &dips,
           std::size_t total, double noise = 0.02)
{
    dsp::TimeSeries s;
    s.sampleRateHz = rate_hz;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(7);
    for (auto &x : s.samples)
        x += static_cast<float>(noise * (rng.uniform() - 0.5));
    for (const auto &[start, len] : dips)
        for (std::size_t i = start; i < start + len && i < total; ++i)
            s.samples[i] = 0.2f;
    return s;
}

EmProfConfig
bandConfig(double rate = 40e6)
{
    EmProfConfig cfg;
    cfg.clockHz = 1e9;
    cfg.sampleRateHz = rate;
    cfg.normWindowSeconds = 40e-6;
    cfg.llcHitMaxNs = 90.0;
    cfg.prefetchMaskedMaxNs = 180.0;
    cfg.refreshStallNs = 1200.0;
    return cfg;
}

} // namespace

TEST(Classifier, RejectsInfiniteDurationFromDenormalSampleRate)
{
    // Regression: a denormal-but-positive sample rate passes the
    // "finite and > 0" entry check, but 1e9 / rate overflows to
    // infinity.  The event must come back zeroed, never with Inf/NaN
    // durations poisoning the report aggregation downstream.
    EmProfConfig cfg = bandConfig();
    cfg.sampleRateHz = std::numeric_limits<double>::denorm_min();

    StallEvent ev = dipOfSamples(8);
    classifyStall(ev, cfg);
    EXPECT_EQ(ev.durationNs, 0.0);
    EXPECT_EQ(ev.stallCycles, 0.0);
    EXPECT_EQ(ev.kind, StallKind::LlcMiss);
    EXPECT_EQ(ev.level, ServiceLevel::LlcHit);
    EXPECT_EQ(ev.levelConfidence, 0.0);
}

TEST(Classifier, RejectsInfiniteStallCyclesFromOverflowingClock)
{
    // Same overflow one multiplication later: durationNs is finite but
    // durationNs * 1e-9 * clockHz is not.
    EmProfConfig cfg = bandConfig(1e-3); // 1 mHz: 1e12 ns per sample
    cfg.clockHz = std::numeric_limits<double>::max();

    StallEvent ev = dipOfSamples(1'000'000);
    classifyStall(ev, cfg);
    EXPECT_EQ(ev.durationNs, 0.0);
    EXPECT_EQ(ev.stallCycles, 0.0);
    EXPECT_EQ(ev.levelConfidence, 0.0);
}

TEST(Classifier, RejectsNonFiniteAndNonPositiveConfigInputs)
{
    for (const double bad_rate :
         {0.0, -40e6, std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity()}) {
        EmProfConfig cfg = bandConfig();
        cfg.sampleRateHz = bad_rate;
        StallEvent ev = dipOfSamples(8);
        classifyStall(ev, cfg);
        EXPECT_EQ(ev.durationNs, 0.0) << bad_rate;
        EXPECT_EQ(ev.levelConfidence, 0.0) << bad_rate;
    }
    EmProfConfig cfg = bandConfig();
    cfg.clockHz = std::numeric_limits<double>::quiet_NaN();
    StallEvent ev = dipOfSamples(8);
    classifyStall(ev, cfg);
    EXPECT_EQ(ev.stallCycles, 0.0);
    EXPECT_EQ(ev.levelConfidence, 0.0);
}

TEST(Classifier, SweepCrossesEveryBandBoundaryExactlyOnce)
{
    // 25 ns per sample: the three boundaries sit at 3.6, 7.2 and 48
    // samples.  Walk every duration from 1 to 64 samples and require
    // the analytic band, monotone level progression, and a confidence
    // that is small near a boundary and saturated far from all three.
    const EmProfConfig cfg = bandConfig();
    int transitions = 0;
    ServiceLevel prev = ServiceLevel::LlcHit;
    for (uint64_t samples = 1; samples <= 64; ++samples) {
        StallEvent ev = dipOfSamples(samples);
        classifyStall(ev, cfg);
        EXPECT_NEAR(ev.durationNs, 25.0 * static_cast<double>(samples),
                    1e-9);
        EXPECT_EQ(ev.level, expectedLevel(ev.durationNs, cfg))
            << samples;
        EXPECT_GE(static_cast<int>(ev.level), static_cast<int>(prev))
            << "levels must be monotone in duration at " << samples;
        transitions += ev.level != prev;
        prev = ev.level;
        EXPECT_GE(ev.levelConfidence, 0.0);
        EXPECT_LE(ev.levelConfidence, 1.0);
    }
    EXPECT_EQ(transitions, 3);
}

TEST(Classifier, ConfidenceIsLogDistanceToTheNearestBoundary)
{
    const EmProfConfig cfg = bandConfig();
    // 25 ns per sample keeps the requested durations exact.
    const auto confidenceAt = [&cfg](double duration_ns) {
        StallEvent ev =
            dipOfSamples(static_cast<uint64_t>(duration_ns / 25.0));
        classifyStall(ev, cfg);
        return ev.levelConfidence;
    };

    // Exactly on a boundary (1200 ns = 48 samples): zero confidence.
    EXPECT_EQ(confidenceAt(1200.0), 0.0);
    // One sample to either side: small but non-zero.
    const double below = confidenceAt(1175.0);
    const double above = confidenceAt(1225.0);
    EXPECT_GT(below, 0.0);
    EXPECT_GT(above, 0.0);
    EXPECT_LT(below, 0.05);
    EXPECT_LT(above, 0.05);
    // Interior of the dram band: the refresh boundary (0.585 of a
    // factor of two away) is the binding one; the lower boundaries are
    // both beyond 2x and saturate out of the minimum.
    EXPECT_NEAR(confidenceAt(800.0),
                std::fabs(std::log2(800.0 / 1200.0)), 1e-12);

    // Far inside the refresh band every distance saturates at 1.0.
    EXPECT_EQ(confidenceAt(5000.0), 1.0);
}

TEST(Classifier, DisabledPrefetchBandFoldsIntoDram)
{
    EmProfConfig cfg = bandConfig();
    cfg.prefetchMaskedMaxNs = 0.0;
    for (uint64_t samples = 1; samples <= 64; ++samples) {
        StallEvent ev = dipOfSamples(samples);
        classifyStall(ev, cfg);
        EXPECT_NE(ev.level, ServiceLevel::PrefetchMasked) << samples;
        EXPECT_EQ(ev.level, expectedLevel(ev.durationNs, cfg))
            << samples;
    }
    // The disabled boundary must not drag confidence to zero for
    // durations near it.
    StallEvent near_disabled = dipOfSamples(7); // 175 ns ~ 180 ns
    classifyStall(near_disabled, cfg);
    EXPECT_GT(near_disabled.levelConfidence, 0.5);
}

TEST(Classifier, EndToEndEventsCarryBandConsistentLevels)
{
    // Dips spanning all four bands (25 ns/sample): 2 samples = 50 ns
    // (llc-hit), 5 samples = 125 ns (prefetch-masked), 12 samples =
    // 300 ns (dram), 100 samples = 2500 ns (dram-refresh).
    EmProfConfig cfg = bandConfig();
    cfg.minStallNs = 40.0;
    cfg.minDurationFloorSamples = 2;
    const std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {1000, 2}, {2000, 5}, {3000, 12}, {4000, 100}};
    const auto sig = makeSignal(40e6, dips, 8000);
    const auto result = EmProf::analyze(sig, cfg);
    ASSERT_EQ(result.events.size(), 4u);
    EXPECT_EQ(result.events[0].level, ServiceLevel::LlcHit);
    EXPECT_EQ(result.events[1].level, ServiceLevel::PrefetchMasked);
    EXPECT_EQ(result.events[2].level, ServiceLevel::Dram);
    EXPECT_EQ(result.events[3].level, ServiceLevel::DramRefresh);
    for (const auto &ev : result.events) {
        EXPECT_EQ(ev.level, expectedLevel(ev.durationNs, cfg));
        EXPECT_GT(ev.levelConfidence, 0.0);
    }
    // Report-side rollup agrees with the per-event labels.
    EXPECT_EQ(result.report.levelEvents[0], 1u);
    EXPECT_EQ(result.report.levelEvents[1], 1u);
    EXPECT_EQ(result.report.levelEvents[2], 1u);
    EXPECT_EQ(result.report.levelEvents[3], 1u);
}

TEST(Classifier, ResilientModeKeepsLevelsAndDegradesConfidence)
{
    // Same planted bands under heavy additive noise with the signal
    // resilience layer on: attribution must still follow the duration
    // bands while the *detection* confidence reflects the noise (some
    // events below 1.0) — the two confidences are orthogonal.
    EmProfConfig cfg = bandConfig();
    cfg.minStallNs = 40.0;
    cfg.minDurationFloorSamples = 2;
    cfg.signal.enabled = true;
    const std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {1000, 12}, {2000, 12}, {3000, 100}, {5000, 12}};
    const auto sig = makeSignal(40e6, dips, 8000, /*noise=*/0.4);
    const auto result = EmProf::analyze(sig, cfg);
    ASSERT_GE(result.events.size(), 3u);

    bool degraded = false;
    for (const auto &ev : result.events) {
        EXPECT_EQ(ev.level, expectedLevel(ev.durationNs, cfg));
        EXPECT_GE(ev.levelConfidence, 0.0);
        EXPECT_LE(ev.levelConfidence, 1.0);
        degraded |= ev.confidence < 1.0;
    }
    EXPECT_TRUE(degraded)
        << "noisy resilient capture should degrade detection "
           "confidence";
}

TEST(Classifier, RecoveredCaptureEventsKeepTheirLevels)
{
    // A truncated capture salvaged by openRecovered must feed the
    // analyzer events whose levels match the surviving dips.
    EmProfConfig cfg = bandConfig();
    cfg.minStallNs = 40.0;
    cfg.minDurationFloorSamples = 2;

    const std::vector<std::pair<std::size_t, std::size_t>> dips = {
        {1000, 12}, {2200, 100}, {5200, 12}};
    const auto series = makeSignal(40e6, dips, 6000);

    const auto path =
        std::string(::testing::TempDir()) + "classifier_rec.emcap";
    store::WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1e9;
    opt.deviceName = "TestDevice";
    opt.chunkSamples = 500;
    std::string error;
    ASSERT_TRUE(store::writeCapture(path, series, opt, nullptr, &error))
        << error;

    // Cut mid-file: chunks covering the first two dips survive.
    store::CaptureReader intact;
    ASSERT_TRUE(intact.open(path, &error)) << error;
    const uint64_t cut_end = intact.chunk(7).fileOffset +
                             intact.chunk(7).storedBytes;
    intact.close();
    const auto cut = path + ".cut";
    {
        std::FILE *src = std::fopen(path.c_str(), "rb");
        ASSERT_NE(src, nullptr);
        std::vector<uint8_t> bytes(cut_end);
        ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), src),
                  bytes.size());
        std::fclose(src);
        std::FILE *dst = std::fopen(cut.c_str(), "wb");
        ASSERT_NE(dst, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), dst),
                  bytes.size());
        std::fclose(dst);
    }

    store::CaptureReader reader;
    ASSERT_TRUE(reader.openRecovered(cut, nullptr, &error)) << error;
    ASSERT_EQ(reader.info().totalSamples, 4000u);

    ParallelAnalyzerConfig pcfg;
    pcfg.threads = 4;
    pcfg.chunkSamples = 500;
    ProfileResult recovered;
    ASSERT_TRUE(analyzeCaptureParallel(reader, cfg, recovered, pcfg,
                                       &error))
        << error;

    ASSERT_EQ(recovered.events.size(), 2u);
    EXPECT_EQ(recovered.events[0].level, ServiceLevel::Dram);
    EXPECT_EQ(recovered.events[1].level, ServiceLevel::DramRefresh);
    for (const auto &ev : recovered.events)
        EXPECT_EQ(ev.level, expectedLevel(ev.durationNs, cfg));

    std::remove(path.c_str());
    std::remove(cut.c_str());
}

} // namespace emprof::profiler
