/**
 * @file
 * Tests for the signal-domain resilience layer: adaptive normaliser,
 * quality-block classification, quarantine, per-event confidence, and
 * the bit-parity of the resilient streaming and parallel paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/impairment.hpp"
#include "dsp/rng.hpp"
#include "profiler/normalizer.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"
#include "profiler/signal_quality.hpp"

namespace emprof::profiler {
namespace {

/** Busy level 1.0 with rectangular dips to `floor`, `width` samples
 *  long, every `period` samples, plus ~1% sensor noise so the blocks
 *  look like a live capture rather than a synthetic constant (an
 *  exactly flat stretch correctly reads as a stuck-sample dropout). */
dsp::TimeSeries
dipSignal(std::size_t n, std::size_t period, std::size_t width,
          float floor_level, double rate = 40e6)
{
    dsp::TimeSeries s;
    s.sampleRateHz = rate;
    s.samples.assign(n, 1.0f);
    for (std::size_t start = period; start + width < n; start += period)
        for (std::size_t i = 0; i < width; ++i)
            s.samples[start + i] = floor_level;
    dsp::Rng rng(0x51c4a1u);
    for (auto &v : s.samples)
        v += static_cast<float>(rng.uniform(-0.01, 0.01));
    return s;
}

/** Short-window config matched to dipSignal(): 1024-sample envelope. */
EmProfConfig
testConfig()
{
    EmProfConfig config;
    config.sampleRateHz = 40e6;
    config.clockHz = 1e9;
    config.normWindowSeconds = 25.6e-6; // 1024 samples at 40 MHz
    return config;
}

// --- adaptive normaliser -------------------------------------------

TEST(BoxSmoother, ComputesTrailingWindowMean)
{
    BoxSmoother box(3);
    EXPECT_DOUBLE_EQ(box.push(3.0), 3.0);
    EXPECT_DOUBLE_EQ(box.push(6.0), 4.5);
    EXPECT_DOUBLE_EQ(box.push(9.0), 6.0);
    EXPECT_DOUBLE_EQ(box.push(0.0), 5.0); // {6, 9, 0}
}

TEST(AdaptiveNormalizer, SubStepJitterLeavesCalibrationUntouched)
{
    AdaptiveNormalizer norm(64, 2, 0.05);
    // Envelope jitter well inside one 5% grid step.
    for (int i = 0; i < 256; ++i)
        norm.push(1.0 + 0.002 * ((i % 3) - 1));
    const double hi = norm.envelopeMax();
    const double lo = norm.envelopeMin();
    for (int i = 0; i < 256; ++i) {
        norm.push(1.0 + 0.002 * ((i % 3) - 1));
        EXPECT_DOUBLE_EQ(norm.envelopeMax(), hi);
        EXPECT_DOUBLE_EQ(norm.envelopeMin(), lo);
    }
}

TEST(AdaptiveNormalizer, TracksSlowGainDriftThroughDips)
{
    // Gain swings +-35% over a period much longer than the envelope
    // window; dips must still normalise near 0 and busy near 1 at
    // every point of the swing.
    AdaptiveNormalizer norm(1024, 2, 0.05);
    double worst_busy = 1.0, worst_dip = 0.0;
    for (std::size_t i = 0; i < 50000; ++i) {
        const double gain =
            1.0 + 0.35 * std::sin(2.0 * 3.14159265358979 *
                                  static_cast<double>(i) / 20000.0);
        const bool in_dip = (i % 400) < 8 && i > 2048;
        const double x = gain * (in_dip ? 0.1 : 1.0);
        const double v = norm.push(x);
        if (i > 2048) {
            if (in_dip)
                worst_dip = std::max(worst_dip, v);
            else
                worst_busy = std::min(worst_busy, v);
        }
    }
    EXPECT_LT(worst_dip, 0.22);
    EXPECT_GT(worst_busy, 0.38);
}

// --- block classification ------------------------------------------

SignalBlock
accumulate(const std::vector<double> &xs, const SignalQualityConfig &cfg)
{
    BlockAccumulator acc;
    acc.begin(0);
    for (double x : xs)
        acc.push(x);
    return acc.finish(xs.size(), cfg);
}

TEST(BlockAccumulator, CleanHighSnrBlock)
{
    dsp::Rng rng(1u);
    std::vector<double> xs;
    for (int i = 0; i < 1024; ++i)
        xs.push_back(1.0 + rng.uniform(-0.001, 0.001));
    const auto b = accumulate(xs, SignalQualityConfig{});
    EXPECT_EQ(b.cls, BlockClass::Clean);
    EXPECT_EQ(b.reason, QuarantineReason::None);
    EXPECT_GT(b.snrDb, 30.0);
}

TEST(BlockAccumulator, ClippingPlateauQuarantines)
{
    std::vector<double> xs;
    for (int i = 0; i < 1024; ++i)
        xs.push_back(i % 8 == 0 ? 2.0 : 1.0 + 0.01 * (i % 3));
    const auto b = accumulate(xs, SignalQualityConfig{});
    EXPECT_EQ(b.cls, BlockClass::Unusable);
    EXPECT_EQ(b.reason, QuarantineReason::Clipping);
}

TEST(BlockAccumulator, DropoutRunQuarantines)
{
    dsp::Rng rng(2u);
    std::vector<double> xs;
    for (int i = 0; i < 1024; ++i)
        xs.push_back(i < 100 ? 0.0 : 1.0 + rng.uniform(-0.01, 0.01));
    const auto b = accumulate(xs, SignalQualityConfig{});
    EXPECT_EQ(b.cls, BlockClass::Unusable);
    EXPECT_EQ(b.reason, QuarantineReason::Dropout);
}

TEST(BlockAccumulator, NoiseSwampedBlockQuarantines)
{
    // Mean ~0.05 with first differences ~0.2: SNR well below 3 dB.
    std::vector<double> xs;
    for (int i = 0; i < 1024; ++i)
        xs.push_back(i % 2 == 0 ? 0.0 : 0.2 + 1e-4 * (i % 11));
    const auto b = accumulate(xs, SignalQualityConfig{});
    EXPECT_LT(b.snrDb, 3.0);
    // Alternating exact zeros also read as dropouts; either unusable
    // reason is a correct quarantine.  Force the SNR reason with a
    // continuous dither that keeps the zero/repeat counters silent.
    dsp::Rng rng(3u);
    std::vector<double> dithered;
    for (int i = 0; i < 1024; ++i)
        dithered.push_back(0.03 + rng.uniform(-0.049, 0.049));
    const auto d = accumulate(dithered, SignalQualityConfig{});
    EXPECT_EQ(d.cls, BlockClass::Unusable);
    EXPECT_EQ(d.reason, QuarantineReason::LowSnr);
}

TEST(BlockAccumulator, ModerateSnrDegradesOnly)
{
    // ~18 dB SNR: below full confidence, above the degraded cut of 10.
    SignalQualityConfig cfg;
    cfg.degradedSnrDb = 20.0;
    dsp::Rng rng(4u);
    std::vector<double> xs;
    for (int i = 0; i < 1024; ++i)
        xs.push_back(1.0 + rng.uniform(-0.3, 0.3));
    const auto b = accumulate(xs, cfg);
    EXPECT_EQ(b.cls, BlockClass::Degraded);
    EXPECT_EQ(b.reason, QuarantineReason::None);
}

TEST(SignalQualityConfigValidate, RejectsBadRanges)
{
    SignalQualityConfig cfg;
    EXPECT_TRUE(cfg.validate());
    cfg.maxClipFraction = 1.5;
    EXPECT_FALSE(cfg.validate());
    cfg = SignalQualityConfig{};
    cfg.driftToleranceFraction = 0.0;
    EXPECT_FALSE(cfg.validate());
    cfg = SignalQualityConfig{};
    cfg.degradedSnrDb = cfg.minSnrDb - 1.0;
    std::string why;
    EXPECT_FALSE(cfg.validate(&why));
    EXPECT_FALSE(why.empty());
}

// --- quarantine + confidence pass ----------------------------------

TEST(ApplySignalQuality, DropsEventsTouchingUnusableBlocks)
{
    SignalQualityConfig cfg;
    cfg.enabled = true;
    DipDetectorConfig det;
    det.minDurationSamples = 4;

    std::vector<SignalBlock> blocks(3);
    blocks[0] = {};
    blocks[0].begin = 0;
    blocks[0].end = 100;
    blocks[0].cls = BlockClass::Clean;
    blocks[0].snrDb = 40.0;
    blocks[1] = {};
    blocks[1].begin = 100;
    blocks[1].end = 200;
    blocks[1].cls = BlockClass::Unusable;
    blocks[1].reason = QuarantineReason::Dropout;
    blocks[2] = {};
    blocks[2].begin = 200;
    blocks[2].end = 300;
    blocks[2].cls = BlockClass::Degraded;
    blocks[2].snrDb = 15.0;

    std::vector<StallEvent> events(3);
    events[0].startSample = 10;
    events[0].endSample = 30; // clean: kept
    events[1].startSample = 95;
    events[1].endSample = 105; // touches unusable: dropped
    events[2].startSample = 250;
    events[2].endSample = 260; // degraded: kept, reduced confidence
    for (auto &ev : events)
        ev.depth = 0.0;

    const auto summary =
        applySignalQuality(events, blocks, det, cfg, 300);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].startSample, 10u);
    EXPECT_EQ(events[1].startSample, 250u);
    EXPECT_EQ(summary.eventsDropped, 1u);
    EXPECT_EQ(summary.unusableBlocks, 1u);
    EXPECT_EQ(summary.quarantinedDropout, 1u);
    EXPECT_NEAR(summary.coverageFraction, 200.0 / 300.0, 1e-12);
    // Clean block, max margin, duration 21 >= 2*4 -> full confidence.
    EXPECT_DOUBLE_EQ(events[0].confidence, 1.0);
    // Degraded block at 15 dB: SNR factor 15/30.
    EXPECT_NEAR(events[1].confidence, 0.5, 1e-12);
    EXPECT_NEAR(summary.meanConfidence, 0.75, 1e-12);
}

TEST(ApplySignalQuality, ConfidenceScalesWithMarginAndDuration)
{
    SignalQualityConfig cfg;
    cfg.enabled = true;
    DipDetectorConfig det; // exit 0.38, minDuration 4
    det.minDurationSamples = 4;

    std::vector<SignalBlock> blocks(1);
    blocks[0].begin = 0;
    blocks[0].end = 1000;
    blocks[0].cls = BlockClass::Clean;
    blocks[0].snrDb = 60.0; // saturates the SNR factor

    std::vector<StallEvent> events(2);
    events[0].startSample = 10;
    events[0].endSample = 13; // duration 4 = minimum -> factor 0.5
    events[0].depth = 0.0;    // full margin
    events[1].startSample = 100;
    events[1].endSample = 120; // long -> factor 1
    events[1].depth = det.exitThreshold / 2.0; // margin factor 0.5
    applySignalQuality(events, blocks, det, cfg, 1000);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NEAR(events[0].confidence, 0.5, 1e-12);
    EXPECT_NEAR(events[1].confidence, 0.5, 1e-12);
}

TEST(EmProfConfigDerived, ResilienceRelaxesDetectorDuration)
{
    EmProfConfig config = testConfig();
    EXPECT_EQ(config.minDurationSamples(), 4u);
    EXPECT_EQ(config.effectiveMinDurationSamples(), 4u);
    EXPECT_EQ(config.haloSamples(), config.normWindowSamples() - 1);

    config.signal.enabled = true;
    EXPECT_EQ(config.smootherSamples(), 2u);
    EXPECT_EQ(config.effectiveMinDurationSamples(), 3u);
    EXPECT_EQ(config.qualityBlockSamples(), config.normWindowSamples());
    EXPECT_EQ(config.haloSamples(), config.normWindowSamples());
}

// --- end-to-end resilience -----------------------------------------

void
expectSameEvents(const std::vector<StallEvent> &a,
                 const std::vector<StallEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].startSample, b[i].startSample) << i;
        EXPECT_EQ(a[i].endSample, b[i].endSample) << i;
        EXPECT_EQ(a[i].depth, b[i].depth) << i;
        EXPECT_EQ(a[i].durationNs, b[i].durationNs) << i;
        EXPECT_EQ(a[i].stallCycles, b[i].stallCycles) << i;
        EXPECT_EQ(a[i].confidence, b[i].confidence) << i;
        EXPECT_EQ(a[i].kind, b[i].kind) << i;
    }
}

TEST(ResilientParallel, BitIdenticalToResilientStreaming)
{
    auto series = dipSignal(32768, 400, 8, 0.1f);
    dsp::ImpairmentSpec impair;
    ASSERT_TRUE(dsp::parseImpairmentSpec(
        "snr=25,drift=0.25:0.0002,impulse=5e-5:6,seed=77", impair));
    dsp::applyImpairments(series, impair);

    EmProfConfig config = testConfig();
    config.signal.enabled = true;

    const auto streaming = EmProf::analyze(series, config);
    for (std::size_t threads : {2u, 8u}) {
        for (std::size_t chunk : {512u, 1000u, 4096u}) {
            ParallelAnalyzerConfig pcfg;
            pcfg.threads = threads;
            pcfg.chunkSamples = chunk;
            const auto parallel =
                analyzeParallel(series, config, pcfg);
            expectSameEvents(streaming.events, parallel.events);
            EXPECT_EQ(streaming.report.quality.totalBlocks,
                      parallel.report.quality.totalBlocks);
            EXPECT_EQ(streaming.report.quality.unusableBlocks,
                      parallel.report.quality.unusableBlocks);
            EXPECT_EQ(streaming.report.quality.eventsDropped,
                      parallel.report.quality.eventsDropped);
            EXPECT_EQ(streaming.report.quality.coverageFraction,
                      parallel.report.quality.coverageFraction);
            EXPECT_EQ(streaming.report.quality.meanConfidence,
                      parallel.report.quality.meanConfidence);
        }
    }
}

TEST(ResilientAnalysis, QuarantinedSpanEmitsNoEvents)
{
    auto series = dipSignal(32768, 400, 8, 0.1f);
    // Kill a span outright: a stuck-at-zero stretch covering several
    // dips.  Without quarantine it reads as one giant stall.
    const std::size_t kill_begin = 10000, kill_end = 14000;
    for (std::size_t i = kill_begin; i < kill_end; ++i)
        series.samples[i] = 0.0f;

    EmProfConfig config = testConfig();
    config.signal.enabled = true;
    const auto result = EmProf::analyze(series, config);

    EXPECT_GT(result.events.size(), 0u);
    const std::size_t q = config.qualityBlockSamples();
    const uint64_t quarantine_lo = (kill_begin / q) * q;
    const uint64_t quarantine_hi = ((kill_end + q - 1) / q) * q;
    for (const auto &ev : result.events) {
        EXPECT_TRUE(ev.endSample < quarantine_lo ||
                    ev.startSample >= quarantine_hi)
            << "event [" << ev.startSample << ", " << ev.endSample
            << "] overlaps the quarantined span";
    }
    EXPECT_TRUE(result.report.quality.enabled);
    EXPECT_GT(result.report.quality.unusableBlocks, 0u);
    EXPECT_GT(result.report.quality.eventsDropped, 0u);
    EXPECT_LT(result.report.quality.coverageFraction, 1.0);
    EXPECT_GT(result.report.quality.coverageFraction, 0.8);
}

TEST(ResilientAnalysis, CleanSignalKeepsFullCoverageAndConfidence)
{
    auto series = dipSignal(16384, 400, 8, 0.1f);
    EmProfConfig config = testConfig();
    config.signal.enabled = true;
    const auto result = EmProf::analyze(series, config);
    EXPECT_GT(result.events.size(), 30u);
    EXPECT_DOUBLE_EQ(result.report.quality.coverageFraction, 1.0);
    EXPECT_EQ(result.report.quality.unusableBlocks, 0u);
    for (const auto &ev : result.events)
        EXPECT_GT(ev.confidence, 0.5) << "at " << ev.startSample;
}

TEST(ResilientAnalysis, DisabledLayerReportsInertQuality)
{
    auto series = dipSignal(8192, 400, 8, 0.1f);
    const auto result = EmProf::analyze(series, testConfig());
    EXPECT_FALSE(result.report.quality.enabled);
    EXPECT_DOUBLE_EQ(result.report.quality.coverageFraction, 1.0);
    for (const auto &ev : result.events)
        EXPECT_DOUBLE_EQ(ev.confidence, 1.0);
}

} // namespace
} // namespace emprof::profiler
