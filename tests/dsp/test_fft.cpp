/**
 * @file
 * Unit tests for the radix-2 FFT.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"

namespace emprof::dsp {
namespace {

TEST(FftHelpers, PowerOfTwoChecks)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1000));
}

TEST(FftHelpers, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<std::complex<double>> data(64, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fft(data);
    for (const auto &x : data) {
        EXPECT_NEAR(x.real(), 1.0, 1e-12);
        EXPECT_NEAR(x.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, DcGivesSingleBin)
{
    std::vector<std::complex<double>> data(32, {2.0, 0.0});
    fft(data);
    EXPECT_NEAR(data[0].real(), 64.0, 1e-10);
    for (std::size_t i = 1; i < data.size(); ++i)
        EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-10);
}

class FftSizes : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(FftSizes, SinePeaksAtItsBin)
{
    const std::size_t n = GetParam();
    const std::size_t k = n / 8;
    std::vector<std::complex<double>> data(n);
    for (std::size_t i = 0; i < n; ++i) {
        data[i] = {std::sin(2.0 * std::numbers::pi *
                            static_cast<double>(k * i) /
                            static_cast<double>(n)),
                   0.0};
    }
    fft(data);
    // Peak of n/2 at bins k and n-k.
    EXPECT_NEAR(std::abs(data[k]), static_cast<double>(n) / 2, 1e-8);
    EXPECT_NEAR(std::abs(data[n - k]), static_cast<double>(n) / 2, 1e-8);
    for (std::size_t i = 0; i < n; ++i) {
        if (i != k && i != n - k)
            ASSERT_NEAR(std::abs(data[i]), 0.0, 1e-8) << "bin " << i;
    }
}

TEST_P(FftSizes, RoundTripRecoversInput)
{
    const std::size_t n = GetParam();
    std::vector<std::complex<double>> data(n), orig(n);
    for (std::size_t i = 0; i < n; ++i) {
        orig[i] = {std::cos(0.1 * static_cast<double>(i)),
                   std::sin(0.37 * static_cast<double>(i))};
        data[i] = orig[i];
    }
    fft(data);
    ifft(data);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
    }
}

TEST_P(FftSizes, ParsevalHolds)
{
    const std::size_t n = GetParam();
    std::vector<std::complex<double>> data(n);
    double time_energy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        data[i] = {std::sin(0.3 * static_cast<double>(i)), 0.2};
        time_energy += std::norm(data[i]);
    }
    fft(data);
    double freq_energy = 0.0;
    for (const auto &x : data)
        freq_energy += std::norm(x);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(16, 64, 256, 1024));

TEST(MagnitudeSpectrum, SizeAndZeroPadding)
{
    std::vector<double> frame(100, 1.0);
    const auto mags = magnitudeSpectrum(frame, 128);
    EXPECT_EQ(mags.size(), 65u);
    // DC bin carries the frame sum.
    EXPECT_NEAR(mags[0], 100.0, 1e-9);
}

} // namespace
} // namespace emprof::dsp
