/**
 * @file
 * Unit tests for window functions.
 */

#include <gtest/gtest.h>

#include "dsp/window.hpp"

namespace emprof::dsp {
namespace {

class WindowKinds : public ::testing::TestWithParam<WindowKind>
{};

TEST_P(WindowKinds, HasRequestedLength)
{
    for (std::size_t n : {1u, 2u, 5u, 64u, 1023u})
        EXPECT_EQ(makeWindow(GetParam(), n).size(), n);
}

TEST_P(WindowKinds, CoefficientsInUnitRange)
{
    const auto w = makeWindow(GetParam(), 257);
    for (double c : w) {
        EXPECT_GE(c, -1e-12);
        EXPECT_LE(c, 1.0 + 1e-12);
    }
}

TEST_P(WindowKinds, SymmetricAboutCentre)
{
    const auto w = makeWindow(GetParam(), 129);
    for (std::size_t i = 0; i < w.size() / 2; ++i)
        EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
}

TEST_P(WindowKinds, PeaksAtCentre)
{
    const auto w = makeWindow(GetParam(), 101);
    const double centre = w[50];
    for (double c : w)
        EXPECT_LE(c, centre + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowKinds,
                         ::testing::Values(WindowKind::Rectangular,
                                           WindowKind::Hann,
                                           WindowKind::Hamming,
                                           WindowKind::Blackman));

TEST(Window, RectangularIsAllOnes)
{
    for (double c : makeWindow(WindowKind::Rectangular, 31))
        EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Window, HannEndsAtZero)
{
    const auto w = makeWindow(WindowKind::Hann, 65);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
    EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingEndsAboveZero)
{
    const auto w = makeWindow(WindowKind::Hamming, 65);
    EXPECT_NEAR(w.front(), 0.08, 1e-9);
}

TEST(Window, LengthOneIsUnity)
{
    const auto w = makeWindow(WindowKind::Blackman, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(Window, SumHelpers)
{
    const auto w = makeWindow(WindowKind::Rectangular, 10);
    EXPECT_DOUBLE_EQ(windowSum(w), 10.0);
    EXPECT_DOUBLE_EQ(windowPowerSum(w), 10.0);

    const auto h = makeWindow(WindowKind::Hann, 101);
    // Hann window: sum ~ N/2, power sum ~ 3N/8.
    EXPECT_NEAR(windowSum(h) / 101.0, 0.5, 0.01);
    EXPECT_NEAR(windowPowerSum(h) / 101.0, 0.375, 0.01);
}

} // namespace
} // namespace emprof::dsp
