/**
 * @file
 * Unit tests for the STFT / spectrogram.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/stft.hpp"

namespace emprof::dsp {
namespace {

TimeSeries
makeTone(double freq_hz, double rate_hz, std::size_t n)
{
    TimeSeries s;
    s.sampleRateHz = rate_hz;
    s.samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        s.samples.push_back(static_cast<Sample>(
            std::sin(2.0 * std::numbers::pi * freq_hz *
                     static_cast<double>(i) / rate_hz)));
    }
    return s;
}

TEST(Stft, FrameCountMatchesHopMath)
{
    auto tone = makeTone(100.0, 1000.0, 5000);
    StftConfig cfg;
    cfg.frameSize = 512;
    cfg.hop = 256;
    const auto spec = stft(tone, cfg);
    EXPECT_EQ(spec.numFrames, (5000 - 512) / 256 + 1);
    EXPECT_EQ(spec.numBins, 257u);
    EXPECT_EQ(spec.data.size(), spec.numFrames * spec.numBins);
}

TEST(Stft, ShortSignalYieldsNoFrames)
{
    auto tone = makeTone(100.0, 1000.0, 100);
    StftConfig cfg;
    cfg.frameSize = 512;
    const auto spec = stft(tone, cfg);
    EXPECT_EQ(spec.numFrames, 0u);
}

TEST(Stft, TonePeaksAtCorrectBin)
{
    const double rate = 1000.0;
    const double freq = 125.0;
    auto tone = makeTone(freq, rate, 8192);
    StftConfig cfg;
    cfg.frameSize = 1024;
    cfg.hop = 512;
    const auto spec = stft(tone, cfg);
    ASSERT_GT(spec.numFrames, 0u);

    // Find the strongest non-DC bin of a middle frame.
    const auto frame = spec.frame(spec.numFrames / 2);
    std::size_t best = 1;
    for (std::size_t b = 1; b < frame.size(); ++b) {
        if (frame[b] > frame[best])
            best = b;
    }
    EXPECT_NEAR(spec.binFrequency(best), freq, rate / 1024.0 + 1e-9);
}

TEST(Stft, FrameTimesIncrease)
{
    auto tone = makeTone(50.0, 1000.0, 4096);
    StftConfig cfg;
    cfg.frameSize = 256;
    cfg.hop = 128;
    const auto spec = stft(tone, cfg);
    for (std::size_t f = 1; f < spec.numFrames; ++f)
        EXPECT_GT(spec.frameTime(f), spec.frameTime(f - 1));
}

TEST(SpectralDistance, IdenticalSpectraAreZero)
{
    std::vector<double> a = {0.0, 1.0, 2.0, 3.0};
    EXPECT_NEAR(spectralDistance(a, a), 0.0, 1e-12);
}

TEST(SpectralDistance, ScaleInvariant)
{
    std::vector<double> a = {0.0, 1.0, 2.0, 3.0};
    std::vector<double> b = {5.0, 7.0, 14.0, 21.0}; // 7x in non-DC bins
    EXPECT_NEAR(spectralDistance(a, b), 0.0, 1e-12);
}

TEST(SpectralDistance, OrthogonalSpectraAreOne)
{
    std::vector<double> a = {0.0, 1.0, 0.0, 0.0};
    std::vector<double> b = {0.0, 0.0, 1.0, 0.0};
    EXPECT_NEAR(spectralDistance(a, b), 1.0, 1e-12);
}

TEST(SpectralDistance, DifferentTonesAreFar)
{
    const double rate = 1000.0;
    StftConfig cfg;
    cfg.frameSize = 512;
    cfg.hop = 512;
    const auto spec_a = stft(makeTone(100.0, rate, 2048), cfg);
    const auto spec_b = stft(makeTone(230.0, rate, 2048), cfg);
    ASSERT_GT(spec_a.numFrames, 0u);
    ASSERT_GT(spec_b.numFrames, 0u);
    EXPECT_GT(spectralDistance(spec_a.frame(0), spec_b.frame(0)), 0.5);
}

} // namespace
} // namespace emprof::dsp
