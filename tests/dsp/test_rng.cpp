/**
 * @file
 * Unit tests for the xoshiro256** RNG wrapper.
 */

#include <gtest/gtest.h>

#include <set>

#include "dsp/rng.hpp"

namespace emprof::dsp {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(SplitMix64, ProducesDistinctValues)
{
    uint64_t state = 42;
    const uint64_t a = splitMix64(state);
    const uint64_t b = splitMix64(state);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace emprof::dsp
