/**
 * @file
 * Parity tests for the batch sliding-min/max SIMD kernel.
 *
 * Three contracts are checked:
 *  1. scalar-vs-AVX2 bit parity on *every* input, including NaN and
 *     denormals (the two variants are the same templated body, but the
 *     tests guard the lane policies against drift);
 *  2. batch-vs-streaming MinMaxFilter bit parity on finite inputs
 *     (selection-order independence of window extrema);
 *  3. exhaustive window sweep 1..257 with unaligned lengths so every
 *     block/tail/sentinel combination is exercised.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "dsp/batch_minmax.hpp"
#include "dsp/minmax_filter.hpp"
#include "dsp/rng.hpp"

namespace {

using emprof::dsp::MinMaxFilter;
using emprof::dsp::SimdVariant;
using emprof::dsp::slidingMinMaxBatch;
using emprof::dsp::slidingMinMaxBatchVariant;

template <typename T>
std::vector<T>
randomSeries(std::size_t n, uint64_t seed)
{
    emprof::dsp::Rng rng(seed);
    std::vector<T> x(n);
    for (auto &v : x)
        v = static_cast<T>(rng.uniform() * 2.0 - 0.5);
    return x;
}

/** Bitwise equality (distinguishes NaN payloads and signed zeros). */
template <typename T>
bool
sameBits(T a, T b)
{
    return std::memcmp(&a, &b, sizeof(T)) == 0;
}

template <typename T>
void
expectBitEqual(const std::vector<T> &a, const std::vector<T> &b,
               const char *what, std::size_t window)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!sameBits(a[i], b[i])) {
            FAIL() << what << " mismatch at i=" << i << " window=" << window
                   << ": " << a[i] << " vs " << b[i];
        }
    }
}

template <typename T>
void
runVariant(SimdVariant v, const std::vector<T> &x, std::size_t w,
           std::vector<T> &mn, std::vector<T> &mx)
{
    mn.assign(x.size(), T(0));
    mx.assign(x.size(), T(0));
    slidingMinMaxBatchVariant(v, x.data(), x.size(), w, mn.data(), mx.data());
}

template <typename T>
void
runStreaming(const std::vector<T> &x, std::size_t w, std::vector<T> &mn,
             std::vector<T> &mx)
{
    mn.resize(x.size());
    mx.resize(x.size());
    MinMaxFilter<T> f(w);
    for (std::size_t i = 0; i < x.size(); ++i) {
        f.push(x[i]);
        mn[i] = f.min();
        mx[i] = f.max();
    }
}

template <typename T>
void
checkAllWindows(const std::vector<T> &x)
{
    std::vector<T> smn, smx, vmn, vmx, fmn, fmx;
    for (std::size_t w = 1; w <= 257; ++w) {
        runVariant(SimdVariant::Scalar, x, w, smn, smx);
        // Contract 2: scalar batch == streaming filter (finite input).
        runStreaming(x, w, fmn, fmx);
        expectBitEqual(smn, fmn, "batch-vs-stream min", w);
        expectBitEqual(smx, fmx, "batch-vs-stream max", w);
        if (emprof::dsp::avx2Available()) {
            runVariant(SimdVariant::Avx2, x, w, vmn, vmx);
            expectBitEqual(smn, vmn, "scalar-vs-avx2 min", w);
            expectBitEqual(smx, vmx, "scalar-vs-avx2 max", w);
        }
    }
}

TEST(BatchMinMax, ExhaustiveWindowSweepFloat)
{
    // 1031 is prime, so every window in 1..257 hits a partial final
    // block and an unaligned vector tail somewhere.
    checkAllWindows(randomSeries<float>(1031, 0xb01d));
}

TEST(BatchMinMax, ExhaustiveWindowSweepDouble)
{
    checkAllWindows(randomSeries<double>(1031, 0x5eed));
}

TEST(BatchMinMax, ShortSeriesAllLengths)
{
    // Lengths 0..40 x windows 1..40: warm-up-only and sub-vector cases.
    for (std::size_t n = 0; n <= 40; ++n) {
        const auto x = randomSeries<float>(n, 0x1000 + n);
        std::vector<float> smn, smx, fmn, fmx, vmn, vmx;
        for (std::size_t w = 1; w <= 40; ++w) {
            runVariant(SimdVariant::Scalar, x, w, smn, smx);
            runStreaming(x, w, fmn, fmx);
            expectBitEqual(smn, fmn, "short batch-vs-stream min", w);
            expectBitEqual(smx, fmx, "short batch-vs-stream max", w);
            if (emprof::dsp::avx2Available()) {
                runVariant(SimdVariant::Avx2, x, w, vmn, vmx);
                expectBitEqual(smn, vmn, "short scalar-vs-avx2 min", w);
                expectBitEqual(smx, vmx, "short scalar-vs-avx2 max", w);
            }
        }
    }
}

TEST(BatchMinMax, NanAndDenormalParityScalarVsAvx2)
{
    if (!emprof::dsp::avx2Available())
        GTEST_SKIP() << "AVX2 not available; nothing to compare";
    auto x = randomSeries<float>(733, 0xdead);
    emprof::dsp::Rng rng(0xf00d);
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    const float denorm = std::numeric_limits<float>::denorm_min();
    for (auto &v : x) {
        const double u = rng.uniform();
        if (u < 0.05)
            v = qnan;
        else if (u < 0.10)
            v = denorm * float(1.0 + 100.0 * rng.uniform());
        else if (u < 0.13)
            v = -0.0f;
        else if (u < 0.16)
            v = std::numeric_limits<float>::infinity();
        else if (u < 0.19)
            v = -std::numeric_limits<float>::infinity();
    }
    std::vector<float> smn, smx, vmn, vmx;
    for (std::size_t w : {1u, 2u, 3u, 7u, 8u, 9u, 16u, 31u, 64u, 257u}) {
        runVariant(SimdVariant::Scalar, x, w, smn, smx);
        runVariant(SimdVariant::Avx2, x, w, vmn, vmx);
        expectBitEqual(smn, vmn, "nan scalar-vs-avx2 min", w);
        expectBitEqual(smx, vmx, "nan scalar-vs-avx2 max", w);
    }
}

TEST(BatchMinMax, DenormalsMatchStreaming)
{
    // Denormals are finite, so batch must match streaming bit for bit.
    std::vector<double> x(300);
    emprof::dsp::Rng rng(0xabcd);
    for (auto &v : x)
        v = std::numeric_limits<double>::denorm_min() *
            double(1 + int(rng.uniform() * 1000.0));
    std::vector<double> smn, smx, fmn, fmx;
    for (std::size_t w : {1u, 3u, 8u, 17u, 100u}) {
        runVariant(SimdVariant::Scalar, x, w, smn, smx);
        runStreaming(x, w, fmn, fmx);
        expectBitEqual(smn, fmn, "denorm batch-vs-stream min", w);
        expectBitEqual(smx, fmx, "denorm batch-vs-stream max", w);
        if (emprof::dsp::avx2Available()) {
            std::vector<double> vmn, vmx;
            runVariant(SimdVariant::Avx2, x, w, vmn, vmx);
            expectBitEqual(smn, vmn, "denorm scalar-vs-avx2 min", w);
        }
    }
}

TEST(BatchMinMax, DispatchReportsAConsistentVariant)
{
    const SimdVariant v = emprof::dsp::activeSimdVariant();
    if (v == SimdVariant::Avx2) {
        EXPECT_TRUE(emprof::dsp::avx2Available());
    }
    EXPECT_STREQ(emprof::dsp::simdVariantName(SimdVariant::Scalar), "scalar");
    EXPECT_STREQ(emprof::dsp::simdVariantName(SimdVariant::Avx2), "avx2");
}

} // namespace
