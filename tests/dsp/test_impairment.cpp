/**
 * @file
 * Tests for the seeded RF-impairment injector: spec grammar, exact
 * determinism, stream independence, and the statistical behaviour of
 * each impairment.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dsp/impairment.hpp"

namespace emprof::dsp {
namespace {

TimeSeries
constantSeries(std::size_t n, float level, double rate = 40e6)
{
    TimeSeries s;
    s.sampleRateHz = rate;
    s.samples.assign(n, level);
    return s;
}

// --- spec grammar ---------------------------------------------------

TEST(ImpairmentSpec, DefaultIsInert)
{
    ImpairmentSpec spec;
    EXPECT_FALSE(spec.any());
    EXPECT_TRUE(spec.validate());
}

TEST(ImpairmentParse, AcceptsFullGrammar)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec(
        "snr=20,drift=0.2:0.1,impulse=1e-3:5,dropout=1e-4:64:hold,"
        "clip=2.5,hum=50:0.1,ref=1.5,seed=7",
        spec));
    EXPECT_DOUBLE_EQ(spec.snrDb, 20.0);
    EXPECT_DOUBLE_EQ(spec.gainDriftFraction, 0.2);
    EXPECT_DOUBLE_EQ(spec.gainDriftPeriodSeconds, 0.1);
    EXPECT_DOUBLE_EQ(spec.impulseRate, 1e-3);
    EXPECT_DOUBLE_EQ(spec.impulseAmplitude, 5.0);
    EXPECT_DOUBLE_EQ(spec.dropoutRate, 1e-4);
    EXPECT_EQ(spec.dropoutLenSamples, 64u);
    EXPECT_TRUE(spec.dropoutHold);
    EXPECT_DOUBLE_EQ(spec.clipLevel, 2.5);
    EXPECT_DOUBLE_EQ(spec.humHz, 50.0);
    EXPECT_DOUBLE_EQ(spec.humDepth, 0.1);
    EXPECT_DOUBLE_EQ(spec.referenceLevel, 1.5);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_TRUE(spec.any());
}

TEST(ImpairmentParse, PresetsAndOverrides)
{
    ImpairmentSpec mild;
    ASSERT_TRUE(parseImpairmentSpec("mild", mild));
    EXPECT_TRUE(mild.any());
    EXPECT_DOUBLE_EQ(mild.snrDb, 30.0);

    // Later tokens override earlier ones.
    ImpairmentSpec eased;
    ASSERT_TRUE(parseImpairmentSpec("harsh,snr=35", eased));
    EXPECT_DOUBLE_EQ(eased.snrDb, 35.0);
    EXPECT_GT(eased.impulseRate, 0.0); // rest of harsh still there

    ImpairmentSpec clean;
    ASSERT_TRUE(parseImpairmentSpec("harsh,clean", clean));
    EXPECT_FALSE(clean.any());
}

TEST(ImpairmentParse, RejectsGarbage)
{
    ImpairmentSpec spec;
    std::string why;
    EXPECT_FALSE(parseImpairmentSpec("bogus", spec, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(parseImpairmentSpec("snr=abc", spec));
    EXPECT_FALSE(parseImpairmentSpec("snr=", spec));
    EXPECT_FALSE(parseImpairmentSpec("drift=0.2:0", spec));
    EXPECT_FALSE(parseImpairmentSpec("impulse=2", spec)); // rate > 1
    EXPECT_FALSE(parseImpairmentSpec("dropout=0.5:0", spec));
    EXPECT_FALSE(parseImpairmentSpec("clip=0", spec));
    EXPECT_FALSE(parseImpairmentSpec("seed=-3", spec));
    EXPECT_FALSE(parseImpairmentSpec("", spec));
}

TEST(ImpairmentParse, FailedParseLeavesOutputUntouched)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec("snr=12", spec));
    ImpairmentSpec copy = spec;
    EXPECT_FALSE(parseImpairmentSpec("snr=12,clip=0", spec));
    EXPECT_DOUBLE_EQ(spec.snrDb, copy.snrDb);
    EXPECT_DOUBLE_EQ(spec.clipLevel, copy.clipLevel);
}

// --- determinism ----------------------------------------------------

TEST(ImpairmentInjector, DeterministicUnderFixedSeed)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec(
        "snr=15,drift=0.2:0.0001,impulse=1e-3:6,dropout=1e-4:16,"
        "clip=2,hum=50:0.05,ref=1,seed=42",
        spec));

    auto a = constantSeries(8192, 1.0f);
    auto b = constantSeries(8192, 1.0f);
    applyImpairments(a, spec);
    applyImpairments(b, spec);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        ASSERT_EQ(a.samples[i], b.samples[i]) << "sample " << i;

    spec.seed = 43;
    auto c = constantSeries(8192, 1.0f);
    applyImpairments(c, spec);
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        diffs += a.samples[i] != c.samples[i];
    EXPECT_GT(diffs, a.samples.size() / 2);
}

TEST(ImpairmentInjector, StreamingMatchesBatchWithExplicitReference)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec("snr=20,impulse=1e-3:4,ref=1,seed=9",
                                    spec));
    auto batch = constantSeries(4096, 0.8f);
    applyImpairments(batch, spec);

    ImpairmentInjector inj(spec, 40e6);
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(inj.push(0.8f), batch.samples[i]) << "sample " << i;
}

TEST(ImpairmentInjector, EnablingOneImpairmentDoesNotPerturbAnother)
{
    // The AWGN stream must be the same sequence whether or not hum is
    // also enabled: each impairment derives its own RNG stream from
    // the master seed.  Hum is deterministic (no RNG), so the outputs
    // differ exactly by the hum term.
    ImpairmentSpec noise_only, with_hum;
    ASSERT_TRUE(parseImpairmentSpec("snr=20,ref=1,seed=3", noise_only));
    ASSERT_TRUE(parseImpairmentSpec("snr=20,hum=50:0.01,ref=1,seed=3",
                                    with_hum));
    const double rate = 1e4; // several hum cycles over the series
    ImpairmentInjector a(noise_only, rate), b(with_hum, rate);
    for (int i = 0; i < 4096; ++i) {
        const float va = a.push(1.0f);
        const float vb = b.push(1.0f);
        // Same noise draw underneath: difference is bounded by the hum
        // amplitude (plus float rounding), not by the noise sigma.
        EXPECT_NEAR(va, vb, 0.0101f) << "sample " << i;
    }
}

// --- per-impairment behaviour --------------------------------------

TEST(ImpairmentInjector, AwgnDeliversRequestedSnr)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec("snr=20,ref=1,seed=1", spec));
    auto s = constantSeries(65536, 1.0f);
    applyImpairments(s, spec);
    double sum = 0.0, sumsq = 0.0;
    for (float v : s.samples) {
        sum += v;
        sumsq += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(s.samples.size());
    const double mean = sum / n;
    const double sigma = std::sqrt(sumsq / n - mean * mean);
    // 20 dB below a reference of 1.0 -> sigma 0.1.  The floor-at-zero
    // only bites ~1e-23 of draws at this SNR.
    EXPECT_NEAR(mean, 1.0, 0.01);
    EXPECT_NEAR(sigma, 0.1, 0.01);
}

TEST(ImpairmentInjector, BatchDerivesReferenceFromRms)
{
    // Same SNR, twice the signal level -> twice the noise sigma.
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec("snr=20,seed=1", spec));
    ImpairmentStats stats;
    auto s = constantSeries(16384, 2.0f);
    applyImpairments(s, spec, &stats);
    EXPECT_NEAR(stats.referenceLevel, 2.0, 1e-6);
    double sum = 0.0, sumsq = 0.0;
    for (float v : s.samples) {
        sum += v;
        sumsq += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(s.samples.size());
    const double mean = sum / n;
    EXPECT_NEAR(std::sqrt(sumsq / n - mean * mean), 0.2, 0.02);
}

TEST(ImpairmentInjector, DropoutZeroAndHold)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(
        parseImpairmentSpec("dropout=1e-3:32:zero,seed=5", spec));
    ImpairmentStats stats;
    auto s = constantSeries(32768, 1.0f);
    applyImpairments(s, spec, &stats);
    EXPECT_GT(stats.dropoutSamples, 0u);
    uint64_t zeros = 0;
    for (float v : s.samples)
        zeros += v == 0.0f;
    EXPECT_EQ(zeros, stats.dropoutSamples);

    ASSERT_TRUE(
        parseImpairmentSpec("dropout=1e-3:32:hold,seed=5", spec));
    auto h = constantSeries(32768, 1.0f);
    ImpairmentStats hstats;
    applyImpairments(h, spec, &hstats);
    EXPECT_EQ(hstats.dropoutSamples, stats.dropoutSamples);
    for (float v : h.samples)
        EXPECT_EQ(v, 1.0f); // held value of a constant stream
}

TEST(ImpairmentInjector, ClippingCapsAndCounts)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec("clip=1.2,ref=1,seed=5", spec));
    ImpairmentStats stats;
    auto s = constantSeries(1024, 2.0f);
    applyImpairments(s, spec, &stats);
    EXPECT_EQ(stats.clippedSamples, 1024u);
    for (float v : s.samples)
        EXPECT_FLOAT_EQ(v, 1.2f);
}

TEST(ImpairmentInjector, ImpulsesAreCountedAndLarge)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(
        parseImpairmentSpec("impulse=1e-2:8,ref=1,seed=11", spec));
    ImpairmentStats stats;
    auto s = constantSeries(65536, 1.0f);
    applyImpairments(s, spec, &stats);
    // ~655 expected; allow wide slack, it's a fixed-seed constant.
    EXPECT_GT(stats.impulses, 400u);
    EXPECT_LT(stats.impulses, 1000u);
    uint64_t big = 0;
    for (float v : s.samples)
        big += v > 5.0f; // positive-going impulses stand clear
    EXPECT_GT(big, stats.impulses / 4);
}

TEST(ImpairmentInjector, OutputNeverNegative)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec(
        "snr=0,impulse=1e-2:8,hum=50:0.5,ref=1,seed=2", spec));
    auto s = constantSeries(16384, 0.1f, 1e4);
    applyImpairments(s, spec);
    for (float v : s.samples)
        EXPECT_GE(v, 0.0f);
}

TEST(ImpairmentInjector, StatsCountSamples)
{
    ImpairmentSpec spec;
    ASSERT_TRUE(parseImpairmentSpec("snr=30,seed=1", spec));
    ImpairmentStats stats;
    auto s = constantSeries(5000, 1.0f);
    applyImpairments(s, spec, &stats);
    EXPECT_EQ(stats.samples, 5000u);
}

} // namespace
} // namespace emprof::dsp
