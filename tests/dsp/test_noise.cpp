/**
 * @file
 * Unit tests for noise sources.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/noise.hpp"

namespace emprof::dsp {
namespace {

TEST(AwgnSource, FastDrawMatchesMoments)
{
    AwgnSource src(2.0, 42);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = src.real();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.02);
}

TEST(AwgnSource, ExactDrawMatchesMoments)
{
    AwgnSource src(1.5, 43);
    const int n = 100000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = src.exactReal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(std::sqrt(sum_sq / n), 1.5, 0.02);
}

TEST(AwgnSource, FastDrawTailsBounded)
{
    // Irwin-Hall(4) is bounded at +/- 2*sqrt(3) sigma.
    AwgnSource src(1.0, 44);
    for (int i = 0; i < 100000; ++i)
        ASSERT_LE(std::abs(src.real()), 2.0 * std::sqrt(3.0) + 1e-9);
}

TEST(AwgnSource, DeterministicPerSeed)
{
    AwgnSource a(1.0, 7), b(1.0, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.real(), b.real());
}

TEST(AwgnSource, ComplexHasIndependentComponents)
{
    AwgnSource src(1.0, 45);
    double cross = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto z = src.complex();
        cross += static_cast<double>(z.real()) * z.imag();
    }
    EXPECT_NEAR(cross / n, 0.0, 0.02);
}

TEST(AwgnSource, SigmaZeroIsSilent)
{
    AwgnSource src(0.0, 46);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(src.real(), 0.0);
}

TEST(RandomWalk, StaysClamped)
{
    RandomWalk walk(1.0, 0.5, 0.8, 1.2, 47);
    for (int i = 0; i < 10000; ++i) {
        const double v = walk.step();
        ASSERT_GE(v, 0.8);
        ASSERT_LE(v, 1.2);
    }
}

TEST(RandomWalk, StartsAtStart)
{
    RandomWalk walk(3.0, 0.01, 0.0, 10.0, 48);
    EXPECT_DOUBLE_EQ(walk.value(), 3.0);
}

TEST(RandomWalk, ActuallyMoves)
{
    RandomWalk walk(1.0, 0.1, 0.0, 2.0, 49);
    double min_v = 1.0, max_v = 1.0;
    for (int i = 0; i < 1000; ++i) {
        const double v = walk.step();
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    EXPECT_GT(max_v - min_v, 0.05);
}

} // namespace
} // namespace emprof::dsp
