/**
 * @file
 * Unit and property tests for streaming windowed statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "dsp/moving_stats.hpp"
#include "dsp/rng.hpp"

namespace emprof::dsp {
namespace {

TEST(MovingAverage, PartialWindowAveragesSeenSamples)
{
    MovingAverage avg(4);
    EXPECT_DOUBLE_EQ(avg.push(2.0), 2.0);
    EXPECT_DOUBLE_EQ(avg.push(4.0), 3.0);
    EXPECT_DOUBLE_EQ(avg.push(6.0), 4.0);
}

TEST(MovingAverage, SlidesWindow)
{
    MovingAverage avg(2);
    avg.push(1.0);
    avg.push(3.0);
    EXPECT_DOUBLE_EQ(avg.push(5.0), 4.0); // window = {3, 5}
}

TEST(MovingAverage, WarmOnlyAfterFullWindow)
{
    MovingAverage avg(3);
    avg.push(1.0);
    avg.push(1.0);
    EXPECT_FALSE(avg.warm());
    avg.push(1.0);
    EXPECT_TRUE(avg.warm());
}

TEST(MovingAverage, ResetClears)
{
    MovingAverage avg(3);
    avg.push(10.0);
    avg.reset();
    EXPECT_DOUBLE_EQ(avg.value(), 0.0);
    EXPECT_FALSE(avg.warm());
}

TEST(MovingAverage, ZeroWindowTreatedAsOne)
{
    MovingAverage avg(0);
    EXPECT_DOUBLE_EQ(avg.push(5.0), 5.0);
    EXPECT_DOUBLE_EQ(avg.push(7.0), 7.0);
}

/** Brute-force reference for min/max over a sliding window. */
class MinMaxReference
{
  public:
    explicit MinMaxReference(std::size_t window) : window_(window) {}

    void
    push(double x)
    {
        buf_.push_back(x);
        if (buf_.size() > window_)
            buf_.pop_front();
    }

    double min() const { return *std::min_element(buf_.begin(), buf_.end()); }
    double max() const { return *std::max_element(buf_.begin(), buf_.end()); }

  private:
    std::size_t window_;
    std::deque<double> buf_;
};

class MinMaxWindows : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(MinMaxWindows, MatchesBruteForceOnRandomData)
{
    const std::size_t window = GetParam();
    MovingMinMax mm(window);
    MinMaxReference ref(window);
    Rng rng(0xBEEF + window);
    for (int i = 0; i < 3000; ++i) {
        const double x = rng.uniform(-100.0, 100.0);
        mm.push(x);
        ref.push(x);
        ASSERT_DOUBLE_EQ(mm.min(), ref.min()) << "at sample " << i;
        ASSERT_DOUBLE_EQ(mm.max(), ref.max()) << "at sample " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, MinMaxWindows,
                         ::testing::Values(1, 2, 3, 8, 64, 1000));

TEST(MovingMinMax, MonotoneRampTracksWindowEdges)
{
    MovingMinMax mm(10);
    for (int i = 0; i < 100; ++i) {
        mm.push(i);
        EXPECT_DOUBLE_EQ(mm.max(), i);
        EXPECT_DOUBLE_EQ(mm.min(), std::max(0, i - 9));
    }
}

TEST(MovingMinMax, WarmSemantics)
{
    MovingMinMax mm(4);
    for (int i = 0; i < 3; ++i) {
        mm.push(i);
        EXPECT_FALSE(mm.warm());
    }
    mm.push(3.0);
    EXPECT_TRUE(mm.warm());
}

TEST(MovingMinMax, ResetRestartsCounting)
{
    MovingMinMax mm(2);
    mm.push(5.0);
    mm.reset();
    EXPECT_EQ(mm.count(), 0u);
    mm.push(-1.0);
    EXPECT_DOUBLE_EQ(mm.min(), -1.0);
    EXPECT_DOUBLE_EQ(mm.max(), -1.0);
}

TEST(MovingVariance, ConstantInputHasZeroVariance)
{
    MovingVariance var(8);
    for (int i = 0; i < 20; ++i)
        EXPECT_NEAR(var.push(3.5), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(var.mean(), 3.5);
}

TEST(MovingVariance, MatchesKnownValues)
{
    MovingVariance var(4);
    var.push(1.0);
    var.push(2.0);
    var.push(3.0);
    const double v = var.push(4.0);
    // Population variance of {1,2,3,4} = 1.25.
    EXPECT_NEAR(v, 1.25, 1e-12);
    EXPECT_DOUBLE_EQ(var.mean(), 2.5);
}

TEST(MovingVariance, WindowSlides)
{
    MovingVariance var(2);
    var.push(0.0);
    var.push(0.0);
    // Window = {0, 10}: variance 25.
    EXPECT_NEAR(var.push(10.0), 25.0, 1e-12);
}

// --- long-stream numeric-drift regressions -------------------------
//
// The incremental add/subtract-the-oldest update loses one rounding
// error per sample; with a plain double accumulator the windowed mean
// and variance drift visibly over multi-million-sample captures, and
// the naive sum/sum-of-squares variance collapses entirely when the
// signal rides on a large DC offset.  These tests pin the compensated
// implementations against brute-force window recomputation.

TEST(MovingAverage, NoDriftOverLongStreamAtLargeOffset)
{
    const std::size_t window = 64;
    MovingAverage avg(window);
    std::deque<double> ref;
    Rng rng(0xd41f7u);
    double last = 0.0;
    for (int i = 0; i < 2'000'000; ++i) {
        const double x = 1e8 + rng.uniform(-0.5, 0.5);
        last = avg.push(x);
        ref.push_back(x);
        if (ref.size() > window)
            ref.pop_front();
    }
    long double exact = 0.0L;
    for (double x : ref)
        exact += x;
    exact /= static_cast<long double>(ref.size());
    // One windowed sum of 64 values carries ~1 ulp; what must NOT be
    // here is the accumulated error of 2M add/subtract pairs.
    EXPECT_NEAR(last, static_cast<double>(exact), 1e-6);
}

TEST(MovingVariance, SurvivesLargeDcOffset)
{
    // Alternating +/-0.5 around 1e8: true population variance 0.25.
    // The naive sum/sumsq form needs ~33 significant digits here and
    // returns garbage (usually 0 after the max(0, ...) clamp).
    MovingVariance var(32);
    double v = 0.0;
    for (int i = 0; i < 1000; ++i)
        v = var.push(1e8 + (i % 2 == 0 ? 0.5 : -0.5));
    EXPECT_NEAR(v, 0.25, 1e-6);
    EXPECT_NEAR(var.mean(), 1e8, 1e-3);
}

TEST(MovingVariance, NoDriftOverLongStream)
{
    const std::size_t window = 128;
    MovingVariance var(window);
    std::deque<double> ref;
    Rng rng(0xbeefu);
    double last = 0.0;
    for (int i = 0; i < 1'000'000; ++i) {
        const double x = 50.0 + rng.uniform(-1.0, 1.0);
        last = var.push(x);
        ref.push_back(x);
        if (ref.size() > window)
            ref.pop_front();
    }
    long double mean = 0.0L;
    for (double x : ref)
        mean += x;
    mean /= static_cast<long double>(ref.size());
    long double acc = 0.0L;
    for (double x : ref)
        acc += (x - mean) * (x - mean);
    const double exact =
        static_cast<double>(acc / static_cast<long double>(ref.size()));
    EXPECT_NEAR(last, exact, 1e-9);
}

TEST(MovingAverageBatch, SmoothsSeries)
{
    TimeSeries in;
    in.sampleRateHz = 100.0;
    in.samples = {0, 0, 10, 0, 0};
    const auto out = movingAverage(in, 2);
    ASSERT_EQ(out.samples.size(), 5u);
    EXPECT_NEAR(out.samples[2], 5.0f, 1e-6);
    EXPECT_NEAR(out.samples[3], 5.0f, 1e-6);
    EXPECT_NEAR(out.samples[4], 0.0f, 1e-6);
}

} // namespace
} // namespace emprof::dsp
