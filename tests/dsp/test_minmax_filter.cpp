/**
 * @file
 * Differential tests of the VHGW MinMaxFilter against the deque-style
 * monotonic-wedge MovingMinMax: both must produce identical extrema on
 * every push, for every window size, including warm-up.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/minmax_filter.hpp"
#include "dsp/moving_stats.hpp"
#include "dsp/rng.hpp"

namespace emprof::dsp {
namespace {

std::vector<double>
randomSamples(std::size_t n, uint64_t seed)
{
    std::vector<double> v(n);
    Rng rng(seed);
    for (auto &x : v) {
        x = rng.uniform(-10.0, 10.0);
        // Plateaus and repeats stress the tie-handling paths.
        if (rng.chance(0.1))
            x = 1.0;
    }
    return v;
}

TEST(MinMaxFilter, MatchesMovingMinMaxAcrossWindowSizes)
{
    for (const std::size_t window :
         {std::size_t{1}, std::size_t{2}, std::size_t{1024},
          std::size_t{160000}}) {
        const std::size_t n = std::max<std::size_t>(4 * window, 4096);
        const auto input = randomSamples(std::min<std::size_t>(n, 400000),
                                         0xbeef + window);
        MinMaxFilter<double> filter(window);
        MovingMinMax reference(window);
        for (std::size_t i = 0; i < input.size(); ++i) {
            filter.push(input[i]);
            reference.push(input[i]);
            ASSERT_EQ(filter.min(), reference.min())
                << "window " << window << " sample " << i;
            ASSERT_EQ(filter.max(), reference.max())
                << "window " << window << " sample " << i;
            ASSERT_EQ(filter.warm(), reference.warm());
        }
        EXPECT_EQ(filter.count(), reference.count());
    }
}

TEST(MinMaxFilter, FloatInstantiationMatchesReference)
{
    const std::size_t window = 257; // not a power of two
    Rng rng(42);
    MinMaxFilter<float> filter(window);
    MovingMinMax reference(window);
    for (std::size_t i = 0; i < 20000; ++i) {
        const float x = static_cast<float>(rng.uniform(-1.0, 1.0));
        filter.push(x);
        reference.push(x);
        ASSERT_EQ(static_cast<double>(filter.min()), reference.min());
        ASSERT_EQ(static_cast<double>(filter.max()), reference.max());
    }
}

TEST(MinMaxFilter, ZeroWindowClampsToOne)
{
    // Same clamp as MovingMinMax: an empty window is meaningless, so
    // it degrades to a window of one (output follows the input).
    MinMaxFilter<double> filter(0);
    EXPECT_EQ(filter.window(), 1u);
    filter.push(3.0);
    EXPECT_EQ(filter.min(), 3.0);
    EXPECT_EQ(filter.max(), 3.0);
    filter.push(-7.0);
    EXPECT_EQ(filter.min(), -7.0);
    EXPECT_EQ(filter.max(), -7.0);
}

TEST(MinMaxFilter, OutputsStayFiniteOnFiniteInput)
{
    MinMaxFilter<double> filter(64);
    Rng rng(9);
    for (std::size_t i = 0; i < 10000; ++i) {
        filter.push(rng.uniform(-1e30, 1e30));
        ASSERT_TRUE(std::isfinite(filter.min()));
        ASSERT_TRUE(std::isfinite(filter.max()));
        ASSERT_LE(filter.min(), filter.max());
    }
}

TEST(MinMaxFilter, ResetMatchesFreshInstance)
{
    const auto input = randomSamples(5000, 77);
    MinMaxFilter<double> reused(100);
    for (double x : input)
        reused.push(x);
    reused.reset();
    EXPECT_EQ(reused.count(), 0u);

    MinMaxFilter<double> fresh(100);
    for (double x : input) {
        reused.push(x);
        fresh.push(x);
        ASSERT_EQ(reused.min(), fresh.min());
        ASSERT_EQ(reused.max(), fresh.max());
    }
}

TEST(MinMaxFilter, BatchHelperMatchesStreaming)
{
    const auto in64 = randomSamples(3000, 123);
    std::vector<double> out_min, out_max;
    slidingMinMax(in64, 37, out_min, out_max);
    ASSERT_EQ(out_min.size(), in64.size());

    MovingMinMax reference(37);
    for (std::size_t i = 0; i < in64.size(); ++i) {
        reference.push(in64[i]);
        ASSERT_EQ(out_min[i], reference.min());
        ASSERT_EQ(out_max[i], reference.max());
    }
}

} // namespace
} // namespace emprof::dsp
