/**
 * @file
 * Unit and property tests for FIR design and (decimating) filters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fir.hpp"

namespace emprof::dsp {
namespace {

/** RMS of a tone's filtered output after warmup. */
double
toneResponse(const std::vector<double> &taps, double freq_norm)
{
    FirFilter<Sample> filter(taps);
    double acc = 0.0;
    int counted = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const auto x = static_cast<Sample>(
            std::sin(2.0 * std::numbers::pi * freq_norm * i));
        const double y = filter.push(x);
        if (i > 500) {
            acc += y * y;
            ++counted;
        }
    }
    return std::sqrt(acc / counted);
}

TEST(FirDesign, UnitDcGain)
{
    for (std::size_t taps : {15u, 63u, 127u}) {
        const auto h = designLowPass(taps, 0.1);
        double sum = 0.0;
        for (double t : h)
            sum += t;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(FirDesign, ForcesOddLength)
{
    EXPECT_EQ(designLowPass(64, 0.1).size(), 65u);
    EXPECT_EQ(designLowPass(63, 0.1).size(), 63u);
    EXPECT_GE(designLowPass(1, 0.1).size(), 3u);
}

TEST(FirDesign, Symmetric)
{
    const auto h = designLowPass(63, 0.07);
    for (std::size_t i = 0; i < h.size() / 2; ++i)
        EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
}

TEST(FirFilter, PassesLowTone)
{
    const auto h = designLowPass(63, 0.2);
    // Tone well inside the passband keeps ~unit amplitude (RMS 0.707).
    EXPECT_NEAR(toneResponse(h, 0.02), std::numbers::sqrt2 / 2, 0.02);
}

TEST(FirFilter, RejectsHighTone)
{
    const auto h = designLowPass(63, 0.05);
    EXPECT_LT(toneResponse(h, 0.4), 0.01);
}

TEST(FirFilter, ImpulseResponseEqualsTaps)
{
    const std::vector<double> taps = {0.25, 0.5, 0.25};
    FirFilter<Sample> filter(taps);
    EXPECT_NEAR(filter.push(1.0f), 0.25, 1e-6);
    EXPECT_NEAR(filter.push(0.0f), 0.5, 1e-6);
    EXPECT_NEAR(filter.push(0.0f), 0.25, 1e-6);
    EXPECT_NEAR(filter.push(0.0f), 0.0, 1e-6);
}

TEST(FirFilter, ResetClearsHistory)
{
    FirFilter<Sample> filter(designLowPass(15, 0.1));
    for (int i = 0; i < 20; ++i)
        filter.push(1.0f);
    filter.reset();
    // After reset an impulse behaves as if from scratch.
    const double y = filter.push(1.0f);
    FirFilter<Sample> fresh(designLowPass(15, 0.1));
    EXPECT_NEAR(y, fresh.push(1.0f), 1e-9);
}

TEST(FirFilter, GroupDelayIsHalfLength)
{
    FirFilter<Sample> filter(designLowPass(63, 0.1));
    EXPECT_EQ(filter.groupDelay(), 31u);
}

class DecimationFactors : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(DecimationFactors, EmitsOnePerFactor)
{
    const std::size_t factor = GetParam();
    DecimatingFir<Sample> dec(designLowPass(31, 0.45 / factor), factor);
    std::size_t outputs = 0;
    Sample out;
    const std::size_t inputs = factor * 100;
    for (std::size_t i = 0; i < inputs; ++i) {
        if (dec.push(1.0f, out))
            ++outputs;
    }
    EXPECT_EQ(outputs, 100u);
}

TEST_P(DecimationFactors, DcPreserved)
{
    const std::size_t factor = GetParam();
    DecimatingFir<Sample> dec(designLowPass(63, 0.45 / factor), factor);
    Sample out = 0.0f, last = 0.0f;
    for (std::size_t i = 0; i < factor * 300; ++i) {
        if (dec.push(2.5f, out))
            last = out;
    }
    EXPECT_NEAR(last, 2.5f, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Factors, DecimationFactors,
                         ::testing::Values(1, 2, 5, 7, 13, 25));

TEST(DecimatingFir, MatchesFullFilterAtOutputInstants)
{
    const auto taps = designLowPass(31, 0.08);
    const std::size_t factor = 5;
    DecimatingFir<Sample> dec(taps, factor);
    FirFilter<Sample> full(taps);

    std::vector<double> full_outputs;
    std::vector<double> dec_outputs;
    for (int i = 0; i < 500; ++i) {
        const auto x = static_cast<Sample>(std::sin(0.05 * i) +
                                           0.3 * std::cos(0.31 * i));
        const double y = full.push(x);
        Sample d;
        if (dec.push(x, d)) {
            full_outputs.push_back(y);
            dec_outputs.push_back(d);
        }
    }
    ASSERT_EQ(full_outputs.size(), dec_outputs.size());
    for (std::size_t i = 0; i < full_outputs.size(); ++i)
        EXPECT_NEAR(dec_outputs[i], full_outputs[i], 1e-5);
}

TEST(DecimatingFir, WarmAfterTapsInputs)
{
    DecimatingFir<Sample> dec(designLowPass(31, 0.1), 4);
    Sample out;
    std::size_t pushed = 0;
    while (!dec.warm()) {
        dec.push(1.0f, out);
        ++pushed;
    }
    EXPECT_EQ(pushed, dec.numTaps());
}

TEST(DecimatingFir, ComplexPathWorks)
{
    DecimatingFir<Complex> dec(designLowPass(31, 0.1), 4);
    Complex out{}, last{};
    for (int i = 0; i < 400; ++i) {
        if (dec.push({1.0f, -2.0f}, out))
            last = out;
    }
    EXPECT_NEAR(last.real(), 1.0f, 1e-3);
    EXPECT_NEAR(last.imag(), -2.0f, 1e-3);
}

TEST(FilterSeries, PreservesLengthAndRate)
{
    TimeSeries in;
    in.sampleRateHz = 1000.0;
    in.samples.assign(256, 1.0f);
    const auto out = filterSeries(in, designLowPass(15, 0.2));
    EXPECT_EQ(out.samples.size(), in.samples.size());
    EXPECT_DOUBLE_EQ(out.sampleRateHz, 1000.0);
    // Centre samples see full DC gain.
    EXPECT_NEAR(out.samples[128], 1.0f, 1e-4);
}

} // namespace
} // namespace emprof::dsp
