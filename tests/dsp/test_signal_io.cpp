/**
 * @file
 * Unit tests for signal file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "dsp/signal_io.hpp"

namespace emprof::dsp {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(SignalIo, MagnitudeRoundTrip)
{
    TimeSeries series;
    series.sampleRateHz = 40e6;
    for (int i = 0; i < 1000; ++i)
        series.samples.push_back(static_cast<float>(i) * 0.001f);

    const auto path = tempPath("roundtrip.emsig");
    ASSERT_TRUE(saveSignal(path, series));

    TimeSeries loaded;
    ASSERT_TRUE(loadSignal(path, loaded));
    EXPECT_DOUBLE_EQ(loaded.sampleRateHz, 40e6);
    ASSERT_EQ(loaded.samples.size(), series.samples.size());
    for (std::size_t i = 0; i < series.samples.size(); i += 37)
        EXPECT_FLOAT_EQ(loaded.samples[i], series.samples[i]);
    std::remove(path.c_str());
}

TEST(SignalIo, IqFileLoadsAsMagnitude)
{
    ComplexSeries series;
    series.sampleRateHz = 20e6;
    series.samples = {{3.0f, 4.0f}, {0.0f, 1.0f}, {-5.0f, 12.0f}};

    const auto path = tempPath("iq.emsig");
    ASSERT_TRUE(saveSignal(path, series));

    TimeSeries loaded;
    ASSERT_TRUE(loadSignal(path, loaded));
    ASSERT_EQ(loaded.samples.size(), 3u);
    EXPECT_FLOAT_EQ(loaded.samples[0], 5.0f);
    EXPECT_FLOAT_EQ(loaded.samples[1], 1.0f);
    EXPECT_FLOAT_EQ(loaded.samples[2], 13.0f);
    std::remove(path.c_str());
}

TEST(SignalIo, MissingFileFails)
{
    TimeSeries out;
    EXPECT_FALSE(loadSignal("/nonexistent/nowhere.emsig", out));
}

TEST(SignalIo, BadMagicFails)
{
    const auto path = tempPath("bad.emsig");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a signal file at all, not even close",
               f);
    std::fclose(f);
    TimeSeries out;
    EXPECT_FALSE(loadSignal(path, out));
    std::remove(path.c_str());
}

TEST(SignalIo, TruncatedPayloadFails)
{
    TimeSeries series;
    series.sampleRateHz = 1e6;
    series.samples.assign(100, 1.0f);
    const auto path = tempPath("trunc.emsig");
    ASSERT_TRUE(saveSignal(path, series));

    // Chop the file short.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
#ifdef _WIN32
    std::fclose(f);
#else
    ASSERT_EQ(ftruncate(fileno(f), 32 + 10), 0);
    std::fclose(f);
    TimeSeries out;
    EXPECT_FALSE(loadSignal(path, out));
#endif
    std::remove(path.c_str());
}

TEST(SignalIo, RawF32RealLoad)
{
    const auto path = tempPath("raw.f32");
    const float data[] = {1.0f, 2.0f, 3.0f};
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data, sizeof(float), 3, f);
    std::fclose(f);

    TimeSeries out;
    ASSERT_TRUE(loadRawF32(path, 10e6, /*iq=*/false, out));
    EXPECT_DOUBLE_EQ(out.sampleRateHz, 10e6);
    ASSERT_EQ(out.samples.size(), 3u);
    EXPECT_FLOAT_EQ(out.samples[1], 2.0f);
    std::remove(path.c_str());
}

TEST(SignalIo, RawF32IqLoadComputesMagnitude)
{
    const auto path = tempPath("raw_iq.f32");
    const float data[] = {3.0f, 4.0f, 6.0f, 8.0f};
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data, sizeof(float), 4, f);
    std::fclose(f);

    TimeSeries out;
    ASSERT_TRUE(loadRawF32(path, 10e6, /*iq=*/true, out));
    ASSERT_EQ(out.samples.size(), 2u);
    EXPECT_FLOAT_EQ(out.samples[0], 5.0f);
    EXPECT_FLOAT_EQ(out.samples[1], 10.0f);
    std::remove(path.c_str());
}

TEST(SignalIo, CsvExportHasHeaderAndRows)
{
    TimeSeries series;
    series.sampleRateHz = 1000.0;
    series.samples = {0.5f, 1.5f};
    const auto path = tempPath("sig.csv");
    ASSERT_TRUE(saveCsv(path, series));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[128];
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_EQ(std::string(line), "time_s,magnitude\n");
    int rows = 0;
    while (std::fgets(line, sizeof(line), f))
        ++rows;
    std::fclose(f);
    EXPECT_EQ(rows, 2);
    std::remove(path.c_str());
}

TEST(SignalIo, EmptySeriesRoundTrips)
{
    TimeSeries series;
    series.sampleRateHz = 5e6;
    const auto path = tempPath("empty.emsig");
    ASSERT_TRUE(saveSignal(path, series));
    TimeSeries out;
    ASSERT_TRUE(loadSignal(path, out));
    EXPECT_TRUE(out.samples.empty());
    EXPECT_DOUBLE_EQ(out.sampleRateHz, 5e6);
    std::remove(path.c_str());
}

} // namespace
} // namespace emprof::dsp
