/**
 * @file
 * Unit tests for batch statistics and histograms.
 */

#include <gtest/gtest.h>

#include "dsp/series_ops.hpp"

namespace emprof::dsp {
namespace {

TEST(Stats, MeanOfKnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevOfKnownValues)
{
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(Stats, PercentileClampsRange)
{
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
}

TEST(Histogram, LinearBinning)
{
    auto h = Histogram::linear(0.0, 10.0, 5);
    h.add(0.0);
    h.add(1.9);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow)
{
    auto h = Histogram::linear(0.0, 10.0, 2);
    h.add(-1.0);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(Histogram, LogBinsSpanDecades)
{
    auto h = Histogram::logarithmic(1.0, 1000.0, 3);
    EXPECT_NEAR(h.edge(0), 1.0, 1e-9);
    EXPECT_NEAR(h.edge(1), 10.0, 1e-9);
    EXPECT_NEAR(h.edge(2), 100.0, 1e-9);
    EXPECT_NEAR(h.edge(3), 1000.0, 1e-9);
    h.add(5.0);
    h.add(50.0);
    h.add(500.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, TextRenderingNonEmpty)
{
    auto h = Histogram::linear(0.0, 4.0, 4);
    h.add(1.0);
    h.add(1.5);
    const auto text = h.toText("cyc");
    EXPECT_NE(text.find("cyc"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram, NumBins)
{
    EXPECT_EQ(Histogram::linear(0, 1, 7).numBins(), 7u);
    EXPECT_EQ(Histogram::logarithmic(1, 10, 9).numBins(), 9u);
}

} // namespace
} // namespace emprof::dsp
