/**
 * @file
 * Unit tests for the perf-baseline model (observer effect and counter
 * multiplexing).
 */

#include <gtest/gtest.h>

#include "baseline/perf_model.hpp"
#include "dsp/series_ops.hpp"
#include "sim/simulator.hpp"
#include "workloads/microbenchmark.hpp"

namespace emprof::baseline {
namespace {

TEST(InterruptInjector, PreservesBaseTrace)
{
    std::vector<sim::MicroOp> base_ops;
    for (int i = 0; i < 1000; ++i)
        base_ops.push_back(sim::makeAlu(0x1000 + 4 * i));
    sim::VectorTraceSource base(base_ops);
    InterruptConfig cfg;
    cfg.opsBetweenInterrupts = 100;
    InterruptInjector inj(base, cfg);

    sim::MicroOp op;
    uint64_t base_seen = 0;
    while (inj.next(op)) {
        if (op.pc < 0xF000'0000)
            ++base_seen;
    }
    EXPECT_EQ(base_seen, 1000u);
    EXPECT_EQ(inj.baseOps(), 1000u);
}

TEST(InterruptInjector, InjectsAtConfiguredCadence)
{
    std::vector<sim::MicroOp> base_ops(10'000, sim::makeAlu(0x1000));
    sim::VectorTraceSource base(base_ops);
    InterruptConfig cfg;
    cfg.opsBetweenInterrupts = 1000;
    InterruptInjector inj(base, cfg);
    sim::MicroOp op;
    while (inj.next(op)) {
    }
    // ~10 interrupts worth of handler ops.
    const uint64_t per_handler = inj.injectedOps() / 10;
    EXPECT_GT(per_handler, cfg.handlerLines);
    EXPECT_EQ(inj.injectedOps() % per_handler, 0u);
}

TEST(InterruptInjector, HandlerTouchesColdOsData)
{
    std::vector<sim::MicroOp> base_ops(5'000, sim::makeAlu(0x1000));
    sim::VectorTraceSource base(base_ops);
    InterruptConfig cfg;
    cfg.opsBetweenInterrupts = 1000;
    InterruptInjector inj(base, cfg);
    sim::MicroOp op;
    std::set<sim::Addr> handler_lines;
    while (inj.next(op)) {
        if (op.isLoad() && op.pc >= 0xF000'0000)
            handler_lines.insert(op.memAddr & ~63ull);
    }
    // Successive handlers stream fresh lines: all distinct.
    EXPECT_GE(handler_lines.size(), 4u * cfg.handlerLines);
}

TEST(Multiplex, FullScheduleCountsEverything)
{
    sim::GroundTruth gt(true);
    for (int i = 0; i < 100; ++i)
        gt.onLlcMiss(i * 1000, false, false, 0);
    MultiplexConfig cfg;
    cfg.scheduledShare = 1.0;
    EXPECT_EQ(multiplexedCount(gt, 100'000, cfg, 1), 100u);
}

TEST(Multiplex, ExtrapolationIsUnbiasedForUniformMisses)
{
    sim::GroundTruth gt(true);
    for (int i = 0; i < 10'000; ++i)
        gt.onLlcMiss(i * 100, false, false, 0);
    MultiplexConfig cfg;
    cfg.scheduledShare = 0.25;
    cfg.windowCycles = 10'000;

    std::vector<double> reports;
    for (uint64_t seed = 0; seed < 50; ++seed)
        reports.push_back(static_cast<double>(
            multiplexedCount(gt, 1'000'000, cfg, seed)));
    EXPECT_NEAR(dsp::mean(reports), 10'000.0, 600.0);
}

TEST(Multiplex, BurstyMissesGiveHugeVariance)
{
    // All misses inside one window: the count is either ~0 or ~4x.
    sim::GroundTruth gt(true);
    for (int i = 0; i < 1024; ++i)
        gt.onLlcMiss(500'000 + i * 10, false, false, 0);
    MultiplexConfig cfg;
    cfg.scheduledShare = 0.25;
    cfg.windowCycles = 250'000;

    std::vector<double> reports;
    for (uint64_t seed = 0; seed < 100; ++seed)
        reports.push_back(static_cast<double>(
            multiplexedCount(gt, 10'000'000, cfg, seed)));
    EXPECT_GT(dsp::stddev(reports), 1000.0);
}

TEST(PerfBaseline, EndToEndInflatesEngineeredMissCount)
{
    // The paper's Sec. V observation: 1024 engineered misses are
    // reported more than an order of magnitude too high, with a huge
    // run-to-run standard deviation.
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 1024;
    mb_cfg.consecutiveMisses = 10;
    mb_cfg.blankLoopIterations = 30'000;

    std::vector<double> reports;
    for (uint64_t run = 0; run < 8; ++run) {
        workloads::Microbenchmark mb(mb_cfg);
        InterruptConfig int_cfg;
        InterruptInjector inj(mb, int_cfg);

        sim::SimConfig sim_cfg;
        sim_cfg.detailedGroundTruth = true;
        sim::Simulator simulator(sim_cfg);
        const auto result = simulator.run(inj);

        MultiplexConfig mux_cfg;
        reports.push_back(static_cast<double>(multiplexedCount(
            simulator.groundTruth(), result.cycles, mux_cfg, run)));
    }
    const double avg = dsp::mean(reports);
    EXPECT_GT(avg, 8.0 * 1024);   // order-of-magnitude inflation
    EXPECT_GT(dsp::stddev(reports), 1024.0); // and unstable
}

} // namespace
} // namespace emprof::baseline
