/**
 * @file
 * Unit tests for the Table I device models.
 */

#include <gtest/gtest.h>

#include "devices/devices.hpp"

namespace emprof::devices {
namespace {

TEST(Devices, TableIParameters)
{
    const auto alcatel = makeAlcatel();
    EXPECT_DOUBLE_EQ(alcatel.sim.clockHz, 1.1e9);
    EXPECT_EQ(alcatel.numCores, 4u);
    EXPECT_EQ(alcatel.physicalLlcBytes, 1024u * 1024u);
    EXPECT_EQ(alcatel.core, "Cortex-A7");

    const auto samsung = makeSamsung();
    EXPECT_DOUBLE_EQ(samsung.sim.clockHz, 800e6);
    EXPECT_EQ(samsung.numCores, 1u);
    EXPECT_EQ(samsung.physicalLlcBytes, 256u * 1024u);
    EXPECT_TRUE(samsung.sim.prefetcher.enabled);

    const auto olimex = makeOlimex();
    EXPECT_DOUBLE_EQ(olimex.sim.clockHz, 1.008e9);
    EXPECT_EQ(olimex.physicalLlcBytes, 256u * 1024u);
    EXPECT_FALSE(olimex.sim.prefetcher.enabled);
}

TEST(Devices, ScaledCapacitiesPreserveRatios)
{
    const auto alcatel = makeAlcatel();
    const auto olimex = makeOlimex();
    // The 4x LLC ratio that drives Sec. VI-A survives the scaling.
    EXPECT_EQ(alcatel.sim.llc.sizeBytes, 4 * olimex.sim.llc.sizeBytes);
    EXPECT_EQ(alcatel.sim.llc.sizeBytes * kCacheScale,
              alcatel.physicalLlcBytes);
}

TEST(Devices, InstructionCachesStayPhysical)
{
    for (const auto &d : allDevices())
        EXPECT_EQ(d.sim.l1i.sizeBytes, d.physicalL1Bytes);
}

TEST(Devices, DramLatencySimilarInNanoseconds)
{
    // Sec. VI-A: similar ns latency -> cycle latency scales with clock.
    const auto samsung = makeSamsung();
    const auto olimex = makeOlimex();
    const double samsung_ns =
        samsung.sim.memory.accessLatency / samsung.sim.clockHz * 1e9;
    const double olimex_ns =
        olimex.sim.memory.accessLatency / olimex.sim.clockHz * 1e9;
    EXPECT_NEAR(samsung_ns, olimex_ns, 1.0);
    EXPECT_LT(samsung.sim.memory.accessLatency,
              olimex.sim.memory.accessLatency);
}

TEST(Devices, RefreshCadenceMatchesPaper)
{
    // ~70 us between refresh-coincident stalls, 2-3 us stall (Fig. 5).
    for (const auto &d : allDevices()) {
        const double period_us =
            d.sim.memory.refreshPeriod / d.sim.clockHz * 1e6;
        const double duration_us =
            d.sim.memory.refreshDuration / d.sim.clockHz * 1e6;
        EXPECT_NEAR(period_us, 70.0, 1.0);
        EXPECT_GT(duration_us, 2.0);
        EXPECT_LT(duration_us, 3.0);
    }
}

TEST(Devices, AlcatelModelsBackgroundCores)
{
    EXPECT_GT(makeAlcatel().sim.power.backgroundNoise, 0.0);
    EXPECT_DOUBLE_EQ(makeOlimex().sim.power.backgroundNoise, 0.0);
}

TEST(Devices, AllDevicesOrderedLikeTableI)
{
    const auto devices = allDevices();
    ASSERT_EQ(devices.size(), 3u);
    EXPECT_EQ(devices[0].name, "Alcatel");
    EXPECT_EQ(devices[1].name, "Samsung");
    EXPECT_EQ(devices[2].name, "Olimex");
}

TEST(Devices, TableRendersAllRows)
{
    const auto text = deviceTable(allDevices());
    EXPECT_NE(text.find("Alcatel"), std::string::npos);
    EXPECT_NE(text.find("Cortex-A5"), std::string::npos);
    EXPECT_NE(text.find("1.008"), std::string::npos);
    EXPECT_NE(text.find("1024 KB"), std::string::npos);
}

} // namespace
} // namespace emprof::devices
