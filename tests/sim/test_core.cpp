/**
 * @file
 * Unit tests for the in-order core timing model.
 *
 * Test traces confine their PCs to a few I-cache lines (as loop code
 * does) so compulsory instruction misses stay a small, bounded startup
 * cost; where an expectation could be polluted by that startup cost,
 * the test compares against a control trace instead of an absolute.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace emprof::sim {
namespace {

SimConfig
testConfig()
{
    SimConfig cfg;
    cfg.memory.latencyJitter = 0;
    cfg.memory.refreshEnabled = false;
    return cfg;
}

/** ALU ops whose PCs wrap within four I$ lines. */
std::vector<MicroOp>
aluBlock(std::size_t n, Addr pc = 0x1000)
{
    std::vector<MicroOp> ops;
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back(makeAlu(pc + 4 * (i % 64)));
    return ops;
}

SimResult
runOps(std::vector<MicroOp> ops, SimConfig cfg = testConfig())
{
    VectorTraceSource trace(std::move(ops));
    Simulator simulator(cfg);
    return simulator.run(trace);
}

/** Count data-side LLC misses via detailed ground truth. */
uint64_t
dataMisses(std::vector<MicroOp> ops, SimConfig cfg = testConfig())
{
    cfg.detailedGroundTruth = true;
    VectorTraceSource trace(std::move(ops));
    Simulator simulator(cfg);
    simulator.run(trace);
    uint64_t n = 0;
    for (const auto &ev : simulator.groundTruth().rawEvents())
        n += !ev.fetchSide;
    return n;
}

TEST(Core, IndependentAluApproachesIssueWidth)
{
    const auto result = runOps(aluBlock(40000));
    EXPECT_EQ(result.instructions, 40000u);
    EXPECT_GT(result.ipc(), 3.0);
}

TEST(Core, SerialDependenceChainLimitsIpcToOne)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4000; ++i)
        ops.push_back(makeAlu(0x1000 + 4 * (i % 64),
                              /*dep=*/i == 0 ? 0 : 1));
    const auto result = runOps(std::move(ops));
    EXPECT_LE(result.ipc(), 1.05);
    EXPECT_GT(result.ipc(), 0.8);
}

TEST(Core, LoadMissStallsDependentUse)
{
    // The load's PC stays inside the warm code lines so the only cold
    // access is the data line.
    auto ops = aluBlock(1000);
    ops[400] = makeLoad(0x1000, 0x8000'0000); // cold: LLC miss
    ops[401] = makeAlu(0x1004, /*dep=*/1);    // stalls on use

    auto cfg = testConfig();
    EXPECT_EQ(dataMisses(ops, cfg), 1u);

    // Control: same trace with the load's value unused.
    auto control = ops;
    control[401].depDist = 0;
    const auto with_use = runOps(ops, cfg);
    const auto without_use = runOps(control, cfg);
    EXPECT_GT(with_use.missStallCycles,
              without_use.missStallCycles + cfg.memory.accessLatency / 2);
    EXPECT_GT(with_use.cycles, cfg.memory.accessLatency);
}

TEST(Core, UnconsumedLoadMissDoesNotStall)
{
    // Fig. 3a: a miss whose result is never used and whose slot is
    // never needed adds (almost) no stall time over a loadless trace.
    auto base = aluBlock(4000);
    auto with_load = base;
    with_load[1000] = makeLoad(0x1000, 0x8000'0000);

    const auto base_result = runOps(base);
    const auto load_result = runOps(with_load);
    EXPECT_EQ(dataMisses(with_load), 1u);
    EXPECT_LE(load_result.missStallCycles,
              base_result.missStallCycles + 10);
}

TEST(Core, LoadSlotExhaustionBlocksIssue)
{
    auto cfg = testConfig();
    cfg.core.maxOutstandingLoads = 2;
    std::vector<MicroOp> ops = aluBlock(64);
    // Three cold loads back to back: the third blocks on slots.
    for (int i = 0; i < 3; ++i)
        ops.push_back(makeLoad(0x1100 + 4 * i, 0x8000'0000 + i * 4096ull));
    const auto result = runOps(std::move(ops), cfg);
    EXPECT_GT(result.stalls[StallReason::LoadSlots], 0u);
}

TEST(Core, StoreBufferAbsorbsStores)
{
    // Cold store misses retire through the buffer: the run is barely
    // longer than the same trace without them.
    auto base = aluBlock(4000);
    auto with_stores = base;
    for (int i = 0; i < 4; ++i)
        with_stores[500 * (i + 1)] =
            makeStore(0x1000, 0x9000'0000 + i * 4096ull);

    const auto base_result = runOps(base);
    const auto store_result = runOps(with_stores);
    EXPECT_LE(store_result.missStallCycles,
              base_result.missStallCycles + 30);
    EXPECT_LT(store_result.cycles, base_result.cycles + 150);
}

TEST(Core, StoreBufferFullStalls)
{
    auto cfg = testConfig();
    cfg.core.storeBufferEntries = 2;
    std::vector<MicroOp> ops = aluBlock(64);
    for (int i = 0; i < 12; ++i)
        ops.push_back(makeStore(0x1100 + 4 * i, 0x9000'0000 + i * 4096ull));
    const auto result = runOps(std::move(ops), cfg);
    EXPECT_GT(result.stalls[StallReason::StoreBuffer], 0u);
}

TEST(Core, DividerSerialises)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i) {
        MicroOp op;
        op.pc = 0x1000 + 4 * (i % 16);
        op.cls = OpClass::IntDiv;
        ops.push_back(op);
    }
    auto cfg = testConfig();
    const auto result = runOps(std::move(ops), cfg);
    // Unpipelined divider: at least divLatency cycles per op.
    EXPECT_GE(result.cycles, 50u * cfg.core.divLatency);
    EXPECT_GT(result.stalls[StallReason::DivBusy], 0u);
}

TEST(Core, TakenBranchCostsRedirect)
{
    std::vector<MicroOp> taken, not_taken;
    for (int i = 0; i < 500; ++i) {
        auto block = aluBlock(4, 0x1000);
        taken.insert(taken.end(), block.begin(), block.end());
        not_taken.insert(not_taken.end(), block.begin(), block.end());
        taken.push_back(makeBranch(0x1010, true));
        not_taken.push_back(makeBranch(0x1010, false));
    }
    const auto with = runOps(std::move(taken));
    const auto without = runOps(std::move(not_taken));
    EXPECT_GT(with.cycles, without.cycles);
}

TEST(Core, InstructionCacheMissStallsFetch)
{
    // Jump across many distinct cold lines: every line is an I$ miss
    // that must reach memory, so the front end starves.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back(makeAlu(0x100000 + i * 4096ull));
    auto cfg = testConfig();
    const auto result = runOps(std::move(ops), cfg);
    EXPECT_GT(result.stalls[StallReason::FetchEmpty], 0u);
    EXPECT_GT(result.rawLlcMisses, 32u);
}

TEST(Core, MaxCyclesCapsRun)
{
    VectorTraceSource trace(aluBlock(100000));
    Simulator simulator(testConfig());
    const auto result = simulator.run(trace, nullptr, 100);
    EXPECT_EQ(result.cycles, 100u);
}

TEST(Core, PowerSinkCalledOncePerCycle)
{
    VectorTraceSource trace(aluBlock(100));
    Simulator simulator(testConfig());
    std::size_t samples = 0;
    const auto result =
        simulator.run(trace, [&](dsp::Sample) { ++samples; });
    EXPECT_EQ(samples, result.cycles);
}

TEST(Core, StalledCyclePowerIsLowerThanBusy)
{
    SimConfig cfg = testConfig();
    std::vector<MicroOp> ops = aluBlock(256);
    ops.push_back(makeLoad(0x1100, 0x8000'0000));
    ops.push_back(makeAlu(0x1104, 1));
    auto more = aluBlock(256, 0x1200);
    ops.insert(ops.end(), more.begin(), more.end());

    VectorTraceSource trace(std::move(ops));
    Simulator simulator(cfg);
    dsp::TimeSeries power;
    simulator.runWithPowerTrace(trace, power);

    float min_p = 1e9f, max_p = 0.0f;
    for (float p : power.samples) {
        min_p = std::min(min_p, p);
        max_p = std::max(max_p, p);
    }
    // The stall floor is the static power; busy cycles are much higher.
    EXPECT_NEAR(min_p, cfg.power.staticPower, 0.02);
    EXPECT_GT(max_p, 3.0f * min_p);
}

TEST(Core, DrainsAndTerminates)
{
    const auto result = runOps(aluBlock(10));
    EXPECT_EQ(result.instructions, 10u);
    // A couple of compulsory I$ line fills, then done.
    EXPECT_LT(result.cycles, 1500u);
}

TEST(Core, EmptyTraceTerminatesImmediately)
{
    const auto result = runOps({});
    EXPECT_EQ(result.instructions, 0u);
    EXPECT_LT(result.cycles, 4u);
}

} // namespace
} // namespace emprof::sim
