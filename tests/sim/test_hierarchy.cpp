/**
 * @file
 * Unit tests for the memory hierarchy glue.
 */

#include <gtest/gtest.h>

#include "sim/hierarchy.hpp"

namespace emprof::sim {
namespace {

SimConfig
testConfig()
{
    SimConfig cfg;
    cfg.memory.latencyJitter = 0;
    cfg.memory.refreshEnabled = false;
    return cfg;
}

TEST(Hierarchy, L1HitIsFast)
{
    SimConfig cfg = testConfig();
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);
    hier.dataAccess(0x100, 0x5000, false, 0, 0); // warm the line
    const auto out = hier.dataAccess(0x100, 0x5000, false, 100, 0);
    EXPECT_EQ(out.completion, 100 + cfg.l1d.hitLatency);
    EXPECT_FALSE(out.llcMiss);
    EXPECT_FALSE(out.llcAccessed);
}

TEST(Hierarchy, LlcHitCostsLlcLatency)
{
    SimConfig cfg = testConfig();
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);
    hier.dataAccess(0x100, 0x5000, false, 0, 0);
    // Evict from the tiny L1 by touching conflicting lines; the L1 has
    // sizeBytes/assoc sets, so stride by set-aliasing distance.
    const uint64_t alias = cfg.l1d.sizeBytes;
    for (int i = 1; i <= 8; ++i)
        hier.dataAccess(0x100, 0x5000 + i * alias, false, 0, 0);
    const auto out = hier.dataAccess(0x100, 0x5000, false, 1000, 0);
    EXPECT_FALSE(out.llcMiss);
    EXPECT_TRUE(out.llcAccessed);
    EXPECT_EQ(out.completion,
              1000 + cfg.llc.hitLatency + cfg.l1d.hitLatency);
}

TEST(Hierarchy, ColdMissGoesToMemoryAndRecordsGroundTruth)
{
    SimConfig cfg = testConfig();
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);
    const auto out = hier.dataAccess(0x100, 0x9000'0000, false, 50, 3);
    EXPECT_TRUE(out.llcMiss);
    EXPECT_TRUE(out.memoryStall);
    EXPECT_GT(out.completion, 50 + cfg.memory.accessLatency);
    EXPECT_EQ(gt.rawLlcMisses(), 1u);
    EXPECT_EQ(gt.phases()[3].llcMisses, 1u);
}

TEST(Hierarchy, FetchMissIsFetchSide)
{
    SimConfig cfg = testConfig();
    cfg.detailedGroundTruth = true;
    GroundTruth gt(true);
    MemoryHierarchy hier(cfg, gt);
    hier.fetchAccess(0xAB0000, 10, 0);
    ASSERT_EQ(gt.rawEvents().size(), 1u);
    EXPECT_TRUE(gt.rawEvents()[0].fetchSide);
}

TEST(Hierarchy, PrefetchCoversFutureDemandMiss)
{
    SimConfig cfg = testConfig();
    cfg.prefetcher.enabled = true;
    cfg.prefetcher.trainThreshold = 2;
    cfg.prefetcher.degree = 2;
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);

    // Stride through cold lines from one PC; after training, later
    // lines are prefetched and demand accesses stop missing.
    Cycle now = 0;
    for (int i = 0; i < 40; ++i) {
        const auto out =
            hier.dataAccess(0x100, 0xA000'0000 + i * 64ull, false, now, 0);
        now = out.completion + 200; // generous spacing: prefetch lands
    }
    EXPECT_GT(hier.prefetchCoveredMisses() +
                  (40 - gt.rawLlcMisses()), 10u);
    EXPECT_LT(gt.rawLlcMisses(), 35u);
}

TEST(Hierarchy, LateCoveredPrefetchIsMemoryStallButNotMiss)
{
    SimConfig cfg = testConfig();
    cfg.prefetcher.enabled = true;
    cfg.prefetcher.trainThreshold = 1;
    cfg.prefetcher.degree = 1;
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);

    // Train, then access the prefetched line immediately: the fill is
    // still in flight.
    Cycle now = 0;
    for (int i = 0; i < 4; ++i) {
        const auto out =
            hier.dataAccess(0x100, 0xB000'0000 + i * 64ull, false, now, 0);
        now = out.completion;
    }
    const uint64_t misses_before = gt.rawLlcMisses();
    const auto out =
        hier.dataAccess(0x100, 0xB000'0000 + 4 * 64ull, false, now + 1, 0);
    EXPECT_EQ(gt.rawLlcMisses(), misses_before); // covered: not a miss
    EXPECT_TRUE(out.memoryStall);                // but still a DRAM wait
    EXPECT_FALSE(out.llcMiss);
}

TEST(Hierarchy, DirtyLlcEvictionWritesBack)
{
    SimConfig cfg = testConfig();
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);
    // Write far more distinct dirty lines than the LLC holds.
    const uint64_t lines = cfg.llc.numLines() * 3;
    for (uint64_t i = 0; i < lines; ++i)
        hier.dataAccess(0x100, 0xC000'0000 + i * 64, true, i * 10, 0);
    EXPECT_GT(hier.memory().stats().writes, lines / 4);
}

TEST(Hierarchy, StatsFlowToCaches)
{
    SimConfig cfg = testConfig();
    GroundTruth gt;
    MemoryHierarchy hier(cfg, gt);
    hier.dataAccess(0x100, 0x5000, false, 0, 0);
    hier.dataAccess(0x100, 0x5000, false, 10, 0);
    EXPECT_EQ(hier.l1d().stats().misses, 1u);
    EXPECT_EQ(hier.l1d().stats().hits, 1u);
    EXPECT_EQ(hier.llc().stats().misses, 1u);
}

} // namespace
} // namespace emprof::sim
