/**
 * @file
 * Unit tests for the simulator facade, using the microbenchmark as the
 * canonical workload.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workloads/microbenchmark.hpp"

namespace emprof::sim {
namespace {

TEST(Simulator, PowerTraceHasOneSamplePerCycle)
{
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 64;
    mb_cfg.blankLoopIterations = 500;
    workloads::Microbenchmark mb(mb_cfg);

    SimConfig cfg;
    Simulator simulator(cfg);
    dsp::TimeSeries power;
    const auto result = simulator.runWithPowerTrace(mb, power);
    EXPECT_EQ(power.samples.size(), result.cycles);
    EXPECT_DOUBLE_EQ(power.sampleRateHz, cfg.clockHz);
}

TEST(Simulator, MicrobenchmarkMeasuredPhaseHasExactlyTmDataMisses)
{
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 256;
    mb_cfg.consecutiveMisses = 8;
    mb_cfg.blankLoopIterations = 1000;
    workloads::Microbenchmark mb(mb_cfg);

    SimConfig cfg;
    cfg.memory.refreshEnabled = false;
    Simulator simulator(cfg);
    simulator.run(mb);
    const auto &phase =
        simulator.groundTruth()
            .phases()[workloads::Microbenchmark::kPhaseMemAccess];
    // The phase also takes a handful of compulsory I$ misses on its
    // first iteration; the engineered data misses dominate exactly.
    EXPECT_GE(phase.llcMisses, 256u);
    EXPECT_LE(phase.llcMisses, 256u + 40u);
}

TEST(Simulator, ResultsAreInternallyConsistent)
{
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 128;
    mb_cfg.blankLoopIterations = 500;
    workloads::Microbenchmark mb(mb_cfg);

    Simulator simulator(SimConfig{});
    const auto result = simulator.run(mb);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_EQ(result.stallIntervals,
              simulator.groundTruth().stallIntervals().size());
    EXPECT_LE(result.missStallCycles + result.otherStallCycles,
              result.cycles);
    EXPECT_GE(result.llcStats.misses, result.rawLlcMisses);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto run_once = [] {
        workloads::MicrobenchmarkConfig mb_cfg;
        mb_cfg.totalMisses = 64;
        mb_cfg.blankLoopIterations = 200;
        workloads::Microbenchmark mb(mb_cfg);
        Simulator simulator(SimConfig{});
        return simulator.run(mb);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.rawLlcMisses, b.rawLlcMisses);
    EXPECT_EQ(a.missStallCycles, b.missStallCycles);
}

TEST(Simulator, RefreshDelayedMissesAppearOnLongRuns)
{
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 2048;
    mb_cfg.consecutiveMisses = 16;
    mb_cfg.blankLoopIterations = 2000;
    workloads::Microbenchmark mb(mb_cfg);

    SimConfig cfg; // refresh enabled by default
    Simulator simulator(cfg);
    const auto result = simulator.run(mb);
    EXPECT_GT(simulator.groundTruth().refreshDelayedMisses(), 0u);
    EXPECT_GT(result.memoryStats.refreshWindows, 0u);
}

TEST(Simulator, MissStallFractionIsPlausible)
{
    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 512;
    mb_cfg.consecutiveMisses = 8;
    mb_cfg.blankLoopIterations = 2000;
    workloads::Microbenchmark mb(mb_cfg);

    Simulator simulator(SimConfig{});
    const auto result = simulator.run(mb);
    EXPECT_GT(result.missStallFraction(), 0.05);
    EXPECT_LT(result.missStallFraction(), 0.95);
}

} // namespace
} // namespace emprof::sim
