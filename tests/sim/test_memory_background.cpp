/**
 * @file
 * Tests for background memory traffic (the phones' shared-channel
 * model behind Fig. 11's latency tails).
 */

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "dsp/series_ops.hpp"
#include "sim/memory.hpp"

namespace emprof::sim {
namespace {

MemoryConfig
baseConfig()
{
    MemoryConfig cfg;
    cfg.accessLatency = 200;
    cfg.latencyJitter = 0;
    cfg.burstCycles = 8;
    cfg.refreshEnabled = false;
    return cfg;
}

TEST(MemoryBackground, DisabledByDefault)
{
    MemorySystem mem(baseConfig());
    for (int i = 0; i < 100; ++i) {
        const auto r = mem.read(i * 10'000);
        EXPECT_EQ(r.completion - i * 10'000, 200u);
    }
}

TEST(MemoryBackground, SomeReadsQueueBehindBursts)
{
    MemoryConfig cfg = baseConfig();
    cfg.backgroundPeriod = 2'000;
    cfg.backgroundBurst = 300;
    MemorySystem mem(cfg);

    // Randomised arrival times land inside a background burst with
    // ~15% probability (300 / 2000).
    dsp::Rng rng(21);
    std::vector<double> latencies;
    sim::Cycle now = 0;
    for (int i = 0; i < 600; ++i) {
        now += 1'000 + rng.below(5'000);
        latencies.push_back(
            static_cast<double>(mem.read(now).completion - now));
    }

    // The common case stays at the base latency...
    EXPECT_NEAR(dsp::percentile(latencies, 50.0), 200.0, 1.0);
    // ...but a tail of reads picks up queueing delay.
    EXPECT_GT(dsp::percentile(latencies, 92.0), 250.0);
    EXPECT_LE(dsp::percentile(latencies, 100.0), 200.0 + 300.0 + 8.0);
}

TEST(MemoryBackground, TailScalesWithBurstLength)
{
    auto tail_for = [](uint32_t burst) {
        MemoryConfig cfg = baseConfig();
        cfg.backgroundPeriod = 4'000;
        cfg.backgroundBurst = burst;
        MemorySystem mem(cfg);
        std::vector<double> latencies;
        for (int i = 0; i < 500; ++i)
            latencies.push_back(static_cast<double>(
                mem.read(i * 2'777).completion - i * 2'777));
        return dsp::percentile(latencies, 99.0);
    };
    EXPECT_GT(tail_for(400), tail_for(100));
}

TEST(MemoryBackground, IdlePeriodsDoNotAccumulateBursts)
{
    // A long idle gap must not pile up queued bursts: the channel
    // absorbed them while idle.
    MemoryConfig cfg = baseConfig();
    cfg.backgroundPeriod = 1'000;
    cfg.backgroundBurst = 500;
    MemorySystem mem(cfg);

    const auto r = mem.read(10'000'000);
    // At worst one in-progress burst delays the read.
    EXPECT_LE(r.completion - 10'000'000, 200u + 500u);
}

} // namespace
} // namespace emprof::sim
