/**
 * @file
 * Unit tests for the ground-truth recorder.
 */

#include <gtest/gtest.h>

#include "sim/ground_truth.hpp"

namespace emprof::sim {
namespace {

TEST(GroundTruth, CountsRawMisses)
{
    GroundTruth gt;
    gt.onLlcMiss(100, false, false, 0);
    gt.onLlcMiss(200, true, false, 0);
    gt.onLlcMiss(300, false, true, 1);
    EXPECT_EQ(gt.rawLlcMisses(), 3u);
    EXPECT_EQ(gt.refreshDelayedMisses(), 1u);
}

TEST(GroundTruth, ContiguousStallCyclesFormOneInterval)
{
    GroundTruth gt;
    for (Cycle c = 100; c < 150; ++c)
        gt.onMissStallCycle(c, 1, false, 0);
    gt.finalize();
    ASSERT_EQ(gt.stallIntervals().size(), 1u);
    EXPECT_EQ(gt.stallIntervals()[0].begin, 100u);
    EXPECT_EQ(gt.stallIntervals()[0].end, 149u);
    EXPECT_EQ(gt.stallIntervals()[0].durationCycles(), 50u);
    EXPECT_EQ(gt.missStallCycles(), 50u);
}

TEST(GroundTruth, GapSplitsIntervals)
{
    GroundTruth gt;
    gt.onMissStallCycle(10, 1, false, 0);
    gt.onMissStallCycle(11, 1, false, 0);
    gt.onMissStallCycle(20, 1, false, 0);
    gt.finalize();
    EXPECT_EQ(gt.stallIntervals().size(), 2u);
}

TEST(GroundTruth, OverlapTracksMaxOutstanding)
{
    GroundTruth gt;
    gt.onMissStallCycle(10, 1, false, 0);
    gt.onMissStallCycle(11, 3, false, 0);
    gt.onMissStallCycle(12, 2, false, 0);
    gt.finalize();
    ASSERT_EQ(gt.stallIntervals().size(), 1u);
    EXPECT_EQ(gt.stallIntervals()[0].overlappedMisses, 3u);
}

TEST(GroundTruth, RefreshFlagSticksToInterval)
{
    GroundTruth gt;
    gt.onMissStallCycle(10, 1, false, 0);
    gt.onMissStallCycle(11, 1, true, 0);
    gt.onMissStallCycle(12, 1, false, 0);
    gt.finalize();
    ASSERT_EQ(gt.stallIntervals().size(), 1u);
    EXPECT_TRUE(gt.stallIntervals()[0].refreshAffected);
}

TEST(GroundTruth, CountIntervalsAtLeastFiltersShort)
{
    GroundTruth gt;
    gt.onMissStallCycle(10, 1, false, 0); // 1-cycle interval
    for (Cycle c = 100; c < 200; ++c)
        gt.onMissStallCycle(c, 1, false, 0); // 100-cycle interval
    gt.finalize();
    EXPECT_EQ(gt.countIntervalsAtLeast(1), 2u);
    EXPECT_EQ(gt.countIntervalsAtLeast(50), 1u);
    EXPECT_EQ(gt.countIntervalsAtLeast(101), 0u);
    EXPECT_EQ(gt.stallCyclesInIntervalsAtLeast(50), 100u);
}

TEST(GroundTruth, CoalescedCountMergesNearbyIntervals)
{
    GroundTruth gt;
    // Three intervals with 5-cycle gaps.
    for (Cycle base : {100u, 205u, 310u}) {
        for (Cycle c = base; c < base + 100; ++c)
            gt.onMissStallCycle(c, 1, false, 0);
    }
    gt.finalize();
    EXPECT_EQ(gt.stallIntervals().size(), 3u);
    EXPECT_EQ(gt.countCoalescedIntervals(1, 1), 3u);
    EXPECT_EQ(gt.countCoalescedIntervals(10, 1), 1u);
}

TEST(GroundTruth, CoalescedCountRespectsMinLength)
{
    GroundTruth gt;
    gt.onMissStallCycle(10, 1, false, 0);
    gt.onMissStallCycle(11, 1, false, 0);
    for (Cycle c = 500; c < 600; ++c)
        gt.onMissStallCycle(c, 1, false, 0);
    gt.finalize();
    EXPECT_EQ(gt.countCoalescedIntervals(1, 50), 1u);
}

TEST(GroundTruth, OtherStallsSeparate)
{
    GroundTruth gt;
    gt.onOtherStallCycle();
    gt.onOtherStallCycle();
    EXPECT_EQ(gt.otherStallCycles(), 2u);
    EXPECT_EQ(gt.missStallCycles(), 0u);
    EXPECT_TRUE(gt.stallIntervals().empty());
}

TEST(GroundTruth, PhaseCountersAccumulate)
{
    GroundTruth gt;
    gt.onCycle(2);
    gt.onCycle(2);
    gt.onInstruction(2);
    gt.onLlcMiss(5, false, false, 2);
    gt.onMissStallCycle(6, 1, false, 2);
    EXPECT_EQ(gt.phases()[2].cycles, 2u);
    EXPECT_EQ(gt.phases()[2].instructions, 1u);
    EXPECT_EQ(gt.phases()[2].llcMisses, 1u);
    EXPECT_EQ(gt.phases()[2].missStallCycles, 1u);
    EXPECT_EQ(gt.phases()[0].cycles, 0u);
}

TEST(GroundTruth, OutOfRangePhaseClampsToLast)
{
    GroundTruth gt;
    gt.onCycle(200);
    EXPECT_EQ(gt.phases()[kMaxPhases - 1].cycles, 1u);
}

TEST(GroundTruth, DetailedModeKeepsRawEvents)
{
    GroundTruth gt(true);
    gt.onLlcMiss(42, true, false, 0);
    ASSERT_EQ(gt.rawEvents().size(), 1u);
    EXPECT_EQ(gt.rawEvents()[0].detect, 42u);
    EXPECT_TRUE(gt.rawEvents()[0].fetchSide);

    GroundTruth lean(false);
    lean.onLlcMiss(42, true, false, 0);
    EXPECT_TRUE(lean.rawEvents().empty());
}

TEST(GroundTruth, FinalizeIsIdempotent)
{
    GroundTruth gt;
    gt.onMissStallCycle(1, 1, false, 0);
    gt.finalize();
    gt.finalize();
    EXPECT_EQ(gt.stallIntervals().size(), 1u);
}

} // namespace
} // namespace emprof::sim
