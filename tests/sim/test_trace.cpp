/**
 * @file
 * Unit tests for the trace-source abstractions.
 */

#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace emprof::sim {
namespace {

TEST(VectorTrace, DeliversAllOpsThenEnds)
{
    std::vector<MicroOp> ops = {makeAlu(0x10), makeAlu(0x14),
                                makeAlu(0x18)};
    VectorTraceSource trace(ops);
    MicroOp op;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(trace.next(op));
        EXPECT_EQ(op.pc, 0x10u + 4u * i);
    }
    EXPECT_FALSE(trace.next(op));
    EXPECT_FALSE(trace.next(op)); // stays ended
}

TEST(VectorTrace, RewindRestarts)
{
    VectorTraceSource trace({makeAlu(0x10)});
    MicroOp op;
    ASSERT_TRUE(trace.next(op));
    ASSERT_FALSE(trace.next(op));
    trace.rewind();
    ASSERT_TRUE(trace.next(op));
    EXPECT_EQ(op.pc, 0x10u);
}

/** Chunked source emitting k chunks of n ops. */
class CountingChunks : public ChunkedTraceSource
{
  public:
    CountingChunks(int chunks, int per_chunk)
        : chunks_(chunks), perChunk_(per_chunk)
    {}

    int refills = 0;

  protected:
    void
    refill(std::vector<MicroOp> &out) override
    {
        ++refills;
        if (emitted_ >= chunks_)
            return; // trace ends
        for (int i = 0; i < perChunk_; ++i)
            out.push_back(makeAlu(0x1000 + 4u * i));
        ++emitted_;
    }

  private:
    int chunks_;
    int perChunk_;
    int emitted_ = 0;
};

TEST(ChunkedTrace, DeliversEveryChunkInOrder)
{
    CountingChunks source(5, 7);
    MicroOp op;
    int delivered = 0;
    while (source.next(op))
        ++delivered;
    EXPECT_EQ(delivered, 35);
}

TEST(ChunkedTrace, EmptyRefillEndsTrace)
{
    CountingChunks source(0, 7);
    MicroOp op;
    EXPECT_FALSE(source.next(op));
    EXPECT_EQ(source.refills, 1);
}

TEST(ConcatTrace, ChainsSourcesBackToBack)
{
    VectorTraceSource a({makeAlu(0x10), makeAlu(0x14)});
    VectorTraceSource b({makeAlu(0x20)});
    VectorTraceSource c({});
    VectorTraceSource d({makeAlu(0x30)});
    ConcatTraceSource concat({&a, &b, &c, &d});

    std::vector<Addr> pcs;
    MicroOp op;
    while (concat.next(op))
        pcs.push_back(op.pc);
    ASSERT_EQ(pcs.size(), 4u);
    EXPECT_EQ(pcs[0], 0x10u);
    EXPECT_EQ(pcs[2], 0x20u);
    EXPECT_EQ(pcs[3], 0x30u);
}

TEST(MicroOpHelpers, FactoriesSetFields)
{
    const auto load = makeLoad(0x100, 0xABC0, 3);
    EXPECT_TRUE(load.isLoad());
    EXPECT_TRUE(load.isMemRef());
    EXPECT_EQ(load.memAddr, 0xABC0u);
    EXPECT_EQ(load.depDist, 3);

    const auto store = makeStore(0x104, 0xDEF0);
    EXPECT_TRUE(store.isStore());
    EXPECT_TRUE(store.isMemRef());

    const auto branch = makeBranch(0x108, true);
    EXPECT_TRUE(branch.taken);
    EXPECT_FALSE(branch.isMemRef());

    EXPECT_EQ(opClassName(OpClass::Load), "Load");
    EXPECT_EQ(opClassName(OpClass::IntDiv), "IntDiv");
}

} // namespace
} // namespace emprof::sim
