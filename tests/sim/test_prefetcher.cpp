/**
 * @file
 * Unit tests for the stride prefetcher.
 */

#include <gtest/gtest.h>

#include "sim/prefetcher.hpp"

namespace emprof::sim {
namespace {

PrefetcherConfig
enabledConfig()
{
    PrefetcherConfig cfg;
    cfg.enabled = true;
    cfg.tableEntries = 16;
    cfg.degree = 2;
    cfg.trainThreshold = 2;
    return cfg;
}

TEST(Prefetcher, DisabledEmitsNothing)
{
    PrefetcherConfig cfg = enabledConfig();
    cfg.enabled = false;
    StridePrefetcher pf(cfg, 64);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(0x100, i * 64, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, TrainsOnConstantStride)
{
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    // Allocate, set stride, confirm to threshold.
    for (int i = 0; i < 5; ++i)
        pf.observe(0x100, 0x10000 + i * 64ull, out);
    EXPECT_FALSE(out.empty());
    // The prefetches triggered by the final access run `degree` lines
    // ahead of it.
    out.clear();
    const Addr last = 0x10000 + 5 * 64ull;
    pf.observe(0x100, last, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].lineAddr, last + 64);
    EXPECT_EQ(out[1].lineAddr, last + 128);
}

TEST(Prefetcher, EmitsDegreeRequestsPerConfirmedAccess)
{
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 4; ++i)
        pf.observe(0x100, i * 64ull, out);
    const std::size_t after_first = out.size();
    pf.observe(0x100, 4 * 64ull, out);
    EXPECT_EQ(out.size() - after_first, 2u);
}

TEST(Prefetcher, NegativeStrideWorks)
{
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 6; ++i)
        pf.observe(0x200, 0x100000 - i * 128ull, out);
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out.back().lineAddr, 0x100000ull - 5 * 128);
}

TEST(Prefetcher, RandomPatternDefeatsTraining)
{
    // The microbenchmark's randomised order must not trigger
    // prefetches (Sec. V-B).
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    const Addr addrs[] = {0x1040, 0x9fc0, 0x2300, 0xe000, 0x0440,
                          0x7a80, 0x3cc0, 0xb180, 0x5240, 0x86c0};
    for (Addr a : addrs)
        pf.observe(0x300, a, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().issued, 0u);
}

TEST(Prefetcher, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 4; ++i)
        pf.observe(0x100, i * 64ull, out);
    const std::size_t before = out.size();
    // Change stride: needs re-confirmation before prefetching again.
    pf.observe(0x100, 0x100000, out);
    pf.observe(0x100, 0x100000 + 256, out);
    EXPECT_EQ(out.size(), before);
    pf.observe(0x100, 0x100000 + 512, out);
    pf.observe(0x100, 0x100000 + 768, out);
    EXPECT_GT(out.size(), before);
}

TEST(Prefetcher, DistinctPcsTrainIndependently)
{
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 6; ++i) {
        pf.observe(0x100, 0x10000 + i * 64ull, out);
        pf.observe(0x101, 0x90000 + i * 4096ull, out);
    }
    EXPECT_GE(pf.stats().issued, 4u);
}

TEST(Prefetcher, RequestsAreLineAligned)
{
    StridePrefetcher pf(enabledConfig(), 64);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 8; ++i)
        pf.observe(0x100, 0x10007 + i * 72ull, out);
    for (const auto &req : out)
        EXPECT_EQ(req.lineAddr % 64, 0u);
}

} // namespace
} // namespace emprof::sim
