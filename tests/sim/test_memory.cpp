/**
 * @file
 * Unit tests for the DRAM / memory-controller model.
 */

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace emprof::sim {
namespace {

MemoryConfig
quietConfig()
{
    MemoryConfig cfg;
    cfg.accessLatency = 200;
    cfg.latencyJitter = 0;
    cfg.burstCycles = 8;
    cfg.refreshEnabled = false;
    return cfg;
}

TEST(Memory, FixedLatencyWithoutJitter)
{
    MemorySystem mem(quietConfig());
    const auto r = mem.read(1000);
    EXPECT_EQ(r.completion, 1200u);
    EXPECT_FALSE(r.refreshDelayed);
}

TEST(Memory, JitterBoundsRespected)
{
    MemoryConfig cfg = quietConfig();
    cfg.latencyJitter = 20;
    MemorySystem mem(cfg);
    for (int i = 0; i < 500; ++i) {
        const auto r = mem.read(i * 1000);
        const auto latency = r.completion - i * 1000;
        EXPECT_GE(latency, 180u);
        EXPECT_LE(latency, 220u);
    }
}

TEST(Memory, ChannelSerialisesBackToBackRequests)
{
    MemorySystem mem(quietConfig());
    const auto a = mem.read(0);
    const auto b = mem.read(0);
    const auto c = mem.read(0);
    EXPECT_EQ(a.completion, 200u);
    EXPECT_EQ(b.completion, 208u); // starts after a's burst slot
    EXPECT_EQ(c.completion, 216u);
}

TEST(Memory, IdleChannelDoesNotDelay)
{
    MemorySystem mem(quietConfig());
    mem.read(0);
    const auto late = mem.read(5000);
    EXPECT_EQ(late.completion, 5200u);
}

TEST(Memory, RefreshWindowSchedule)
{
    MemoryConfig cfg = quietConfig();
    cfg.refreshEnabled = true;
    cfg.refreshPeriod = 10000;
    cfg.refreshDuration = 500;
    MemorySystem mem(cfg);

    EXPECT_FALSE(mem.inRefresh(500));    // before the first window
    EXPECT_TRUE(mem.inRefresh(10000));
    EXPECT_TRUE(mem.inRefresh(10499));
    EXPECT_FALSE(mem.inRefresh(10500));
    EXPECT_TRUE(mem.inRefresh(20100));
}

TEST(Memory, RequestDuringRefreshIsDelayedAndFlagged)
{
    MemoryConfig cfg = quietConfig();
    cfg.refreshEnabled = true;
    cfg.refreshPeriod = 10000;
    cfg.refreshDuration = 500;
    MemorySystem mem(cfg);

    const auto r = mem.read(10050);
    EXPECT_TRUE(r.refreshDelayed);
    EXPECT_EQ(r.completion, 10500u + 200u);
    EXPECT_EQ(mem.stats().refreshDelayedReads, 1u);
}

TEST(Memory, RequestOutsideRefreshUnaffected)
{
    MemoryConfig cfg = quietConfig();
    cfg.refreshEnabled = true;
    cfg.refreshPeriod = 10000;
    cfg.refreshDuration = 500;
    MemorySystem mem(cfg);

    const auto r = mem.read(5000);
    EXPECT_FALSE(r.refreshDelayed);
    EXPECT_EQ(r.completion, 5200u);
}

TEST(Memory, CasTraceRecordsReadsAndWrites)
{
    MemorySystem mem(quietConfig());
    mem.read(100);
    mem.write(400);
    ASSERT_EQ(mem.casTrace().size(), 2u);
    EXPECT_EQ(mem.casTrace()[0].kind, CasEvent::Kind::Read);
    EXPECT_EQ(mem.casTrace()[1].kind, CasEvent::Kind::Write);
    EXPECT_EQ(mem.stats().reads, 1u);
    EXPECT_EQ(mem.stats().writes, 1u);
}

TEST(Memory, ReadCasBurstEndsAtCompletion)
{
    MemorySystem mem(quietConfig());
    const auto r = mem.read(100);
    const auto &ev = mem.casTrace()[0];
    EXPECT_EQ(ev.start + ev.duration, r.completion);
}

TEST(Memory, CatchUpEmitsRefreshEvents)
{
    MemoryConfig cfg = quietConfig();
    cfg.refreshEnabled = true;
    cfg.refreshPeriod = 1000;
    cfg.refreshDuration = 100;
    MemorySystem mem(cfg);

    mem.catchUpRefresh(3500);
    std::size_t refreshes = 0;
    for (const auto &ev : mem.casTrace())
        refreshes += ev.kind == CasEvent::Kind::Refresh;
    EXPECT_EQ(refreshes, 3u);
    EXPECT_EQ(mem.stats().refreshWindows, 3u);
}

TEST(Memory, CasTraceCanBeDisabled)
{
    MemorySystem mem(quietConfig());
    mem.setCasTraceEnabled(false);
    mem.read(0);
    mem.write(0);
    EXPECT_TRUE(mem.casTrace().empty());
    EXPECT_EQ(mem.stats().reads, 1u);
}

TEST(Memory, WritesOccupyChannel)
{
    MemorySystem mem(quietConfig());
    mem.write(0);
    const auto r = mem.read(0);
    EXPECT_EQ(r.completion, 208u); // waits for the write burst
}

} // namespace
} // namespace emprof::sim
