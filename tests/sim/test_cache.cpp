/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/cache.hpp"

namespace emprof::sim {
namespace {

CacheConfig
smallCache(Replacement repl = Replacement::Lru)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024; // 16 lines
    cfg.assoc = 4;        // 4 sets
    cfg.lineBytes = 64;
    cfg.replacement = repl;
    return cfg;
}

TEST(Cache, FirstAccessMissesThenHits)
{
    Cache cache(smallCache(), 1);
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit); // same line
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache cache(smallCache(), 1);
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_EQ(cache.stats().accesses(), 0u);
    cache.access(0x40, false);
    EXPECT_TRUE(cache.probe(0x40));
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(smallCache(Replacement::Lru), 1);
    const uint64_t set_stride = 4 * 64; // same set every 4 lines

    // Fill one set's 4 ways.
    for (int w = 0; w < 4; ++w)
        cache.access(w * set_stride, false);
    // Touch way 0 to refresh it, then insert a 5th line.
    cache.access(0, false);
    cache.access(4 * set_stride, false);

    EXPECT_TRUE(cache.probe(0));               // refreshed: kept
    EXPECT_FALSE(cache.probe(1 * set_stride)); // oldest: evicted
    EXPECT_TRUE(cache.probe(4 * set_stride));
}

TEST(Cache, RandomReplacementFillsInvalidFirst)
{
    Cache cache(smallCache(Replacement::Random), 1);
    const uint64_t set_stride = 4 * 64;
    for (int w = 0; w < 4; ++w)
        cache.access(w * set_stride, false);
    // All four must be present: invalid ways are preferred victims.
    for (int w = 0; w < 4; ++w)
        EXPECT_TRUE(cache.probe(w * set_stride));
}

TEST(Cache, DirtyEvictionReportsVictimLine)
{
    Cache cache(smallCache(Replacement::Lru), 1);
    const uint64_t set_stride = 4 * 64;
    cache.access(0, true); // dirty
    for (int w = 1; w < 4; ++w)
        cache.access(w * set_stride, false);
    const auto result = cache.access(4 * set_stride, false);
    EXPECT_TRUE(result.dirtyEviction);
    EXPECT_EQ(result.victimLine, 0u);
}

TEST(Cache, CleanEvictionIsSilent)
{
    Cache cache(smallCache(Replacement::Lru), 1);
    const uint64_t set_stride = 4 * 64;
    for (int w = 0; w < 5; ++w) {
        const auto result = cache.access(w * set_stride, false);
        EXPECT_FALSE(result.dirtyEviction);
    }
}

TEST(Cache, WriteMarksDirtyOnHitToo)
{
    Cache cache(smallCache(Replacement::Lru), 1);
    const uint64_t set_stride = 4 * 64;
    cache.access(0, false);       // clean allocate
    cache.access(0, true);        // hit marks dirty
    for (int w = 1; w < 4; ++w)
        cache.access(w * set_stride, false);
    EXPECT_TRUE(cache.access(4 * set_stride, false).dirtyEviction);
}

TEST(Cache, InsertDoesNotCountStats)
{
    Cache cache(smallCache(), 1);
    cache.insert(0x2000);
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_TRUE(cache.probe(0x2000));
    // Insert of a present line reports hit and changes nothing.
    EXPECT_TRUE(cache.insert(0x2000).hit);
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache cache(smallCache(), 1);
    for (int i = 0; i < 16; ++i)
        cache.access(i * 64, true);
    cache.flush();
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(cache.probe(i * 64));
}

TEST(Cache, InvalidateSingleLine)
{
    Cache cache(smallCache(), 1);
    cache.access(0x100, false);
    cache.access(0x200, false);
    EXPECT_TRUE(cache.invalidate(0x100));
    EXPECT_FALSE(cache.invalidate(0x100));
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_TRUE(cache.probe(0x200));
}

TEST(Cache, LineAddrMasksOffset)
{
    Cache cache(smallCache(), 1);
    EXPECT_EQ(cache.lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(cache.lineAddr(0x1240), 0x1240u);
}

TEST(Cache, BankIndexStable)
{
    CacheConfig cfg = smallCache();
    cfg.banks = 4;
    Cache cache(cfg, 1);
    EXPECT_EQ(cache.bank(0x0), cache.bank(0x0 + 16));
    EXPECT_NE(cache.bank(0x0), cache.bank(0x40));
}

TEST(Cache, ClearStats)
{
    Cache cache(smallCache(), 1);
    cache.access(0, false);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses(), 0u);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>>
{};

TEST_P(CacheGeometry, CapacityIsRespected)
{
    const auto [size, assoc] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.assoc = assoc;
    cfg.lineBytes = 64;
    cfg.replacement = Replacement::Lru;
    Cache cache(cfg, 1);

    const uint64_t lines = size / 64;
    // Fill exactly to capacity: everything must still be resident.
    for (uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    for (uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.probe(i * 64)) << "line " << i;

    // One more distinct line must evict exactly one resident line.
    cache.access(lines * 64, false);
    uint64_t resident = 0;
    for (uint64_t i = 0; i <= lines; ++i)
        resident += cache.probe(i * 64);
    EXPECT_EQ(resident, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1024ull, 2u),
                      std::make_tuple(2048ull, 4u),
                      std::make_tuple(16384ull, 8u),
                      std::make_tuple(65536ull, 16u)));

TEST(CacheStats, MissRateMath)
{
    CacheStats stats;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.25);
}

} // namespace
} // namespace emprof::sim
