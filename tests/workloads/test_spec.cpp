/**
 * @file
 * Unit tests for the synthetic SPEC workload suite.
 */

#include <gtest/gtest.h>

#include "workloads/spec.hpp"

namespace emprof::workloads {
namespace {

uint64_t
countOps(sim::TraceSource &trace)
{
    MicroOp op;
    uint64_t n = 0;
    while (trace.next(op))
        ++n;
    return n;
}

TEST(Spec, SuiteHasTenBenchmarks)
{
    EXPECT_EQ(specSuite().size(), 10u);
    EXPECT_EQ(specNames().size(), 10u);
    EXPECT_EQ(specNames().front(), "ammp");
    EXPECT_EQ(specNames().back(), "vpr");
}

TEST(Spec, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeSpec("not-a-benchmark"), nullptr);
}

class AllSpecs : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllSpecs, ConstructsAndEmitsApproximatelyScaleOps)
{
    auto wl = makeSpec(GetParam(), 200'000, 1);
    ASSERT_NE(wl, nullptr);
    const uint64_t ops = countOps(*wl);
    EXPECT_GT(ops, 150'000u);
    EXPECT_LT(ops, 400'000u);
}

TEST_P(AllSpecs, ContainsLoadsAndCompute)
{
    auto wl = makeSpec(GetParam(), 100'000, 1);
    MicroOp op;
    uint64_t loads = 0, compute = 0, branches = 0;
    while (wl->next(op)) {
        loads += op.isLoad();
        branches += op.cls == sim::OpClass::Branch;
        compute += op.cls == sim::OpClass::IntAlu ||
                   op.cls == sim::OpClass::IntMul ||
                   op.cls == sim::OpClass::FpAlu;
    }
    EXPECT_GT(loads, 100u);
    EXPECT_GT(branches, 100u);
    EXPECT_GT(compute, 10u * loads); // compute-dominated op mix
}

TEST_P(AllSpecs, DeterministicPerSeed)
{
    auto a = makeSpec(GetParam(), 50'000, 7);
    auto b = makeSpec(GetParam(), 50'000, 7);
    MicroOp oa, ob;
    for (int i = 0; i < 20'000; ++i) {
        const bool ha = a->next(oa);
        const bool hb = b->next(ob);
        ASSERT_EQ(ha, hb);
        if (!ha)
            break;
        ASSERT_EQ(oa.memAddr, ob.memAddr);
        ASSERT_EQ(oa.pc, ob.pc);
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, AllSpecs,
                         ::testing::ValuesIn(specNames()));

TEST(Spec, ParserHasThreeTaggedPhases)
{
    auto wl = makeSpec("parser", 300'000, 1);
    MicroOp op;
    uint64_t per_phase[4] = {0, 0, 0, 0};
    while (wl->next(op)) {
        ASSERT_LE(op.phase, 3);
        ++per_phase[op.phase];
    }
    EXPECT_GT(per_phase[ParserPhases::kReadDictionary], 10'000u);
    EXPECT_GT(per_phase[ParserPhases::kInitRandtable], 5'000u);
    EXPECT_GT(per_phase[ParserPhases::kBatchProcess], 10'000u);
    // batch_process dominates (Table V).
    EXPECT_GT(per_phase[ParserPhases::kBatchProcess],
              per_phase[ParserPhases::kReadDictionary]);
}

TEST(Spec, ParserPhaseNamesMatchTableV)
{
    const auto names = ParserPhases::names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "read_dictionary");
    EXPECT_EQ(names[2], "batch_process");
}

TEST(Spec, McfUsesDependentLoadChains)
{
    auto wl = makeSpec("mcf", 2'000'000, 1);
    MicroOp op;
    uint64_t chained = 0;
    while (wl->next(op)) {
        if (op.isLoad() && op.depDist > 10)
            ++chained;
    }
    EXPECT_GT(chained, 50u); // pointer chase hops
}

TEST(Spec, Bzip2HasSequentialColdBursts)
{
    auto wl = makeSpec("bzip2", 400'000, 1);
    MicroOp op;
    sim::Addr prev = 0;
    uint64_t sequential_pairs = 0;
    while (wl->next(op)) {
        if (op.isLoad()) {
            if (prev != 0 && op.memAddr == prev + 64)
                ++sequential_pairs;
            prev = op.memAddr;
        }
    }
    EXPECT_GT(sequential_pairs, 20u);
}

} // namespace
} // namespace emprof::workloads
