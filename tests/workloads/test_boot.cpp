/**
 * @file
 * Unit tests for the boot-sequence workload.
 */

#include <gtest/gtest.h>

#include "workloads/boot.hpp"

namespace emprof::workloads {
namespace {

TEST(Boot, HasSixNamedPhases)
{
    const auto names = bootPhaseNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names.front(), "rom_stub");
    EXPECT_EQ(names.back(), "services");
}

TEST(Boot, PhaseTagsAreMonotonic)
{
    BootConfig cfg;
    cfg.scaleOps = 200'000;
    auto boot = makeBoot(cfg);
    MicroOp op;
    uint8_t last = 0;
    while (boot->next(op)) {
        ASSERT_GE(op.phase, last);
        last = op.phase;
    }
    EXPECT_EQ(last, 5);
}

TEST(Boot, ImageCopyPhaseIsStreamHeavy)
{
    BootConfig cfg;
    cfg.scaleOps = 400'000;
    auto boot = makeBoot(cfg);
    MicroOp op;
    uint64_t copy_loads = 0, rom_loads = 0;
    uint64_t copy_ops = 0, rom_ops = 0;
    while (boot->next(op)) {
        if (op.phase == 1) { // image_copy
            ++copy_ops;
            copy_loads += op.isLoad();
        } else if (op.phase == 0) { // rom_stub
            ++rom_ops;
            rom_loads += op.isLoad();
        }
    }
    ASSERT_GT(copy_ops, 0u);
    ASSERT_GT(rom_ops, 0u);
    const double copy_density =
        static_cast<double>(copy_loads) / static_cast<double>(copy_ops);
    const double rom_density =
        static_cast<double>(rom_loads) / static_cast<double>(rom_ops);
    EXPECT_GT(copy_density, 5.0 * (rom_density + 1e-9));
}

TEST(Boot, DifferentSeedsGiveDifferentPhaseLengths)
{
    BootConfig a_cfg, b_cfg;
    a_cfg.scaleOps = b_cfg.scaleOps = 200'000;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    auto count_phase = [](SegmentedWorkload &w, uint8_t phase) {
        MicroOp op;
        uint64_t n = 0;
        while (w.next(op))
            n += op.phase == phase;
        return n;
    };
    auto a = makeBoot(a_cfg);
    auto b = makeBoot(b_cfg);
    EXPECT_NE(count_phase(*a, 2), count_phase(*b, 2));
}

TEST(Boot, JitterZeroIsDeterministicAcrossSeeds)
{
    BootConfig a_cfg, b_cfg;
    a_cfg.scaleOps = b_cfg.scaleOps = 100'000;
    a_cfg.jitter = b_cfg.jitter = 0.0;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    auto count = [](SegmentedWorkload &w) {
        MicroOp op;
        uint64_t n = 0;
        while (w.next(op))
            ++n;
        return n;
    };
    auto a = makeBoot(a_cfg);
    auto b = makeBoot(b_cfg);
    // Phase lengths identical; only addresses differ.
    EXPECT_EQ(count(*a), count(*b));
}

} // namespace
} // namespace emprof::workloads
