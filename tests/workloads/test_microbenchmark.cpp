/**
 * @file
 * Unit tests for the Fig. 6 microbenchmark generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/microbenchmark.hpp"

namespace emprof::workloads {
namespace {

std::vector<MicroOp>
drain(sim::TraceSource &trace)
{
    std::vector<MicroOp> ops;
    MicroOp op;
    while (trace.next(op))
        ops.push_back(op);
    return ops;
}

TEST(Microbenchmark, MeasuredSectionLoadsAreDistinctLines)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 500;
    cfg.blankLoopIterations = 10;
    Microbenchmark mb(cfg);
    std::set<sim::Addr> lines;
    for (const auto &op : drain(mb)) {
        if (op.isLoad() && op.phase == Microbenchmark::kPhaseMemAccess)
            lines.insert(op.memAddr & ~63ull);
    }
    EXPECT_EQ(lines.size(), 500u);
}

TEST(Microbenchmark, MeasuredLoadsAvoidPageTouchLines)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 200;
    cfg.blankLoopIterations = 10;
    Microbenchmark mb(cfg);
    std::set<sim::Addr> touch_lines;
    std::vector<sim::Addr> measured;
    for (const auto &op : drain(mb)) {
        if (!op.isLoad())
            continue;
        if (op.phase == Microbenchmark::kPhaseSetup)
            touch_lines.insert(op.memAddr & ~63ull);
        else if (op.phase == Microbenchmark::kPhaseMemAccess)
            measured.push_back(op.memAddr & ~63ull);
    }
    for (sim::Addr line : measured)
        EXPECT_EQ(touch_lines.count(line), 0u);
}

TEST(Microbenchmark, EveryPageIsTouchedOnce)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 300;
    cfg.blankLoopIterations = 10;
    Microbenchmark mb(cfg);
    std::set<sim::Addr> pages_touched, pages_used;
    for (const auto &op : drain(mb)) {
        if (!op.isLoad())
            continue;
        const sim::Addr page = op.memAddr / cfg.pageBytes;
        if (op.phase == Microbenchmark::kPhaseSetup)
            pages_touched.insert(page);
        else if (op.phase == Microbenchmark::kPhaseMemAccess)
            pages_used.insert(page);
    }
    for (sim::Addr page : pages_used)
        EXPECT_EQ(pages_touched.count(page), 1u);
}

TEST(Microbenchmark, PhasesAppearInOrder)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 64;
    cfg.blankLoopIterations = 20;
    Microbenchmark mb(cfg);
    uint8_t last_phase = 0;
    for (const auto &op : drain(mb)) {
        EXPECT_GE(op.phase, last_phase);
        last_phase = std::max(last_phase, op.phase);
    }
    EXPECT_EQ(last_phase, Microbenchmark::kPhaseMarkerTail);
}

TEST(Microbenchmark, LoadsAreConsumed)
{
    // Each measured load must be followed by a dependent use so the
    // in-order core stalls on the miss.
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 32;
    cfg.blankLoopIterations = 5;
    Microbenchmark mb(cfg);
    const auto ops = drain(mb);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].isLoad() &&
            ops[i].phase == Microbenchmark::kPhaseMemAccess) {
            ASSERT_LT(i + 1, ops.size());
            EXPECT_EQ(ops[i + 1].depDist, 1);
        }
    }
}

TEST(Microbenchmark, GroupSeparatorsEveryCmMisses)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 40;
    cfg.consecutiveMisses = 10;
    cfg.blankLoopIterations = 5;
    Microbenchmark mb(cfg);
    // The separator (micro_function_call) runs at its own PC region;
    // count distinct bursts of that PC between loads.
    const auto ops = drain(mb);
    int separators = 0;
    bool in_fn = false;
    for (const auto &op : ops) {
        const bool fn = op.pc >= 0x3000 && op.pc < 0x4000;
        if (fn && !in_fn)
            ++separators;
        in_fn = fn;
    }
    // 40 misses / CM=10 -> separators after groups 1..3 (not the last).
    EXPECT_EQ(separators, 3);
}

TEST(Microbenchmark, DeterministicPerSeed)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 64;
    cfg.blankLoopIterations = 5;
    Microbenchmark a(cfg), b(cfg);
    const auto ops_a = drain(a);
    const auto ops_b = drain(b);
    ASSERT_EQ(ops_a.size(), ops_b.size());
    for (std::size_t i = 0; i < ops_a.size(); i += 31)
        EXPECT_EQ(ops_a[i].memAddr, ops_b[i].memAddr);

    cfg.seed = 999;
    Microbenchmark c(cfg);
    const auto ops_c = drain(c);
    bool differs = false;
    for (std::size_t i = 0; i < std::min(ops_a.size(), ops_c.size()); ++i)
        differs |= ops_a[i].memAddr != ops_c[i].memAddr;
    EXPECT_TRUE(differs);
}

TEST(Microbenchmark, ExpectedMissesEchoesTm)
{
    MicrobenchmarkConfig cfg;
    cfg.totalMisses = 4096;
    Microbenchmark mb(cfg);
    EXPECT_EQ(mb.expectedMisses(), 4096u);
}

} // namespace
} // namespace emprof::workloads
