/**
 * @file
 * Unit tests for the probe/environment channel model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "em/channel.hpp"

namespace emprof::em {
namespace {

TEST(Channel, NoiselessPassThroughScalesByGain)
{
    ChannelConfig cfg;
    cfg.noiseSigma = 0.0;
    cfg.supplyRippleAmp = 0.0;
    cfg.gainWalkStep = 0.0;
    cfg.gain = 2.0;
    Channel ch(cfg, 1e9);
    const auto z = ch.push({1.0f, 0.5f});
    EXPECT_NEAR(z.real(), 2.0f, 1e-5);
    EXPECT_NEAR(z.imag(), 1.0f, 1e-5);
}

TEST(Channel, GainStaysWithinConfiguredBounds)
{
    ChannelConfig cfg;
    cfg.noiseSigma = 0.0;
    cfg.supplyRippleAmp = 0.0;
    cfg.gainWalkStep = 1e-2; // aggressive walk
    cfg.gainMin = 0.5;
    cfg.gainMax = 2.0;
    Channel ch(cfg, 1e9);
    for (int i = 0; i < 100000; ++i)
        ch.push({1.0f, 0.0f});
    EXPECT_GE(ch.currentGain(), 0.5 * (1.0 - cfg.supplyRippleAmp));
    EXPECT_LE(ch.currentGain(), 2.0 * (1.0 + cfg.supplyRippleAmp));
}

TEST(Channel, NoiseHasConfiguredSigma)
{
    ChannelConfig cfg;
    cfg.noiseSigma = 0.25;
    cfg.supplyRippleAmp = 0.0;
    cfg.gainWalkStep = 0.0;
    Channel ch(cfg, 1e9);
    double sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto z = ch.push({0.0f, 0.0f});
        sum_sq += std::norm(z);
    }
    // Per-dimension variance sigma^2 -> complex power 2 sigma^2.
    EXPECT_NEAR(std::sqrt(sum_sq / n / 2.0), 0.25, 0.01);
}

TEST(Channel, SupplyRippleModulatesGain)
{
    ChannelConfig cfg;
    cfg.noiseSigma = 0.0;
    cfg.gainWalkStep = 0.0;
    cfg.supplyRippleAmp = 0.10;
    cfg.supplyRippleHz = 1e6;
    Channel ch(cfg, 100e6); // 100 samples per ripple period
    float min_mag = 1e9f, max_mag = 0.0f;
    for (int i = 0; i < 10000; ++i) {
        const auto z = ch.push({1.0f, 0.0f});
        min_mag = std::min(min_mag, std::abs(z));
        max_mag = std::max(max_mag, std::abs(z));
    }
    EXPECT_LT(min_mag, 0.95f);
    EXPECT_GT(max_mag, 1.05f);
}

TEST(Channel, DeterministicPerSeed)
{
    ChannelConfig cfg;
    Channel a(cfg, 1e9), b(cfg, 1e9);
    for (int i = 0; i < 500; ++i) {
        const auto za = a.push({0.5f, 0.5f});
        const auto zb = b.push({0.5f, 0.5f});
        EXPECT_FLOAT_EQ(za.real(), zb.real());
        EXPECT_FLOAT_EQ(za.imag(), zb.imag());
    }
}

} // namespace
} // namespace emprof::em
