/**
 * @file
 * Unit tests for the emanation synthesiser.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "em/emanation.hpp"

namespace emprof::em {
namespace {

TEST(Emanation, MagnitudeTracksPower)
{
    EmanationConfig cfg;
    cfg.carrierLeak = 0.1;
    cfg.activityGain = 2.0;
    cfg.phaseNoiseStep = 0.0;
    EmanationSynthesizer syn(cfg);
    EXPECT_NEAR(std::abs(syn.push(0.0f)), 0.1, 1e-6);
    EXPECT_NEAR(std::abs(syn.push(1.0f)), 2.1, 1e-6);
    EXPECT_NEAR(std::abs(syn.push(0.5f)), 1.1, 1e-6);
}

TEST(Emanation, StallFloorIsCarrierLeak)
{
    EmanationConfig cfg;
    EmanationSynthesizer syn(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(std::abs(syn.push(0.0f)), cfg.carrierLeak, 1e-4);
}

TEST(Emanation, PhaseNoiseRotatesButPreservesMagnitude)
{
    EmanationConfig cfg;
    cfg.phaseNoiseStep = 0.05;
    EmanationSynthesizer syn(cfg);
    dsp::Complex first = syn.push(1.0f);
    bool rotated = false;
    for (int i = 0; i < 1000; ++i) {
        const auto z = syn.push(1.0f);
        EXPECT_NEAR(std::abs(z), std::abs(first), 1e-4);
        if (std::abs(std::arg(z) - std::arg(first)) > 0.3)
            rotated = true;
    }
    EXPECT_TRUE(rotated);
}

TEST(Emanation, DeterministicPerSeed)
{
    EmanationConfig cfg;
    EmanationSynthesizer a(cfg), b(cfg);
    for (int i = 0; i < 200; ++i) {
        const auto za = a.push(0.7f);
        const auto zb = b.push(0.7f);
        EXPECT_FLOAT_EQ(za.real(), zb.real());
        EXPECT_FLOAT_EQ(za.imag(), zb.imag());
    }
}

} // namespace
} // namespace emprof::em
