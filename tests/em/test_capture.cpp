/**
 * @file
 * Tests for the end-to-end capture paths, including the dual-probe
 * setup of Fig. 9/10.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "em/capture.hpp"
#include "profiler/profiler.hpp"
#include "workloads/microbenchmark.hpp"

namespace emprof::em {
namespace {

workloads::MicrobenchmarkConfig
smallBench()
{
    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = 64;
    cfg.consecutiveMisses = 8;
    cfg.blankLoopIterations = 2000;
    return cfg;
}

TEST(Capture, SampleCountMatchesDecimation)
{
    workloads::Microbenchmark mb(smallBench());
    sim::Simulator simulator{sim::SimConfig{}};
    ProbeChainConfig probe;
    const auto cap = captureRun(simulator, mb, probe);
    const auto decim = static_cast<std::size_t>(
        simulator.config().clockHz / probe.receiver.bandwidthHz + 0.5);
    const std::size_t expected = cap.simResult.cycles / decim;
    EXPECT_NEAR(static_cast<double>(cap.magnitude.samples.size()),
                static_cast<double>(expected), 6.0);
    EXPECT_NEAR(cap.magnitude.sampleRateHz,
                simulator.config().clockHz / decim, 1.0);
}

TEST(Capture, ProcessPowerTraceMatchesStreamingCapture)
{
    // Capturing live and post-processing a recorded power trace give
    // the same signal (same seeds, same chain).
    workloads::Microbenchmark mb1(smallBench());
    sim::Simulator sim1{sim::SimConfig{}};
    ProbeChainConfig probe;
    const auto live = captureRun(sim1, mb1, probe);

    workloads::Microbenchmark mb2(smallBench());
    sim::Simulator sim2{sim::SimConfig{}};
    dsp::TimeSeries power;
    sim2.runWithPowerTrace(mb2, power);
    const auto offline = processPowerTrace(power, probe);

    ASSERT_EQ(live.magnitude.samples.size(), offline.samples.size());
    for (std::size_t i = 0; i < offline.samples.size(); i += 97)
        EXPECT_FLOAT_EQ(live.magnitude.samples[i], offline.samples[i]);
}

TEST(Capture, MemoryPowerSynthesisLevels)
{
    std::vector<sim::CasEvent> events = {
        {100, 10, sim::CasEvent::Kind::Read},
        {200, 10, sim::CasEvent::Kind::Write},
        {300, 50, sim::CasEvent::Kind::Refresh},
    };
    MemoryEmanationConfig levels;
    const auto trace = synthesizeMemoryPower(events, 400, 1e9, levels);
    ASSERT_EQ(trace.samples.size(), 400u);
    EXPECT_FLOAT_EQ(trace.samples[50], levels.idleLevel);
    EXPECT_FLOAT_EQ(trace.samples[105], levels.readBurstLevel);
    EXPECT_FLOAT_EQ(trace.samples[205], levels.writeBurstLevel);
    EXPECT_FLOAT_EQ(trace.samples[320], levels.refreshLevel);
}

TEST(Capture, MemoryPowerClampsOutOfRangeEvents)
{
    std::vector<sim::CasEvent> events = {
        {390, 50, sim::CasEvent::Kind::Read}, // runs past the end
        {1000, 10, sim::CasEvent::Kind::Read}, // fully outside
    };
    const auto trace = synthesizeMemoryPower(events, 400, 1e9);
    EXPECT_EQ(trace.samples.size(), 400u);
    EXPECT_GT(trace.samples[395], trace.samples[100]);
}

TEST(DualProbe, CpuDipsCoincideWithMemoryBursts)
{
    // Fig. 10's core claim: when the CPU signal dips (stall), the
    // memory signal bursts (the fill).  Use EMPROF itself to locate
    // the dips, then compare memory-probe activity inside the dips
    // against the background level outside them.
    workloads::Microbenchmark mb(smallBench());
    sim::Simulator simulator{sim::SimConfig{}};
    ProbeChainConfig cpu_chain;
    const auto result = dualProbeRun(simulator, mb, cpu_chain,
                                     defaultMemoryProbeChain());

    ASSERT_GT(result.cpu.samples.size(), 1000u);
    const std::size_t n =
        std::min(result.cpu.samples.size(), result.memory.samples.size());

    profiler::EmProfConfig cfg;
    cfg.clockHz = simulator.config().clockHz;
    const auto prof = profiler::EmProf::analyze(result.cpu, cfg);
    ASSERT_GT(prof.events.size(), 30u);

    std::vector<bool> in_dip(n, false);
    for (const auto &ev : prof.events) {
        for (uint64_t i = ev.startSample; i <= ev.endSample && i < n; ++i)
            in_dip[i] = true;
    }

    double mem_during_dip = 0.0, mem_during_busy = 0.0;
    std::size_t dips = 0, busy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (in_dip[i]) {
            mem_during_dip += result.memory.samples[i];
            ++dips;
        } else {
            mem_during_busy += result.memory.samples[i];
            ++busy;
        }
    }
    ASSERT_GT(dips, 10u);
    ASSERT_GT(busy, 10u);
    // Memory activity during CPU stalls well above its busy-time level.
    EXPECT_GT(mem_during_dip / static_cast<double>(dips),
              1.5 * mem_during_busy / static_cast<double>(busy));
}

TEST(DualProbe, SeriesAreTimeAligned)
{
    workloads::Microbenchmark mb(smallBench());
    sim::Simulator simulator{sim::SimConfig{}};
    ProbeChainConfig chain;
    const auto result = dualProbeRun(simulator, mb, chain, chain);
    EXPECT_NEAR(result.cpu.sampleRateHz, result.memory.sampleRateHz, 1.0);
    const auto diff = static_cast<std::ptrdiff_t>(result.cpu.size()) -
                      static_cast<std::ptrdiff_t>(result.memory.size());
    EXPECT_LE(std::abs(diff), 8);
}

} // namespace
} // namespace emprof::em
