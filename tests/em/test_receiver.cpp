/**
 * @file
 * Unit tests for the SDR receiver model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "em/receiver.hpp"

namespace emprof::em {
namespace {

class Bandwidths : public ::testing::TestWithParam<double>
{};

TEST_P(Bandwidths, DecimationMatchesClockOverBandwidth)
{
    // The paper's sweep: 20/40/60/80/160 MHz at ~1 GHz clock.
    const double bw = GetParam();
    ReceiverConfig cfg;
    cfg.bandwidthHz = bw;
    SdrReceiver rx(cfg, 1.008e9);
    const auto expected =
        static_cast<std::size_t>(1.008e9 / bw + 0.5);
    EXPECT_EQ(rx.decimation(), expected);
    EXPECT_NEAR(rx.outputRateHz(), 1.008e9 / expected, 1.0);
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, Bandwidths,
                         ::testing::Values(20e6, 40e6, 60e6, 80e6, 160e6));

TEST(Receiver, ProducesOneOutputPerDecimationAfterWarmup)
{
    ReceiverConfig cfg;
    cfg.bandwidthHz = 50e6;
    SdrReceiver rx(cfg, 1e9); // decimation 20
    std::size_t outputs = 0;
    dsp::Complex out;
    for (int i = 0; i < 2000; ++i) {
        if (rx.push({1.0f, 0.0f}, out))
            ++outputs;
    }
    // 100 output instants, minus those discarded during FIR warmup.
    const std::size_t warmup_outputs =
        (rx.numTaps() + rx.decimation() - 1) / rx.decimation();
    EXPECT_EQ(outputs, 100u - warmup_outputs + 1);
}

TEST(Receiver, DcLevelPreserved)
{
    ReceiverConfig cfg;
    cfg.bandwidthHz = 40e6;
    cfg.adcBits = 0;
    SdrReceiver rx(cfg, 1e9);
    dsp::Complex out{}, last{};
    for (int i = 0; i < 5000; ++i) {
        if (rx.push({0.8f, -0.4f}, out))
            last = out;
    }
    EXPECT_NEAR(last.real(), 0.8f, 1e-2);
    EXPECT_NEAR(last.imag(), -0.4f, 1e-2);
}

TEST(Receiver, QuantisationSnapsToGrid)
{
    ReceiverConfig cfg;
    cfg.bandwidthHz = 100e6;
    cfg.adcBits = 4; // coarse: step = fullScale / 8
    cfg.adcFullScale = 4.0;
    SdrReceiver rx(cfg, 1e9);
    dsp::Complex out{}, last{};
    for (int i = 0; i < 2000; ++i) {
        if (rx.push({1.23f, 0.0f}, out))
            last = out;
    }
    const double step = 4.0 / 8.0;
    const double remainder =
        std::fmod(std::abs(static_cast<double>(last.real())), step);
    EXPECT_TRUE(remainder < 1e-6 || std::abs(remainder - step) < 1e-6);
}

TEST(Receiver, QuantisationClampsAtFullScale)
{
    ReceiverConfig cfg;
    cfg.bandwidthHz = 100e6;
    cfg.adcBits = 12;
    cfg.adcFullScale = 1.0;
    SdrReceiver rx(cfg, 1e9);
    dsp::Complex out{}, last{};
    for (int i = 0; i < 2000; ++i) {
        if (rx.push({50.0f, 0.0f}, out))
            last = out;
    }
    EXPECT_LE(last.real(), 1.0f + 1e-6);
}

TEST(Receiver, WiderBandwidthGivesFinerTimeResolution)
{
    // A 200-cycle stall at 1 GHz is 8 samples at 40 MHz but only 4 at
    // 20 MHz — the resolution effect behind Fig. 12.
    ReceiverConfig narrow_cfg, wide_cfg;
    narrow_cfg.bandwidthHz = 20e6;
    wide_cfg.bandwidthHz = 160e6;
    SdrReceiver narrow(narrow_cfg, 1e9), wide(wide_cfg, 1e9);
    EXPECT_GT(narrow.decimation(), wide.decimation());
    EXPECT_EQ(narrow.decimation() / wide.decimation(), 8u);
}

} // namespace
} // namespace emprof::em
