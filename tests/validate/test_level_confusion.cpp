/**
 * @file
 * Unit tests for the confusion harness itself: the sim→profiler level
 * mapping, cycle→sample projection, overlap matching (including the
 * missed/spurious side channels and merge behaviour), and the matrix
 * arithmetic the accuracy gates rest on.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "validate/level_confusion.hpp"

using namespace emprof;
using namespace emprof::validate;

namespace {

profiler::StallEvent
event(uint64_t begin, uint64_t end, profiler::ServiceLevel level)
{
    profiler::StallEvent ev;
    ev.startSample = begin;
    ev.endSample = end;
    ev.level = level;
    return ev;
}

LabeledInterval
truth(uint64_t begin, uint64_t end, profiler::ServiceLevel level)
{
    LabeledInterval li;
    li.beginSample = begin;
    li.endSample = end;
    li.truth = level;
    li.cycles = end - begin + 1;
    return li;
}

} // namespace

TEST(LevelMapping, SimLevelsMapOneToOne)
{
    EXPECT_EQ(toProfilerLevel(sim::StallLevel::LlcHit),
              profiler::ServiceLevel::LlcHit);
    EXPECT_EQ(toProfilerLevel(sim::StallLevel::PrefetchMasked),
              profiler::ServiceLevel::PrefetchMasked);
    EXPECT_EQ(toProfilerLevel(sim::StallLevel::Dram),
              profiler::ServiceLevel::Dram);
    EXPECT_EQ(toProfilerLevel(sim::StallLevel::DramRefresh),
              profiler::ServiceLevel::DramRefresh);
}

TEST(GroundTruthLabels, ProjectsCyclesToSampleCoordinates)
{
    sim::GroundTruth gt;
    for (sim::Cycle c = 1000; c < 1250; ++c)
        gt.onMissStallCycle(c, 1, false, 0);
    gt.finalize();

    // Raw power trace: one sample per cycle — identity mapping.
    auto labels = groundTruthLabels(gt, 1e9, 1e9, 0, 1);
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0].beginSample, 1000u);
    EXPECT_EQ(labels[0].endSample, 1249u);
    EXPECT_EQ(labels[0].truth, profiler::ServiceLevel::Dram);
    EXPECT_EQ(labels[0].cycles, 250u);

    // 25 cycles per sample (40 MHz capture of a 1 GHz clock).
    labels = groundTruthLabels(gt, 1e9, 40e6, 0, 1);
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0].beginSample, 40u);
    EXPECT_EQ(labels[0].endSample, 49u);
}

TEST(GroundTruthLabels, MergesAcrossGapsAndKeepsDominantLevel)
{
    sim::GroundTruth gt;
    sim::StallLevelFlags refresh{true, false, true};
    // 30 refresh-lengthened cycles, 2-cycle gap, 10 plain cycles.
    for (sim::Cycle c = 100; c < 130; ++c)
        gt.onMissStallCycle(c, 1, true, 0, refresh);
    for (sim::Cycle c = 132; c < 142; ++c)
        gt.onMissStallCycle(c, 1, false, 0);
    gt.finalize();

    // No merging: two intervals with their own levels.
    auto split = groundTruthLabels(gt, 1e9, 1e9, 0, 1);
    ASSERT_EQ(split.size(), 2u);
    EXPECT_EQ(split[0].truth, profiler::ServiceLevel::DramRefresh);
    EXPECT_EQ(split[1].truth, profiler::ServiceLevel::Dram);

    // Gap folded in: one interval, dominated by the refresh cycles.
    auto merged = groundTruthLabels(gt, 1e9, 1e9, 2, 1);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].truth, profiler::ServiceLevel::DramRefresh);

    // A floor above both pieces drops everything.
    EXPECT_TRUE(groundTruthLabels(gt, 1e9, 1e9, 0, 64).empty());
}

TEST(ScoreEvents, DiagonalWhenEventsMatchTruth)
{
    const std::vector<LabeledInterval> gt = {
        truth(100, 120, profiler::ServiceLevel::LlcHit),
        truth(500, 720, profiler::ServiceLevel::Dram),
        truth(900, 1900, profiler::ServiceLevel::DramRefresh),
    };
    const std::vector<profiler::StallEvent> events = {
        event(101, 119, profiler::ServiceLevel::LlcHit),
        event(498, 723, profiler::ServiceLevel::Dram),
        event(905, 1895, profiler::ServiceLevel::DramRefresh),
    };
    const auto m = scoreEvents(events, gt);
    EXPECT_EQ(m.cells[0][0], 1u);
    EXPECT_EQ(m.cells[2][2], 1u);
    EXPECT_EQ(m.cells[3][3], 1u);
    EXPECT_EQ(m.truthTotal(), 3u);
    EXPECT_DOUBLE_EQ(m.overallAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(m.accuracy(profiler::ServiceLevel::Dram), 1.0);
    // Vacuous level: no truth means the gate is trivially satisfied.
    EXPECT_DOUBLE_EQ(
        m.accuracy(profiler::ServiceLevel::PrefetchMasked), 1.0);
}

TEST(ScoreEvents, MissedAndSpuriousAreTrackedSeparately)
{
    const std::vector<LabeledInterval> gt = {
        truth(100, 300, profiler::ServiceLevel::Dram),
        truth(5000, 5200, profiler::ServiceLevel::Dram),
    };
    const std::vector<profiler::StallEvent> events = {
        event(110, 290, profiler::ServiceLevel::DramRefresh),
        event(9000, 9100, profiler::ServiceLevel::LlcHit),
    };
    const auto m = scoreEvents(events, gt);
    EXPECT_EQ(m.cells[2][3], 1u); // Dram truth, DramRefresh predicted
    EXPECT_EQ(m.missed[2], 1u);   // second interval unmatched
    EXPECT_EQ(m.spurious[0], 1u); // detached LlcHit event
    EXPECT_DOUBLE_EQ(m.accuracy(profiler::ServiceLevel::Dram), 0.0);
    EXPECT_DOUBLE_EQ(m.overallAccuracy(), 0.0);
}

TEST(ScoreEvents, EventPicksTheIntervalItOverlapsMost)
{
    // One wide event across two intervals: it must count against the
    // interval it covers more of, and only that one; the other is
    // missed, not double-counted.
    const std::vector<LabeledInterval> gt = {
        truth(100, 140, profiler::ServiceLevel::LlcHit),
        truth(150, 400, profiler::ServiceLevel::Dram),
    };
    const std::vector<profiler::StallEvent> events = {
        event(120, 390, profiler::ServiceLevel::Dram),
    };
    const auto m = scoreEvents(events, gt);
    EXPECT_EQ(m.cells[2][2], 1u);
    EXPECT_EQ(m.missed[0], 1u);
    EXPECT_EQ(m.truthTotal(), 2u);
}

TEST(ScoreEvents, IntervalKeepsItsBestOverlappingEvent)
{
    // Two events inside one interval: the longer-overlap one wins.
    const std::vector<LabeledInterval> gt = {
        truth(100, 500, profiler::ServiceLevel::DramRefresh),
    };
    const std::vector<profiler::StallEvent> events = {
        event(100, 130, profiler::ServiceLevel::LlcHit),
        event(140, 490, profiler::ServiceLevel::DramRefresh),
    };
    const auto m = scoreEvents(events, gt);
    EXPECT_EQ(m.cells[3][3], 1u);
    EXPECT_EQ(m.missed[3], 0u);
    EXPECT_DOUBLE_EQ(
        m.accuracy(profiler::ServiceLevel::DramRefresh), 1.0);
}

TEST(ConfusionMatrix, AddAccumulatesEveryField)
{
    ConfusionMatrix a;
    a.cells[2][2] = 5;
    a.missed[2] = 1;
    a.spurious[0] = 2;
    ConfusionMatrix b;
    b.cells[2][3] = 1;
    b.missed[3] = 4;
    b.spurious[0] = 1;

    a.add(b);
    EXPECT_EQ(a.cells[2][2], 5u);
    EXPECT_EQ(a.cells[2][3], 1u);
    EXPECT_EQ(a.missed[2], 1u);
    EXPECT_EQ(a.missed[3], 4u);
    EXPECT_EQ(a.spurious[0], 3u);
    EXPECT_EQ(a.truthTotal(profiler::ServiceLevel::Dram), 7u);
    EXPECT_NEAR(a.accuracy(profiler::ServiceLevel::Dram), 5.0 / 7.0,
                1e-12);
}

TEST(ConfusionMatrix, ArtifactsNameEveryLevel)
{
    ConfusionMatrix m;
    m.cells[1][1] = 3;
    const std::string text = m.toText();
    const std::string json = m.toJson("unit");
    for (const char *name :
         {"llc-hit", "prefetch-masked", "dram", "dram-refresh"}) {
        EXPECT_NE(text.find(name), std::string::npos) << name;
        EXPECT_NE(json.find(name), std::string::npos) << name;
    }
    EXPECT_NE(json.find("\"label\": \"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
    EXPECT_NE(json.find("\"overall\""), std::string::npos);
}

TEST(ValidationConfig, BoundariesFollowTheSimTimingModel)
{
    sim::SimConfig sc;
    const auto cfg = levelValidationConfig(sc, sc.clockHz);
    std::string why;
    EXPECT_TRUE(cfg.validate(&why)) << why;

    const double cycle_ns = 1e9 / sc.clockHz;
    // Hit band ends between the longest hit wait (2+18 cycles) and the
    // shortest visible prefetch residual (37 cycles).
    EXPECT_GT(cfg.llcHitMaxNs, 20.0 * cycle_ns);
    EXPECT_LT(cfg.llcHitMaxNs, 37.0 * cycle_ns);
    // No prefetcher by default: masked band disabled.
    EXPECT_DOUBLE_EQ(cfg.prefetchMaskedMaxNs, 0.0);
    // Refresh boundary = access latency + labeling threshold.
    EXPECT_NEAR(cfg.refreshStallNs,
                (220.0 + 600.0) * cycle_ns, 1e-9);
    // Floor above the divider bubble, below the shortest hit wait the
    // suite scores.
    EXPECT_GT(cfg.minStallNs, 12.0 * cycle_ns);

    sc.prefetcher.enabled = true;
    const auto pf = levelValidationConfig(sc, sc.clockHz);
    EXPECT_TRUE(pf.validate(&why)) << why;
    EXPECT_NEAR(pf.prefetchMaskedMaxNs, 165.0 * cycle_ns, 1e-9);
}
