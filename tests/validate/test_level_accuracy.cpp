/**
 * @file
 * CI-gated service-level accuracy suite (DESIGN.md §16): the simulator
 * runs the microbenchmark grid, the SPEC-like suite (with and without
 * the Samsung-style prefetcher) and the measurement-bandwidth sweep;
 * the classifier's per-event levels are scored against the ground
 * truth and every level that appears in a suite's ground truth must be
 * attributed with >= 90% accuracy.  Each suite's confusion matrix is
 * written next to the test binary as a .json/.txt artifact pair.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"
#include "validate/level_confusion.hpp"
#include "workloads/microbenchmark.hpp"
#include "workloads/spec.hpp"

using namespace emprof;
using namespace emprof::validate;

namespace {

/** Ops per SPEC-like workload: enough for hundreds of stalls per
 *  level while keeping the whole suite in the fast lane. */
constexpr uint64_t kSpecOps = 3'000'000;

/**
 * Dependent-load stream over a cold footprint with a fixed-PC loop
 * body: exactly the pattern a stride prefetcher locks onto.  The
 * compute run between loads sets the line interval and thereby the
 * residual latency the demand access still pays — the knob that places
 * stalls inside the prefetch-masked band.
 */
class StreamWorkload : public workloads::SegmentedWorkload
{
  public:
    StreamWorkload(uint64_t lines, uint32_t work_ops)
    {
        workloads::StreamAddresses stream(0x4000'0000,
                                          64ull * 1024 * 1024);
        addSegment(
            "stream", lines,
            [stream, work_ops](std::vector<workloads::MicroOp> &out,
                               uint64_t) mutable {
                // Fixed PCs per iteration — the loop body a stride
                // table can train on.
                workloads::Addr pc = 0x1000;
                pc = workloads::emitDependentLoad(out, pc,
                                                  stream.next(), 0);
                pc = workloads::emitCompute(out, pc, work_ops, 0);
                workloads::emitLoopBranch(out, pc, 0);
            });
    }
};

sim::Cycle
mergeGap(const profiler::EmProfConfig &cfg)
{
    const double cycles_per_sample = cfg.clockHz / cfg.sampleRateHz;
    return std::max<sim::Cycle>(
        2, static_cast<sim::Cycle>(cycles_per_sample));
}

/** Run one workload on the raw power trace and score the classifier. */
ConfusionMatrix
scorePowerTraceRun(const sim::SimConfig &sim_config,
                   sim::TraceSource &trace)
{
    sim::Simulator simulator(sim_config);
    dsp::TimeSeries power;
    simulator.runWithPowerTrace(trace, power);

    auto cfg = levelValidationConfig(sim_config, power.sampleRateHz);
    std::string why;
    EXPECT_TRUE(cfg.validate(&why)) << why;
    const auto result = profiler::EmProf::analyze(power, cfg);

    const auto labels = groundTruthLabels(
        simulator.groundTruth(), sim_config.clockHz,
        power.sampleRateHz, mergeGap(cfg), detectorFloorCycles(cfg));
    return scoreEvents(result.events, labels);
}

/** Run one workload through the EM probe chain at @p bandwidth_hz. */
ConfusionMatrix
scoreCaptureRun(const devices::DeviceModel &device,
                sim::TraceSource &trace, double bandwidth_hz)
{
    auto probe = device.probe;
    probe.receiver.bandwidthHz = bandwidth_hz;
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, trace, probe);

    auto cfg =
        levelValidationConfig(device.sim, cap.magnitude.sampleRateHz);
    std::string why;
    EXPECT_TRUE(cfg.validate(&why)) << why;
    const auto result = profiler::EmProf::analyze(cap.magnitude, cfg);

    const auto labels = groundTruthLabels(
        simulator.groundTruth(), device.sim.clockHz,
        cap.magnitude.sampleRateHz, mergeGap(cfg),
        detectorFloorCycles(cfg));
    return scoreEvents(result.events, labels);
}

/** Write the .txt/.json artifact pair and log their location. */
void
writeArtifacts(const std::string &name, const ConfusionMatrix &matrix)
{
    for (const char *ext : {"txt", "json"}) {
        const std::string path =
            "level_confusion_" + name + "." + ext;
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr) << path;
        const std::string body = ext == std::string("json")
                                     ? matrix.toJson(name)
                                     : matrix.toText();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
    }
    std::printf("[ artifact ] level_confusion_%s.{txt,json}\n%s",
                name.c_str(), matrix.toText().c_str());
}

/** The >= 90% per-level floor, applied to levels with ground truth. */
void
gateAccuracy(const std::string &name, const ConfusionMatrix &matrix)
{
    for (std::size_t l = 0; l < profiler::kServiceLevelCount; ++l) {
        const auto level = static_cast<profiler::ServiceLevel>(l);
        if (matrix.truthTotal(level) == 0)
            continue;
        EXPECT_GE(matrix.accuracy(level), 0.90)
            << name << ": " << profiler::serviceLevelName(level)
            << " attributed below the floor\n"
            << matrix.toText();
    }
    EXPECT_GE(matrix.overallAccuracy(), 0.90) << matrix.toText();
}

} // namespace

TEST(LevelAccuracy, MicrobenchmarkGrid)
{
    const auto device = devices::makeOlimex();
    ConfusionMatrix total;
    const std::pair<uint64_t, uint64_t> points[] = {
        {256, 1}, {256, 5}, {1024, 10}, {4096, 50}};
    for (const auto &[tm, cm] : points) {
        workloads::MicrobenchmarkConfig cfg;
        cfg.totalMisses = tm;
        cfg.consecutiveMisses = cm;
        workloads::Microbenchmark mb(cfg);
        total.add(scorePowerTraceRun(device.sim, mb));
    }
    writeArtifacts("micro", total);
    // The grid is demand misses by construction: DRAM-class truth must
    // dominate and be present in bulk.
    EXPECT_GT(total.truthTotal(profiler::ServiceLevel::Dram), 100u);
    gateAccuracy("micro", total);
}

TEST(LevelAccuracy, SpecSuite)
{
    const auto device = devices::makeOlimex();
    ConfusionMatrix total;
    for (const auto &name : workloads::specNames()) {
        auto wl = workloads::makeSpec(name, kSpecOps, 42);
        // Per-workload matrices are diagnostics: a single workload can
        // legitimately sit below the floor (a demand miss whose latency
        // is mostly overlapped stalls for only a hit-scale tail, which
        // no duration classifier can tell apart).  The floors are gated
        // on the suite aggregate, matching the paper's suite-level
        // accuracy tables.
        total.add(scorePowerTraceRun(device.sim, *wl));
    }
    writeArtifacts("spec", total);
    EXPECT_GT(total.truthTotal(profiler::ServiceLevel::Dram), 200u);
    EXPECT_GT(total.truthTotal(profiler::ServiceLevel::DramRefresh),
              20u);
    gateAccuracy("spec", total);
}

TEST(LevelAccuracy, SpecSuiteWithPrefetcher)
{
    // Samsung-style configuration: the stride prefetcher produces the
    // PrefetchMasked truth class the other suites cannot.
    const auto device = devices::makeSamsung();
    ConfusionMatrix total;
    for (const auto &name : workloads::specNames()) {
        auto wl = workloads::makeSpec(name, kSpecOps, 42);
        total.add(scorePowerTraceRun(device.sim, *wl));
    }
    // SPEC's random/pointer-chasing mixes defeat the stride table by
    // design, so the masked class is rare there; the dependent-load
    // streams below sweep the line interval to spread residual
    // latencies across the prefetch-masked band.
    for (const uint32_t work_ops : {40u, 80u, 120u}) {
        StreamWorkload stream(40'000, work_ops);
        total.add(scorePowerTraceRun(device.sim, stream));
    }
    writeArtifacts("spec_prefetch", total);
    EXPECT_GT(
        total.truthTotal(profiler::ServiceLevel::PrefetchMasked), 20u);
    gateAccuracy("spec_prefetch", total);
}

TEST(LevelAccuracy, BandwidthSweep)
{
    // Through the full EM chain at the Fig. 12 bandwidths that the
    // paper reports as stable.  Narrower captures coarsen the measured
    // durations (25 cycles per sample at 40 MHz) — the classifier must
    // stay above the floor anyway.
    const auto device = devices::makeOlimex();
    ConfusionMatrix total;
    for (const double bw : {40e6, 80e6, 160e6}) {
        auto wl = workloads::makeSpec("mcf", kSpecOps, 42);
        const auto m = scoreCaptureRun(device, *wl, bw);
        char label[32];
        std::snprintf(label, sizeof(label), "bw %.0f MHz", bw / 1e6);
        gateAccuracy(label, m);
        total.add(m);
    }
    writeArtifacts("bandwidth", total);
    EXPECT_GT(total.truthTotal(profiler::ServiceLevel::Dram), 100u);
    gateAccuracy("bandwidth", total);
}
