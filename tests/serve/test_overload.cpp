/**
 * @file
 * Overload- and hostile-client-hardening tests for the ingest service
 * (DESIGN.md §17): the LoadGovernor's watermark arithmetic; idle /
 * deadline / rate-floor shedding with typed errors and resumable
 * parking; soft-watermark RetryAfter admission control (and the
 * reconnecting client honouring the hint); hard-watermark shedding of
 * the most-stalled session while well-behaved neighbours finish
 * bit-identically; the EMFILE accept path's emergency-fd answer; the
 * parked-TTL-vs-resume race and maxParked churn eviction; spool
 * ENOSPC degrading to non-durable serving; the one-byte healthz
 * probe; and the strict-no-op guarantee that a default-configured
 * server stays exactly as defenseless as before.  Runs under TSan in
 * CI alongside the rest of test_serve.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "../e2e/golden_common.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/governor.hpp"
#include "serve/server.hpp"

using namespace emprof;
using namespace emprof::serve;

namespace {

std::string
goldenPath(const char *name)
{
    return std::string(EMPROF_GOLDEN_DIR) + "/" + name;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << "missing fixture " << path;
    std::vector<uint8_t> bytes;
    if (f == nullptr)
        return bytes;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

std::vector<profiler::StallEvent>
loadExpected()
{
    std::FILE *f =
        std::fopen(goldenPath(golden::kExpectedFile).c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    if (f != nullptr) {
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, got);
        std::fclose(f);
    }
    std::vector<profiler::StallEvent> events;
    std::string why;
    EXPECT_TRUE(golden::eventsFromJson(text, events, &why)) << why;
    return events;
}

void
expectEventsBitExact(const std::vector<profiler::StallEvent> &expected,
                     const std::vector<profiler::StallEvent> &actual,
                     const std::string &label)
{
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto &e = expected[i];
        const auto &a = actual[i];
        EXPECT_EQ(e.startSample, a.startSample) << label << " #" << i;
        EXPECT_EQ(e.endSample, a.endSample) << label << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.depth),
                  golden::doubleBits(a.depth))
            << label << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.stallCycles),
                  golden::doubleBits(a.stallCycles))
            << label << " #" << i;
    }
}

std::string
freshDir(const char *tag)
{
    static std::atomic<int> counter{0};
    std::string dir = testing::TempDir() + "emprof_overload_" + tag +
                      "_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1));
    std::filesystem::create_directories(dir);
    return dir;
}

/** RAII server on a per-test unix socket, keeping the caller's
 *  config (same shape as test_resume.cpp's fixture). */
class ServerFixture
{
  public:
    explicit ServerFixture(ServerConfig config = {})
    {
        static std::atomic<int> counter{0};
        path_ = testing::TempDir() + "emprof_overload_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)) + ".sock";
        config.unixPath = path_;
        if (config.threads == 0)
            config.threads = 2;
        profiler::EmProfConfig analysis = golden::goldenConfig();
        analysis.sampleRateHz = 1.0;
        analysis.clockHz = 1.0;
        config.analysis = analysis;
        server_ = std::make_unique<Server>(std::move(config));
        std::string error;
        started_ = server_->start(&error);
        EXPECT_TRUE(started_) << error;
    }

    Endpoint
    endpoint() const
    {
        Endpoint ep;
        ep.tcp = false;
        ep.unixPath = path_;
        return ep;
    }

    Server &server() { return *server_; }

    template <typename Pred>
    bool
    waitFor(Pred done) const
    {
        for (int i = 0; i < 5000; ++i) {
            if (done(server_->stats()))
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return done(server_->stats());
    }

  private:
    std::string path_;
    std::unique_ptr<Server> server_;
    bool started_ = false;
};

/** Reconnect with @p id and finish the upload from the server's
 *  durable offset; returns the push result. */
PushResult
resumeAndFinish(ServerFixture &fixture,
                const std::vector<uint8_t> &bytes, const SessionId &id,
                bool resilient)
{
    Client client;
    std::string error;
    PushResult out;
    if (!client.connect(fixture.endpoint(), &error)) {
        out.error = error;
        return out;
    }
    OpenRequest open{};
    open.flags = (resilient ? kOpenResilient : 0u) | kOpenResume;
    std::memcpy(open.sessionId, id.data(), id.size());
    open.resumeFrom = kResumeQuery;
    SessionId echoed{};
    uint64_t offset = 0;
    SessionState state = SessionState::Fresh;
    ErrorCode code = ErrorCode::Internal;
    if (!client.openSession(open, echoed, offset, state, &code,
                            &error)) {
        out.error = error;
        out.errorCode = code;
        return out;
    }
    EXPECT_EQ(static_cast<uint32_t>(state),
              static_cast<uint32_t>(SessionState::Resumed));
    EXPECT_LE(offset, bytes.size());
    if (!client.sendData(bytes.data() + offset, bytes.size() - offset,
                         &error)) {
        out.error = error;
        return out;
    }
    out = client.finish();
    out.sessionId = echoed;
    return out;
}

/** Open a fresh session and keep the raw connection alive — a load
 *  anchor that holds an active-session slot without sending data. */
class HeldSession
{
  public:
    explicit HeldSession(const Endpoint &endpoint)
    {
        Client client;
        std::string error;
        if (!client.connect(endpoint, &error))
            return;
        fd_ = client.releaseFd();
        OpenRequest open{};
        if (!writeFrame(fd_, FrameType::Open, &open, sizeof(open)))
            return;
        Frame ack;
        if (!readFrame(fd_, ack) || ack.type != FrameType::OpenAck)
            return;
        uint64_t offset = 0;
        SessionState state = SessionState::Fresh;
        opened_ = decodeOpenAckPayload(ack.payload, id_, offset, state);
    }

    bool opened() const { return opened_; }
    const SessionId &id() const { return id_; }

    void
    drop()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

    ~HeldSession() { drop(); }

  private:
    int fd_ = -1;
    bool opened_ = false;
    SessionId id_{};
};

/** A parked session: upload @p headBytes then drop the link. */
SessionId
uploadHeadAndDrop(ServerFixture &fixture,
                  const std::vector<uint8_t> &bytes,
                  std::size_t headBytes)
{
    const uint64_t parkedBefore =
        fixture.server().stats().sessionsParked;
    SessionId id{};
    {
        Client client;
        std::string error;
        EXPECT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        OpenRequest open{};
        uint64_t offset = 0;
        SessionState state = SessionState::Fresh;
        EXPECT_TRUE(client.openSession(open, id, offset, state,
                                       nullptr, &error))
            << error;
        EXPECT_TRUE(client.sendData(bytes.data(), headBytes, &error))
            << error;
    }
    EXPECT_TRUE(fixture.waitFor([&](const ServerStats &s) {
        return s.sessionsParked > parkedBefore;
    })) << "session was never parked";
    return id;
}

} // namespace

// ---------------------------------------------------------------------
// LoadGovernor arithmetic (pure, no server)
// ---------------------------------------------------------------------

TEST(Governor, DisabledWatermarksNeverLeaveNormal)
{
    LoadGovernor governor; // all watermarks 0
    LoadSnapshot snap;
    snap.queueBytes = uint64_t{1} << 40;
    snap.activeSessions = 1u << 20;
    snap.connections = 1u << 20;
    snap.poolQueueDepth = 1u << 20;
    EXPECT_FALSE(governor.watermarks().anyEnabled());
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Normal);
    EXPECT_EQ(governor.shedTarget(snap), 0u);
}

TEST(Governor, SoftThenHardAsTheSessionCountClimbs)
{
    LoadWatermarks marks;
    marks.softSessions = 4;
    marks.hardSessions = 8;
    LoadGovernor governor(marks);

    LoadSnapshot snap;
    snap.activeSessions = 3;
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Normal);
    snap.activeSessions = 4; // at the soft line = breached
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Soft);
    snap.activeSessions = 7;
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Soft);
    snap.activeSessions = 8;
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Hard);
    // Shed just enough to get back under the hard line.
    EXPECT_EQ(governor.shedTarget(snap), 1u);
    snap.activeSessions = 12;
    EXPECT_EQ(governor.shedTarget(snap), 5u);
}

TEST(Governor, FdBudgetBreachIsHard)
{
    LoadWatermarks marks;
    marks.fdBudget = 100;
    LoadGovernor governor(marks);
    LoadSnapshot snap;
    snap.connections = 99;
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Normal);
    snap.connections = 100;
    EXPECT_EQ(governor.classify(snap), LoadGovernor::Level::Hard);
    // fd overload sheds one per tick (each closed fd re-evaluates).
    EXPECT_EQ(governor.shedTarget(snap), 1u);
}

TEST(Governor, BackoffHintScalesFromBaseToMax)
{
    LoadWatermarks marks;
    marks.softQueueBytes = 1000;
    marks.retryAfterBaseMs = 100;
    marks.retryAfterMaxMs = 900;
    LoadGovernor governor(marks);

    LoadSnapshot snap;
    snap.queueBytes = 1000; // exactly at the line
    EXPECT_EQ(governor.suggestedBackoffMs(snap), 100u);
    snap.queueBytes = 1500; // halfway to 2x
    EXPECT_EQ(governor.suggestedBackoffMs(snap), 500u);
    snap.queueBytes = 2000; // at 2x: the cap
    EXPECT_EQ(governor.suggestedBackoffMs(snap), 900u);
    snap.queueBytes = 20000; // far past 2x: still the cap
    EXPECT_EQ(governor.suggestedBackoffMs(snap), 900u);
}

// ---------------------------------------------------------------------
// Time-domain protection: idle, deadline, rate floor
// ---------------------------------------------------------------------

TEST(Overload, IdleStallIsShedTypedAndResumesBitIdentically)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.idleTimeoutSeconds = 0.3;
    ServerFixture fixture(config);

    StallOptions stall;
    stall.headBytes = bytes.size() / 2;
    stall.giveUpAfterMs = 8000; // full stall after the head
    const HostileOutcome outcome = runHostileSession(
        fixture.endpoint(), bytes.data(), bytes.size(), stall);

    ASSERT_TRUE(outcome.opened);
    ASSERT_TRUE(outcome.typedError)
        << "idle stall must draw a typed error, not a silent drop";
    EXPECT_EQ(static_cast<uint32_t>(outcome.code),
              static_cast<uint32_t>(ErrorCode::IdleTimeout))
        << outcome.message;
    EXPECT_NE(outcome.message.find("progress"), std::string::npos)
        << outcome.message;
    EXPECT_GE(fixture.server().stats().sessionsTimedOut, 1u);

    // The shed parked the pipeline: a resume finishes the upload and
    // the report is bit-identical to an uninterrupted run.
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.sessionsParked >= 1;
    }));
    const PushResult result =
        resumeAndFinish(fixture, bytes, outcome.id, false);
    ASSERT_TRUE(result.ok) << result.error;
    expectEventsBitExact(expected, result.report.events,
                         "resume-after-idle-shed");
}

TEST(Overload, TornFrameStallIsShedTyped)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerConfig config;
    config.idleTimeoutSeconds = 0.3;
    ServerFixture fixture(config);

    StallOptions stall;
    stall.tornFrame = true; // header + half the payload, then nothing
    stall.giveUpAfterMs = 8000;
    const HostileOutcome outcome = runHostileSession(
        fixture.endpoint(), bytes.data(), bytes.size(), stall);
    ASSERT_TRUE(outcome.opened);
    ASSERT_TRUE(outcome.typedError);
    EXPECT_EQ(static_cast<uint32_t>(outcome.code),
              static_cast<uint32_t>(ErrorCode::IdleTimeout))
        << outcome.message;
}

TEST(Overload, DeadlineBindsEvenWhileProgressIsBeingMade)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerConfig config;
    config.sessionDeadlineSeconds = 0.4; // no idle/rate floor: the
    ServerFixture fixture(config);       // trickle IS progress

    StallOptions trickle;
    trickle.trickleBytes = 16;
    trickle.trickleIntervalMs = 50;
    trickle.giveUpAfterMs = 8000;
    const HostileOutcome outcome = runHostileSession(
        fixture.endpoint(), bytes.data(), bytes.size(), trickle);
    ASSERT_TRUE(outcome.opened);
    ASSERT_TRUE(outcome.typedError);
    EXPECT_EQ(static_cast<uint32_t>(outcome.code),
              static_cast<uint32_t>(ErrorCode::IdleTimeout))
        << outcome.message;
    EXPECT_NE(outcome.message.find("deadline"), std::string::npos)
        << outcome.message;
    EXPECT_GE(fixture.server().stats().sessionsTimedOut, 1u);
}

TEST(Overload, SlowLorisTrickleIsShedByTheRateFloor)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerConfig config;
    config.minRateBytesPerSec = 64 * 1024; // trickle is ~320 B/s
    config.minRateWindowSeconds = 0.4;
    ServerFixture fixture(config);

    StallOptions loris;
    loris.trickleBytes = 16;
    loris.trickleIntervalMs = 50;
    loris.giveUpAfterMs = 8000;
    const HostileOutcome outcome = runHostileSession(
        fixture.endpoint(), bytes.data(), bytes.size(), loris);
    ASSERT_TRUE(outcome.opened);
    ASSERT_TRUE(outcome.typedError)
        << "a trickler below the floor must be shed";
    EXPECT_EQ(static_cast<uint32_t>(outcome.code),
              static_cast<uint32_t>(ErrorCode::IdleTimeout))
        << outcome.message;
    EXPECT_NE(outcome.message.find("rate"), std::string::npos)
        << outcome.message;
}

// ---------------------------------------------------------------------
// Admission control and load shedding
// ---------------------------------------------------------------------

TEST(Overload, SoftWatermarkAnswersFreshOpensWithRetryAfter)
{
    ServerConfig config;
    config.watermarks.softSessions = 1;
    config.watermarks.retryAfterBaseMs = 100;
    config.watermarks.retryAfterMaxMs = 400;
    ServerFixture fixture(config);

    HeldSession holder(fixture.endpoint());
    ASSERT_TRUE(holder.opened());

    // The healthz probe flips to Backoff within a tick or two — and
    // answering it must not itself open a session.
    bool backoff = false;
    for (int i = 0; i < 2000 && !backoff; ++i) {
        HealthState state = HealthState::Live;
        std::string error;
        ASSERT_TRUE(
            Client::health(fixture.endpoint(), state, &error))
            << error;
        backoff = state == HealthState::Backoff;
        if (!backoff)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(backoff);

    // A fresh Open is told RetryAfter with a server-sized hint.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    OpenRequest open{};
    SessionId id{};
    uint64_t offset = 0;
    SessionState state = SessionState::Fresh;
    ErrorCode code = ErrorCode::Internal;
    uint32_t hintMs = 0;
    EXPECT_FALSE(client.openSession(open, id, offset, state, &code,
                                    &error, nullptr, &hintMs));
    EXPECT_EQ(static_cast<uint32_t>(code),
              static_cast<uint32_t>(ErrorCode::RetryAfter))
        << error;
    EXPECT_GE(hintMs, 100u);
    EXPECT_LE(hintMs, 400u);
    EXPECT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.retryAfterSent >= 1;
    }));
    EXPECT_EQ(fixture.server().stats().sessionsAborted, 0u);
}

TEST(Overload, PushResumableHonorsTheRetryAfterHint)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.watermarks.softSessions = 1;
    config.watermarks.retryAfterBaseMs = 50;
    config.watermarks.retryAfterMaxMs = 100;
    ServerFixture fixture(config);

    auto holder = std::make_unique<HeldSession>(fixture.endpoint());
    ASSERT_TRUE(holder->opened());

    // Free the slot while the client is sitting out its hinted
    // backoff: the retry after that must be admitted.
    std::thread release([&holder] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        holder->drop();
    });

    Client client;
    PushOptions options;
    options.maxAttempts = 20;
    options.backoffBaseMs = 1;
    options.jitterSeed = 11;
    const PushResult result = client.pushResumable(
        fixture.endpoint(), bytes.data(), bytes.size(), options);
    release.join();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GE(result.attempts, 2u)
        << "the first attempt should have been told RetryAfter";
    expectEventsBitExact(expected, result.report.events,
                         "push-through-retry-after");
}

TEST(Overload, HardWatermarkShedsTheMostStalledSessionFirst)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.watermarks.hardSessions = 2;
    config.watermarks.retryAfterBaseMs = 100;
    ServerFixture fixture(config);

    // Session A: opens first, then stalls — the shed candidate.
    HostileOutcome outcomeA;
    std::thread hostile([&] {
        StallOptions stall;
        stall.giveUpAfterMs = 8000;
        outcomeA = runHostileSession(fixture.endpoint(), bytes.data(),
                                     bytes.size(), stall);
    });
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.sessionsAccepted >= 1;
    }));

    // Session B: opens second but keeps sending — over the hard line
    // the governor must shed A (older last-progress), not B.
    Client clientB;
    std::string error;
    ASSERT_TRUE(clientB.connect(fixture.endpoint(), &error)) << error;
    OpenRequest open{};
    SessionId idB{};
    uint64_t offset = 0;
    SessionState state = SessionState::Fresh;
    ASSERT_TRUE(clientB.openSession(open, idB, offset, state, nullptr,
                                    &error))
        << error;
    const std::size_t step = bytes.size() / 8 + 1;
    for (std::size_t off = 0; off < bytes.size(); off += step) {
        const std::size_t take = std::min(step, bytes.size() - off);
        ASSERT_TRUE(clientB.sendData(bytes.data() + off, take, &error))
            << error;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    const PushResult resultB = clientB.finish();
    hostile.join();

    ASSERT_TRUE(outcomeA.opened);
    ASSERT_TRUE(outcomeA.typedError)
        << "the stalled session must be the one shed";
    EXPECT_EQ(static_cast<uint32_t>(outcomeA.code),
              static_cast<uint32_t>(ErrorCode::RetryAfter))
        << outcomeA.message;
    EXPECT_GE(outcomeA.retryAfterMs, 1u);
    ASSERT_TRUE(resultB.ok)
        << "the well-behaved session must be untouched: "
        << resultB.error;
    expectEventsBitExact(expected, resultB.report.events,
                         "survivor-of-hard-shed");
    EXPECT_GE(fixture.server().stats().sessionsShed, 1u);
}

TEST(Overload, FdExhaustionOnAcceptAnswersTypedRetryAfter)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerFixture fixture;
    {
        ChaosPlan plan;
        plan.failAccepts = 1; // EMFILE by default
        ScopedChaosPlan scoped(plan);

        // Our connection sits in the backlog while accept() "fails";
        // the emergency fd must still pick it up and answer with a
        // typed RetryAfter instead of letting it starve silently.
        Client probe;
        std::string error;
        ASSERT_TRUE(probe.connect(fixture.endpoint(), &error))
            << error;
        const int fd = probe.releaseFd();
        Frame reply;
        ASSERT_TRUE(readFrame(fd, reply, &error)) << error;
        ASSERT_EQ(static_cast<uint16_t>(reply.type),
                  static_cast<uint16_t>(FrameType::Error));
        ErrorCode code{};
        std::string message;
        uint32_t hintMs = 0;
        ASSERT_TRUE(
            decodeErrorPayload(reply.payload, code, message, &hintMs));
        EXPECT_EQ(static_cast<uint32_t>(code),
                  static_cast<uint32_t>(ErrorCode::RetryAfter))
            << message;
        EXPECT_GE(hintMs, 1u);
        EXPECT_NE(message.find("descriptor"), std::string::npos)
            << message;
        ::close(fd);
        EXPECT_EQ(ChaosInjector::acceptsStolen(), 1u);
    }
    // The reply frame is written before the counters are bumped, so
    // the client can get here first: poll rather than snapshot.
    EXPECT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.acceptFdExhausted >= 1 && s.retryAfterSent >= 1;
    }));

    // Recovery: once descriptors are back (chaos disarmed) and the
    // listener mute lapses, a normal push goes straight through.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult result = client.push(bytes.data(), bytes.size());
    ASSERT_TRUE(result.ok) << result.error;
}

// ---------------------------------------------------------------------
// Parked-session lifecycle under churn
// ---------------------------------------------------------------------

TEST(Overload, ExpiredParkTtlRaceLosesToTheClockAndStartsFresh)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.resumeTtlSeconds = 0.25; // sub-second: the race is real
    ServerFixture fixture(config);

    const SessionId id =
        uploadHeadAndDrop(fixture, bytes, bytes.size() / 2);
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.parkedExpired >= 1;
    })) << "the parked session never expired";

    // The resume arrives after the TTL ran out: the answer must be a
    // clean Fresh-from-zero, never a dangling half-session.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    OpenRequest open{};
    open.flags = kOpenResume;
    std::memcpy(open.sessionId, id.data(), id.size());
    open.resumeFrom = kResumeQuery;
    SessionId echoed{};
    uint64_t offset = 77;
    SessionState state = SessionState::Resumed;
    ASSERT_TRUE(client.openSession(open, echoed, offset, state,
                                   nullptr, &error))
        << error;
    EXPECT_EQ(static_cast<uint32_t>(state),
              static_cast<uint32_t>(SessionState::Fresh));
    EXPECT_EQ(offset, 0u);
    ASSERT_TRUE(client.sendData(bytes.data(), bytes.size(), &error))
        << error;
    const PushResult result = client.finish();
    ASSERT_TRUE(result.ok) << result.error;
    expectEventsBitExact(expected, result.report.events,
                         "fresh-after-ttl-expiry");
}

TEST(Overload, MaxParkedChurnEvictsTheOldestPark)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.maxParked = 1;
    ServerFixture fixture(config);

    const SessionId first =
        uploadHeadAndDrop(fixture, bytes, bytes.size() / 3);
    const SessionId second =
        uploadHeadAndDrop(fixture, bytes, bytes.size() / 2);
    EXPECT_GE(fixture.server().stats().parkedEvicted, 1u);

    // The survivor resumes from its durable offset first (probing the
    // evicted id would itself open-and-park a fresh session, evicting
    // the survivor in turn under maxParked = 1)...
    const PushResult resumed =
        resumeAndFinish(fixture, bytes, second, false);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    expectEventsBitExact(expected, resumed.report.events,
                         "survivor-of-park-eviction");

    // ...then the evicted (older) session is answered Fresh-from-zero.
    {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        OpenRequest open{};
        open.flags = kOpenResume;
        std::memcpy(open.sessionId, first.data(), first.size());
        open.resumeFrom = kResumeQuery;
        SessionId echoed{};
        uint64_t offset = 1;
        SessionState state = SessionState::Resumed;
        ASSERT_TRUE(client.openSession(open, echoed, offset, state,
                                       nullptr, &error))
            << error;
        EXPECT_EQ(static_cast<uint32_t>(state),
                  static_cast<uint32_t>(SessionState::Fresh));
        EXPECT_EQ(offset, 0u);
    }
}

// ---------------------------------------------------------------------
// Spool degradation, RST accounting, scrape, healthz, strict no-op
// ---------------------------------------------------------------------

TEST(Overload, SpoolEnospcDegradesToNonDurableServing)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.spoolDir = freshDir("enospc");
    ServerFixture fixture(config);

    {
        ChaosPlan plan;
        plan.failSpoolAppends = 1; // the next append sees ENOSPC
        ScopedChaosPlan scoped(plan);
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        const PushResult result =
            client.push(bytes.data(), bytes.size());
        // Durability is lost; the REPLY is not.
        ASSERT_TRUE(result.ok) << result.error;
        expectEventsBitExact(expected, result.report.events,
                             "served-despite-enospc");
        EXPECT_EQ(ChaosInjector::spoolAppendsStolen(), 1u);
    }
    ServerStats stats = fixture.server().stats();
    EXPECT_EQ(stats.resultsSpoolFailed, 1u);
    EXPECT_EQ(stats.resultsSpooled, 0u);

    // With space back, the next session is durable again.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult result = client.push(bytes.data(), bytes.size());
    ASSERT_TRUE(result.ok) << result.error;
    stats = fixture.server().stats();
    EXPECT_EQ(stats.resultsSpoolFailed, 1u);
    EXPECT_EQ(stats.resultsSpooled, 1u);
}

TEST(Overload, DisconnectTaxonomyParksUploadsAndCountsTornHandshakes)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerFixture fixture; // default config: no reaction expected

    // A mid-upload RST is NOT an abort: the session parks so the
    // client can resume — the whole point of disconnect safety.
    StallOptions rst;
    rst.headBytes = bytes.size() / 4;
    rst.giveUpAfterMs = 300; // give up fast, then slam the door
    rst.resetOnExit = true;
    const HostileOutcome outcome = runHostileSession(
        fixture.endpoint(), bytes.data(), bytes.size(), rst);
    ASSERT_TRUE(outcome.opened);
    EXPECT_FALSE(outcome.typedError);
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.sessionsParked >= 1;
    }));
    EXPECT_EQ(fixture.server().stats().sessionsAborted, 0u);

    // A handshake torn mid-Open (the reconnect herd's signature) IS
    // an abort — counted apart from the typed-Error rejections.
    {
        Client probe;
        std::string error;
        ASSERT_TRUE(probe.connect(fixture.endpoint(), &error))
            << error;
        const int fd = probe.releaseFd();
        std::vector<uint8_t> frame;
        OpenRequest open{};
        appendFrame(frame, FrameType::Open, &open, sizeof(open));
        ASSERT_GT(::send(fd, frame.data(), frame.size() / 2,
                         MSG_NOSIGNAL),
                  0);
        linger lg{};
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        ::close(fd);
    }
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.sessionsAborted >= 1;
    }));
    EXPECT_EQ(fixture.server().stats().sessionsRejected, 0u);
}

TEST(Overload, ScrapeExposesTheOverloadCounters)
{
    ServerFixture fixture;
    std::string text;
    std::string error;
    ASSERT_TRUE(Client::scrape(fixture.endpoint(), text, &error))
        << error;
    for (const char *name :
         {"emprof.serve.sessions_aborted",
          "emprof.serve.sessions_timed_out",
          "emprof.serve.sessions_shed", "emprof.serve.retry_after_sent",
          "emprof.serve.accept_fd_exhausted",
          "emprof.serve.results_spool_failed",
          "emprof.serve.parked_evicted", "emprof.serve.parked_expired"})
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

TEST(Overload, HealthProbeAnswersLiveWithoutOpeningASession)
{
    ServerFixture fixture;
    HealthState state = HealthState::Draining;
    std::string error;
    ASSERT_TRUE(Client::health(fixture.endpoint(), state, &error))
        << error;
    EXPECT_EQ(static_cast<uint32_t>(state),
              static_cast<uint32_t>(HealthState::Live));
    EXPECT_EQ(fixture.server().stats().sessionsAccepted, 0u);
}

TEST(Overload, DefaultConfigIsAStrictNoOp)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerFixture fixture; // every overload knob at its 0 default

    // A full stall draws NO reaction: no typed error, no disconnect —
    // exactly the pre-hardening behaviour, bit for bit.
    StallOptions stall;
    stall.headBytes = bytes.size() / 2;
    stall.giveUpAfterMs = 700; // > 3 poll ticks: plenty to react in
    const HostileOutcome outcome = runHostileSession(
        fixture.endpoint(), bytes.data(), bytes.size(), stall);
    ASSERT_TRUE(outcome.opened);
    EXPECT_FALSE(outcome.typedError)
        << "a default-configured server must not shed";
    EXPECT_FALSE(outcome.connectionDied);
    EXPECT_EQ(fixture.server().stats().sessionsTimedOut, 0u);
    EXPECT_EQ(fixture.server().stats().sessionsShed, 0u);
    EXPECT_EQ(fixture.server().stats().retryAfterSent, 0u);

    // And normal service is untouched.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult result = client.push(bytes.data(), bytes.size());
    ASSERT_TRUE(result.ok) << result.error;
    expectEventsBitExact(expected, result.report.events,
                         "no-op-baseline");
}
