/**
 * @file
 * Served-path equivalence at the pipeline layer: the golden capture's
 * bytes are fed through SessionPipeline in radically different
 * slicings — one byte at a time, ragged 997-byte chunks, all at once —
 * and every framing must produce events bit-identical to the
 * checked-in expectation (the same file the streaming and parallel
 * paths are pinned to).  Plus the rejection catalogue: truncated
 * uploads, flipped bits, trailing garbage, zero-sample captures — all
 * typed errors, never crashes or wrong-but-plausible reports.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../e2e/golden_common.hpp"
#include "serve/session_pipeline.hpp"

using namespace emprof;
using namespace emprof::serve;

namespace {

std::string
goldenPath(const char *name)
{
    return std::string(EMPROF_GOLDEN_DIR) + "/" + name;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << "missing fixture " << path;
    std::vector<uint8_t> bytes;
    if (f == nullptr)
        return bytes;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

std::vector<profiler::StallEvent>
loadExpected()
{
    std::FILE *f =
        std::fopen(goldenPath(golden::kExpectedFile).c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    if (f != nullptr) {
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, got);
        std::fclose(f);
    }
    std::vector<profiler::StallEvent> events;
    std::string why;
    EXPECT_TRUE(golden::eventsFromJson(text, events, &why)) << why;
    return events;
}

void
expectEventsBitExact(const std::vector<profiler::StallEvent> &expected,
                     const std::vector<profiler::StallEvent> &actual,
                     const std::string &framing)
{
    ASSERT_EQ(expected.size(), actual.size()) << framing;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto &e = expected[i];
        const auto &a = actual[i];
        EXPECT_EQ(e.startSample, a.startSample) << framing << " #" << i;
        EXPECT_EQ(e.endSample, a.endSample) << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.depth),
                  golden::doubleBits(a.depth))
            << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.durationNs),
                  golden::doubleBits(a.durationNs))
            << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.stallCycles),
                  golden::doubleBits(a.stallCycles))
            << framing << " #" << i;
        EXPECT_EQ(static_cast<int>(e.kind), static_cast<int>(a.kind))
            << framing << " #" << i;
        EXPECT_EQ(static_cast<int>(e.level), static_cast<int>(a.level))
            << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.levelConfidence),
                  golden::doubleBits(a.levelConfidence))
            << framing << " #" << i;
    }
}

/**
 * Base config for the pipeline: the golden analysis config minus the
 * fields the capture header supplies (the pipeline must recover
 * sample rate and clock from the upload itself).
 */
profiler::EmProfConfig
baseConfig()
{
    profiler::EmProfConfig config = golden::goldenConfig();
    config.sampleRateHz = 1.0; // must be overwritten by the header
    config.clockHz = 1.0;      // likewise
    return config;
}

/** Feed the capture in @p step -byte slices and finish. */
profiler::ProfileResult
runFraming(const std::vector<uint8_t> &bytes, std::size_t step,
           std::size_t spanSamples)
{
    SessionPipeline pipeline(baseConfig(), spanSamples);
    std::string error;
    for (std::size_t off = 0; off < bytes.size();) {
        const std::size_t take = std::min(step, bytes.size() - off);
        EXPECT_TRUE(pipeline.feed(bytes.data() + off, take, &error))
            << error;
        off += take;
    }
    profiler::ProfileResult result;
    EXPECT_TRUE(pipeline.finish(result, &error)) << error;
    return result;
}

} // namespace

TEST(SessionPipeline, HeaderRecoversCaptureMetadata)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    SessionPipeline pipeline(baseConfig());
    std::string error;
    // Feed just the 72-byte header.
    ASSERT_TRUE(pipeline.feed(bytes.data(), 72, &error)) << error;
    ASSERT_TRUE(pipeline.headerReady());
    EXPECT_DOUBLE_EQ(pipeline.config().sampleRateHz,
                     golden::kSampleRateHz);
    EXPECT_DOUBLE_EQ(pipeline.config().clockHz, 1e9);
    EXPECT_EQ(pipeline.decoder().info().totalSamples,
              golden::kSamples);
    EXPECT_EQ(pipeline.decoder().info().deviceName,
              golden::kDeviceName);
}

TEST(SessionPipeline, AllFramingsAreBitIdenticalToTheGoldenEvents)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();
    ASSERT_FALSE(expected.empty());

    // One byte at a time: every state-machine boundary is crossed
    // mid-element.  Ragged primes: slices never align with chunk or
    // frame boundaries.  All at once: the degenerate single feed.
    struct Case
    {
        const char *name;
        std::size_t step;
        std::size_t span;
    };
    const Case cases[] = {
        {"byte-at-a-time", 1, 0},
        {"ragged-997", 997, 0},
        {"all-at-once", SIZE_MAX, 0},
        {"byte-at-a-time/span-700", 1, 700},
        {"ragged-997/span-1024", 997, 1024},
        {"all-at-once/span-300", SIZE_MAX, 300},
    };
    for (const auto &c : cases) {
        const auto result = runFraming(bytes, c.step, c.span);
        expectEventsBitExact(expected, result.events, c.name);
        EXPECT_EQ(result.report.totalEvents, expected.size())
            << c.name;
    }
}

TEST(SessionPipeline, TinySpansActuallyAnalyseMidUpload)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    SessionPipeline pipeline(baseConfig(), /*spanSamples=*/512);
    std::string error;
    ASSERT_TRUE(pipeline.feed(bytes.data(), bytes.size(), &error))
        << error;
    // 8192 samples at span 512: 15 spans analysed eagerly, the last
    // 512 held back for the is_final span at finish().
    EXPECT_EQ(pipeline.spansAnalyzed(), 15u);
    EXPECT_LE(pipeline.bufferedSamples(),
              512u + pipeline.config().haloSamples());
    profiler::ProfileResult result;
    ASSERT_TRUE(pipeline.finish(result, &error)) << error;
    EXPECT_EQ(pipeline.spansAnalyzed(), 16u);
}

TEST(SessionPipeline, ResilientModeMatchesTheDirectResilientPath)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));

    profiler::EmProfConfig resilient = golden::goldenConfig();
    resilient.signal.enabled = true;

    // Reference: the in-memory chunked path on the same config.
    const dsp::TimeSeries signal = golden::goldenSignal();
    profiler::EmProf reference(resilient);
    for (const auto s : signal.samples)
        reference.push(s);
    const profiler::ProfileResult ref = reference.finish();

    profiler::EmProfConfig base = resilient;
    base.sampleRateHz = 1.0;
    base.clockHz = 1.0;
    SessionPipeline pipeline(base, /*spanSamples=*/777);
    std::string error;
    ASSERT_TRUE(pipeline.feed(bytes.data(), bytes.size(), &error))
        << error;
    profiler::ProfileResult served;
    ASSERT_TRUE(pipeline.finish(served, &error)) << error;

    expectEventsBitExact(ref.events, served.events, "resilient");
    EXPECT_EQ(served.report.quality.enabled, true);
    EXPECT_EQ(golden::doubleBits(
                  served.report.quality.coverageFraction),
              golden::doubleBits(
                  ref.report.quality.coverageFraction));
}

TEST(SessionPipeline, TruncatedUploadIsATypedError)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    for (const std::size_t keep :
         {std::size_t{40}, std::size_t{100}, bytes.size() / 2,
          bytes.size() - 5}) {
        SessionPipeline pipeline(baseConfig());
        std::string error;
        ASSERT_TRUE(pipeline.feed(bytes.data(), keep, &error))
            << error;
        profiler::ProfileResult result;
        EXPECT_FALSE(pipeline.finish(result, &error)) << keep;
        EXPECT_FALSE(error.empty()) << keep;
    }
}

TEST(SessionPipeline, FlippedBitInAChunkIsATypedError)
{
    auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    bytes[5000] ^= 0x10; // somewhere inside a chunk payload

    SessionPipeline pipeline(baseConfig());
    std::string error;
    profiler::ProfileResult result;
    const bool fed =
        pipeline.feed(bytes.data(), bytes.size(), &error);
    const bool finished =
        fed && pipeline.finish(result, &error);
    EXPECT_FALSE(finished);
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;

    // The pipeline stays poisoned: feeding more keeps failing.
    EXPECT_FALSE(pipeline.feed(bytes.data(), 1, &error));
}

TEST(SessionPipeline, GarbageHeaderIsRejectedImmediately)
{
    std::vector<uint8_t> garbage(256, 0xAB);
    SessionPipeline pipeline(baseConfig());
    std::string error;
    EXPECT_FALSE(
        pipeline.feed(garbage.data(), garbage.size(), &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(SessionPipeline, FinishTwiceIsAnError)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    SessionPipeline pipeline(baseConfig());
    std::string error;
    ASSERT_TRUE(pipeline.feed(bytes.data(), bytes.size(), &error));
    profiler::ProfileResult result;
    ASSERT_TRUE(pipeline.finish(result, &error)) << error;
    EXPECT_FALSE(pipeline.finish(result, &error));
}
