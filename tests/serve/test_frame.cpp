/**
 * @file
 * EMFR framing unit tests: round trips, incremental parsing, and the
 * malformed-input catalogue (bad magic, bad version, CRC flips,
 * oversize payloads).  The wire format is the server's outermost
 * attack surface, so every rejection here must be a typed error —
 * parseFrame returning negative with a reason — never a crash or a
 * silently mis-framed stream.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/frame.hpp"

using namespace emprof;
using namespace emprof::serve;

namespace {

std::vector<uint8_t>
frameBytes(FrameType type, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> out;
    appendFrame(out, type, payload.data(), payload.size());
    return out;
}

} // namespace

TEST(Frame, RoundTripThroughParse)
{
    const std::vector<uint8_t> payload = {1, 2, 3, 250, 251, 252};
    const auto bytes = frameBytes(FrameType::Data, payload);
    ASSERT_EQ(bytes.size(), sizeof(FrameHeader) + payload.size());

    Frame frame;
    std::string error;
    const long consumed =
        parseFrame(bytes.data(), bytes.size(), frame, &error);
    ASSERT_EQ(consumed, static_cast<long>(bytes.size())) << error;
    EXPECT_EQ(frame.type, FrameType::Data);
    EXPECT_EQ(frame.payload, payload);
}

TEST(Frame, EmptyPayloadFramesAreValid)
{
    std::vector<uint8_t> bytes;
    appendFrame(bytes, FrameType::Finish, nullptr, 0);
    Frame frame;
    ASSERT_EQ(parseFrame(bytes.data(), bytes.size(), frame),
              static_cast<long>(sizeof(FrameHeader)));
    EXPECT_EQ(frame.type, FrameType::Finish);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(Frame, IncompleteBufferAsksForMoreBytes)
{
    const auto bytes =
        frameBytes(FrameType::Data, {10, 20, 30, 40, 50});
    Frame frame;
    // Every strict prefix must return 0 (need more), not an error.
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_EQ(parseFrame(bytes.data(), n, frame), 0) << n;
}

TEST(Frame, BackToBackFramesParseSequentially)
{
    std::vector<uint8_t> stream;
    appendFrame(stream, FrameType::Open, nullptr, 0);
    const std::vector<uint8_t> payload = {9, 8, 7};
    appendFrame(stream, FrameType::Data, payload.data(),
                payload.size());
    appendFrame(stream, FrameType::Finish, nullptr, 0);

    std::vector<FrameType> seen;
    std::size_t offset = 0;
    Frame frame;
    while (offset < stream.size()) {
        const long consumed = parseFrame(stream.data() + offset,
                                         stream.size() - offset, frame);
        ASSERT_GT(consumed, 0);
        offset += static_cast<std::size_t>(consumed);
        seen.push_back(frame.type);
    }
    EXPECT_EQ(seen, (std::vector<FrameType>{FrameType::Open,
                                            FrameType::Data,
                                            FrameType::Finish}));
}

TEST(Frame, PayloadCrcFlipIsMalformed)
{
    auto bytes = frameBytes(FrameType::Data, {1, 2, 3, 4});
    bytes[sizeof(FrameHeader) + 2] ^= 0x40; // flip one payload bit

    Frame frame;
    std::string error;
    EXPECT_LT(parseFrame(bytes.data(), bytes.size(), frame, &error), 0);
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(Frame, BadMagicIsMalformed)
{
    auto bytes = frameBytes(FrameType::Data, {1});
    bytes[0] = 'X';
    Frame frame;
    std::string error;
    EXPECT_LT(parseFrame(bytes.data(), bytes.size(), frame, &error), 0);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Frame, WrongVersionIsMalformed)
{
    auto bytes = frameBytes(FrameType::Data, {1});
    FrameHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    h.version = kProtocolVersion + 1;
    std::memcpy(bytes.data(), &h, sizeof(h));
    Frame frame;
    std::string error;
    EXPECT_LT(parseFrame(bytes.data(), bytes.size(), frame, &error), 0);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Frame, UnknownTypeIsMalformed)
{
    auto bytes = frameBytes(FrameType::Data, {1});
    FrameHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    h.type = 99;
    std::memcpy(bytes.data(), &h, sizeof(h));
    Frame frame;
    EXPECT_LT(parseFrame(bytes.data(), bytes.size(), frame), 0);
}

TEST(Frame, OversizePayloadRejectedWithoutBuffering)
{
    // A header announcing more than the cap must be rejected from the
    // header alone — even though the "payload" never arrives.
    std::vector<uint8_t> bytes(sizeof(FrameHeader));
    FrameHeader h{};
    std::memcpy(h.magic, kFrameMagic, sizeof(h.magic));
    h.version = kProtocolVersion;
    h.type = static_cast<uint16_t>(FrameType::Data);
    h.payloadBytes = static_cast<uint32_t>(kMaxFramePayload) + 1;
    h.payloadCrc = 0;
    std::memcpy(bytes.data(), &h, sizeof(h));

    Frame frame;
    std::string error;
    EXPECT_LT(parseFrame(bytes.data(), bytes.size(), frame, &error), 0);
    EXPECT_NE(error.find("cap"), std::string::npos) << error;
}

TEST(Frame, WireEventPreservesDoubleBitsExactly)
{
    profiler::StallEvent ev;
    ev.startSample = 12345;
    ev.endSample = 67890;
    ev.depth = 0.1 + 0.2; // a value with a non-obvious bit pattern
    ev.durationNs = std::numeric_limits<double>::denorm_min();
    ev.stallCycles = -0.0;
    ev.confidence = std::numeric_limits<double>::quiet_NaN();
    ev.kind = profiler::StallKind::RefreshCoincident;
    ev.level = profiler::ServiceLevel::PrefetchMasked;
    ev.levelConfidence = std::nextafter(1.0, 0.0);

    const profiler::StallEvent back = fromWire(toWire(ev));
    EXPECT_EQ(back.startSample, ev.startSample);
    EXPECT_EQ(back.endSample, ev.endSample);
    EXPECT_EQ(back.kind, ev.kind);
    EXPECT_EQ(back.level, ev.level);
    const auto bits = [](double v) {
        uint64_t b;
        std::memcpy(&b, &v, sizeof(b));
        return b;
    };
    EXPECT_EQ(bits(back.depth), bits(ev.depth));
    EXPECT_EQ(bits(back.durationNs), bits(ev.durationNs));
    EXPECT_EQ(bits(back.stallCycles), bits(ev.stallCycles));
    EXPECT_EQ(bits(back.confidence), bits(ev.confidence)); // NaN bits
    EXPECT_EQ(bits(back.levelConfidence), bits(ev.levelConfidence));
}

TEST(Frame, ReportPayloadRoundTrip)
{
    std::vector<profiler::StallEvent> events(3);
    for (std::size_t i = 0; i < events.size(); ++i) {
        events[i].startSample = 100 * i;
        events[i].endSample = 100 * i + 7;
        events[i].depth = 0.25 * static_cast<double>(i + 1);
    }
    const std::string text = "report body\nwith two lines\n";
    const auto payload =
        encodeReportPayload(3, 8192, 0.75, events, text);

    DecodedReport report;
    std::string error;
    ASSERT_TRUE(decodeReportPayload(payload, report, &error)) << error;
    EXPECT_EQ(report.status, 3u);
    EXPECT_EQ(report.totalSamples, 8192u);
    EXPECT_DOUBLE_EQ(report.coverageFraction, 0.75);
    ASSERT_EQ(report.events.size(), events.size());
    EXPECT_EQ(report.events[2].startSample, 200u);
    EXPECT_EQ(report.reportText, text);
}

TEST(Frame, TruncatedReportPayloadIsTypedError)
{
    std::vector<profiler::StallEvent> events(2);
    auto payload = encodeReportPayload(0, 100, 1.0, events, "");
    payload.resize(sizeof(ReportHeader) + sizeof(WireEvent) / 2);

    DecodedReport report;
    std::string error;
    EXPECT_FALSE(decodeReportPayload(payload, report, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Frame, ErrorPayloadRoundTrip)
{
    const auto payload =
        encodeErrorPayload(ErrorCode::Busy, "session limit reached");
    ErrorCode code{};
    std::string message;
    EXPECT_TRUE(decodeErrorPayload(payload, code, message));
    EXPECT_EQ(code, ErrorCode::Busy);
    EXPECT_EQ(message, "session limit reached");
}

TEST(Frame, RetryAfterPayloadRoundTripsTheHint)
{
    const auto payload =
        encodeRetryAfterPayload(1234, "server overloaded");
    ErrorCode code{};
    std::string message;
    uint32_t hintMs = 0;
    EXPECT_TRUE(decodeErrorPayload(payload, code, message, &hintMs));
    EXPECT_EQ(code, ErrorCode::RetryAfter);
    EXPECT_EQ(hintMs, 1234u);
    EXPECT_EQ(message, "server overloaded");
}

TEST(Frame, NonRetryErrorPayloadYieldsZeroHint)
{
    // A plain error decoded through the hint-aware overload must not
    // invent a backoff: the hint is only present on RetryAfter.
    const auto payload =
        encodeErrorPayload(ErrorCode::IdleTimeout, "no progress");
    ErrorCode code{};
    std::string message;
    uint32_t hintMs = 77;
    EXPECT_TRUE(decodeErrorPayload(payload, code, message, &hintMs));
    EXPECT_EQ(code, ErrorCode::IdleTimeout);
    EXPECT_EQ(hintMs, 0u);
    EXPECT_EQ(message, "no progress");
}

TEST(Frame, HealthFrameTypesAreValidV4Types)
{
    // v4 added HealthRequest/Health past the old top of the range; the
    // parser must accept both (and still reject the next value up).
    std::vector<uint8_t> bytes;
    appendFrame(bytes, FrameType::HealthRequest, nullptr, 0);
    const uint8_t state = static_cast<uint8_t>(HealthState::Backoff);
    appendFrame(bytes, FrameType::Health, &state, 1);

    Frame frame;
    long consumed = parseFrame(bytes.data(), bytes.size(), frame);
    ASSERT_GT(consumed, 0);
    EXPECT_EQ(frame.type, FrameType::HealthRequest);
    const std::size_t offset = static_cast<std::size_t>(consumed);
    consumed = parseFrame(bytes.data() + offset, bytes.size() - offset,
                          frame);
    ASSERT_GT(consumed, 0);
    EXPECT_EQ(frame.type, FrameType::Health);
    ASSERT_EQ(frame.payload.size(), 1u);
    EXPECT_EQ(frame.payload[0],
              static_cast<uint8_t>(HealthState::Backoff));
}
