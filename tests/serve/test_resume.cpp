/**
 * @file
 * Disconnect-safety tests for the served path: a connection that dies
 * mid-upload parks the session and a reconnecting client resumes it
 * bit-identically (classic and resilient); wrong resume offsets and
 * unknown session ids draw typed BadResume errors; a finished report
 * survives a daemon restart in the durable spool and is replayed
 * verbatim; and the reconnecting client (pushResumable) rides through
 * an injected mid-upload drop end to end.  Runs under TSan in CI.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "../e2e/golden_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace emprof;
using namespace emprof::serve;

namespace {

std::string
goldenPath(const char *name)
{
    return std::string(EMPROF_GOLDEN_DIR) + "/" + name;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << "missing fixture " << path;
    std::vector<uint8_t> bytes;
    if (f == nullptr)
        return bytes;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

std::vector<profiler::StallEvent>
loadExpected()
{
    std::FILE *f =
        std::fopen(goldenPath(golden::kExpectedFile).c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    if (f != nullptr) {
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, got);
        std::fclose(f);
    }
    std::vector<profiler::StallEvent> events;
    std::string why;
    EXPECT_TRUE(golden::eventsFromJson(text, events, &why)) << why;
    return events;
}

void
expectEventsBitExact(const std::vector<profiler::StallEvent> &expected,
                     const std::vector<profiler::StallEvent> &actual,
                     const std::string &label)
{
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto &e = expected[i];
        const auto &a = actual[i];
        EXPECT_EQ(e.startSample, a.startSample) << label << " #" << i;
        EXPECT_EQ(e.endSample, a.endSample) << label << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.depth),
                  golden::doubleBits(a.depth))
            << label << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.durationNs),
                  golden::doubleBits(a.durationNs))
            << label << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.stallCycles),
                  golden::doubleBits(a.stallCycles))
            << label << " #" << i;
        EXPECT_EQ(static_cast<int>(e.kind), static_cast<int>(a.kind))
            << label << " #" << i;
        EXPECT_EQ(static_cast<int>(e.level), static_cast<int>(a.level))
            << label << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.levelConfidence),
                  golden::doubleBits(a.levelConfidence))
            << label << " #" << i;
    }
}

void
expectReportsBitExact(const DecodedReport &expected,
                      const DecodedReport &actual,
                      const std::string &label)
{
    EXPECT_EQ(expected.status, actual.status) << label;
    EXPECT_EQ(expected.totalSamples, actual.totalSamples) << label;
    EXPECT_EQ(golden::doubleBits(expected.coverageFraction),
              golden::doubleBits(actual.coverageFraction))
        << label;
    expectEventsBitExact(expected.events, actual.events, label);
    EXPECT_EQ(expected.reportText, actual.reportText) << label;
}

std::string
freshDir(const char *tag)
{
    static std::atomic<int> counter{0};
    std::string dir = testing::TempDir() + "emprof_resume_" + tag +
                      "_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1));
    std::filesystem::create_directories(dir);
    return dir;
}

/** RAII server on a per-test unix socket (same shape as
 *  test_server.cpp's fixture, but keeps the caller's config). */
class ServerFixture
{
  public:
    explicit ServerFixture(ServerConfig config = {})
    {
        static std::atomic<int> counter{0};
        path_ = testing::TempDir() + "emprof_resume_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)) + ".sock";
        config.unixPath = path_;
        if (config.threads == 0)
            config.threads = 2;
        profiler::EmProfConfig analysis = golden::goldenConfig();
        analysis.sampleRateHz = 1.0;
        analysis.clockHz = 1.0;
        config.analysis = analysis;
        server_ = std::make_unique<Server>(std::move(config));
        std::string error;
        started_ = server_->start(&error);
        EXPECT_TRUE(started_) << error;
    }

    Endpoint
    endpoint() const
    {
        Endpoint ep;
        ep.tcp = false;
        ep.unixPath = path_;
        return ep;
    }

    Server &server() { return *server_; }

    template <typename Pred>
    bool
    waitFor(Pred done) const
    {
        for (int i = 0; i < 5000; ++i) {
            if (done(server_->stats()))
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return done(server_->stats());
    }

  private:
    std::string path_;
    std::unique_ptr<Server> server_;
    bool started_ = false;
};

/** Raw unix socket for driving frames without the Client helper. */
class RawConnection
{
  public:
    explicit RawConnection(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (fd_ < 0 || path.size() >= sizeof(addr.sun_path))
            return;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    bool ok() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    ~RawConnection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

  private:
    int fd_ = -1;
};

/** Upload the first @p headBytes of @p bytes then drop the link; wait
 *  until the server has parked the session.  Returns the session id. */
SessionId
uploadHeadAndDrop(ServerFixture &fixture,
                  const std::vector<uint8_t> &bytes,
                  std::size_t headBytes, bool resilient)
{
    const uint64_t parkedBefore =
        fixture.server().stats().sessionsParked;
    SessionId id{};
    {
        Client client;
        std::string error;
        EXPECT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        OpenRequest open{};
        open.flags = resilient ? kOpenResilient : 0u;
        uint64_t offset = 0;
        SessionState state = SessionState::Fresh;
        EXPECT_TRUE(client.openSession(open, id, offset, state,
                                       nullptr, &error))
            << error;
        EXPECT_EQ(static_cast<uint32_t>(state),
                  static_cast<uint32_t>(SessionState::Fresh));
        EXPECT_FALSE(sessionIdIsZero(id));
        EXPECT_TRUE(client.sendData(bytes.data(), headBytes, &error))
            << error;
        // Destructor closes the socket: the server sees EOF with the
        // upload unfinished and must park, not reject.
    }
    EXPECT_TRUE(fixture.waitFor([&](const ServerStats &s) {
        return s.sessionsParked > parkedBefore;
    })) << "session was never parked";
    return id;
}

/** Reconnect with @p id and finish the upload from the server's
 *  durable offset; returns the push result. */
PushResult
resumeAndFinish(ServerFixture &fixture,
                const std::vector<uint8_t> &bytes, const SessionId &id,
                bool resilient)
{
    Client client;
    std::string error;
    PushResult out;
    if (!client.connect(fixture.endpoint(), &error)) {
        out.error = error;
        return out;
    }
    OpenRequest open{};
    open.flags = (resilient ? kOpenResilient : 0u) | kOpenResume;
    std::memcpy(open.sessionId, id.data(), id.size());
    open.resumeFrom = kResumeQuery;
    SessionId echoed{};
    uint64_t offset = 0;
    SessionState state = SessionState::Fresh;
    ErrorCode code = ErrorCode::Internal;
    if (!client.openSession(open, echoed, offset, state, &code,
                            &error)) {
        out.error = error;
        out.errorCode = code;
        return out;
    }
    EXPECT_EQ(static_cast<uint32_t>(state),
              static_cast<uint32_t>(SessionState::Resumed));
    EXPECT_EQ(echoed, id);
    EXPECT_LE(offset, bytes.size());
    if (!client.sendData(bytes.data() + offset, bytes.size() - offset,
                         &error)) {
        out.error = error;
        return out;
    }
    out = client.finish();
    out.sessionId = echoed;
    return out;
}

} // namespace

TEST(Resume, DroppedUploadParksAndResumesBitIdentically)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();
    ASSERT_FALSE(expected.empty());

    ServerFixture fixture;
    const SessionId id =
        uploadHeadAndDrop(fixture, bytes, bytes.size() / 2, false);
    const PushResult result =
        resumeAndFinish(fixture, bytes, id, false);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.report.status, 0u);
    EXPECT_EQ(result.report.totalSamples, golden::kSamples);
    expectEventsBitExact(expected, result.report.events, "resumed");

    const ServerStats stats = fixture.server().stats();
    EXPECT_EQ(stats.sessionsParked, 1u);
    EXPECT_EQ(stats.sessionsResumed, 1u);
    EXPECT_EQ(stats.sessionsCompleted, 1u);
}

TEST(Resume, ResilientSessionResumesBitIdentically)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerFixture fixture;

    // Uninterrupted resilient run: the reference this test compares
    // the resumed run against, bit for bit.
    Client reference;
    std::string error;
    ASSERT_TRUE(reference.connect(fixture.endpoint(), &error))
        << error;
    const PushResult uninterrupted =
        reference.push(bytes.data(), bytes.size(), true);
    ASSERT_TRUE(uninterrupted.ok) << uninterrupted.error;

    const SessionId id =
        uploadHeadAndDrop(fixture, bytes, bytes.size() / 3, true);
    const PushResult resumed = resumeAndFinish(fixture, bytes, id, true);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    expectReportsBitExact(uninterrupted.report, resumed.report,
                          "resilient-resume");
}

TEST(Resume, EveryDropPointResumesBitIdentically)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();
    ASSERT_FALSE(expected.empty());

    ServerFixture fixture;
    // Drop points chosen to straddle interesting boundaries: inside
    // the EMCAP header, mid-chunk, and one byte short of the end.
    const std::size_t cuts[] = {1, 7, bytes.size() / 4,
                                bytes.size() - 1};
    for (const std::size_t cut : cuts) {
        const SessionId id = uploadHeadAndDrop(fixture, bytes, cut,
                                               false);
        const PushResult result =
            resumeAndFinish(fixture, bytes, id, false);
        ASSERT_TRUE(result.ok)
            << "cut=" << cut << ": " << result.error;
        expectEventsBitExact(expected, result.report.events,
                             "cut=" + std::to_string(cut));
    }
}

TEST(Resume, WrongOffsetIsRejectedThenCorrectResumeStillWorks)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerFixture fixture;
    const std::size_t head = bytes.size() / 2;
    const SessionId id = uploadHeadAndDrop(fixture, bytes, head, false);

    // An offset past anything the server received cannot match its
    // durable offset; the reject must name both numbers.
    {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        OpenRequest open{};
        open.flags = kOpenResume;
        std::memcpy(open.sessionId, id.data(), id.size());
        open.resumeFrom = head + 1;
        SessionId echoed{};
        uint64_t offset = 0;
        SessionState state = SessionState::Fresh;
        ErrorCode code = ErrorCode::Internal;
        EXPECT_FALSE(client.openSession(open, echoed, offset, state,
                                        &code, &error));
        EXPECT_EQ(static_cast<uint32_t>(code),
                  static_cast<uint32_t>(ErrorCode::BadResume))
            << error;
        EXPECT_NE(error.find("does not match"), std::string::npos)
            << error;
    }

    // The mismatch must not have consumed the parked session.
    const PushResult result =
        resumeAndFinish(fixture, bytes, id, false);
    ASSERT_TRUE(result.ok) << result.error;
    expectEventsBitExact(expected, result.report.events,
                         "resume-after-bad-offset");
}

TEST(Resume, ResilienceModeMismatchIsBadResume)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());

    ServerFixture fixture;
    const SessionId id =
        uploadHeadAndDrop(fixture, bytes, bytes.size() / 2, false);

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    OpenRequest open{};
    open.flags = kOpenResume | kOpenResilient; // parked classic
    std::memcpy(open.sessionId, id.data(), id.size());
    open.resumeFrom = kResumeQuery;
    SessionId echoed{};
    uint64_t offset = 0;
    SessionState state = SessionState::Fresh;
    ErrorCode code = ErrorCode::Internal;
    EXPECT_FALSE(client.openSession(open, echoed, offset, state, &code,
                                    &error));
    EXPECT_EQ(static_cast<uint32_t>(code),
              static_cast<uint32_t>(ErrorCode::BadResume))
        << error;
    EXPECT_NE(error.find("resilience"), std::string::npos) << error;
}

TEST(Resume, UnknownSessionWithExplicitOffsetIsBadResume)
{
    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;

    OpenRequest open{};
    open.flags = kOpenResume;
    for (std::size_t i = 0; i < sizeof(open.sessionId); ++i)
        open.sessionId[i] = static_cast<uint8_t>(0xA0 + i);
    open.resumeFrom = 4096; // a concrete claim the server can't honour
    SessionId echoed{};
    uint64_t offset = 0;
    SessionState state = SessionState::Fresh;
    ErrorCode code = ErrorCode::Internal;
    EXPECT_FALSE(client.openSession(open, echoed, offset, state, &code,
                                    &error));
    EXPECT_EQ(static_cast<uint32_t>(code),
              static_cast<uint32_t>(ErrorCode::BadResume))
        << error;
    EXPECT_NE(error.find("unknown session"), std::string::npos)
        << error;
}

TEST(Resume, UnknownSessionWithQueryOffsetStartsFresh)
{
    // A client whose server restarted (parked state gone) queries with
    // its old id: the answer is Fresh-from-zero, not an error, so the
    // client can simply re-upload.
    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;

    OpenRequest open{};
    open.flags = kOpenResume;
    for (std::size_t i = 0; i < sizeof(open.sessionId); ++i)
        open.sessionId[i] = static_cast<uint8_t>(1 + i);
    open.resumeFrom = kResumeQuery;
    SessionId echoed{};
    uint64_t offset = 1;
    SessionState state = SessionState::Resumed;
    EXPECT_TRUE(client.openSession(open, echoed, offset, state,
                                   nullptr, &error))
        << error;
    EXPECT_EQ(static_cast<uint32_t>(state),
              static_cast<uint32_t>(SessionState::Fresh));
    EXPECT_EQ(offset, 0u);
    EXPECT_EQ(std::memcmp(echoed.data(), open.sessionId,
                          echoed.size()),
              0);
}

TEST(Resume, SpooledReportSurvivesDaemonRestartBitIdentically)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();
    ASSERT_FALSE(expected.empty());

    const std::string spoolDir = freshDir("spool");
    DecodedReport original;
    SessionId id{};
    {
        ServerConfig config;
        config.spoolDir = spoolDir;
        ServerFixture fixture(config);
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        const PushResult result =
            client.push(bytes.data(), bytes.size());
        ASSERT_TRUE(result.ok) << result.error;
        original = result.report;
        id = result.sessionId;
        ASSERT_FALSE(sessionIdIsZero(id));
        fixture.server().stop();
    }

    // A fresh daemon on the same spool dir recovers the result...
    ServerConfig config;
    config.spoolDir = spoolDir;
    ServerFixture restarted(config);
    EXPECT_EQ(restarted.server().spool().recovery().results, 1u);

    // ...serves it to a resuming client as Complete + verbatim Report,
    {
        RawConnection conn(restarted.endpoint().unixPath);
        ASSERT_TRUE(conn.ok());
        OpenRequest open{};
        open.flags = kOpenResume;
        std::memcpy(open.sessionId, id.data(), id.size());
        open.resumeFrom = kResumeQuery;
        std::string error;
        ASSERT_TRUE(writeFrame(conn.fd(), FrameType::Open, &open,
                               sizeof(open), &error))
            << error;
        Frame ack;
        ASSERT_TRUE(readFrame(conn.fd(), ack, &error)) << error;
        ASSERT_EQ(static_cast<uint16_t>(ack.type),
                  static_cast<uint16_t>(FrameType::OpenAck));
        SessionId echoed{};
        uint64_t offset = 0;
        SessionState state = SessionState::Fresh;
        ASSERT_TRUE(decodeOpenAckPayload(ack.payload, echoed, offset,
                                         state, &error))
            << error;
        EXPECT_EQ(static_cast<uint32_t>(state),
                  static_cast<uint32_t>(SessionState::Complete));
        Frame report;
        ASSERT_TRUE(readFrame(conn.fd(), report, &error)) << error;
        ASSERT_EQ(static_cast<uint16_t>(report.type),
                  static_cast<uint16_t>(FrameType::Report));
        DecodedReport served;
        ASSERT_TRUE(decodeReportPayload(report.payload, served,
                                        &error))
            << error;
        expectReportsBitExact(original, served, "spool-replay");
        expectEventsBitExact(expected, served.events, "spool-replay");
    }
    EXPECT_EQ(restarted.server().stats().resultsServedFromSpool, 1u);

    // ...and the same bytes are fetchable straight from the spool.
    uint32_t status = 99;
    std::vector<uint8_t> payload;
    std::string error;
    ASSERT_TRUE(
        restarted.server().spool().fetch(id, status, payload, &error))
        << error;
    EXPECT_EQ(status, original.status);
    DecodedReport fetched;
    ASSERT_TRUE(decodeReportPayload(payload, fetched, &error)) << error;
    expectReportsBitExact(original, fetched, "spool-fetch");
}

TEST(Resume, RestartMidUploadFallsBackToFreshAndStaysBitIdentical)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    const std::string spoolDir = freshDir("midrestart");
    SessionId id{};
    {
        ServerConfig config;
        config.spoolDir = spoolDir;
        ServerFixture fixture(config);
        id = uploadHeadAndDrop(fixture, bytes, bytes.size() / 2,
                               false);
        fixture.server().stop(); // parked state dies with the daemon
    }

    ServerConfig config;
    config.spoolDir = spoolDir;
    ServerFixture restarted(config);
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(restarted.endpoint(), &error)) << error;
    OpenRequest open{};
    open.flags = kOpenResume;
    std::memcpy(open.sessionId, id.data(), id.size());
    open.resumeFrom = kResumeQuery;
    SessionId echoed{};
    uint64_t offset = 1;
    SessionState state = SessionState::Resumed;
    ASSERT_TRUE(client.openSession(open, echoed, offset, state,
                                   nullptr, &error))
        << error;
    EXPECT_EQ(static_cast<uint32_t>(state),
              static_cast<uint32_t>(SessionState::Fresh));
    EXPECT_EQ(offset, 0u);
    ASSERT_TRUE(client.sendData(bytes.data(), bytes.size(), &error))
        << error;
    const PushResult result = client.finish();
    ASSERT_TRUE(result.ok) << result.error;
    expectEventsBitExact(expected, result.report.events,
                         "fresh-after-restart");
}

TEST(Resume, PushResumableRidesThroughInjectedDrop)
{
    const auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();

    ServerConfig config;
    config.spoolDir = freshDir("pushdrop");
    ServerFixture fixture(config);

    Client client;
    PushOptions options;
    options.uploadChunkBytes = 997;
    options.maxAttempts = 5;
    options.jitterSeed = 42;
    options.simulateDropAfterBytes = bytes.size() / 2;
    const PushResult result = client.pushResumable(
        fixture.endpoint(), bytes.data(), bytes.size(), options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.attempts, 2u);
    EXPECT_FALSE(result.connectionLost);
    expectEventsBitExact(expected, result.report.events,
                         "push-resumable");
    EXPECT_EQ(fixture.server().stats().sessionsCompleted, 1u);
}

TEST(Resume, PushResumableFailsTypedWhenRetriesExhausted)
{
    // No listener at this path: every attempt is a transport failure,
    // so the result must be the typed retryable class (exit code 7 in
    // the tools), not a generic error.
    Endpoint ep;
    ep.tcp = false;
    ep.unixPath = testing::TempDir() + "emprof_resume_nowhere_" +
                  std::to_string(::getpid()) + ".sock";
    Client client;
    PushOptions options;
    options.maxAttempts = 2;
    options.backoffBaseMs = 1;
    options.jitterSeed = 7;
    const uint8_t junk[4] = {0, 1, 2, 3};
    const PushResult result =
        client.pushResumable(ep, junk, sizeof(junk), options);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.connectionLost);
    EXPECT_EQ(result.attempts, 2u);
}
