/**
 * @file
 * ResultSpool unit tests: append/fetch/list round-trips, the typed
 * double-ack and unknown-session failures, crash recovery as an
 * every-byte truncation sweep (longest-valid-prefix, like the store's
 * recovery tests), the retention cap, segment GC, and at-rest damage
 * detection on fetch.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/spool.hpp"

using namespace emprof;
using namespace emprof::serve;

namespace fs = std::filesystem;

namespace {

std::string
freshDir(const char *tag)
{
    static std::atomic<int> counter{0};
    std::string dir = testing::TempDir() + "emprof_spool_" +
                      std::string(tag) + "_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1));
    fs::create_directories(dir);
    return dir;
}

SessionId
makeId(uint8_t seed)
{
    SessionId id{};
    for (std::size_t i = 0; i < id.size(); ++i)
        id[i] = static_cast<uint8_t>(seed + i * 13);
    return id;
}

std::vector<uint8_t>
makePayload(std::size_t bytes, uint8_t seed)
{
    std::vector<uint8_t> payload(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
        payload[i] = static_cast<uint8_t>(seed ^ (i * 31 + 7));
    return payload;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<uint8_t> bytes;
    if (f == nullptr)
        return bytes;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

void
writeFileBytes(const std::string &path,
               const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}

/** The one segment file in @p dir (fails the test on 0 or many). */
std::string
onlySegment(const std::string &dir)
{
    std::string found;
    int count = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        ++count;
        found = entry.path().string();
    }
    EXPECT_EQ(count, 1) << dir;
    return found;
}

} // namespace

TEST(Spool, AppendFetchListRoundTrip)
{
    ResultSpool spool;
    ResultSpool::Options options;
    options.dir = freshDir("roundtrip");
    std::string error;
    ASSERT_TRUE(spool.open(options, &error)) << error;

    const SessionId a = makeId(1), b = makeId(2), c = makeId(3);
    const auto pa = makePayload(100, 0x11);
    const auto pb = makePayload(1, 0x22);
    const auto pc = makePayload(4096, 0x33);
    ASSERT_TRUE(spool.append(a, 0, pa, &error)) << error;
    ASSERT_TRUE(spool.append(b, 3, pb, &error)) << error;
    ASSERT_TRUE(spool.append(c, 0, pc, &error)) << error;
    EXPECT_EQ(spool.resultCount(), 3u);
    EXPECT_TRUE(spool.has(b));
    EXPECT_FALSE(spool.has(makeId(9)));

    uint32_t status = 99;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(spool.fetch(b, status, payload, &error)) << error;
    EXPECT_EQ(status, 3u);
    EXPECT_EQ(payload, pb);
    ASSERT_TRUE(spool.fetch(c, status, payload, &error)) << error;
    EXPECT_EQ(status, 0u);
    EXPECT_EQ(payload, pc);

    const auto entries = spool.list();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].id, a); // oldest first
    EXPECT_EQ(entries[1].id, b);
    EXPECT_EQ(entries[2].id, c);
    EXPECT_EQ(entries[1].status, 3u);
    EXPECT_EQ(entries[2].payloadBytes, 4096u);
    EXPECT_FALSE(entries[0].acked);

    EXPECT_FALSE(spool.fetch(makeId(9), status, payload, &error));
    EXPECT_NE(error.find("no spooled result"), std::string::npos)
        << error;
}

TEST(Spool, AckIsTypedAndSurvivesReopen)
{
    ResultSpool::Options options;
    options.dir = freshDir("ack");
    std::string error;
    {
        ResultSpool spool;
        ASSERT_TRUE(spool.open(options, &error)) << error;
        ASSERT_TRUE(
            spool.append(makeId(1), 0, makePayload(32, 1), &error))
            << error;
        ASSERT_TRUE(
            spool.append(makeId(2), 0, makePayload(32, 2), &error))
            << error;

        EXPECT_FALSE(spool.ack(makeId(7), &error));
        EXPECT_NE(error.find("no spooled result"), std::string::npos)
            << error;

        ASSERT_TRUE(spool.ack(makeId(1), &error)) << error;
        EXPECT_FALSE(spool.ack(makeId(1), &error));
        EXPECT_NE(error.find("already acknowledged"),
                  std::string::npos)
            << error;
        spool.close();
    }

    // The ack is a record too: a reopened spool must remember it.
    ResultSpool reopened;
    ASSERT_TRUE(reopened.open(options, &error)) << error;
    EXPECT_EQ(reopened.recovery().results, 2u);
    EXPECT_EQ(reopened.recovery().acked, 1u);
    const auto entries = reopened.list();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_TRUE(entries[0].acked);
    EXPECT_FALSE(entries[1].acked);
    EXPECT_FALSE(reopened.ack(makeId(1), &error));
    EXPECT_NE(error.find("already acknowledged"), std::string::npos)
        << error;
}

TEST(Spool, EveryByteTruncationRecoversLongestValidPrefix)
{
    // Build a reference segment of two records, then replay recovery
    // against every possible crash point (file truncated at byte N).
    const auto p1 = makePayload(40, 0x44);
    const auto p2 = makePayload(60, 0x55);
    const std::string refDir = freshDir("truncref");
    std::string error;
    {
        ResultSpool spool;
        ResultSpool::Options options;
        options.dir = refDir;
        ASSERT_TRUE(spool.open(options, &error)) << error;
        ASSERT_TRUE(spool.append(makeId(1), 0, p1, &error)) << error;
        ASSERT_TRUE(spool.append(makeId(2), 3, p2, &error)) << error;
        spool.close();
    }
    const auto segment = readFileBytes(onlySegment(refDir));
    const std::size_t r1End = sizeof(SpoolRecordHeader) + p1.size();
    const std::size_t r2End =
        r1End + sizeof(SpoolRecordHeader) + p2.size();
    ASSERT_EQ(segment.size(), r2End);

    const std::string sweepDir = freshDir("truncsweep");
    const std::string sweepSegment = sweepDir + "/spool-0.emspool";
    for (std::size_t cut = 0; cut <= segment.size(); ++cut) {
        writeFileBytes(sweepSegment,
                       std::vector<uint8_t>(segment.begin(),
                                            segment.begin() + cut));
        ResultSpool spool;
        ResultSpool::Options options;
        options.dir = sweepDir;
        ASSERT_TRUE(spool.open(options, &error))
            << "cut=" << cut << ": " << error;
        const uint64_t expectRecovered =
            cut >= r2End ? 2 : (cut >= r1End ? 1 : 0);
        EXPECT_EQ(spool.recovery().results, expectRecovered)
            << "cut=" << cut;
        const bool torn = cut != 0 && cut != r1End && cut != r2End;
        EXPECT_EQ(spool.recovery().tornRecords > 0, torn)
            << "cut=" << cut;
        if (expectRecovered >= 1) {
            uint32_t status = 99;
            std::vector<uint8_t> payload;
            ASSERT_TRUE(spool.fetch(makeId(1), status, payload,
                                    &error))
                << "cut=" << cut << ": " << error;
            EXPECT_EQ(status, 0u) << "cut=" << cut;
            EXPECT_EQ(payload, p1) << "cut=" << cut;
        }
        if (expectRecovered == 2) {
            uint32_t status = 99;
            std::vector<uint8_t> payload;
            ASSERT_TRUE(spool.fetch(makeId(2), status, payload,
                                    &error))
                << "cut=" << cut << ": " << error;
            EXPECT_EQ(status, 3u) << "cut=" << cut;
            EXPECT_EQ(payload, p2) << "cut=" << cut;
        }
        spool.close();
    }
}

TEST(Spool, ReopenNeverExtendsATornTail)
{
    ResultSpool::Options options;
    options.dir = freshDir("torntail");
    std::string error;
    {
        ResultSpool spool;
        ASSERT_TRUE(spool.open(options, &error)) << error;
        ASSERT_TRUE(
            spool.append(makeId(1), 0, makePayload(64, 1), &error))
            << error;
        spool.close();
    }
    // Tear the tail: chop 5 bytes off the only record.
    const std::string segment = onlySegment(options.dir);
    auto bytes = readFileBytes(segment);
    bytes.resize(bytes.size() - 5);
    writeFileBytes(segment, bytes);

    ResultSpool spool;
    ASSERT_TRUE(spool.open(options, &error)) << error;
    EXPECT_EQ(spool.recovery().results, 0u);
    EXPECT_EQ(spool.recovery().tornRecords, 1u);

    // A new append must land in a NEW segment, leaving the torn file
    // byte-identical (dead bytes for GC, never extended).
    ASSERT_TRUE(spool.append(makeId(2), 0, makePayload(32, 2), &error))
        << error;
    EXPECT_EQ(readFileBytes(segment), bytes);

    ResultSpool reopened;
    ASSERT_TRUE(reopened.open(options, &error)) << error;
    EXPECT_EQ(reopened.recovery().segments, 2u);
    EXPECT_EQ(reopened.recovery().results, 1u);
    uint32_t status = 0;
    std::vector<uint8_t> payload;
    EXPECT_TRUE(reopened.fetch(makeId(2), status, payload, &error))
        << error;
}

TEST(Spool, RetentionExpiresOldestUnacked)
{
    ResultSpool spool;
    ResultSpool::Options options;
    options.dir = freshDir("retention");
    options.maxResults = 2;
    std::string error;
    ASSERT_TRUE(spool.open(options, &error)) << error;

    ASSERT_TRUE(spool.append(makeId(1), 0, makePayload(16, 1), &error))
        << error;
    ASSERT_TRUE(spool.append(makeId(2), 0, makePayload(16, 2), &error))
        << error;
    ASSERT_TRUE(spool.append(makeId(3), 0, makePayload(16, 3), &error))
        << error;

    EXPECT_EQ(spool.resultCount(), 2u);
    EXPECT_EQ(spool.expiredByRetention(), 1u);
    EXPECT_FALSE(spool.has(makeId(1))); // oldest paid for the cap
    uint32_t status = 0;
    std::vector<uint8_t> payload;
    EXPECT_TRUE(spool.fetch(makeId(2), status, payload, &error))
        << error;
    EXPECT_TRUE(spool.fetch(makeId(3), status, payload, &error))
        << error;
}

TEST(Spool, GcReclaimsFullyAckedSegments)
{
    ResultSpool spool;
    ResultSpool::Options options;
    options.dir = freshDir("gc");
    options.segmentBytes = 1; // every record rotates to its own file
    std::string error;
    ASSERT_TRUE(spool.open(options, &error)) << error;

    ASSERT_TRUE(spool.append(makeId(1), 0, makePayload(16, 1), &error))
        << error;
    ASSERT_TRUE(spool.append(makeId(2), 0, makePayload(16, 2), &error))
        << error;
    ASSERT_TRUE(spool.ack(makeId(1), &error)) << error;

    // Segment of result 1 has no live record left; result 2's and the
    // active (ack) segment must survive.
    EXPECT_EQ(spool.gc(&error), 1u) << error;
    EXPECT_FALSE(spool.has(makeId(1)));
    uint32_t status = 0;
    std::vector<uint8_t> payload;
    EXPECT_TRUE(spool.fetch(makeId(2), status, payload, &error))
        << error;

    ASSERT_TRUE(spool.ack(makeId(2), &error)) << error;
    EXPECT_GE(spool.gc(&error), 1u) << error;
    EXPECT_FALSE(spool.fetch(makeId(2), status, payload, &error));
}

TEST(Spool, FetchDetectsDamageAtRest)
{
    ResultSpool spool;
    ResultSpool::Options options;
    options.dir = freshDir("damage");
    std::string error;
    ASSERT_TRUE(spool.open(options, &error)) << error;
    const auto payload = makePayload(128, 0x66);
    ASSERT_TRUE(spool.append(makeId(1), 0, payload, &error)) << error;

    // Flip one payload byte on disk; the index still points there.
    const std::string segment = onlySegment(options.dir);
    auto bytes = readFileBytes(segment);
    ASSERT_GT(bytes.size(), sizeof(SpoolRecordHeader) + 10);
    bytes[sizeof(SpoolRecordHeader) + 10] ^= 0x01;
    writeFileBytes(segment, bytes);

    uint32_t status = 0;
    std::vector<uint8_t> out;
    EXPECT_FALSE(spool.fetch(makeId(1), status, out, &error));
    EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(Spool, SessionIdHexRoundTrip)
{
    const SessionId id = makeId(0xC7);
    const std::string hex = sessionIdToHex(id);
    EXPECT_EQ(hex.size(), 32u);
    SessionId back{};
    ASSERT_TRUE(sessionIdFromHex(hex, back));
    EXPECT_EQ(back, id);
    EXPECT_FALSE(sessionIdFromHex("not-hex", back));
    EXPECT_FALSE(sessionIdFromHex(hex.substr(1), back));
}
