/**
 * @file
 * End-to-end server tests over real unix-domain sockets: served
 * reports must be bit-identical to the golden expectation for every
 * upload framing, malformed input must be rejected with typed errors
 * while the server keeps serving everyone else, concurrent sessions
 * must not interfere (this suite runs under TSan in CI), and
 * backpressure/shutdown must both terminate cleanly.
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "../e2e/golden_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace emprof;
using namespace emprof::serve;

namespace {

std::string
goldenPath(const char *name)
{
    return std::string(EMPROF_GOLDEN_DIR) + "/" + name;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << "missing fixture " << path;
    std::vector<uint8_t> bytes;
    if (f == nullptr)
        return bytes;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

std::vector<profiler::StallEvent>
loadExpected()
{
    std::FILE *f =
        std::fopen(goldenPath(golden::kExpectedFile).c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    if (f != nullptr) {
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, got);
        std::fclose(f);
    }
    std::vector<profiler::StallEvent> events;
    std::string why;
    EXPECT_TRUE(golden::eventsFromJson(text, events, &why)) << why;
    return events;
}

void
expectEventsBitExact(const std::vector<profiler::StallEvent> &expected,
                     const std::vector<profiler::StallEvent> &actual,
                     const std::string &framing)
{
    ASSERT_EQ(expected.size(), actual.size()) << framing;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto &e = expected[i];
        const auto &a = actual[i];
        EXPECT_EQ(e.startSample, a.startSample) << framing << " #" << i;
        EXPECT_EQ(e.endSample, a.endSample) << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.depth),
                  golden::doubleBits(a.depth))
            << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.durationNs),
                  golden::doubleBits(a.durationNs))
            << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.stallCycles),
                  golden::doubleBits(a.stallCycles))
            << framing << " #" << i;
        EXPECT_EQ(static_cast<int>(e.kind), static_cast<int>(a.kind))
            << framing << " #" << i;
        EXPECT_EQ(static_cast<int>(e.level), static_cast<int>(a.level))
            << framing << " #" << i;
        EXPECT_EQ(golden::doubleBits(e.levelConfidence),
                  golden::doubleBits(a.levelConfidence))
            << framing << " #" << i;
    }
}

/** RAII server on a per-test unix socket. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServerConfig config = {})
    {
        static std::atomic<int> counter{0};
        path_ = testing::TempDir() + "emprof_serve_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)) + ".sock";
        config.unixPath = path_;
        if (config.threads == 0)
            config.threads = 2;
        config.analysis = baseConfig();
        server_ = std::make_unique<Server>(std::move(config));
        std::string error;
        started_ = server_->start(&error);
        EXPECT_TRUE(started_) << error;
    }

    static profiler::EmProfConfig
    baseConfig()
    {
        // The golden analysis knobs minus what the capture header
        // carries (rate/clock come from the upload).
        profiler::EmProfConfig config = golden::goldenConfig();
        config.sampleRateHz = 1.0;
        config.clockHz = 1.0;
        return config;
    }

    Endpoint
    endpoint() const
    {
        Endpoint ep;
        ep.tcp = false;
        ep.unixPath = path_;
        return ep;
    }

    Server &server() { return *server_; }

    /** Poll stats() until @p done says stop or ~2 s elapse. */
    template <typename Pred>
    bool
    waitFor(Pred done) const
    {
        for (int i = 0; i < 2000; ++i) {
            if (done(server_->stats()))
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return done(server_->stats());
    }

  private:
    std::string path_;
    std::unique_ptr<Server> server_;
    bool started_ = false;
};

} // namespace

TEST(Server, ServedReportIsBitIdenticalForEveryUploadFraming)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ASSERT_FALSE(bytes.empty());
    const auto expected = loadExpected();
    ASSERT_FALSE(expected.empty());

    ServerFixture fixture;
    struct Case
    {
        const char *name;
        std::size_t chunkBytes;
    };
    // Whole capture in one Data frame; ragged prime-sized frames that
    // straddle every EMCAP chunk boundary; tiny frames.
    const Case cases[] = {
        {"one-frame", bytes.size()},
        {"ragged-997", 997},
        {"tiny-64", 64},
    };
    for (const auto &c : cases) {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(fixture.endpoint(), &error))
            << error;
        const PushResult result = client.push(
            bytes.data(), bytes.size(), false, c.chunkBytes);
        ASSERT_TRUE(result.ok) << c.name << ": " << result.error;
        EXPECT_EQ(result.report.status, 0u) << c.name;
        EXPECT_EQ(result.report.totalSamples, golden::kSamples);
        expectEventsBitExact(expected, result.report.events, c.name);
        EXPECT_FALSE(result.report.reportText.empty()) << c.name;
    }
    const ServerStats stats = fixture.server().stats();
    EXPECT_EQ(stats.sessionsCompleted, 3u);
    EXPECT_EQ(stats.sessionsRejected, 0u);
}

namespace {

/** Raw unix-socket connection for speaking corrupted bytes. */
class RawConnection
{
  public:
    explicit RawConnection(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (fd_ < 0 || path.size() >= sizeof(addr.sun_path))
            return;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    bool ok() const { return fd_ >= 0; }

    ~RawConnection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendBytes(const std::vector<uint8_t> &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << std::strerror(errno);
            off += static_cast<std::size_t>(n);
        }
    }

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
};

} // namespace

TEST(Server, MalformedFrameGetsTypedErrorAndServerSurvives)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ServerFixture fixture;

    // A valid Open, then a Data frame whose payload was corrupted
    // AFTER the CRC was computed — a flipped bit on the wire.
    {
        RawConnection conn(fixture.endpoint().unixPath);
        ASSERT_TRUE(conn.ok()) << std::strerror(errno);
        std::vector<uint8_t> raw;
        const OpenRequest open{};
        appendFrame(raw, FrameType::Open, &open, sizeof(open));
        const std::size_t data_at = raw.size();
        appendFrame(raw, FrameType::Data, bytes.data(), 128);
        raw[data_at + sizeof(FrameHeader) + 64] ^= 0x01;
        conn.sendBytes(raw);

        // v2: the Open is acknowledged first, then the corrupted
        // Data frame draws the typed Error.
        Frame reply;
        std::string error;
        ASSERT_TRUE(readFrame(conn.fd(), reply, &error)) << error;
        ASSERT_EQ(reply.type, FrameType::OpenAck);
        ASSERT_TRUE(readFrame(conn.fd(), reply, &error)) << error;
        ASSERT_EQ(reply.type, FrameType::Error);
        ErrorCode code{};
        std::string message;
        ASSERT_TRUE(decodeErrorPayload(reply.payload, code, message));
        EXPECT_EQ(code, ErrorCode::Malformed);
        EXPECT_NE(message.find("CRC"), std::string::npos) << message;
    }

    // Garbage that is not even a frame header.
    {
        RawConnection conn(fixture.endpoint().unixPath);
        ASSERT_TRUE(conn.ok()) << std::strerror(errno);
        conn.sendBytes(std::vector<uint8_t>(64, 0x5A));
        Frame reply;
        std::string error;
        ASSERT_TRUE(readFrame(conn.fd(), reply, &error)) << error;
        EXPECT_EQ(reply.type, FrameType::Error);
    }

    // The server survived both: a well-formed push still works and
    // the malformed-frame counter saw the damage.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult result =
        client.push(bytes.data(), bytes.size(), false, 997);
    EXPECT_TRUE(result.ok) << result.error;

    const ServerStats stats = fixture.server().stats();
    EXPECT_GE(stats.framesMalformed, 2u);
    EXPECT_EQ(stats.sessionsCompleted, 1u);
}

TEST(Server, CorruptEmcapBytesAreRejectedAndQuarantined)
{
    auto bytes = readFileBytes(goldenPath(golden::kCaptureFile));
    bytes[5000] ^= 0x10; // flip one bit inside a chunk payload
    const auto good =
        readFileBytes(goldenPath(golden::kCaptureFile));

    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult bad =
        client.push(bytes.data(), bytes.size(), false, 997);
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.errorCode, ErrorCode::Malformed);
    EXPECT_NE(bad.error.find("CRC"), std::string::npos) << bad.error;

    // Only that session was quarantined: the next upload succeeds.
    Client again;
    ASSERT_TRUE(again.connect(fixture.endpoint(), &error)) << error;
    const PushResult ok =
        again.push(good.data(), good.size(), false, 997);
    EXPECT_TRUE(ok.ok) << ok.error;

    const ServerStats stats = fixture.server().stats();
    EXPECT_EQ(stats.sessionsRejected, 1u);
    EXPECT_EQ(stats.sessionsCompleted, 1u);
}

TEST(Server, TruncatedUploadIsRejectedWithAReason)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    ASSERT_TRUE(client.open(false, &error)) << error;
    ASSERT_TRUE(
        client.sendData(bytes.data(), bytes.size() / 2, &error))
        << error;
    const PushResult result = client.finish();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.errorCode, ErrorCode::Malformed);
    EXPECT_NE(result.error.find("truncated"), std::string::npos)
        << result.error;
}

TEST(Server, DataBeforeOpenIsRejected)
{
    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const uint8_t junk[16] = {};
    ASSERT_TRUE(client.sendData(junk, sizeof(junk), &error)) << error;
    const PushResult result = client.finish();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.errorCode, ErrorCode::Malformed);
}

TEST(Server, SessionLimitRepliesBusy)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ServerConfig config;
    config.maxSessions = 1;
    ServerFixture fixture(std::move(config));

    // Hold one session open (Open sent, no Finish yet).
    Client holder;
    std::string error;
    ASSERT_TRUE(holder.connect(fixture.endpoint(), &error)) << error;
    ASSERT_TRUE(holder.open(false, &error)) << error;
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.sessionsAccepted == 1;
    }));

    Client second;
    ASSERT_TRUE(second.connect(fixture.endpoint(), &error)) << error;
    const PushResult busy =
        second.push(bytes.data(), bytes.size(), false, 997);
    EXPECT_FALSE(busy.ok);
    EXPECT_EQ(busy.errorCode, ErrorCode::Busy);

    // The held session still completes normally.
    ASSERT_TRUE(holder.sendData(bytes.data(), bytes.size(), &error))
        << error;
    const PushResult done = holder.finish();
    EXPECT_TRUE(done.ok) << done.error;
}

TEST(Server, ConcurrentSessionsAllGetBitIdenticalReports)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    const auto expected = loadExpected();
    ServerConfig config;
    config.threads = 4;
    config.spanSamples = 1024; // force mid-upload analysis
    ServerFixture fixture(std::move(config));

    constexpr int kSessions = 8;
    std::vector<PushResult> results(kSessions);
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i)
        threads.emplace_back([&, i] {
            Client client;
            std::string error;
            if (!client.connect(fixture.endpoint(), &error)) {
                results[i].error = error;
                return;
            }
            // Different framing per session, same expected bits.
            const std::size_t chunk = 128 + 977 * (i % 3);
            results[i] = client.push(bytes.data(), bytes.size(),
                                     false, chunk);
        });
    for (auto &t : threads)
        t.join();

    for (int i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(results[i].ok)
            << "session " << i << ": " << results[i].error;
        expectEventsBitExact(expected, results[i].report.events,
                             "session " + std::to_string(i));
    }
    const ServerStats stats = fixture.server().stats();
    EXPECT_EQ(stats.sessionsCompleted,
              static_cast<uint64_t>(kSessions));
    EXPECT_EQ(stats.sessionsRejected, 0u);
}

TEST(Server, BackpressureBoundsTheQueueAndStillCompletes)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    const auto expected = loadExpected();
    ServerConfig config;
    config.sessionBufferBytes = 2048; // absurdly small budget
    config.spanSamples = 512;
    ServerFixture fixture(std::move(config));

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult result =
        client.push(bytes.data(), bytes.size(), false, 256);
    ASSERT_TRUE(result.ok) << result.error;
    expectEventsBitExact(expected, result.report.events,
                         "backpressure");
}

TEST(Server, ScrapeReturnsTheSessionCounters)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    ASSERT_TRUE(
        client.push(bytes.data(), bytes.size(), false, 997).ok);

    std::string text;
    ASSERT_TRUE(Client::scrape(fixture.endpoint(), text, &error))
        << error;
    EXPECT_NE(text.find("emprof.serve.sessions_completed 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("emprof.serve.sessions_rejected 0"),
              std::string::npos)
        << text;
}

TEST(Server, GracefulStopAnswersInFlightSessionsWithShutdown)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ServerFixture fixture;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    ASSERT_TRUE(client.open(false, &error)) << error;
    ASSERT_TRUE(client.sendData(bytes.data(), 1000, &error)) << error;
    ASSERT_TRUE(fixture.waitFor([](const ServerStats &s) {
        return s.sessionsAccepted == 1;
    }));

    fixture.server().stop();
    // The client either receives the typed Shutdown error or finds
    // the connection closed — never a hang, never a bogus Report.
    const PushResult result = client.finish();
    EXPECT_FALSE(result.ok);
    if (result.errorCode == ErrorCode::Shutdown) {
        EXPECT_NE(result.error.find("shutting down"),
                  std::string::npos);
    }

    const ServerStats stats = fixture.server().stats();
    EXPECT_EQ(stats.sessionsCompleted, 0u);
    EXPECT_EQ(stats.sessionsRejected, 1u);
}

TEST(Server, StopIsIdempotentAndRestartWorks)
{
    const auto bytes =
        readFileBytes(goldenPath(golden::kCaptureFile));
    ServerFixture fixture;
    fixture.server().stop();
    fixture.server().stop(); // second stop must be a no-op

    std::string error;
    ASSERT_TRUE(fixture.server().start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(fixture.endpoint(), &error)) << error;
    const PushResult result =
        client.push(bytes.data(), bytes.size(), false, 4096);
    EXPECT_TRUE(result.ok) << result.error;
}
