/**
 * @file
 * Real-time feasibility microbenchmarks (google-benchmark).
 *
 * EMPROF must keep up with the SDR stream: at a 160 MHz measurement
 * bandwidth the profiler consumes 160 Msamples/s of magnitude data,
 * and the synthesis chain used for experiments consumes one sample per
 * core cycle.  These benchmarks report samples/s for every streaming
 * stage.
 */

#include <benchmark/benchmark.h>

#include "dsp/fir.hpp"
#include "dsp/minmax_filter.hpp"
#include "dsp/moving_stats.hpp"
#include "dsp/rng.hpp"
#include "em/capture.hpp"
#include "profiler/profiler.hpp"

using namespace emprof;

namespace {

std::vector<float>
noisySignal(std::size_t n)
{
    std::vector<float> v(n);
    dsp::Rng rng(7);
    for (auto &x : v)
        x = static_cast<float>(1.0 + 0.1 * rng.uniform() -
                               ((rng.below(40) == 0) ? 0.8 : 0.0));
    return v;
}

void
BM_MovingMinMax(benchmark::State &state)
{
    const auto input = noisySignal(1 << 16);
    dsp::MovingMinMax mm(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        for (float x : input)
            mm.push(x);
        benchmark::DoNotOptimize(mm.min());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_MovingMinMax)->Arg(1024)->Arg(160'000);

template <typename T>
void
BM_MinMaxFilter(benchmark::State &state)
{
    const auto input = noisySignal(1 << 16);
    dsp::MinMaxFilter<T> mm(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        for (float x : input)
            mm.push(static_cast<T>(x));
        benchmark::DoNotOptimize(mm.min());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(input.size()));
}
BENCHMARK_TEMPLATE(BM_MinMaxFilter, float)->Arg(1024)->Arg(160'000);
BENCHMARK_TEMPLATE(BM_MinMaxFilter, double)->Arg(1024)->Arg(160'000);

void
BM_Normalizer(benchmark::State &state)
{
    const auto input = noisySignal(1 << 16);
    profiler::MovingMinMaxNormalizer norm(160'000);
    double acc = 0.0;
    for (auto _ : state) {
        for (float x : input)
            acc += norm.push(x);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Normalizer);

void
BM_FullEmprofPush(benchmark::State &state)
{
    const auto input = noisySignal(1 << 16);
    profiler::EmProfConfig cfg;
    cfg.sampleRateHz = 160e6;
    profiler::EmProf prof(cfg);
    for (auto _ : state) {
        for (float x : input)
            prof.push(x);
        benchmark::DoNotOptimize(prof.samplesSeen());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_FullEmprofPush);

void
BM_DecimatingFirComplex(benchmark::State &state)
{
    const auto factor = static_cast<std::size_t>(state.range(0));
    dsp::DecimatingFir<dsp::Complex> fir(
        dsp::designLowPass(63, 0.45 / static_cast<double>(factor)),
        factor);
    dsp::Complex out;
    for (auto _ : state) {
        for (int i = 0; i < (1 << 14); ++i) {
            if (fir.push({1.0f, 0.5f}, out))
                benchmark::DoNotOptimize(out);
        }
    }
    state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_DecimatingFirComplex)->Arg(6)->Arg(25)->Arg(50);

void
BM_ProbeChain(benchmark::State &state)
{
    em::ProbeChainConfig cfg;
    cfg.receiver.bandwidthHz = static_cast<double>(state.range(0)) * 1e6;
    em::ProbeChain chain(cfg, 1.008e9);
    dsp::Sample out;
    for (auto _ : state) {
        for (int i = 0; i < (1 << 14); ++i) {
            if (chain.push(0.7f, out))
                benchmark::DoNotOptimize(out);
        }
    }
    state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_ProbeChain)->Arg(20)->Arg(40)->Arg(160);

} // namespace

BENCHMARK_MAIN();
