/**
 * @file
 * Sec. V baseline — what `perf stat -e LLC-load-misses` reports for an
 * application engineered to generate exactly 1024 misses, versus
 * EMPROF on the same runs.
 *
 * The paper's measurement on the Olimex: perf reported an average of
 * 32768 misses with a standard deviation of 14543.  The model
 * reproduces both mechanisms behind that: counting of OS/profiling
 * activity (a real observer effect inside the simulator) and counter
 * multiplexing extrapolation (catastrophic for bursty miss streams).
 */

#include <cstdio>

#include "baseline/perf_model.hpp"
#include "common.hpp"
#include "dsp/series_ops.hpp"
#include "em/capture.hpp"
#include "profiler/marker.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

int
main()
{
    bench::printHeader(
        "Baseline: perf-style counting of 1024 engineered misses",
        "(counter multiplexing + OS observer effect vs EMPROF)");

    constexpr uint64_t kEngineered = 1024;
    auto device = devices::makeOlimex();

    std::vector<double> reported;
    double overhead_sum = 0.0;
    for (uint64_t run = 0; run < 12; ++run) {
        workloads::MicrobenchmarkConfig cfg;
        cfg.totalMisses = kEngineered;
        cfg.consecutiveMisses = 10;
        cfg.blankLoopIterations = 30'000;
        workloads::Microbenchmark mb(cfg);

        baseline::InterruptConfig int_cfg;
        int_cfg.seed ^= run;
        baseline::InterruptInjector injected(mb, int_cfg);

        auto sim_cfg = device.sim;
        sim_cfg.detailedGroundTruth = true;
        sim::Simulator simulator(sim_cfg);
        const auto result = simulator.run(injected);

        baseline::MultiplexConfig mux;
        reported.push_back(static_cast<double>(baseline::multiplexedCount(
            simulator.groundTruth(), result.cycles, mux, run)));
        overhead_sum += 100.0 *
                        static_cast<double>(injected.injectedOps()) /
                        static_cast<double>(injected.baseOps());
    }

    std::printf("  perf-style reports over %zu runs:\n",
                reported.size());
    std::printf("   ");
    for (double r : reported)
        std::printf(" %7.0f", r);
    std::printf("\n");
    std::printf("  mean %.0f, stddev %.0f  (paper: 32768 +/- 14543)\n",
                dsp::mean(reported), dsp::stddev(reported));
    std::printf("  injected profiling/OS activity: %.1f%% extra ops\n",
                overhead_sum / static_cast<double>(reported.size()));

    // EMPROF on the same device, zero interference.
    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = kEngineered;
    cfg.consecutiveMisses = 10;
    workloads::Microbenchmark mb(cfg);
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);
    const auto sections = profiler::findMarkerSections(cap.magnitude);
    const auto section = profiler::slice(cap.magnitude, sections.measured);
    const auto emprof_result =
        profiler::EmProf::analyze(section, bench::profilerFor(device));

    std::printf("\n  EMPROF (external, zero overhead): %llu of %llu "
                "(%.2f%% accuracy)\n",
                static_cast<unsigned long long>(
                    emprof_result.report.totalEvents),
                static_cast<unsigned long long>(kEngineered),
                bench::countAccuracy(
                    static_cast<double>(
                        emprof_result.report.totalEvents),
                    static_cast<double>(kEngineered)));
    return 0;
}
