/**
 * @file
 * Fig. 2 — (a) LLC-hit stalls vs. (b) LLC-miss stalls in the
 * simulator's power side-channel signal.
 *
 * Per Sec. III-B: a small load kernel runs twice, once with its array
 * sized to miss L1 but hit the LLC, once sized far beyond the LLC.
 * Both stall the core on use, but the miss stall is an order of
 * magnitude longer.
 */

#include <cstdio>

#include "common.hpp"
#include "dsp/moving_stats.hpp"
#include "sim/simulator.hpp"
#include "workloads/common.hpp"

using namespace emprof;

namespace {

/** Dependent-load kernel over a given footprint. */
class LoadKernel : public workloads::SegmentedWorkload
{
  public:
    LoadKernel(uint64_t footprint_bytes, uint64_t seed)
    {
        auto addrs = std::make_shared<workloads::RandomAddresses>(
            0x4000'0000, footprint_bytes, seed);
        addSegment("loads", 400, [addrs](auto &out, uint64_t) {
            workloads::Addr pc =
                workloads::emitCompute(out, 0x1000, 80, 0);
            pc = workloads::emitDependentLoad(out, pc, addrs->next(), 0);
            workloads::emitLoopBranch(out, pc, 0);
        });
    }
};

void
show(const char *title, uint64_t footprint, const sim::SimConfig &cfg)
{
    LoadKernel kernel(footprint, 0x5EED);
    sim::Simulator simulator(cfg);
    dsp::TimeSeries power;
    const auto result = simulator.runWithPowerTrace(kernel, power);

    // Display at the paper's 20-cycle (50 MHz @ 1 GHz) resolution.
    const auto smooth = dsp::movingAverage(power, 20);
    std::printf("\n%s\n", title);
    const std::size_t begin = power.samples.size() / 2;
    bench::asciiWave(smooth, begin,
                     std::min(begin + 4000, power.samples.size()), 9, 96,
                     true);
    const auto &gt = simulator.groundTruth();
    double avg_stall = 0.0;
    for (const auto &iv : gt.stallIntervals())
        avg_stall += static_cast<double>(iv.durationCycles());
    if (!gt.stallIntervals().empty())
        avg_stall /= static_cast<double>(gt.stallIntervals().size());
    std::printf("  LLC misses: %llu, L1D miss rate %.1f%%, "
                "avg miss-stall %.0f cycles, IPC %.2f\n",
                static_cast<unsigned long long>(result.rawLlcMisses),
                100.0 * result.l1dStats.missRate(), avg_stall,
                result.ipc());
}

} // namespace

int
main()
{
    bench::printHeader("Fig. 2: LLC-hit vs LLC-miss stalls (simulator)",
                       "(power trace shown at ~20-cycle resolution)");

    sim::SimConfig cfg = devices::makeOlimex().sim;
    cfg.memory.refreshEnabled = false;

    // (a) misses L1 (1 KiB scaled L1D such that a 4 KiB array spills)
    // but hits the 16 KiB scaled LLC: brief stalls only.
    show("(a) L1D miss / LLC hit — brief shallow stalls:", 4 * 1024,
         cfg);

    // (b) far beyond the LLC: every load reaches DRAM.
    show("(b) LLC miss — order-of-magnitude longer stalls:",
         8 * 1024 * 1024, cfg);
    return 0;
}
