/**
 * @file
 * Resilience-layer throughput: impairment injection cost and the
 * overhead of the signal-quality path relative to the classic
 * pipeline.
 *
 * Measures, on a synthetic memory-bound capture:
 *
 *   - applyImpairments() throughput for the mild and harsh presets,
 *   - streaming analysis with the resilience layer off vs. on,
 *   - 8-way parallel analysis with the layer off vs. on,
 *
 * and emits BENCH_impair.json so the overhead trajectory is tracked
 * across PRs (the disabled layer is budgeted at <= 5% slowdown; the
 * enabled layer is reported, not budgeted).
 *
 *   throughput_impair [--samples N] [--json PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/impairment.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"

using namespace emprof;

namespace {

dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len = rng.chance(0.01) ? 100 : 8 + rng.below(7);
        // Dips carry the same sensor noise as the busy level — an
        // exactly constant floor would (correctly) read as a
        // stuck-sample dropout to the quality classifier.
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] =
                0.2f + static_cast<float>(0.02 * (rng.uniform() - 0.5));
        pos += len + 40 + rng.below(120);
    }
    return s;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct Measurement
{
    std::string mode;
    double sec;
    double samplesPerSec;
};

} // namespace

int
main(int argc, char **argv)
{
    std::size_t total = 20'000'000;
    std::string json_path = "BENCH_impair.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc)
            total = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--samples N] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("synthesising %zu-sample capture...\n", total);
    const auto sig = syntheticCapture(total);

    std::vector<Measurement> runs;
    const auto time_run = [&](const std::string &mode, auto &&fn) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double sec = seconds(t0, t1);
        runs.push_back({mode, sec, static_cast<double>(total) / sec});
        std::printf("%-22s: %7.3f s  %8.1f Msamples/s\n", mode.c_str(),
                    sec, runs.back().samplesPerSec / 1e6);
        return sec;
    };

    // Injection throughput per preset.
    for (const char *preset : {"mild", "harsh"}) {
        dsp::ImpairmentSpec spec;
        if (!dsp::parseImpairmentSpec(preset, spec)) {
            std::fprintf(stderr, "preset %s failed to parse\n", preset);
            return 1;
        }
        auto copy = sig;
        time_run(std::string("impair ") + preset,
                 [&] { dsp::applyImpairments(copy, spec); });
    }

    profiler::EmProfConfig config;
    config.clockHz = 1e9;

    // Untimed warmup (first-touch page faults).
    (void)profiler::EmProf::analyze(sig, config);

    std::size_t events_off = 0, events_on = 0;
    const double stream_off = time_run("streaming off", [&] {
        events_off = profiler::EmProf::analyze(sig, config).events.size();
    });
    config.signal.enabled = true;
    const double stream_on = time_run("streaming resilient", [&] {
        events_on = profiler::EmProf::analyze(sig, config).events.size();
    });

    profiler::ParallelAnalyzerConfig pcfg;
    pcfg.threads = 8;
    config.signal.enabled = false;
    const double par_off = time_run("parallel x8 off", [&] {
        (void)profiler::analyzeParallel(sig, config, pcfg);
    });
    config.signal.enabled = true;
    const double par_on = time_run("parallel x8 resilient", [&] {
        (void)profiler::analyzeParallel(sig, config, pcfg);
    });

    std::printf("resilient overhead: streaming %.2fx, parallel %.2fx "
                "(%zu -> %zu events)\n",
                stream_on / stream_off, par_on / par_off, events_off,
                events_on);

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_impair\",\n"
                 "  \"samples\": %zu,\n"
                 "  \"sample_rate_hz\": 40000000.0,\n"
                 "  \"resilient_overhead_streaming\": %.4f,\n"
                 "  \"resilient_overhead_parallel\": %.4f,\n"
                 "  \"runs\": [\n",
                 total, stream_on / stream_off, par_on / par_off);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::fprintf(f,
                     "    {\"mode\": \"%s\", \"seconds\": %.6f, "
                     "\"samples_per_sec\": %.1f}%s\n",
                     r.mode.c_str(), r.sec, r.samplesPerSec,
                     i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
