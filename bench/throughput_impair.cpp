/**
 * @file
 * Resilience-layer throughput: impairment injection cost and the
 * overhead of the signal-quality path relative to the classic
 * pipeline.
 *
 * Measures, on a synthetic memory-bound capture (default 64 Mi
 * samples):
 *
 *   - applyImpairments() throughput for the mild and harsh presets,
 *   - streaming analysis with the resilience layer off vs. on,
 *   - 8-way parallel analysis with the layer off vs. on,
 *
 * and emits BENCH_impair.json so the overhead trajectory is tracked
 * across PRs.  The headline figure is the *streaming* overhead ratio
 * (streaming resilient / streaming off) — the key every prior
 * BENCH_impair.json carries, so the trajectory stays comparable.  The
 * parallel ratio is reported alongside; note it divides by the classic
 * batch kernel, so speeding the classic path up *raises* this ratio
 * even while resilient absolute throughput improves — compare the
 * per-mode samples_per_sec across PRs, not just the ratio.  Analysis
 * modes run an untimed warm-up and take the best of N timed runs,
 * with run-to-run variance in the JSON.
 *
 *   throughput_impair [--samples N] [--runs N] [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/impairment.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"

using namespace emprof;

namespace {

dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len = rng.chance(0.01) ? 100 : 8 + rng.below(7);
        // Dips carry the same sensor noise as the busy level — an
        // exactly constant floor would (correctly) read as a
        // stuck-sample dropout to the quality classifier.
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] =
                0.2f + static_cast<float>(0.02 * (rng.uniform() - 0.5));
        pos += len + 40 + rng.below(120);
    }
    return s;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct Measurement
{
    std::string mode;
    double bestSec;
    double variance; // (worst - best) / best over the timed runs
    double samplesPerSec;
};

} // namespace

int
main(int argc, char **argv)
{
    std::size_t total = std::size_t{1} << 26; // 64 Mi samples
    std::size_t timed_runs = 3;
    std::string json_path = "BENCH_impair.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc)
            total = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc)
            timed_runs = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::atoll(argv[++i])));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(
                stderr,
                "usage: %s [--samples N] [--runs N] [--json PATH]\n",
                argv[0]);
            return 2;
        }
    }

    std::printf("synthesising %zu-sample capture...\n", total);
    const auto sig = syntheticCapture(total);
    dsp::TimeSeries warm;
    warm.sampleRateHz = sig.sampleRateHz;
    warm.samples.assign(sig.samples.begin(),
                        sig.samples.begin() +
                            static_cast<std::ptrdiff_t>(total / 8));

    std::vector<Measurement> runs;
    // Best of N timed invocations of fn(); warmup() runs untimed first.
    const auto time_best = [&](const std::string &mode, auto &&warmup,
                               auto &&fn) {
        warmup();
        double best = 0.0, worst = 0.0;
        for (std::size_t r = 0; r < timed_runs; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            fn();
            const auto t1 = std::chrono::steady_clock::now();
            const double sec = seconds(t0, t1);
            if (r == 0 || sec < best)
                best = sec;
            if (r == 0 || sec > worst)
                worst = sec;
        }
        runs.push_back({mode, best, (worst - best) / best,
                        static_cast<double>(total) / best});
        std::printf("%-22s: %7.3f s  %8.1f Msamples/s  (+-%.1f%%)\n",
                    mode.c_str(), best, runs.back().samplesPerSec / 1e6,
                    runs.back().variance * 100.0);
        return best;
    };

    // Injection throughput per preset (fresh copy per run: the
    // injection mutates in place).
    for (const char *preset : {"mild", "harsh"}) {
        dsp::ImpairmentSpec spec;
        if (!dsp::parseImpairmentSpec(preset, spec)) {
            std::fprintf(stderr, "preset %s failed to parse\n", preset);
            return 1;
        }
        auto copy = sig;
        time_best(
            std::string("impair ") + preset,
            [&] {
                auto w = warm;
                dsp::applyImpairments(w, spec);
            },
            [&] {
                copy.samples = sig.samples;
                dsp::applyImpairments(copy, spec);
            });
    }

    profiler::EmProfConfig config;
    config.clockHz = 1e9;

    const double stream_off = time_best(
        "streaming off",
        [&] { (void)profiler::EmProf::analyze(warm, config); },
        [&] { (void)profiler::EmProf::analyze(sig, config); });
    config.signal.enabled = true;
    const double stream_on = time_best(
        "streaming resilient",
        [&] { (void)profiler::EmProf::analyze(warm, config); },
        [&] { (void)profiler::EmProf::analyze(sig, config); });

    profiler::ParallelAnalyzerConfig pcfg;
    pcfg.threads = 8;
    config.signal.enabled = false;
    const double par_off = time_best(
        "parallel x8 off",
        [&] { (void)profiler::analyzeParallel(warm, config, pcfg); },
        [&] { (void)profiler::analyzeParallel(sig, config, pcfg); });
    config.signal.enabled = true;
    const double par_on = time_best(
        "parallel x8 resilient",
        [&] { (void)profiler::analyzeParallel(warm, config, pcfg); },
        [&] { (void)profiler::analyzeParallel(sig, config, pcfg); });

    std::printf("resilient overhead: streaming %.2fx (headline), "
                "parallel %.2fx\n",
                stream_on / stream_off, par_on / par_off);

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_impair\",\n"
                 "  \"samples\": %zu,\n"
                 "  \"sample_rate_hz\": 40000000.0,\n"
                 "  \"timed_runs_per_mode\": %zu,\n"
                 "  \"resilient_overhead_streaming\": %.4f,\n"
                 "  \"resilient_overhead_parallel\": %.4f,\n"
                 "  \"runs\": [\n",
                 total, timed_runs, stream_on / stream_off,
                 par_on / par_off);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::fprintf(f,
                     "    {\"mode\": \"%s\", \"seconds\": %.6f, "
                     "\"samples_per_sec\": %.1f, "
                     "\"run_variance\": %.4f}%s\n",
                     r.mode.c_str(), r.bestSec, r.samplesPerSec,
                     r.variance, i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
