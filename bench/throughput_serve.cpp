/**
 * @file
 * Served-ingest throughput: an open-loop Poisson load generator
 * against an in-process emprof serve::Server on a unix socket.
 *
 *   throughput_serve [--devices N] [--rate R] [--samples-per-capture S]
 *                    [--client-threads K] [--server-threads T]
 *                    [--disconnect-rate P] [--json PATH]
 *                    [--chaos] [--hostile-rate P] [--p99-gate X]
 *                    [--fail-on-reject] [--fail-on-lost]
 *                    [--fail-on-silent-loss]
 *
 * Open-loop means the arrival schedule is drawn up front (exponential
 * inter-arrival gaps at R sessions/s, fixed seed) and never reacts to
 * completions: if the server falls behind, sessions start late and the
 * lateness lands in their measured latency — the honest fleet-scale
 * number, unlike closed-loop generators that politely wait.  Each
 * session is one full EMCAP upload (the same blob for every device)
 * pushed through the real client/EMFR/server/analysis path.
 *
 * --disconnect-rate P adds a second measured pass in which a fraction
 * P of sessions (chosen by a fixed-seed draw) have their connection
 * hard-closed once mid-upload and ride the resumable-push reconnect
 * path (DESIGN.md §15).  The pass reports resumed sessions, replayed
 * bytes, LOST sessions (dropped and never completed — the number this
 * PR exists to drive to zero) and its p99 as a ratio of the
 * no-disconnect baseline.  --fail-on-lost turns any lost session into
 * exit 1, which CI uses as the resume gate.
 *
 * --chaos adds a third measured pass against an overload-hardened
 * server (idle timeout + rate floor, DESIGN.md §17) in which a
 * fraction P (--hostile-rate, default 0.2) of sessions are HOSTILE,
 * cycling three behaviours: a slow-loris trickle (must be shed with a
 * typed error), a mid-upload stall (typed shed, then resumed to
 * completion), and an RST herd member (hard reset, then reconnect and
 * resume).  A hostile session with neither a typed error nor a
 * completed resume is a SILENT LOSS — the number this pass exists to
 * drive to zero (--fail-on-silent-loss gates it).  Well-behaved
 * sessions run unchanged; their reports are compared bit-for-bit
 * against an unloaded reference push, and only their latencies feed
 * the chaos p99, which --p99-gate X bounds to X times the baseline
 * p99 (exit 1 past it).
 *
 * Reported: sessions/s, p50/p99 session latency (scheduled arrival →
 * Report in hand), aggregate analysis throughput in Msamples/s, and
 * the rejected-session count.  Results go to stdout and to
 * machine-readable JSON (default BENCH_serve.json); --fail-on-reject
 * turns any rejected session into exit 1, which CI uses as the
 * serve-bench gate.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/capture_writer.hpp"

using namespace emprof;

namespace {

using Clock = std::chrono::steady_clock;

/** Same memory-bound synthetic signal the other throughput rigs use. */
dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len =
            rng.chance(0.01) ? 100 : 8 + rng.below(7);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 40 + rng.below(120);
    }
    return s;
}

/** Render the capture once; every device pushes the same bytes. */
std::vector<uint8_t>
captureBlob(std::size_t samples, std::string *error)
{
    const std::string path = "/tmp/emprof_bench_serve_" +
                             std::to_string(::getpid()) + ".emcap";
    store::WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1e9;
    opt.deviceName = "bench";
    std::vector<uint8_t> blob;
    if (!store::writeCapture(path, syntheticCapture(samples), opt,
                             nullptr, error))
        return blob;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
        char buf[1 << 16];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            blob.insert(blob.end(), buf, buf + got);
        std::fclose(f);
    }
    ::unlink(path.c_str());
    if (blob.empty() && error != nullptr)
        *error = "could not read back " + path;
    return blob;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** One measured open-loop pass against a fresh server. */
struct PassResult
{
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t dropped = 0; ///< sessions given an injected drop
    std::size_t lost = 0;    ///< dropped sessions that never finished
    uint64_t resumes = 0;
    uint64_t replayedBytes = 0;
    double wallS = 0.0;
    double p50Ms = 0.0; ///< well-behaved sessions only
    double p99Ms = 0.0;
    serve::ServerStats stats;

    // ---- chaos pass only ----
    std::size_t hostile = 0;       ///< sessions run hostile
    std::size_t hostileTyped = 0;  ///< got a typed Error frame
    std::size_t hostileResumed = 0; ///< completed via resume
    std::size_t hostileSilent = 0; ///< neither: a silent loss
    std::size_t reportMismatches = 0; ///< well-behaved not bit-exact
};

struct PassSetup
{
    const std::vector<uint8_t> *blob = nullptr;
    std::size_t devices = 0;
    std::size_t clientThreads = 0;
    std::size_t serverThreads = 0;
    const std::vector<double> *arrivalS = nullptr;
    double disconnectRate = 0.0; ///< fraction given one mid-upload drop

    /** Chaos pass: fraction of sessions run hostile against an
     *  overload-hardened server config (0 = plain pass). */
    double hostileRate = 0.0;
    /** Reference report text for the bit-identity check (chaos). */
    const std::string *referenceReport = nullptr;
};

/** Reconnect to a shed/reset hostile session and finish its upload
 *  from wherever the server's durable offset stands (a park that
 *  raced the reconnect degrades to Fresh-from-zero — still a
 *  completion, just a full replay). */
bool
resumeHostileToCompletion(const serve::Endpoint &ep,
                          const std::vector<uint8_t> &blob,
                          const serve::SessionId &id)
{
    serve::Client client;
    if (!client.connect(ep))
        return false;
    serve::OpenRequest open{};
    open.flags = serve::kOpenResume;
    std::memcpy(open.sessionId, id.data(), id.size());
    open.resumeFrom = serve::kResumeQuery;
    serve::SessionId echoed{};
    uint64_t offset = 0;
    serve::SessionState state = serve::SessionState::Fresh;
    if (!client.openSession(open, echoed, offset, state))
        return false;
    if (state == serve::SessionState::Complete)
        return client.finish().ok;
    if (offset > blob.size())
        return false;
    if (!client.sendData(blob.data() + offset, blob.size() - offset))
        return false;
    return client.finish().ok;
}

bool
runPass(const PassSetup &setup, const char *label, PassResult &out,
        std::string *error)
{
    const std::size_t devices = setup.devices;
    const std::string sock = "/tmp/emprof_bench_serve_" +
                             std::to_string(::getpid()) + "_" + label +
                             ".sock";

    serve::ServerConfig config;
    config.unixPath = sock;
    config.threads = setup.serverThreads;
    config.maxSessions = devices; // open-loop: never reply Busy
    if (setup.hostileRate > 0.0) {
        // The hardened config under test: hostile holders are shed
        // fast enough that well-behaved neighbours barely notice.
        config.idleTimeoutSeconds = 0.5;
        config.minRateBytesPerSec = 4096;
        config.minRateWindowSeconds = 0.5;
        config.sessionDeadlineSeconds = 60;
    }
    serve::Server server(std::move(config));
    if (!server.start(error))
        return false;

    // Which sessions lose their connection, drawn once up front with a
    // fixed seed so a run is reproducible.
    std::vector<uint8_t> drop(devices, 0);
    if (setup.disconnectRate > 0.0) {
        dsp::Rng rng(0xd15c);
        for (std::size_t i = 0; i < devices; ++i)
            drop[i] = rng.chance(setup.disconnectRate) ? 1 : 0;
    }

    // Which sessions misbehave (and how): a fixed-seed draw, cycling
    // the three hostile personalities.  0 = well-behaved.
    std::vector<uint8_t> hostile(devices, 0);
    if (setup.hostileRate > 0.0) {
        dsp::Rng rng(0xc4a0);
        std::size_t kind = 0;
        for (std::size_t i = 0; i < devices; ++i)
            if (rng.chance(setup.hostileRate))
                hostile[i] = static_cast<uint8_t>(1 + kind++ % 3);
    }

    std::vector<double> latency_ms(devices, 0.0);
    std::vector<uint8_t> ok(devices, 0);
    std::atomic<std::size_t> next{0};
    std::atomic<uint64_t> resumes{0};
    std::atomic<uint64_t> replayed{0};
    std::atomic<std::size_t> hostile_typed{0};
    std::atomic<std::size_t> hostile_resumed{0};
    std::atomic<std::size_t> hostile_silent{0};
    std::atomic<std::size_t> mismatches{0};
    const Clock::time_point start = Clock::now();

    auto worker = [&] {
        serve::Endpoint ep;
        ep.tcp = false;
        ep.unixPath = sock;
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= devices)
                return;
            const Clock::time_point due =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                (*setup.arrivalS)[i]));
            std::this_thread::sleep_until(due);
            if (hostile[i] != 0) {
                // A hostile session is accounted for when the server
                // either spoke a typed error or let it finish via
                // resume; anything else is a silent loss.
                serve::StallOptions stall;
                stall.giveUpAfterMs = 10000;
                if (hostile[i] == 1) { // slow-loris trickle
                    stall.trickleBytes = 64;
                    stall.trickleIntervalMs = 50;
                }
                else if (hostile[i] == 2) { // mid-upload stall
                    stall.headBytes =
                        1 + (i * 7919) % setup.blob->size();
                }
                else { // RST herd member
                    stall.headBytes =
                        1 + (i * 104729) % setup.blob->size();
                    stall.giveUpAfterMs = 200;
                    stall.resetOnExit = true;
                }
                const serve::HostileOutcome outcome =
                    serve::runHostileSession(ep, setup.blob->data(),
                                             setup.blob->size(),
                                             stall);
                bool accounted = false;
                if (outcome.typedError) {
                    hostile_typed.fetch_add(1);
                    accounted = true;
                }
                if (outcome.opened && hostile[i] != 1 &&
                    resumeHostileToCompletion(ep, *setup.blob,
                                              outcome.id)) {
                    hostile_resumed.fetch_add(1);
                    accounted = true;
                }
                if (!accounted)
                    hostile_silent.fetch_add(1);
                ok[i] = accounted ? 1 : 0;
                continue;
            }
            serve::Client client;
            serve::PushOptions options;
            // Small enough for several Data frames per session, so an
            // injected drop can land genuinely mid-upload.
            options.uploadChunkBytes = 16 * 1024;
            options.maxAttempts = 5;
            // The tool default (50 ms base) is sized for flaky WAN
            // links; against a local socket it would dominate the
            // dropped sessions' latency and measure the backoff
            // instead of the resume path.
            options.backoffBaseMs = 8;
            options.backoffMaxMs = 200;
            options.jitterSeed = 0x9e3779b9u + i;
            if (drop[i])
                options.simulateDropAfterBytes =
                    1 + (i * 7919) % setup.blob->size();
            const serve::PushResult result = client.pushResumable(
                ep, setup.blob->data(), setup.blob->size(), options);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - due)
                    .count();
            latency_ms[i] = ms;
            ok[i] = result.ok ? 1 : 0;
            resumes.fetch_add(result.resumes);
            replayed.fetch_add(result.replayedBytes);
            if (result.ok && setup.referenceReport != nullptr &&
                result.report.reportText != *setup.referenceReport)
                mismatches.fetch_add(1);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(setup.clientThreads);
    for (std::size_t i = 0; i < setup.clientThreads; ++i)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    out.wallS =
        std::chrono::duration<double>(Clock::now() - start).count();

    server.stop();
    out.stats = server.stats();

    std::vector<double> sorted;
    sorted.reserve(devices);
    for (std::size_t i = 0; i < devices; ++i) {
        if (drop[i])
            ++out.dropped;
        if (hostile[i] != 0) {
            // Hostile sessions never feed the latency distribution:
            // the p99 under chaos is the well-behaved experience.
            ++out.hostile;
            continue;
        }
        if (ok[i]) {
            ++out.completed;
            sorted.push_back(latency_ms[i]);
        } else if (drop[i]) {
            ++out.lost;
        }
    }
    std::sort(sorted.begin(), sorted.end());
    out.rejected = devices - out.hostile - out.completed;
    out.resumes = resumes.load();
    out.replayedBytes = replayed.load();
    out.hostileTyped = hostile_typed.load();
    out.hostileResumed = hostile_resumed.load();
    out.hostileSilent = hostile_silent.load();
    out.reportMismatches = mismatches.load();
    out.p50Ms = percentile(sorted, 50.0);
    out.p99Ms = percentile(sorted, 99.0);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t devices = 1000;
    std::size_t samples = 65536;
    double rate = 400.0; // sessions per second
    double disconnect_rate = 0.0;
    std::size_t client_threads = 16;
    std::size_t server_threads = 0;
    std::string json_path = "BENCH_serve.json";
    bool fail_on_reject = false;
    bool fail_on_lost = false;
    bool chaos = false;
    double hostile_rate = 0.2;
    double p99_gate = 0.0; // 0 = no gate
    bool fail_on_silent_loss = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--devices") && i + 1 < argc)
            devices = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--samples-per-capture") &&
                 i + 1 < argc)
            samples = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--rate") && i + 1 < argc)
            rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--disconnect-rate") &&
                 i + 1 < argc)
            disconnect_rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--client-threads") &&
                 i + 1 < argc)
            client_threads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--server-threads") &&
                 i + 1 < argc)
            server_threads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--fail-on-reject"))
            fail_on_reject = true;
        else if (!std::strcmp(argv[i], "--fail-on-lost"))
            fail_on_lost = true;
        else if (!std::strcmp(argv[i], "--chaos"))
            chaos = true;
        else if (!std::strcmp(argv[i], "--hostile-rate") && i + 1 < argc)
            hostile_rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--p99-gate") && i + 1 < argc)
            p99_gate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--fail-on-silent-loss"))
            fail_on_silent_loss = true;
        else {
            std::fprintf(
                stderr,
                "usage: %s [--devices N] [--rate R]\n"
                "          [--samples-per-capture S] "
                "[--client-threads K]\n"
                "          [--server-threads T] "
                "[--disconnect-rate P]\n"
                "          [--json PATH] [--chaos] "
                "[--hostile-rate P] [--p99-gate X]\n"
                "          [--fail-on-reject] [--fail-on-lost] "
                "[--fail-on-silent-loss]\n",
                argv[0]);
            return 2;
        }
    }
    if (devices == 0 || rate <= 0.0 || client_threads == 0 ||
        disconnect_rate < 0.0 || disconnect_rate > 1.0 ||
        hostile_rate < 0.0 || hostile_rate > 1.0) {
        std::fprintf(stderr, "nothing to do\n");
        return 2;
    }

    std::printf("synthesising %zu-sample capture blob...\n", samples);
    std::string error;
    const std::vector<uint8_t> blob = captureBlob(samples, &error);
    if (blob.empty()) {
        std::fprintf(stderr, "capture synthesis failed: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("blob: %zu bytes (%zu samples)\n", blob.size(),
                samples);

    // The arrival schedule, drawn before any session runs and never
    // adjusted afterwards: that independence is what makes the
    // generator open-loop.  Both passes replay the same schedule, so
    // their p99s differ only by the injected disconnects.
    std::vector<double> arrival_s(devices);
    {
        dsp::Rng rng(0x5e7e);
        double t = 0.0;
        for (std::size_t i = 0; i < devices; ++i) {
            t += -std::log(1.0 - rng.uniform()) / rate;
            arrival_s[i] = t;
        }
    }
    std::printf("%zu sessions over %.2f s (Poisson, %.0f/s), "
                "%zu client threads\n",
                devices, arrival_s.back(), rate, client_threads);

    // One unloaded reference push captures the report text every
    // well-behaved chaos session must reproduce bit-for-bit — overload
    // shedding is allowed to slow analysis down, never to change it.
    std::string reference_report_text;
    if (chaos) {
        const std::string ref_sock = "/tmp/emprof_bench_serve_" +
                                     std::to_string(::getpid()) +
                                     "_ref.sock";
        serve::ServerConfig ref_config;
        ref_config.unixPath = ref_sock;
        serve::Server ref_server(std::move(ref_config));
        if (!ref_server.start(&error)) {
            std::fprintf(stderr, "reference server failed: %s\n",
                         error.c_str());
            return 1;
        }
        serve::Endpoint ep;
        ep.tcp = false;
        ep.unixPath = ref_sock;
        serve::Client client;
        const serve::PushResult ref = client.pushResumable(
            ep, blob.data(), blob.size(), serve::PushOptions{});
        ref_server.stop();
        if (!ref.ok) {
            std::fprintf(stderr, "reference push failed: %s\n",
                         ref.error.c_str());
            return 1;
        }
        reference_report_text = ref.report.reportText;
    }

    PassSetup setup;
    setup.blob = &blob;
    setup.devices = devices;
    setup.clientThreads = client_threads;
    setup.serverThreads = server_threads;
    setup.arrivalS = &arrival_s;

    PassResult baseline;
    if (!runPass(setup, "base", baseline, &error)) {
        std::fprintf(stderr, "baseline pass failed: %s\n",
                     error.c_str());
        return 1;
    }

    PassResult drops;
    const bool ran_drops = disconnect_rate > 0.0;
    if (ran_drops) {
        std::printf("disconnect pass: dropping ~%.0f%% of sessions "
                    "once mid-upload...\n",
                    disconnect_rate * 100.0);
        setup.disconnectRate = disconnect_rate;
        if (!runPass(setup, "drop", drops, &error)) {
            std::fprintf(stderr, "disconnect pass failed: %s\n",
                         error.c_str());
            return 1;
        }
    }

    PassResult havoc;
    if (chaos) {
        std::printf("chaos pass: ~%.0f%% hostile sessions "
                    "(loris / stall / RST herd) against the hardened "
                    "config...\n",
                    hostile_rate * 100.0);
        setup.disconnectRate = 0.0;
        setup.hostileRate = hostile_rate;
        setup.referenceReport = &reference_report_text;
        // A hostile session pins its generator thread for the full
        // shed latency (up to a second against the hardened config).
        // The open-loop contract says the generator must never be the
        // bottleneck, so give the chaos pass one extra thread per
        // expected hostile session: a starved launch queue would bill
        // client-side waiting to the server's p99.
        setup.clientThreads =
            client_threads +
            static_cast<std::size_t>(
                std::ceil(static_cast<double>(devices) * hostile_rate));
        if (!runPass(setup, "chaos", havoc, &error)) {
            std::fprintf(stderr, "chaos pass failed: %s\n",
                         error.c_str());
            return 1;
        }
    }

    const double sessions_per_s =
        static_cast<double>(baseline.completed) / baseline.wallS;
    const double msamples_per_s =
        static_cast<double>(baseline.completed) *
        static_cast<double>(samples) / baseline.wallS / 1e6;
    const double p99_ratio =
        ran_drops && baseline.p99Ms > 0.0
            ? drops.p99Ms / baseline.p99Ms
            : 0.0;
    const double chaos_p99_ratio =
        chaos && baseline.p99Ms > 0.0 ? havoc.p99Ms / baseline.p99Ms
                                      : 0.0;

    std::printf("\n== served ingest ==\n");
    std::printf("sessions        %zu ok, %zu rejected (server: %llu "
                "completed, %llu rejected)\n",
                baseline.completed, baseline.rejected,
                static_cast<unsigned long long>(
                    baseline.stats.sessionsCompleted),
                static_cast<unsigned long long>(
                    baseline.stats.sessionsRejected));
    std::printf("wall            %.2f s\n", baseline.wallS);
    std::printf("throughput      %.1f sessions/s, %.1f Msamples/s\n",
                sessions_per_s, msamples_per_s);
    std::printf("latency         p50 %.2f ms, p99 %.2f ms\n",
                baseline.p50Ms, baseline.p99Ms);
    if (ran_drops) {
        std::printf("\n== disconnect pass (%.0f%% dropped once) ==\n",
                    disconnect_rate * 100.0);
        std::printf("sessions        %zu ok, %zu dropped, %zu LOST\n",
                    drops.completed, drops.dropped, drops.lost);
        std::printf("resume          %llu resumed session(s), %llu "
                    "bytes replayed (server: %llu parked, %llu "
                    "resumed)\n",
                    static_cast<unsigned long long>(drops.resumes),
                    static_cast<unsigned long long>(
                        drops.replayedBytes),
                    static_cast<unsigned long long>(
                        drops.stats.sessionsParked),
                    static_cast<unsigned long long>(
                        drops.stats.sessionsResumed));
        std::printf("latency         p50 %.2f ms, p99 %.2f ms "
                    "(%.2fx baseline p99)\n",
                    drops.p50Ms, drops.p99Ms, p99_ratio);
    }
    if (chaos) {
        std::printf("\n== chaos pass (%.0f%% hostile) ==\n",
                    hostile_rate * 100.0);
        std::printf("sessions        %zu well-behaved ok, %zu hostile\n",
                    havoc.completed, havoc.hostile);
        std::printf("hostile fate    %zu typed error, %zu resumed to "
                    "completion, %zu SILENT\n",
                    havoc.hostileTyped, havoc.hostileResumed,
                    havoc.hostileSilent);
        std::printf("report check    %zu mismatch(es) vs the unloaded "
                    "reference\n",
                    havoc.reportMismatches);
        std::printf("server          %llu shed, %llu timed out, %llu "
                    "RetryAfter, %llu aborted\n",
                    static_cast<unsigned long long>(
                        havoc.stats.sessionsShed),
                    static_cast<unsigned long long>(
                        havoc.stats.sessionsTimedOut),
                    static_cast<unsigned long long>(
                        havoc.stats.retryAfterSent),
                    static_cast<unsigned long long>(
                        havoc.stats.sessionsAborted));
        std::printf("latency         p50 %.2f ms, p99 %.2f ms "
                    "(%.2fx baseline p99, well-behaved only)\n",
                    havoc.p50Ms, havoc.p99Ms, chaos_p99_ratio);
    }

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"throughput_serve\",\n"
            "  \"devices\": %zu,\n"
            "  \"samples_per_capture\": %zu,\n"
            "  \"offered_rate_per_s\": %.1f,\n"
            "  \"completed\": %zu,\n"
            "  \"rejected\": %zu,\n"
            "  \"wall_s\": %.3f,\n"
            "  \"sessions_per_s\": %.2f,\n"
            "  \"msamples_per_s\": %.2f,\n"
            "  \"latency_p50_ms\": %.3f,\n"
            "  \"latency_p99_ms\": %.3f,\n"
            "  \"disconnect_rate\": %.3f,\n"
            "  \"dropped_sessions\": %zu,\n"
            "  \"lost_sessions\": %zu,\n"
            "  \"resumed_sessions\": %llu,\n"
            "  \"replayed_bytes\": %llu,\n"
            "  \"disconnect_latency_p50_ms\": %.3f,\n"
            "  \"disconnect_latency_p99_ms\": %.3f,\n"
            "  \"disconnect_p99_over_baseline\": %.3f,\n"
            "  \"chaos_hostile_rate\": %.3f,\n"
            "  \"chaos_hostile_sessions\": %zu,\n"
            "  \"chaos_typed_errors\": %zu,\n"
            "  \"chaos_resumed_to_completion\": %zu,\n"
            "  \"chaos_silent_losses\": %zu,\n"
            "  \"chaos_report_mismatches\": %zu,\n"
            "  \"chaos_latency_p50_ms\": %.3f,\n"
            "  \"chaos_latency_p99_ms\": %.3f,\n"
            "  \"chaos_p99_over_baseline\": %.3f\n"
            "}\n",
            devices, samples, rate, baseline.completed,
            baseline.rejected, baseline.wallS, sessions_per_s,
            msamples_per_s, baseline.p50Ms, baseline.p99Ms,
            disconnect_rate, drops.dropped, drops.lost,
            static_cast<unsigned long long>(drops.resumes),
            static_cast<unsigned long long>(drops.replayedBytes),
            drops.p50Ms, drops.p99Ms, p99_ratio,
            chaos ? hostile_rate : 0.0, havoc.hostile,
            havoc.hostileTyped, havoc.hostileResumed,
            havoc.hostileSilent, havoc.reportMismatches, havoc.p50Ms,
            havoc.p99Ms, chaos_p99_ratio);
        std::fclose(json);
        std::printf("wrote %s\n", json_path.c_str());
    }
    else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }

    if (fail_on_reject && baseline.rejected > 0) {
        std::fprintf(stderr,
                     "FAIL: %zu session(s) rejected under open-loop "
                     "load\n",
                     baseline.rejected);
        return 1;
    }
    if (fail_on_lost && ran_drops && drops.lost > 0) {
        std::fprintf(stderr,
                     "FAIL: %zu dropped session(s) never completed "
                     "(resume path lost them)\n",
                     drops.lost);
        return 1;
    }
    if (fail_on_silent_loss && chaos &&
        (havoc.hostileSilent > 0 || havoc.reportMismatches > 0)) {
        std::fprintf(stderr,
                     "FAIL: chaos pass saw %zu silent loss(es) and "
                     "%zu report mismatch(es); every hostile session "
                     "must get a typed error or complete via resume, "
                     "and every well-behaved report must match the "
                     "unloaded reference bit-for-bit\n",
                     havoc.hostileSilent, havoc.reportMismatches);
        return 1;
    }
    if (p99_gate > 0.0 && chaos && chaos_p99_ratio > p99_gate) {
        std::fprintf(stderr,
                     "FAIL: chaos p99 is %.2fx baseline (gate %.2fx); "
                     "hostile neighbours are bleeding into the "
                     "well-behaved tail\n",
                     chaos_p99_ratio, p99_gate);
        return 1;
    }
    return 0;
}
