/**
 * @file
 * Served-ingest throughput: an open-loop Poisson load generator
 * against an in-process emprof serve::Server on a unix socket.
 *
 *   throughput_serve [--devices N] [--rate R] [--samples-per-capture S]
 *                    [--client-threads K] [--server-threads T]
 *                    [--json PATH] [--fail-on-reject]
 *
 * Open-loop means the arrival schedule is drawn up front (exponential
 * inter-arrival gaps at R sessions/s, fixed seed) and never reacts to
 * completions: if the server falls behind, sessions start late and the
 * lateness lands in their measured latency — the honest fleet-scale
 * number, unlike closed-loop generators that politely wait.  Each
 * session is one full EMCAP upload (the same blob for every device)
 * pushed through the real client/EMFR/server/analysis path.
 *
 * Reported: sessions/s, p50/p99 session latency (scheduled arrival →
 * Report in hand), aggregate analysis throughput in Msamples/s, and
 * the rejected-session count.  Results go to stdout and to
 * machine-readable JSON (default BENCH_serve.json); --fail-on-reject
 * turns any rejected session into exit 1, which CI uses as the
 * serve-bench gate.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/capture_writer.hpp"

using namespace emprof;

namespace {

using Clock = std::chrono::steady_clock;

/** Same memory-bound synthetic signal the other throughput rigs use. */
dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len =
            rng.chance(0.01) ? 100 : 8 + rng.below(7);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 40 + rng.below(120);
    }
    return s;
}

/** Render the capture once; every device pushes the same bytes. */
std::vector<uint8_t>
captureBlob(std::size_t samples, std::string *error)
{
    const std::string path = "/tmp/emprof_bench_serve_" +
                             std::to_string(::getpid()) + ".emcap";
    store::WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1e9;
    opt.deviceName = "bench";
    std::vector<uint8_t> blob;
    if (!store::writeCapture(path, syntheticCapture(samples), opt,
                             nullptr, error))
        return blob;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
        char buf[1 << 16];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            blob.insert(blob.end(), buf, buf + got);
        std::fclose(f);
    }
    ::unlink(path.c_str());
    if (blob.empty() && error != nullptr)
        *error = "could not read back " + path;
    return blob;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t devices = 1000;
    std::size_t samples = 65536;
    double rate = 400.0; // sessions per second
    std::size_t client_threads = 16;
    std::size_t server_threads = 0;
    std::string json_path = "BENCH_serve.json";
    bool fail_on_reject = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--devices") && i + 1 < argc)
            devices = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--samples-per-capture") &&
                 i + 1 < argc)
            samples = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--rate") && i + 1 < argc)
            rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--client-threads") &&
                 i + 1 < argc)
            client_threads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--server-threads") &&
                 i + 1 < argc)
            server_threads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--fail-on-reject"))
            fail_on_reject = true;
        else {
            std::fprintf(
                stderr,
                "usage: %s [--devices N] [--rate R]\n"
                "          [--samples-per-capture S] "
                "[--client-threads K]\n"
                "          [--server-threads T] [--json PATH] "
                "[--fail-on-reject]\n",
                argv[0]);
            return 2;
        }
    }
    if (devices == 0 || rate <= 0.0 || client_threads == 0) {
        std::fprintf(stderr, "nothing to do\n");
        return 2;
    }

    std::printf("synthesising %zu-sample capture blob...\n", samples);
    std::string error;
    const std::vector<uint8_t> blob = captureBlob(samples, &error);
    if (blob.empty()) {
        std::fprintf(stderr, "capture synthesis failed: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("blob: %zu bytes (%zu samples)\n", blob.size(),
                samples);

    serve::ServerConfig config;
    config.unixPath = "/tmp/emprof_bench_serve_" +
                      std::to_string(::getpid()) + ".sock";
    config.threads = server_threads;
    config.maxSessions = devices; // open-loop: never reply Busy
    serve::Server server(std::move(config));
    if (!server.start(&error)) {
        std::fprintf(stderr, "server start failed: %s\n",
                     error.c_str());
        return 1;
    }

    // The arrival schedule, drawn before any session runs and never
    // adjusted afterwards: that independence is what makes the
    // generator open-loop.
    std::vector<double> arrival_s(devices);
    {
        dsp::Rng rng(0x5e7e);
        double t = 0.0;
        for (std::size_t i = 0; i < devices; ++i) {
            t += -std::log(1.0 - rng.uniform()) / rate;
            arrival_s[i] = t;
        }
    }
    std::printf("%zu sessions over %.2f s (Poisson, %.0f/s), "
                "%zu client threads\n",
                devices, arrival_s.back(), rate, client_threads);

    std::vector<double> latency_ms(devices, 0.0);
    std::vector<uint8_t> ok(devices, 0);
    std::atomic<std::size_t> next{0};
    const Clock::time_point start = Clock::now();

    auto worker = [&] {
        serve::Endpoint ep;
        ep.tcp = false;
        ep.unixPath = "/tmp/emprof_bench_serve_" +
                      std::to_string(::getpid()) + ".sock";
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= devices)
                return;
            const Clock::time_point due =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                arrival_s[i]));
            std::this_thread::sleep_until(due);
            serve::Client client;
            std::string why;
            if (!client.connect(ep, &why)) {
                ok[i] = 0;
                continue;
            }
            const serve::PushResult result =
                client.push(blob.data(), blob.size(), false,
                            256 * 1024);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - due)
                    .count();
            latency_ms[i] = ms;
            ok[i] = result.ok ? 1 : 0;
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(client_threads);
    for (std::size_t i = 0; i < client_threads; ++i)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    server.stop();
    const serve::ServerStats stats = server.stats();

    std::size_t completed = 0;
    std::vector<double> sorted;
    sorted.reserve(devices);
    for (std::size_t i = 0; i < devices; ++i)
        if (ok[i]) {
            ++completed;
            sorted.push_back(latency_ms[i]);
        }
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rejected = devices - completed;

    const double sessions_per_s =
        static_cast<double>(completed) / wall_s;
    const double msamples_per_s =
        static_cast<double>(completed) *
        static_cast<double>(samples) / wall_s / 1e6;
    const double p50 = percentile(sorted, 50.0);
    const double p99 = percentile(sorted, 99.0);

    std::printf("\n== served ingest ==\n");
    std::printf("sessions        %zu ok, %zu rejected (server: %llu "
                "completed, %llu rejected)\n",
                completed, rejected,
                static_cast<unsigned long long>(
                    stats.sessionsCompleted),
                static_cast<unsigned long long>(
                    stats.sessionsRejected));
    std::printf("wall            %.2f s\n", wall_s);
    std::printf("throughput      %.1f sessions/s, %.1f Msamples/s\n",
                sessions_per_s, msamples_per_s);
    std::printf("latency         p50 %.2f ms, p99 %.2f ms\n", p50,
                p99);

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"throughput_serve\",\n"
            "  \"devices\": %zu,\n"
            "  \"samples_per_capture\": %zu,\n"
            "  \"offered_rate_per_s\": %.1f,\n"
            "  \"completed\": %zu,\n"
            "  \"rejected\": %zu,\n"
            "  \"wall_s\": %.3f,\n"
            "  \"sessions_per_s\": %.2f,\n"
            "  \"msamples_per_s\": %.2f,\n"
            "  \"latency_p50_ms\": %.3f,\n"
            "  \"latency_p99_ms\": %.3f\n"
            "}\n",
            devices, samples, rate, completed, rejected, wall_s,
            sessions_per_s, msamples_per_s, p50, p99);
        std::fclose(json);
        std::printf("wrote %s\n", json_path.c_str());
    }
    else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }

    if (fail_on_reject && rejected > 0) {
        std::fprintf(stderr,
                     "FAIL: %zu session(s) rejected under open-loop "
                     "load\n",
                     rejected);
        return 1;
    }
    return 0;
}
