/**
 * @file
 * Served-ingest throughput: an open-loop Poisson load generator
 * against an in-process emprof serve::Server on a unix socket.
 *
 *   throughput_serve [--devices N] [--rate R] [--samples-per-capture S]
 *                    [--client-threads K] [--server-threads T]
 *                    [--disconnect-rate P] [--json PATH]
 *                    [--fail-on-reject] [--fail-on-lost]
 *
 * Open-loop means the arrival schedule is drawn up front (exponential
 * inter-arrival gaps at R sessions/s, fixed seed) and never reacts to
 * completions: if the server falls behind, sessions start late and the
 * lateness lands in their measured latency — the honest fleet-scale
 * number, unlike closed-loop generators that politely wait.  Each
 * session is one full EMCAP upload (the same blob for every device)
 * pushed through the real client/EMFR/server/analysis path.
 *
 * --disconnect-rate P adds a second measured pass in which a fraction
 * P of sessions (chosen by a fixed-seed draw) have their connection
 * hard-closed once mid-upload and ride the resumable-push reconnect
 * path (DESIGN.md §15).  The pass reports resumed sessions, replayed
 * bytes, LOST sessions (dropped and never completed — the number this
 * PR exists to drive to zero) and its p99 as a ratio of the
 * no-disconnect baseline.  --fail-on-lost turns any lost session into
 * exit 1, which CI uses as the resume gate.
 *
 * Reported: sessions/s, p50/p99 session latency (scheduled arrival →
 * Report in hand), aggregate analysis throughput in Msamples/s, and
 * the rejected-session count.  Results go to stdout and to
 * machine-readable JSON (default BENCH_serve.json); --fail-on-reject
 * turns any rejected session into exit 1, which CI uses as the
 * serve-bench gate.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/capture_writer.hpp"

using namespace emprof;

namespace {

using Clock = std::chrono::steady_clock;

/** Same memory-bound synthetic signal the other throughput rigs use. */
dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len =
            rng.chance(0.01) ? 100 : 8 + rng.below(7);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 40 + rng.below(120);
    }
    return s;
}

/** Render the capture once; every device pushes the same bytes. */
std::vector<uint8_t>
captureBlob(std::size_t samples, std::string *error)
{
    const std::string path = "/tmp/emprof_bench_serve_" +
                             std::to_string(::getpid()) + ".emcap";
    store::WriterOptions opt;
    opt.sampleRateHz = 40e6;
    opt.clockHz = 1e9;
    opt.deviceName = "bench";
    std::vector<uint8_t> blob;
    if (!store::writeCapture(path, syntheticCapture(samples), opt,
                             nullptr, error))
        return blob;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
        char buf[1 << 16];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            blob.insert(blob.end(), buf, buf + got);
        std::fclose(f);
    }
    ::unlink(path.c_str());
    if (blob.empty() && error != nullptr)
        *error = "could not read back " + path;
    return blob;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** One measured open-loop pass against a fresh server. */
struct PassResult
{
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t dropped = 0; ///< sessions given an injected drop
    std::size_t lost = 0;    ///< dropped sessions that never finished
    uint64_t resumes = 0;
    uint64_t replayedBytes = 0;
    double wallS = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    serve::ServerStats stats;
};

struct PassSetup
{
    const std::vector<uint8_t> *blob = nullptr;
    std::size_t devices = 0;
    std::size_t clientThreads = 0;
    std::size_t serverThreads = 0;
    const std::vector<double> *arrivalS = nullptr;
    double disconnectRate = 0.0; ///< fraction given one mid-upload drop
};

bool
runPass(const PassSetup &setup, const char *label, PassResult &out,
        std::string *error)
{
    const std::size_t devices = setup.devices;
    const std::string sock = "/tmp/emprof_bench_serve_" +
                             std::to_string(::getpid()) + "_" + label +
                             ".sock";

    serve::ServerConfig config;
    config.unixPath = sock;
    config.threads = setup.serverThreads;
    config.maxSessions = devices; // open-loop: never reply Busy
    serve::Server server(std::move(config));
    if (!server.start(error))
        return false;

    // Which sessions lose their connection, drawn once up front with a
    // fixed seed so a run is reproducible.
    std::vector<uint8_t> drop(devices, 0);
    if (setup.disconnectRate > 0.0) {
        dsp::Rng rng(0xd15c);
        for (std::size_t i = 0; i < devices; ++i)
            drop[i] = rng.chance(setup.disconnectRate) ? 1 : 0;
    }

    std::vector<double> latency_ms(devices, 0.0);
    std::vector<uint8_t> ok(devices, 0);
    std::atomic<std::size_t> next{0};
    std::atomic<uint64_t> resumes{0};
    std::atomic<uint64_t> replayed{0};
    const Clock::time_point start = Clock::now();

    auto worker = [&] {
        serve::Endpoint ep;
        ep.tcp = false;
        ep.unixPath = sock;
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= devices)
                return;
            const Clock::time_point due =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                (*setup.arrivalS)[i]));
            std::this_thread::sleep_until(due);
            serve::Client client;
            serve::PushOptions options;
            // Small enough for several Data frames per session, so an
            // injected drop can land genuinely mid-upload.
            options.uploadChunkBytes = 16 * 1024;
            options.maxAttempts = 5;
            // The tool default (50 ms base) is sized for flaky WAN
            // links; against a local socket it would dominate the
            // dropped sessions' latency and measure the backoff
            // instead of the resume path.
            options.backoffBaseMs = 8;
            options.backoffMaxMs = 200;
            options.jitterSeed = 0x9e3779b9u + i;
            if (drop[i])
                options.simulateDropAfterBytes =
                    1 + (i * 7919) % setup.blob->size();
            const serve::PushResult result = client.pushResumable(
                ep, setup.blob->data(), setup.blob->size(), options);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - due)
                    .count();
            latency_ms[i] = ms;
            ok[i] = result.ok ? 1 : 0;
            resumes.fetch_add(result.resumes);
            replayed.fetch_add(result.replayedBytes);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(setup.clientThreads);
    for (std::size_t i = 0; i < setup.clientThreads; ++i)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    out.wallS =
        std::chrono::duration<double>(Clock::now() - start).count();

    server.stop();
    out.stats = server.stats();

    std::vector<double> sorted;
    sorted.reserve(devices);
    for (std::size_t i = 0; i < devices; ++i) {
        if (drop[i])
            ++out.dropped;
        if (ok[i]) {
            ++out.completed;
            sorted.push_back(latency_ms[i]);
        } else if (drop[i]) {
            ++out.lost;
        }
    }
    std::sort(sorted.begin(), sorted.end());
    out.rejected = devices - out.completed;
    out.resumes = resumes.load();
    out.replayedBytes = replayed.load();
    out.p50Ms = percentile(sorted, 50.0);
    out.p99Ms = percentile(sorted, 99.0);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t devices = 1000;
    std::size_t samples = 65536;
    double rate = 400.0; // sessions per second
    double disconnect_rate = 0.0;
    std::size_t client_threads = 16;
    std::size_t server_threads = 0;
    std::string json_path = "BENCH_serve.json";
    bool fail_on_reject = false;
    bool fail_on_lost = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--devices") && i + 1 < argc)
            devices = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--samples-per-capture") &&
                 i + 1 < argc)
            samples = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--rate") && i + 1 < argc)
            rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--disconnect-rate") &&
                 i + 1 < argc)
            disconnect_rate = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--client-threads") &&
                 i + 1 < argc)
            client_threads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--server-threads") &&
                 i + 1 < argc)
            server_threads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--fail-on-reject"))
            fail_on_reject = true;
        else if (!std::strcmp(argv[i], "--fail-on-lost"))
            fail_on_lost = true;
        else {
            std::fprintf(
                stderr,
                "usage: %s [--devices N] [--rate R]\n"
                "          [--samples-per-capture S] "
                "[--client-threads K]\n"
                "          [--server-threads T] "
                "[--disconnect-rate P]\n"
                "          [--json PATH] [--fail-on-reject] "
                "[--fail-on-lost]\n",
                argv[0]);
            return 2;
        }
    }
    if (devices == 0 || rate <= 0.0 || client_threads == 0 ||
        disconnect_rate < 0.0 || disconnect_rate > 1.0) {
        std::fprintf(stderr, "nothing to do\n");
        return 2;
    }

    std::printf("synthesising %zu-sample capture blob...\n", samples);
    std::string error;
    const std::vector<uint8_t> blob = captureBlob(samples, &error);
    if (blob.empty()) {
        std::fprintf(stderr, "capture synthesis failed: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("blob: %zu bytes (%zu samples)\n", blob.size(),
                samples);

    // The arrival schedule, drawn before any session runs and never
    // adjusted afterwards: that independence is what makes the
    // generator open-loop.  Both passes replay the same schedule, so
    // their p99s differ only by the injected disconnects.
    std::vector<double> arrival_s(devices);
    {
        dsp::Rng rng(0x5e7e);
        double t = 0.0;
        for (std::size_t i = 0; i < devices; ++i) {
            t += -std::log(1.0 - rng.uniform()) / rate;
            arrival_s[i] = t;
        }
    }
    std::printf("%zu sessions over %.2f s (Poisson, %.0f/s), "
                "%zu client threads\n",
                devices, arrival_s.back(), rate, client_threads);

    PassSetup setup;
    setup.blob = &blob;
    setup.devices = devices;
    setup.clientThreads = client_threads;
    setup.serverThreads = server_threads;
    setup.arrivalS = &arrival_s;

    PassResult baseline;
    if (!runPass(setup, "base", baseline, &error)) {
        std::fprintf(stderr, "baseline pass failed: %s\n",
                     error.c_str());
        return 1;
    }

    PassResult drops;
    const bool ran_drops = disconnect_rate > 0.0;
    if (ran_drops) {
        std::printf("disconnect pass: dropping ~%.0f%% of sessions "
                    "once mid-upload...\n",
                    disconnect_rate * 100.0);
        setup.disconnectRate = disconnect_rate;
        if (!runPass(setup, "drop", drops, &error)) {
            std::fprintf(stderr, "disconnect pass failed: %s\n",
                         error.c_str());
            return 1;
        }
    }

    const double sessions_per_s =
        static_cast<double>(baseline.completed) / baseline.wallS;
    const double msamples_per_s =
        static_cast<double>(baseline.completed) *
        static_cast<double>(samples) / baseline.wallS / 1e6;
    const double p99_ratio =
        ran_drops && baseline.p99Ms > 0.0
            ? drops.p99Ms / baseline.p99Ms
            : 0.0;

    std::printf("\n== served ingest ==\n");
    std::printf("sessions        %zu ok, %zu rejected (server: %llu "
                "completed, %llu rejected)\n",
                baseline.completed, baseline.rejected,
                static_cast<unsigned long long>(
                    baseline.stats.sessionsCompleted),
                static_cast<unsigned long long>(
                    baseline.stats.sessionsRejected));
    std::printf("wall            %.2f s\n", baseline.wallS);
    std::printf("throughput      %.1f sessions/s, %.1f Msamples/s\n",
                sessions_per_s, msamples_per_s);
    std::printf("latency         p50 %.2f ms, p99 %.2f ms\n",
                baseline.p50Ms, baseline.p99Ms);
    if (ran_drops) {
        std::printf("\n== disconnect pass (%.0f%% dropped once) ==\n",
                    disconnect_rate * 100.0);
        std::printf("sessions        %zu ok, %zu dropped, %zu LOST\n",
                    drops.completed, drops.dropped, drops.lost);
        std::printf("resume          %llu resumed session(s), %llu "
                    "bytes replayed (server: %llu parked, %llu "
                    "resumed)\n",
                    static_cast<unsigned long long>(drops.resumes),
                    static_cast<unsigned long long>(
                        drops.replayedBytes),
                    static_cast<unsigned long long>(
                        drops.stats.sessionsParked),
                    static_cast<unsigned long long>(
                        drops.stats.sessionsResumed));
        std::printf("latency         p50 %.2f ms, p99 %.2f ms "
                    "(%.2fx baseline p99)\n",
                    drops.p50Ms, drops.p99Ms, p99_ratio);
    }

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"throughput_serve\",\n"
            "  \"devices\": %zu,\n"
            "  \"samples_per_capture\": %zu,\n"
            "  \"offered_rate_per_s\": %.1f,\n"
            "  \"completed\": %zu,\n"
            "  \"rejected\": %zu,\n"
            "  \"wall_s\": %.3f,\n"
            "  \"sessions_per_s\": %.2f,\n"
            "  \"msamples_per_s\": %.2f,\n"
            "  \"latency_p50_ms\": %.3f,\n"
            "  \"latency_p99_ms\": %.3f,\n"
            "  \"disconnect_rate\": %.3f,\n"
            "  \"dropped_sessions\": %zu,\n"
            "  \"lost_sessions\": %zu,\n"
            "  \"resumed_sessions\": %llu,\n"
            "  \"replayed_bytes\": %llu,\n"
            "  \"disconnect_latency_p50_ms\": %.3f,\n"
            "  \"disconnect_latency_p99_ms\": %.3f,\n"
            "  \"disconnect_p99_over_baseline\": %.3f\n"
            "}\n",
            devices, samples, rate, baseline.completed,
            baseline.rejected, baseline.wallS, sessions_per_s,
            msamples_per_s, baseline.p50Ms, baseline.p99Ms,
            disconnect_rate, drops.dropped, drops.lost,
            static_cast<unsigned long long>(drops.resumes),
            static_cast<unsigned long long>(drops.replayedBytes),
            drops.p50Ms, drops.p99Ms, p99_ratio);
        std::fclose(json);
        std::printf("wrote %s\n", json_path.c_str());
    }
    else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }

    if (fail_on_reject && baseline.rejected > 0) {
        std::fprintf(stderr,
                     "FAIL: %zu session(s) rejected under open-loop "
                     "load\n",
                     baseline.rejected);
        return 1;
    }
    if (fail_on_lost && ran_drops && drops.lost > 0) {
        std::fprintf(stderr,
                     "FAIL: %zu dropped session(s) never completed "
                     "(resume path lost them)\n",
                     drops.lost);
        return 1;
    }
    return 0;
}
