/**
 * @file
 * EMCAP store throughput: encode and decode rates plus compression
 * ratio for each codec mode, on the same synthetic memory-bound
 * capture throughput_pipeline uses.  Results go to stdout and to
 * machine-readable JSON (default BENCH_store.json) so the container's
 * perf trajectory is tracked across PRs alongside the analysis
 * pipeline numbers.
 *
 *   throughput_store [--samples N] [--json PATH]
 *
 * Rates are reported in MB/s of *raw f32 signal* moved through the
 * codec (i.e. the number an operator cares about: how fast can a
 * 40 MHz * 4 B/s capture stream be packed and unpacked), and each mode
 * verifies its round-trip before publishing a number.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

using namespace emprof;

namespace {

dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len =
            rng.chance(0.01) ? 100 : 8 + rng.below(7);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 40 + rng.below(120);
    }
    return s;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct Mode
{
    const char *name;
    store::SampleCodec codec;
    unsigned quantBits;
    bool compress;
};

struct Measurement
{
    const char *mode;
    double encodeMBs;
    double decodeMBs;
    double ratio;
    double maxAbsError;
    uint64_t fileBytes;
};

} // namespace

int
main(int argc, char **argv)
{
    std::size_t total = 8'000'000;
    std::string json_path = "BENCH_store.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc)
            total = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--samples N] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("synthesising %zu-sample capture...\n", total);
    const auto sig = syntheticCapture(total);
    const double raw_mb =
        static_cast<double>(total) * sizeof(float) / 1e6;

    const Mode modes[] = {
        {"f32_packed", store::SampleCodec::F32, 0, true},
        {"f32_raw", store::SampleCodec::F32, 0, false},
        {"i16_packed", store::SampleCodec::QuantI16, 16, true},
        {"i16_raw", store::SampleCodec::QuantI16, 16, false},
        {"i12_packed", store::SampleCodec::QuantI16, 12, true},
    };

    std::vector<Measurement> runs;
    bool ok = true;
    for (const Mode &mode : modes) {
        store::WriterOptions opt;
        opt.sampleRateHz = sig.sampleRateHz;
        opt.clockHz = 1e9;
        opt.deviceName = "bench";
        opt.codec = mode.codec;
        opt.quantBits = mode.quantBits;
        opt.compress = mode.compress;

        const std::string path =
            std::string("bench_store_") + mode.name + ".emcap";

        auto t0 = std::chrono::steady_clock::now();
        store::WriterStats stats;
        if (!store::writeCapture(path, sig, opt, &stats)) {
            std::fprintf(stderr, "%s: write failed\n", mode.name);
            return 1;
        }
        auto t1 = std::chrono::steady_clock::now();
        const double enc_sec = seconds(t0, t1);

        store::CaptureReader reader;
        std::string error;
        dsp::TimeSeries loaded;
        t0 = std::chrono::steady_clock::now();
        if (!reader.open(path, &error) ||
            !reader.readAll(loaded, &error)) {
            std::fprintf(stderr, "%s: read failed: %s\n", mode.name,
                         error.c_str());
            return 1;
        }
        t1 = std::chrono::steady_clock::now();
        const double dec_sec = seconds(t0, t1);

        // Publish no number for a codec that does not round-trip.
        double max_err = 0.0;
        if (loaded.samples.size() != sig.samples.size()) {
            std::fprintf(stderr, "%s: sample count mismatch\n",
                         mode.name);
            ok = false;
        } else {
            for (std::size_t i = 0; i < total; ++i)
                max_err = std::max(
                    max_err,
                    std::fabs(static_cast<double>(loaded.samples[i]) -
                              static_cast<double>(sig.samples[i])));
            if (mode.codec == store::SampleCodec::F32 && max_err != 0.0) {
                std::fprintf(stderr, "%s: lossless mode lost bits\n",
                             mode.name);
                ok = false;
            }
        }

        runs.push_back({mode.name, raw_mb / enc_sec, raw_mb / dec_sec,
                        stats.compressionRatio(), max_err,
                        stats.fileBytes});
        std::printf("%-11s: encode %7.1f MB/s  decode %7.1f MB/s  "
                    "%5.2fx  max-err %.2e\n",
                    mode.name, runs.back().encodeMBs,
                    runs.back().decodeMBs, runs.back().ratio, max_err);
        std::remove(path.c_str());
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_store\",\n"
                 "  \"samples\": %zu,\n"
                 "  \"raw_mb\": %.1f,\n"
                 "  \"ok\": %s,\n"
                 "  \"runs\": [\n",
                 total, raw_mb, ok ? "true" : "false");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::fprintf(f,
                     "    {\"mode\": \"%s\", "
                     "\"encode_mb_per_sec\": %.1f, "
                     "\"decode_mb_per_sec\": %.1f, "
                     "\"compression_ratio\": %.3f, "
                     "\"max_abs_error\": %.3e, "
                     "\"file_bytes\": %llu}%s\n",
                     r.mode, r.encodeMBs, r.decodeMBs, r.ratio,
                     r.maxAbsError,
                     static_cast<unsigned long long>(r.fileBytes),
                     i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return ok ? 0 : 1;
}
