/**
 * @file
 * Table I — specifications of the experimental devices, plus the
 * scaled-model parameters actually used by the simulator (DESIGN.md).
 */

#include <cstdio>

#include "common.hpp"

int
main()
{
    using namespace emprof;
    bench::printHeader("Table I: specifications of experimental devices");
    const auto devices = devices::allDevices();
    std::printf("%s", devices::deviceTable(devices).c_str());

    std::printf("\nSimulation model details (capacities scaled 1/%llu, "
                "see DESIGN.md):\n",
                static_cast<unsigned long long>(devices::kCacheScale));
    std::printf("  %-10s %10s %10s %10s %12s %10s\n", "Device", "L1I",
                "L1D(model)", "LLC(model)", "DRAM lat", "Prefetch");
    for (const auto &d : devices) {
        std::printf("  %-10s %7llu KB %7llu KB %7llu KB %7u cyc %10s\n",
                    d.name.c_str(),
                    static_cast<unsigned long long>(
                        d.sim.l1i.sizeBytes / 1024),
                    static_cast<unsigned long long>(
                        d.sim.l1d.sizeBytes / 1024),
                    static_cast<unsigned long long>(
                        d.sim.llc.sizeBytes / 1024),
                    d.sim.memory.accessLatency,
                    d.sim.prefetcher.enabled ? "stride" : "none");
    }
    return 0;
}
