/**
 * @file
 * Table II — accuracy of EMPROF's LLC miss counting for the Fig. 6
 * microbenchmark on the three devices, through the full EM chain.
 *
 * Methodology per Sec. V-B: the marker loops isolate the measured
 * section in the received signal; EMPROF's event count over that
 * section is compared to the a-priori-known TM.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/marker.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

namespace {

struct BenchPoint
{
    uint64_t tm;
    uint64_t cm;
};

double
runOne(const devices::DeviceModel &device, const BenchPoint &point)
{
    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = point.tm;
    cfg.consecutiveMisses = point.cm;
    workloads::Microbenchmark mb(cfg);

    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);

    const auto sections = profiler::findMarkerSections(cap.magnitude);
    if (sections.measured.empty())
        return 0.0;
    const auto section = profiler::slice(cap.magnitude, sections.measured);
    const auto result =
        profiler::EmProf::analyze(section, bench::profilerFor(device));
    return bench::countAccuracy(
        static_cast<double>(result.report.totalEvents),
        static_cast<double>(point.tm));
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table II: accuracy of EMPROF for microbenchmarks",
        "(measured section isolated via marker loops, full EM chain)");

    const BenchPoint points[] = {{256, 1}, {256, 5}, {1024, 10},
                                 {4096, 50}};
    const auto devices = devices::allDevices();

    std::printf("  %6s %6s |", "#TM", "#CM");
    for (const auto &d : devices)
        std::printf(" %9s", d.name.c_str());
    std::printf("\n  ---------------+------------------------------\n");

    double sum = 0.0;
    int n = 0;
    for (const auto &point : points) {
        std::printf("  %6llu %6llu |",
                    static_cast<unsigned long long>(point.tm),
                    static_cast<unsigned long long>(point.cm));
        for (const auto &device : devices) {
            const double acc = runOne(device, point);
            sum += acc;
            ++n;
            std::printf(" %8.2f%%", acc);
        }
        std::printf("\n");
    }
    std::printf("\n  average accuracy: %.2f%%  (paper: 99.52%%)\n",
                sum / n);
    return 0;
}
