/**
 * @file
 * Table IV — total LLC misses and miss latency (% of execution time)
 * reported by EMPROF for every workload on all three devices, through
 * the full EM chain.
 *
 * Shape expectations vs. the paper (Sec. VI-A): Alcatel's 1 MiB LLC
 * cuts capacity misses; the Samsung prefetcher hides stream misses;
 * Olimex's higher clock against a similar DRAM latency gives it the
 * highest stall share.  Absolute counts are smaller than the paper's
 * (synthetic workloads, scaled runs — see DESIGN.md).
 */

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "em/capture.hpp"
#include "workloads/microbenchmark.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

namespace {

struct Cell
{
    uint64_t misses = 0;
    double stallPct = 0.0;
};

Cell
runOne(const devices::DeviceModel &device, sim::TraceSource &trace)
{
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, trace, device.probe);
    const auto result =
        profiler::EmProf::analyze(cap.magnitude,
                                  bench::profilerFor(device));
    return {result.report.totalEvents, result.report.stallPercent};
}

} // namespace

int
main(int argc, char **argv)
{
    const uint64_t scale =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 12'000'000;

    bench::printHeader(
        "Table IV: total LLC misses and miss latency (% total time)",
        "(EMPROF through the full EM chain, per device)");

    const auto devices = devices::allDevices();
    std::printf("  %-14s |", "Benchmark");
    for (const auto &d : devices)
        std::printf(" %9s", d.name.c_str());
    std::printf(" |");
    for (const auto &d : devices)
        std::printf(" %8s", d.name.c_str());
    std::printf("\n  %-14s |%30s |%27s\n", "",
                "Total LLC misses (events)", "Miss latency (% time)");
    std::printf("  ---------------+------------------------------+"
                "---------------------------\n");

    double miss_sum[3] = {0, 0, 0};
    double pct_sum[3] = {0, 0, 0};
    int rows = 0;

    auto emitRow = [&](const std::string &label,
                       const std::vector<Cell> &cells) {
        std::printf("  %-14s |", label.c_str());
        for (const auto &cell : cells)
            std::printf(" %9llu",
                        static_cast<unsigned long long>(cell.misses));
        std::printf(" |");
        for (const auto &cell : cells)
            std::printf(" %8.2f", cell.stallPct);
        std::printf("\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            miss_sum[i] += static_cast<double>(cells[i].misses);
            pct_sum[i] += cells[i].stallPct;
        }
        ++rows;
    };

    // Microbenchmark rows.
    const std::pair<uint64_t, uint64_t> points[] = {
        {256, 1}, {256, 5}, {1024, 10}, {4096, 50}};
    for (const auto &[tm, cm] : points) {
        std::vector<Cell> cells;
        for (const auto &device : devices) {
            workloads::MicrobenchmarkConfig cfg;
            cfg.totalMisses = tm;
            cfg.consecutiveMisses = cm;
            // Longer blank loops dilute the microbenchmark's stall
            // share into the single-digit range of the paper's runs;
            // the non-miss portion scales with TM as in the paper's
            // fixed-length program.
            cfg.blankLoopIterations =
                std::max<uint64_t>(120'000, tm * 425);
            workloads::Microbenchmark mb(cfg);
            cells.push_back(runOne(device, mb));
        }
        char label[64];
        std::snprintf(label, sizeof(label), "TM=%llu CM=%llu",
                      static_cast<unsigned long long>(tm),
                      static_cast<unsigned long long>(cm));
        emitRow(label, cells);
    }

    // SPEC rows.
    for (const auto &name : workloads::specNames()) {
        std::vector<Cell> cells;
        for (const auto &device : devices) {
            auto wl = workloads::makeSpec(name, scale, 42);
            cells.push_back(runOne(device, *wl));
        }
        emitRow(name, cells);
    }

    std::printf("  ---------------+------------------------------+"
                "---------------------------\n");
    std::printf("  %-14s |", "Average");
    for (double m : miss_sum)
        std::printf(" %9.1f", m / rows);
    std::printf(" |");
    for (double p : pct_sum)
        std::printf(" %8.2f", p / rows);
    std::printf("\n\n  paper shape: Alcatel fewest misses (1 MiB LLC); "
                "Olimex highest stall share\n"
                "  (avg 2.3 / 2.77 / 4.43 %% for Alcatel / Samsung / "
                "Olimex)\n");
    return 0;
}
