/**
 * @file
 * Ablation — sensitivity of EMPROF's accuracy to its design choices:
 * dip thresholds (and the hysteresis gap), the duration threshold, the
 * normalisation window, and the window-contrast guard.
 *
 * One reference capture (TM=1024 CM=10 on the Olimex) is analysed
 * under every configuration; accuracy is the usual count accuracy
 * against the engineered miss count over the marker-isolated section.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/marker.hpp"
#include "profiler/naive_threshold.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

namespace {

double
accuracyWith(const dsp::TimeSeries &section, profiler::EmProfConfig cfg,
             uint64_t expected)
{
    const auto result = profiler::EmProf::analyze(section, cfg);
    return bench::countAccuracy(
        static_cast<double>(result.report.totalEvents),
        static_cast<double>(expected));
}

} // namespace

int
main()
{
    bench::printHeader("Ablation: EMPROF detector design choices",
                       "(accuracy on TM=1024 CM=10, Olimex EM capture)");

    workloads::MicrobenchmarkConfig mb_cfg;
    mb_cfg.totalMisses = 1024;
    mb_cfg.consecutiveMisses = 10;
    workloads::Microbenchmark mb(mb_cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);
    const auto sections = profiler::findMarkerSections(cap.magnitude);
    const auto section = profiler::slice(cap.magnitude, sections.measured);
    const auto base = bench::profilerFor(device);

    std::printf("\n(1) enter threshold (exit = enter + 0.16):\n");
    for (double enter : {0.08, 0.15, 0.22, 0.30, 0.40, 0.55}) {
        auto cfg = base;
        cfg.enterThreshold = enter;
        cfg.exitThreshold = enter + 0.16;
        std::printf("    enter %.2f -> %.2f%%\n", enter,
                    accuracyWith(section, cfg, mb_cfg.totalMisses));
    }

    std::printf("\n(2) hysteresis gap (enter fixed at 0.22):\n");
    for (double gap : {0.0, 0.05, 0.16, 0.30, 0.50}) {
        auto cfg = base;
        cfg.exitThreshold = cfg.enterThreshold + gap;
        std::printf("    gap %.2f -> %.2f%%\n", gap,
                    accuracyWith(section, cfg, mb_cfg.totalMisses));
    }

    std::printf("\n(3) duration threshold (paper: \"significantly "
                "shorter than the LLC latency,\n    significantly "
                "longer than on-chip latencies\"):\n");
    for (double ns : {12.0, 25.0, 60.0, 120.0, 200.0, 400.0}) {
        auto cfg = base;
        cfg.minStallNs = ns;
        std::printf("    %.0f ns -> %.2f%%\n", ns,
                    accuracyWith(section, cfg, mb_cfg.totalMisses));
    }

    std::printf("\n(4) normalisation window:\n");
    for (double ms : {0.05, 0.2, 1.0, 4.0, 16.0}) {
        auto cfg = base;
        cfg.normWindowSeconds = ms * 1e-3;
        std::printf("    %.2f ms -> %.2f%%\n", ms,
                    accuracyWith(section, cfg, mb_cfg.totalMisses));
    }

    std::printf("\n(5) window-contrast guard:\n");
    for (double contrast : {0.0, 0.1, 0.2, 0.4, 0.6}) {
        auto cfg = base;
        cfg.minContrast = contrast;
        std::printf("    minContrast %.1f -> %.2f%%\n", contrast,
                    accuracyWith(section, cfg, mb_cfg.totalMisses));
    }

    // (6) Why normalise at all?  A calibrated fixed threshold against
    // EMPROF, as the probe-coupling gain drifts (Sec. IV's motivating
    // distortion: "even small changes in probe/antenna position can
    // dramatically change the overall magnitude").
    std::printf("\n(6) EMPROF vs a calibrated fixed threshold under "
                "slow large gain swings\n    (stall-time accuracy "
                "against simulator ground truth; swing period 0.4 ms,\n"
                "    EMPROF window 0.1 ms):\n");
    std::printf("    %14s %12s %12s\n", "swing +/-", "EMPROF",
                "fixed-thresh");
    for (double swing : {0.0, 0.2, 0.4, 0.6}) {
        workloads::Microbenchmark mb2(mb_cfg);
        auto drift_device = devices::makeOlimex();
        drift_device.probe.channel.supplyRippleAmp = swing;
        drift_device.probe.channel.supplyRippleHz = 2.5e3;
        sim::Simulator sim2(drift_device.sim);
        const auto cap2 = em::captureRun(sim2, mb2, drift_device.probe);
        const auto gt_stall = static_cast<double>(
            sim2.groundTruth().missStallCycles());

        auto em_cfg = bench::profilerFor(drift_device);
        em_cfg.normWindowSeconds = 0.1e-3; // well under the swing period
        const auto emprof_result =
            profiler::EmProf::analyze(cap2.magnitude, em_cfg);
        const double emprof_acc = bench::countAccuracy(
            emprof_result.report.totalStallCycles, gt_stall);

        profiler::NaiveThresholdConfig naive;
        naive.clockHz = drift_device.clockHz();
        naive.threshold =
            profiler::calibrateNaiveThreshold(cap2.magnitude, 2'000);
        double naive_stall = 0.0;
        for (const auto &ev :
             profiler::naiveDetect(cap2.magnitude, naive))
            naive_stall += ev.stallCycles;
        const double naive_acc =
            bench::countAccuracy(naive_stall, gt_stall);

        std::printf("    %14.2f %11.2f%% %11.2f%%\n", swing, emprof_acc,
                    naive_acc);
    }
    std::printf("\n    the fixed threshold is calibrated on the first "
                "2000 samples and holds only\n    while the gain "
                "stands still; EMPROF's moving min/max tracks the "
                "swing\n    (Sec. IV: probe position and supply "
                "voltage scale the whole signal).\n");
    return 0;
}
