/**
 * @file
 * Table V — per-function attribution for the parser workload on the
 * Olimex device (Sec. VI-D).
 *
 * The spectral attributor segments the received signal into regions by
 * short-term spectral signature (Fig. 14); EMPROF's stall events are
 * then attributed to the region they fall in.  The paper's conclusion
 * to reproduce: batch_process dominates — largest time share, highest
 * miss rate, highest memory-stall percentage.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/attribution.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

int
main(int argc, char **argv)
{
    const uint64_t scale =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 16'000'000;

    bench::printHeader("Table V: code attribution for parser (Olimex)",
                       "(spectral segmentation + EMPROF events)");

    auto device = devices::makeOlimex();
    auto wl = workloads::makeSpec("parser", scale, 42);
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, *wl, device.probe);

    const auto prof =
        profiler::EmProf::analyze(cap.magnitude,
                                  bench::profilerFor(device));

    profiler::AttributionConfig attr_cfg;
    profiler::SpectralAttributor attributor(attr_cfg);
    const auto regions = attributor.segment(cap.magnitude);
    const auto profiles = attributor.attribute(
        regions, prof.events, cap.magnitude.sampleRateHz,
        device.clockHz());

    // Region labels are assigned in order of first appearance, which
    // for parser is execution order: read_dictionary, init_randtable,
    // batch_process.
    std::printf("%s\n",
                profiler::SpectralAttributor::toText(
                    profiles, workloads::ParserPhases::names())
                    .c_str());

    // Ground truth from phase tags, for the reader to compare.
    const auto &phases = simulator.groundTruth().phases();
    std::printf("  simulator ground truth (phase tags):\n");
    std::printf("  %-18s %10s %14s %12s\n", "Function", "Misses",
                "Miss/Mcycle", "MemStall%");
    const auto names = workloads::ParserPhases::names();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &ph = phases[i + 1];
        const double mcyc = static_cast<double>(ph.cycles) / 1e6;
        std::printf("  %-18s %10llu %14.2f %12.2f\n", names[i].c_str(),
                    static_cast<unsigned long long>(ph.llcMisses),
                    mcyc > 0 ? static_cast<double>(ph.llcMisses) / mcyc
                             : 0.0,
                    ph.cycles > 0
                        ? 100.0 * static_cast<double>(ph.missStallCycles) /
                              static_cast<double>(ph.cycles)
                        : 0.0);
    }

    std::printf("\n  detected regions: %zu (paper: 3)\n", regions.size());
    std::printf("  paper shape: batch_process has the largest time "
                "share, miss rate and stall%%\n");
    return 0;
}
