/**
 * @file
 * Fig. 3 — LLC misses that produce no individually attributable
 * stalls: (a) misses fully hidden under useful work, (b) overlapping
 * misses that coalesce into one stall.
 *
 * The bench engineers both situations and reports the simulator's raw
 * miss count against its stall-interval count, plus what EMPROF sees —
 * demonstrating the paper's point that stall-based reporting
 * undercounts miss *events* but still tracks their performance impact.
 */

#include <cstdio>

#include "common.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"
#include "workloads/common.hpp"

using namespace emprof;

namespace {

/** (a) Independent misses fully hidden under long compute runs. */
class HiddenMissKernel : public workloads::SegmentedWorkload
{
  public:
    HiddenMissKernel()
    {
        auto addrs = std::make_shared<workloads::StreamAddresses>(
            0x4000'0000, 64 * 1024 * 1024);
        addSegment("hidden", 300, [addrs](auto &out, uint64_t) {
            // The load's value is never consumed and plenty of work
            // follows, so the miss drains while the core stays busy.
            workloads::Addr pc = workloads::emitIndependentLoad(
                out, 0x1000, addrs->next(), 0);
            pc = workloads::emitCompute(out, pc, 700, 0);
            workloads::emitLoopBranch(out, pc, 0);
        });
    }
};

/** (b) Bursts of back-to-back misses that overlap and coalesce. */
class OverlapKernel : public workloads::SegmentedWorkload
{
  public:
    OverlapKernel()
    {
        auto addrs = std::make_shared<workloads::StreamAddresses>(
            0x5000'0000, 64 * 1024 * 1024);
        addSegment("overlap", 300, [addrs](auto &out, uint64_t) {
            workloads::Addr pc = 0x1000;
            // Four misses in a tight burst: MLP overlaps them, and the
            // resulting stall is one merged interval.
            for (int i = 0; i < 4; ++i)
                pc = workloads::emitIndependentLoad(out, pc,
                                                    addrs->next(), 0);
            workloads::MicroOp use = sim::makeAlu(pc, /*dep=*/1);
            out.push_back(use);
            pc = workloads::emitCompute(out, pc + 4, 500, 0);
            workloads::emitLoopBranch(out, pc, 0);
        });
    }
};

void
report(const char *title, sim::TraceSource &trace)
{
    auto device = devices::makeOlimex();
    auto cfg = device.sim;
    cfg.memory.refreshEnabled = false;
    sim::Simulator simulator(cfg);
    dsp::TimeSeries power;
    simulator.runWithPowerTrace(trace, power);
    const auto &gt = simulator.groundTruth();

    auto prof_cfg = bench::profilerFor(device, power.sampleRateHz);
    const auto result = profiler::EmProf::analyze(power, prof_cfg);

    std::printf("\n%s\n", title);
    std::printf("  raw LLC misses (hardware-counter view): %llu\n",
                static_cast<unsigned long long>(gt.rawLlcMisses()));
    std::printf("  stall intervals (ground truth):          %zu\n",
                gt.stallIntervals().size());
    std::printf("  EMPROF events:                           %llu\n",
                static_cast<unsigned long long>(
                    result.report.totalEvents));
    std::printf("  miss-stall cycles GT / EMPROF:           %llu / %.0f\n",
                static_cast<unsigned long long>(gt.missStallCycles()),
                result.report.totalStallCycles);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 3: misses with no individually attributable stalls");

    HiddenMissKernel hidden;
    report("(a) fully-hidden misses: many misses, almost no stalls --\n"
           "    a stall-based detector *should* report ~0 here, and the\n"
           "    performance impact is indeed ~0:",
           hidden);

    OverlapKernel overlap;
    report("(b) overlapped misses (4 per burst): raw count is 4x the\n"
           "    interval count, but the stall time EMPROF reports still\n"
           "    tracks the true performance impact:",
           overlap);
    return 0;
}
