/**
 * @file
 * End-to-end analysis throughput: streaming vs. parallel analyze.
 *
 * Synthesises a 1-second 40 MHz capture (40 M samples, dips every few
 * microseconds like a memory-bound workload), then measures wall-clock
 * samples/s for the streaming path and for the parallel chunked
 * analyzer at 1/2/4/8 threads, asserting that every run produces the
 * same number of events.  Results go to stdout and, as machine-readable
 * JSON, to a file (default BENCH_pipeline.json) so the perf trajectory
 * can be tracked across PRs — see tools/bench_pipeline.sh.
 *
 *   throughput_pipeline [--samples N] [--json PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"

using namespace emprof;

namespace {

dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    // Miss-like dips (8-14 samples ~ 200-350 ns) every ~2 us, with an
    // occasional refresh-length stall, roughly Fig. 4's phenomenology.
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len =
            rng.chance(0.01) ? 100 : 8 + rng.below(7);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 40 + rng.below(120);
    }
    return s;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct Measurement
{
    std::size_t threads; // 0 = streaming
    double sec;
    double samplesPerSec;
    std::size_t events;
};

} // namespace

int
main(int argc, char **argv)
{
    std::size_t total = 40'000'000;
    std::string json_path = "BENCH_pipeline.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc)
            total = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--samples N] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("synthesising %zu-sample capture...\n", total);
    const auto sig = syntheticCapture(total);
    profiler::EmProfConfig config;
    config.clockHz = 1e9;

    std::vector<Measurement> runs;

    // Untimed warmup so the streaming measurement does not pay the
    // first-touch page faults for the whole capture.
    (void)profiler::EmProf::analyze(sig, config);

    auto t0 = std::chrono::steady_clock::now();
    const auto streaming = profiler::EmProf::analyze(sig, config);
    auto t1 = std::chrono::steady_clock::now();
    const double stream_sec = seconds(t0, t1);
    runs.push_back({0, stream_sec,
                    static_cast<double>(total) / stream_sec,
                    streaming.events.size()});
    std::printf("streaming     : %7.3f s  %8.1f Msamples/s  %zu events\n",
                stream_sec, runs.back().samplesPerSec / 1e6,
                streaming.events.size());

    bool consistent = true;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        profiler::ParallelAnalyzerConfig pcfg;
        pcfg.threads = threads;
        t0 = std::chrono::steady_clock::now();
        const auto result = profiler::analyzeParallel(sig, config, pcfg);
        t1 = std::chrono::steady_clock::now();
        const double sec = seconds(t0, t1);
        runs.push_back({threads, sec, static_cast<double>(total) / sec,
                        result.events.size()});
        std::printf(
            "parallel x%-2zu  : %7.3f s  %8.1f Msamples/s  %zu events  "
            "(%.2fx streaming)\n",
            threads, sec, runs.back().samplesPerSec / 1e6,
            result.events.size(), stream_sec / sec);
        if (result.events.size() != streaming.events.size()) {
            std::fprintf(stderr,
                         "ERROR: event count diverged at %zu threads\n",
                         threads);
            consistent = false;
        }
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_pipeline\",\n"
                 "  \"samples\": %zu,\n"
                 "  \"sample_rate_hz\": 40000000.0,\n"
                 "  \"events\": %zu,\n"
                 "  \"consistent\": %s,\n"
                 "  \"runs\": [\n",
                 total, streaming.events.size(),
                 consistent ? "true" : "false");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"threads\": %zu, "
            "\"seconds\": %.6f, \"samples_per_sec\": %.1f, "
            "\"speedup_vs_streaming\": %.3f}%s\n",
            r.threads == 0 ? "streaming" : "parallel", r.threads, r.sec,
            r.samplesPerSec, stream_sec / r.sec,
            i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return consistent ? 0 : 1;
}
