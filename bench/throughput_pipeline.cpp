/**
 * @file
 * End-to-end analysis throughput: streaming vs. parallel analyze.
 *
 * Synthesises a 40 MHz capture (default 64 Mi samples, dips every few
 * microseconds like a memory-bound workload), then measures wall-clock
 * samples/s for the streaming path and for the parallel chunked
 * analyzer at 1/2/4/8 threads, asserting that every run produces the
 * same number of events.  Each mode gets an untimed warm-up pass (an
 * eighth of the capture) and the best of N timed runs; the JSON also
 * records the run-to-run variance ((worst - best) / best) and a
 * per-stage time breakdown, so a regression can be attributed to
 * normalise vs. detect vs. stitch without rerunning under a profiler.
 * The timed runs execute with the metrics registry *disabled* (the
 * numbers measure the pipeline, not its instrumentation); the stage
 * breakdown comes from one extra untimed instrumented pass per mode.
 * Results go to stdout and, as machine-readable JSON, to a file
 * (default BENCH_pipeline.json) so the perf trajectory can be tracked
 * across PRs — see tools/bench_pipeline.sh.
 *
 *   throughput_pipeline [--samples N] [--runs N] [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "obs/metrics.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"

using namespace emprof;

namespace {

dsp::TimeSeries
syntheticCapture(std::size_t total)
{
    dsp::TimeSeries s;
    s.sampleRateHz = 40e6;
    s.samples.assign(total, 1.0f);
    dsp::Rng rng(0xca97);
    for (auto &x : s.samples)
        x += static_cast<float>(0.02 * (rng.uniform() - 0.5));
    // Miss-like dips (8-14 samples ~ 200-350 ns) every ~2 us, with an
    // occasional refresh-length stall, roughly Fig. 4's phenomenology.
    std::size_t pos = 1000;
    while (pos + 120 < total) {
        const std::size_t len =
            rng.chance(0.01) ? 100 : 8 + rng.below(7);
        for (std::size_t i = pos; i < pos + len; ++i)
            s.samples[i] = 0.2f;
        pos += len + 40 + rng.below(120);
    }
    return s;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct Measurement
{
    std::size_t threads; // 0 = streaming
    double bestSec;
    double variance; // (worst - best) / best over the timed runs
    double samplesPerSec;
    std::size_t events;
    std::map<std::string, uint64_t> stageNs;
};

/** Stage histograms scraped since the last resetValues(), as total ns
 *  per stage (the `stage.` prefix and `.ns` suffix stripped). */
std::map<std::string, uint64_t>
scrapeStages()
{
    std::map<std::string, uint64_t> out;
    const auto snap = obs::MetricsRegistry::instance().scrape();
    for (const auto &[name, hist] : snap.histograms) {
        constexpr const char *prefix = "stage.";
        constexpr const char *suffix = ".ns";
        if (name.rfind(prefix, 0) != 0 || hist.sum == 0)
            continue;
        std::string stage = name.substr(std::strlen(prefix));
        if (stage.size() > 3 &&
            stage.compare(stage.size() - 3, 3, suffix) == 0)
            stage.resize(stage.size() - 3);
        out[stage] = hist.sum;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t total = std::size_t{1} << 26; // 64 Mi samples
    std::size_t timed_runs = 3;
    std::string json_path = "BENCH_pipeline.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc)
            total = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc)
            timed_runs = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::atoll(argv[++i])));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(
                stderr,
                "usage: %s [--samples N] [--runs N] [--json PATH]\n",
                argv[0]);
            return 2;
        }
    }

    std::printf("synthesising %zu-sample capture...\n", total);
    const auto sig = syntheticCapture(total);
    // Warm-up input: an eighth of the capture, enough to fault in the
    // code paths and branch predictors without doubling the runtime.
    dsp::TimeSeries warm;
    warm.sampleRateHz = sig.sampleRateHz;
    warm.samples.assign(sig.samples.begin(),
                        sig.samples.begin() +
                            static_cast<std::ptrdiff_t>(total / 8));

    profiler::EmProfConfig config;
    config.clockHz = 1e9;

    std::vector<Measurement> runs;
    std::size_t ref_events = 0;
    bool consistent = true;

    // One mode = warm-up + N metrics-free timed runs (best-of) + one
    // instrumented pass for the stage breakdown.
    const auto measure = [&](std::size_t threads, auto &&fn) {
        fn(warm); // untimed warm-up
        obs::MetricsRegistry::setEnabled(false);
        double best = 0.0, worst = 0.0;
        std::size_t events = 0;
        for (std::size_t r = 0; r < timed_runs; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            const profiler::ProfileResult result = fn(sig);
            const auto t1 = std::chrono::steady_clock::now();
            const double sec = seconds(t0, t1);
            events = result.events.size();
            if (r == 0 || sec < best)
                best = sec;
            if (r == 0 || sec > worst)
                worst = sec;
        }
        obs::MetricsRegistry::setEnabled(true);
        obs::MetricsRegistry::instance().resetValues();
        fn(sig); // untimed instrumented pass
        Measurement m;
        m.threads = threads;
        m.bestSec = best;
        m.variance = (worst - best) / best;
        m.samplesPerSec = static_cast<double>(total) / best;
        m.events = events;
        m.stageNs = scrapeStages();
        runs.push_back(std::move(m));
        if (runs.size() == 1)
            ref_events = events;
        else if (events != ref_events)
            consistent = false;
        std::printf("%-14s: %7.3f s  %8.1f Msamples/s  %zu events  "
                    "(%.2fx streaming, +-%.1f%%)\n",
                    threads == 0
                        ? "streaming"
                        : ("parallel x" + std::to_string(threads))
                              .c_str(),
                    best, m.samplesPerSec / 1e6, events,
                    runs.front().bestSec / best, m.variance * 100.0);
    };

    measure(0, [&](const dsp::TimeSeries &s) {
        return profiler::EmProf::analyze(s, config);
    });
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        profiler::ParallelAnalyzerConfig pcfg;
        pcfg.threads = threads;
        measure(threads, [&, pcfg](const dsp::TimeSeries &s) {
            return profiler::analyzeParallel(s, config, pcfg);
        });
    }
    if (!consistent)
        std::fprintf(stderr, "ERROR: event counts diverged\n");

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_pipeline\",\n"
                 "  \"samples\": %zu,\n"
                 "  \"sample_rate_hz\": 40000000.0,\n"
                 "  \"timed_runs_per_mode\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"events\": %zu,\n"
                 "  \"consistent\": %s,\n"
                 "  \"runs\": [\n",
                 total, timed_runs, common::ThreadPool::hardwareThreads(),
                 ref_events, consistent ? "true" : "false");
    const double stream_best = runs.front().bestSec;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"threads\": %zu, "
            "\"seconds\": %.6f, \"samples_per_sec\": %.1f, "
            "\"speedup_vs_streaming\": %.3f, "
            "\"run_variance\": %.4f,\n      \"stages_ns\": {",
            r.threads == 0 ? "streaming" : "parallel", r.threads,
            r.bestSec, r.samplesPerSec, stream_best / r.bestSec,
            r.variance);
        std::size_t k = 0;
        for (const auto &[stage, ns] : r.stageNs)
            std::fprintf(f, "%s\"%s\": %llu",
                         k++ == 0 ? "" : ", ", stage.c_str(),
                         static_cast<unsigned long long>(ns));
        std::fprintf(f, "}}%s\n", i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return consistent ? 0 : 1;
}
