/**
 * @file
 * Fig. 12 — effect of the measurement bandwidth (20/40/60/80/160 MHz)
 * on EMPROF's results for SPEC mcf, on the Alcatel phone and the
 * Olimex IoT board.
 *
 * Expected shape per Sec. VI-B: at 20 MHz the Alcatel capture detects
 * only the few very long stalls (average duration ~1100 cycles in the
 * paper); detection stabilises from ~60 MHz, i.e. a bandwidth of only
 * ~6% of the clock frequency suffices.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

int
main(int argc, char **argv)
{
    const uint64_t scale =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 10'000'000;

    bench::printHeader(
        "Fig. 12: effect of measurement bandwidth (SPEC mcf)",
        "(per device: detected events, stall %, avg stall cycles)");

    const double bandwidths[] = {20e6, 40e6, 60e6, 80e6, 160e6};
    devices::DeviceModel device_list[] = {devices::makeAlcatel(),
                                          devices::makeOlimex()};

    for (const auto &device : device_list) {
        std::printf("\n%s (clock %.3f GHz):\n", device.name.c_str(),
                    device.clockHz() / 1e9);
        std::printf("  %8s %10s %10s %14s %14s\n", "BW(MHz)", "events",
                    "stall%", "avgStall(cyc)", "sample(cyc)");
        for (double bw : bandwidths) {
            auto wl = workloads::makeSpec("mcf", scale, 42);
            auto probe = device.probe;
            probe.receiver.bandwidthHz = bw;
            sim::Simulator simulator(device.sim);
            const auto cap = em::captureRun(simulator, *wl, probe);
            const auto result = profiler::EmProf::analyze(
                cap.magnitude, bench::profilerFor(device));
            std::printf("  %8.0f %10llu %10.2f %14.0f %14.1f\n",
                        bw / 1e6,
                        static_cast<unsigned long long>(
                            result.report.totalEvents),
                        result.report.stallPercent,
                        result.report.avgStallCycles,
                        device.clockHz() / cap.magnitude.sampleRateHz);
        }
    }

    std::printf("\n  paper shape: 20 MHz on the phone finds only very "
                "long stalls (avg ~1100 cyc);\n"
                "  results stabilise at >= 60 MHz (~6%% of the clock "
                "frequency)\n");
    return 0;
}
