/**
 * @file
 * Shared helpers for the experiment harness: headers, ASCII rendering
 * of signals (the text equivalent of the paper's figures), and the
 * standard per-device profiler configuration.
 */

#ifndef EMPROF_BENCH_COMMON_HPP
#define EMPROF_BENCH_COMMON_HPP

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "devices/devices.hpp"
#include "dsp/types.hpp"
#include "profiler/profiler.hpp"

namespace emprof::bench {

/** Print a boxed experiment header. */
inline void
printHeader(const std::string &title, const std::string &subtitle = "")
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    if (!subtitle.empty())
        std::printf("%s\n", subtitle.c_str());
    std::printf("================================================================\n");
}

/** Standard EMPROF configuration for a modelled device. */
inline profiler::EmProfConfig
profilerFor(const devices::DeviceModel &device, double sample_rate_hz = 0.0)
{
    profiler::EmProfConfig cfg;
    cfg.clockHz = device.clockHz();
    if (sample_rate_hz > 0.0)
        cfg.sampleRateHz = sample_rate_hz;
    return cfg;
}

/** Counting accuracy as the paper reports it (100% = exact). */
inline double
countAccuracy(double reported, double expected)
{
    if (expected <= 0.0)
        return reported == 0.0 ? 100.0 : 0.0;
    return 100.0 * (1.0 - std::abs(reported - expected) / expected);
}

/**
 * Render a signal as a rows-deep ASCII waveform, downsampled to
 * `width` columns by max-pooling (so brief dips stay visible as gaps
 * in the max envelope, and figure text stays compact).
 */
inline void
asciiWave(const dsp::TimeSeries &signal, std::size_t begin,
          std::size_t end, int rows = 8, int width = 96,
          bool min_pool = false)
{
    end = std::min<std::size_t>(end, signal.samples.size());
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const std::size_t per_col =
        std::max<std::size_t>(1, n / static_cast<std::size_t>(width));
    const int cols =
        static_cast<int>(std::min<std::size_t>(width, n / per_col));

    std::vector<float> pooled(cols);
    float lo = 1e30f, hi = -1e30f;
    for (int c = 0; c < cols; ++c) {
        float v = min_pool ? 1e30f : -1e30f;
        for (std::size_t i = 0; i < per_col; ++i) {
            const float x = signal.samples[begin + c * per_col + i];
            v = min_pool ? std::min(v, x) : std::max(v, x);
        }
        pooled[c] = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const float range = std::max(1e-9f, hi - lo);

    for (int r = rows - 1; r >= 0; --r) {
        std::printf("  |");
        for (int c = 0; c < cols; ++c) {
            const float level = (pooled[c] - lo) / range;
            std::printf("%c", level * rows > r ? '#' : ' ');
        }
        std::printf("|\n");
    }
    std::printf("  +");
    for (int c = 0; c < cols; ++c)
        std::printf("-");
    const double t0 = static_cast<double>(begin) / signal.sampleRateHz;
    const double t1 = static_cast<double>(end) / signal.sampleRateHz;
    std::printf("+\n   %.1f us%*s%.1f us  (min=%.3f max=%.3f)\n",
                t0 * 1e6, std::max(1, cols - 16), "", t1 * 1e6, lo, hi);
}

/** Render a whole signal. */
inline void
asciiWave(const dsp::TimeSeries &signal, int rows = 8, int width = 96,
          bool min_pool = false)
{
    asciiWave(signal, 0, signal.samples.size(), rows, width, min_pool);
}

} // namespace emprof::bench

#endif // EMPROF_BENCH_COMMON_HPP
