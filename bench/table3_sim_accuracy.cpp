/**
 * @file
 * Table III — accuracy of EMPROF on simulator data.
 *
 * Methodology per Sec. V-C: the simulator (Olimex-like configuration)
 * emits its power trace as the side-channel signal; EMPROF's event
 * count and measured stall cycles are compared against the simulator's
 * ground truth (coalesced LLC-miss stall intervals).
 */

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "devices/devices.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"
#include "workloads/microbenchmark.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

namespace {

struct Row
{
    std::string label;
    double missAcc;
    double stallAcc;
};

Row
analyze(const std::string &label, sim::TraceSource &trace,
        const devices::DeviceModel &device)
{
    sim::Simulator simulator(device.sim);
    dsp::TimeSeries power;
    simulator.runWithPowerTrace(trace, power);

    auto cfg = bench::profilerFor(device, power.sampleRateHz);
    const auto result = profiler::EmProf::analyze(power, cfg);
    const auto &gt = simulator.groundTruth();

    // Ground truth at EMPROF's own resolution: stalls shorter than the
    // duration threshold are invisible by design (Sec. IV), so the
    // comparison uses the same floor on both sides.
    const auto min_cycles = static_cast<sim::Cycle>(
        cfg.minStallNs * 1e-9 * device.clockHz());
    const auto gt_events = gt.countIntervalsAtLeast(min_cycles);

    Row row;
    row.label = label;
    row.missAcc = bench::countAccuracy(
        static_cast<double>(result.report.totalEvents),
        static_cast<double>(gt_events));
    row.stallAcc = bench::countAccuracy(
        result.report.totalStallCycles,
        static_cast<double>(
            gt.stallCyclesInIntervalsAtLeast(min_cycles)));
    return row;
}

} // namespace

int
main()
{
    bench::printHeader("Table III: accuracy of EMPROF on simulator data",
                       "(power side channel, Olimex-like configuration)");
    const auto device = devices::makeOlimex();

    std::printf("  %-22s %16s %16s\n", "Benchmark", "Miss Accuracy(%)",
                "Stall Accuracy(%)");
    std::printf("  %-22s\n", "-- Microbenchmark --");

    const std::pair<uint64_t, uint64_t> points[] = {
        {256, 1}, {256, 5}, {1024, 10}, {4096, 50}};
    for (const auto &[tm, cm] : points) {
        workloads::MicrobenchmarkConfig cfg;
        cfg.totalMisses = tm;
        cfg.consecutiveMisses = cm;
        workloads::Microbenchmark mb(cfg);
        char label[64];
        std::snprintf(label, sizeof(label), "TM=%llu CM=%llu",
                      static_cast<unsigned long long>(tm),
                      static_cast<unsigned long long>(cm));
        const auto row = analyze(label, mb, device);
        std::printf("  %-22s %15.1f%% %15.1f%%\n", row.label.c_str(),
                    row.missAcc, row.stallAcc);
    }

    std::printf("  %-22s\n", "-- SPEC CPU2000 (synthetic) --");
    for (const auto &name : workloads::specNames()) {
        auto wl = workloads::makeSpec(name, 12'000'000, 42);
        const auto row = analyze(name, *wl, device);
        std::printf("  %-22s %15.1f%% %15.1f%%\n", row.label.c_str(),
                    row.missAcc, row.stallAcc);
    }

    std::printf("\n  paper: microbenchmarks 97.7-99.8%% miss / "
                "99.3-99.9%% stall;\n"
                "         SPEC 93.2-100%% miss / 98.4-100%% stall "
                "(bzip2/equake lowest from MLP merging)\n");
    return 0;
}
