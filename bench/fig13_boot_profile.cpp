/**
 * @file
 * Fig. 13 — boot-sequence profiling: LLC-miss rate over time for two
 * distinct boot-ups of the IoT device.  EMPROF needs nothing from the
 * target, so it profiles the boot from the very first instruction.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/boot_profile.hpp"
#include "workloads/boot.hpp"

using namespace emprof;

int
main(int argc, char **argv)
{
    const uint64_t scale =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 4'000'000;

    bench::printHeader("Fig. 13: boot-sequence profiling, two runs",
                       "(Olimex; LLC-miss rate vs boot time)");

    auto device = devices::makeOlimex();
    profiler::BootProfile profiles[2];

    for (int run = 0; run < 2; ++run) {
        workloads::BootConfig cfg;
        cfg.scaleOps = scale;
        cfg.seed = 0xB007 + static_cast<uint64_t>(run);
        auto boot = workloads::makeBoot(cfg);

        sim::Simulator simulator(device.sim);
        const auto cap = em::captureRun(simulator, *boot, device.probe);
        const auto result = profiler::EmProf::analyze(
            cap.magnitude, bench::profilerFor(device));

        profiles[run] = profiler::makeBootProfile(
            result.events, cap.magnitude.sampleRateHz,
            cap.magnitude.samples.size(), 100e-6);

        std::printf("\nboot run %d (%llu stall events over %.2f ms):\n",
                    run + 1,
                    static_cast<unsigned long long>(
                        result.report.totalEvents),
                    cap.magnitude.duration() * 1e3);
        std::printf("%s", profiles[run].toText().c_str());
    }

    std::printf("\n  run-to-run profile similarity: %.3f "
                "(same phases, jittered timing)\n",
                profiler::bootProfileSimilarity(profiles[0],
                                                profiles[1]));
    std::printf("  phases: rom_stub, image_copy, decompress, "
                "kernel_init, driver_probe, services\n");
    return 0;
}
