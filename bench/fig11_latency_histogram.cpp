/**
 * @file
 * Fig. 11 — histogram of stall latencies for the mcf workload on the
 * three devices: most stalls are brief, with a tail of long stalls
 * (refresh coincidences and queueing), and the phones show a thicker
 * tail than the IoT board.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/report.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

int
main(int argc, char **argv)
{
    const uint64_t scale =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 16'000'000;

    bench::printHeader(
        "Fig. 11: histogram of LLC-miss stall latencies, SPEC mcf",
        "(log-spaced bins in processor cycles)");

    for (const auto &device : devices::allDevices()) {
        auto wl = workloads::makeSpec("mcf", scale, 42);
        sim::Simulator simulator(device.sim);
        const auto cap = em::captureRun(simulator, *wl, device.probe);
        const auto result = profiler::EmProf::analyze(
            cap.magnitude, bench::profilerFor(device));

        const auto hist =
            profiler::latencyHistogram(result.events, 40.0, 10'000.0, 14);
        std::printf("\n%s (%llu events, avg %.0f cyc, p95 %.0f, "
                    "p99 %.0f, max %.0f):\n",
                    device.name.c_str(),
                    static_cast<unsigned long long>(
                        result.report.totalEvents),
                    result.report.avgStallCycles,
                    result.report.p95StallCycles,
                    result.report.p99StallCycles,
                    result.report.maxStallCycles);
        std::printf("%s", hist.toText("cyc").c_str());
    }
    std::printf("\n  paper shape: main mode near the memory latency; "
                "the phones' tails are thicker\n"
                "  than the IoT board's\n");
    return 0;
}
