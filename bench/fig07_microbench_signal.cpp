/**
 * @file
 * Fig. 7 — EM signal from one microbenchmark run on the Olimex
 * device: (a) the whole run with the marker loops visible, (b) a zoom
 * into one CM=10 group of LLC misses.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/marker.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

int
main()
{
    bench::printHeader("Fig. 7: EM signal of a microbenchmark run",
                       "(Olimex, TM=1024 CM=10)");

    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = 1024;
    cfg.consecutiveMisses = 10;
    workloads::Microbenchmark mb(cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);

    std::printf("(a) whole run (min-pooled so dips remain visible):\n");
    bench::asciiWave(cap.magnitude, 10, 110, true);

    const auto sections = profiler::findMarkerSections(cap.magnitude);
    if (!sections.measured.empty()) {
        std::printf("\n  marker loops found at:");
        for (const auto &m : sections.markers)
            std::printf(" [%llu, %llu)",
                        static_cast<unsigned long long>(m.begin),
                        static_cast<unsigned long long>(m.end));
        std::printf("\n  measured section: [%llu, %llu)\n",
                    static_cast<unsigned long long>(
                        sections.measured.begin),
                    static_cast<unsigned long long>(
                        sections.measured.end));
    }

    // (b) zoom on one group: take a mid-section event and widen to a
    // full group (10 misses) around it.
    const auto result =
        profiler::EmProf::analyze(cap.magnitude,
                                  bench::profilerFor(device));
    if (result.events.size() > 30) {
        const auto &ev = result.events[result.events.size() / 2];
        const uint64_t group_span = 14 * ev.durationSamples() * 3;
        const uint64_t begin =
            ev.startSample > group_span / 4 ? ev.startSample -
                                                  group_span / 4
                                            : 0;
        std::printf("\n(b) zoom into one group of CM=10 misses (each "
                    "dip = one miss):\n");
        bench::asciiWave(cap.magnitude, begin, begin + group_span, 10,
                         110, true);
    }

    std::printf("\n  EMPROF events over the whole run: %llu "
                "(engineered: 1024 + startup)\n",
                static_cast<unsigned long long>(
                    result.report.totalEvents));
    return 0;
}
