/**
 * @file
 * Fig. 1 — change in EM emanation level caused by a processor stall:
 * received magnitude with its moving average, and the delta-t of the
 * stall read off the signal.
 */

#include <cstdio>

#include "common.hpp"
#include "dsp/moving_stats.hpp"
#include "em/capture.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

int
main()
{
    bench::printHeader(
        "Fig. 1: EM emanation level across one LLC-miss stall",
        "(Olimex, 40 MHz bandwidth around the 1.008 GHz clock)");

    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = 64;
    cfg.consecutiveMisses = 1;
    cfg.blankLoopIterations = 2'000;
    workloads::Microbenchmark mb(cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);

    const auto result =
        profiler::EmProf::analyze(cap.magnitude,
                                  bench::profilerFor(device));
    if (result.events.empty()) {
        std::printf("no stall found\n");
        return 1;
    }

    // Zoom on one mid-run stall, with context on both sides.
    const auto &ev = result.events[result.events.size() / 2];
    const uint64_t margin = 4 * ev.durationSamples() + 20;
    const uint64_t begin =
        ev.startSample > margin ? ev.startSample - margin : 0;
    const uint64_t end = ev.endSample + margin;

    std::printf("signal magnitude (zoom; the flat low run is the "
                "stall):\n");
    bench::asciiWave(cap.magnitude, begin, end, 10, 96, true);

    std::printf("\nmoving average of the magnitude:\n");
    const auto avg = dsp::movingAverage(cap.magnitude, 8);
    bench::asciiWave(avg, begin, end, 10, 96, true);

    std::printf("\n  stall between samples %llu and %llu\n",
                static_cast<unsigned long long>(ev.startSample),
                static_cast<unsigned long long>(ev.endSample));
    std::printf("  delta-t = %llu samples x %.1f ns = %.0f ns -> "
                "%.0f cycles at %.3f GHz\n",
                static_cast<unsigned long long>(ev.durationSamples()),
                1e9 / cap.magnitude.sampleRateHz, ev.durationNs,
                ev.stallCycles, device.clockHz() / 1e9);
    std::printf("  (paper: most Olimex LLC-miss stalls last ~300 ns)\n");
    return 0;
}
