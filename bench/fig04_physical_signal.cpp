/**
 * @file
 * Fig. 4 — LLC hit and miss in the physical (synthesised EM)
 * side-channel signal of the Olimex board: the same contrast as
 * Fig. 2, but through the full probe/receiver chain at 40 MHz.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "profiler/marker.hpp"
#include "workloads/common.hpp"

using namespace emprof;

namespace {

class LoadKernel : public workloads::SegmentedWorkload
{
  public:
    LoadKernel(uint64_t footprint_bytes, uint64_t seed)
    {
        auto addrs = std::make_shared<workloads::RandomAddresses>(
            0x4000'0000, footprint_bytes, seed);
        addSegment("loads", 600, [addrs](auto &out, uint64_t) {
            workloads::Addr pc =
                workloads::emitCompute(out, 0x1000, 80, 0);
            pc = workloads::emitDependentLoad(out, pc, addrs->next(), 0);
            workloads::emitLoopBranch(out, pc, 0);
        });
    }
};

void
show(const char *title, uint64_t footprint)
{
    auto device = devices::makeOlimex();
    device.sim.memory.refreshEnabled = false;
    LoadKernel kernel(footprint, 0x5EED);
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, kernel, device.probe);

    std::printf("\n%s\n", title);
    // Skip the first half: the small-footprint case takes compulsory
    // misses while its array warms, and the figure is about the
    // steady state.
    const auto steady = profiler::slice(
        cap.magnitude,
        {cap.magnitude.samples.size() / 2, cap.magnitude.samples.size()});
    bench::asciiWave(steady, 0, std::min<std::size_t>(400, steady.size()),
                     9, 96, true);

    const auto result =
        profiler::EmProf::analyze(steady, bench::profilerFor(device));
    std::printf("  EMPROF events: %llu, avg stall %.0f ns\n",
                static_cast<unsigned long long>(
                    result.report.totalEvents),
                result.report.avgStallCycles / device.clockHz() * 1e9);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 4: LLC hit vs miss in the received EM signal (Olimex)",
        "(40 MHz measurement bandwidth around the clock)");

    show("(a) L1D miss / LLC hit — stalls too brief for the duration "
         "threshold:",
         4 * 1024);
    show("(b) LLC miss — ~200-300 ns dips, one per miss:",
         8 * 1024 * 1024);

    std::printf("\n  paper: stalls produced by most LLC misses last "
                "~300 ns on this board\n");
    return 0;
}
