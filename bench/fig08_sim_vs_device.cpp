/**
 * @file
 * Fig. 8 — comparison of the simulator's power signal and the
 * (synthesised) device EM signal for the same microbenchmark: the
 * marker loops and the miss dips line up, validating the simulator's
 * power trace as a proxy for the physical signal (Sec. V-C).
 */

#include <cstdio>

#include "common.hpp"
#include "dsp/moving_stats.hpp"
#include "em/capture.hpp"
#include "profiler/profiler.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

int
main()
{
    bench::printHeader(
        "Fig. 8: simulator power signal vs device EM signal",
        "(same microbenchmark, TM=256 CM=10)");

    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = 256;
    cfg.consecutiveMisses = 10;
    cfg.blankLoopIterations = 6'000;

    auto device = devices::makeOlimex();

    // Simulator power trace, displayed at the receiver's resolution.
    workloads::Microbenchmark mb_sim(cfg);
    sim::Simulator sim_run(device.sim);
    dsp::TimeSeries power;
    sim_run.runWithPowerTrace(mb_sim, power);
    const auto power_display = dsp::movingAverage(power, 25);

    std::printf("(a) simulator power signal (whole run):\n");
    bench::asciiWave(power_display, 10, 110, true);

    // Device EM capture of an identical run.
    workloads::Microbenchmark mb_em(cfg);
    sim::Simulator em_run(device.sim);
    const auto cap = em::captureRun(em_run, mb_em, device.probe);

    std::printf("\n(b) received EM signal (whole run):\n");
    bench::asciiWave(cap.magnitude, 10, 110, true);

    // Quantitative comparison: EMPROF results from both signals.
    auto sim_cfg = bench::profilerFor(device, power.sampleRateHz);
    const auto from_power = profiler::EmProf::analyze(power, sim_cfg);
    const auto from_em =
        profiler::EmProf::analyze(cap.magnitude,
                                  bench::profilerFor(device));

    std::printf("\n  EMPROF on the power signal: %llu events, "
                "%.0f stall cycles\n",
                static_cast<unsigned long long>(
                    from_power.report.totalEvents),
                from_power.report.totalStallCycles);
    std::printf("  EMPROF on the EM signal:    %llu events, "
                "%.0f stall cycles\n",
                static_cast<unsigned long long>(
                    from_em.report.totalEvents),
                from_em.report.totalStallCycles);
    std::printf("  agreement: %.1f%% on events, %.1f%% on stall time\n",
                bench::countAccuracy(
                    static_cast<double>(from_em.report.totalEvents),
                    static_cast<double>(from_power.report.totalEvents)),
                bench::countAccuracy(from_em.report.totalStallCycles,
                                     from_power.report.totalStallCycles));
    std::printf("\n  (the paper's real-device signal additionally shows "
                "OS start-up/tear-down\n   activity around the run, "
                "which the simulator does not model)\n");
    return 0;
}
