/**
 * @file
 * Fig. 5 — memory refresh in the Olimex device: an LLC miss that
 * coincides with a DRAM refresh window stalls for 2-3 us instead of
 * ~300 ns, and this happens at least every ~70 us.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

int
main()
{
    bench::printHeader(
        "Fig. 5: memory refresh lengthening an LLC-miss stall",
        "(Olimex, H5TQ2G63BFR-style refresh cadence)");

    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = 4096;
    cfg.consecutiveMisses = 32;
    cfg.blankLoopIterations = 2'000;
    workloads::Microbenchmark mb(cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, mb, device.probe);
    const auto result =
        profiler::EmProf::analyze(cap.magnitude,
                                  bench::profilerFor(device));

    // Find a refresh-coincident event to zoom on.
    const profiler::StallEvent *refresh_ev = nullptr;
    for (const auto &ev : result.events) {
        if (ev.kind == profiler::StallKind::RefreshCoincident) {
            refresh_ev = &ev;
            break;
        }
    }
    if (refresh_ev == nullptr) {
        std::printf("no refresh-coincident stall observed\n");
        return 1;
    }

    std::printf("(a) refresh-lengthened stall replacing an ordinary "
                "LLC-miss stall:\n");
    const uint64_t margin = 2 * refresh_ev->durationSamples() + 40;
    const uint64_t begin = refresh_ev->startSample > margin
                               ? refresh_ev->startSample - margin
                               : 0;
    bench::asciiWave(cap.magnitude, begin,
                     refresh_ev->endSample + margin, 9, 96, true);

    std::printf("\n(b) zoom into the refresh stall itself:\n");
    bench::asciiWave(cap.magnitude, refresh_ev->startSample - 8,
                     refresh_ev->endSample + 8, 9, 96, true);

    // Cadence statistics.
    std::vector<double> gaps_us;
    double last = -1.0;
    for (const auto &ev : result.events) {
        if (ev.kind != profiler::StallKind::RefreshCoincident)
            continue;
        const double t = static_cast<double>(ev.startSample) /
                         cap.magnitude.sampleRateHz * 1e6;
        if (last >= 0.0)
            gaps_us.push_back(t - last);
        last = t;
    }

    std::printf("\n  refresh-coincident stalls: %llu of %llu events\n",
                static_cast<unsigned long long>(
                    result.report.refreshEvents),
                static_cast<unsigned long long>(
                    result.report.totalEvents));
    std::printf("  this stall: %.2f us (ordinary stalls: ~%.0f ns)\n",
                refresh_ev->durationNs / 1e3,
                result.report.medianStallCycles / device.clockHz() *
                    1e9);
    if (!gaps_us.empty()) {
        double mean_gap = 0.0;
        for (double g : gaps_us)
            mean_gap += g;
        mean_gap /= static_cast<double>(gaps_us.size());
        std::printf("  mean spacing between refresh stalls: %.1f us "
                    "(paper: ~70 us)\n",
                    mean_gap);
    }
    return 0;
}
