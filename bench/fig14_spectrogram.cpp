/**
 * @file
 * Fig. 14 — spectrogram of the parser workload: three distinct
 * spectral regions corresponding to read_dictionary, init_randtable
 * and batch_process, with the automatically detected boundaries
 * marked (the paper marks them by hand).
 */

#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "dsp/stft.hpp"
#include "em/capture.hpp"
#include "profiler/attribution.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

int
main(int argc, char **argv)
{
    const uint64_t scale =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 12'000'000;

    bench::printHeader("Fig. 14: spectrogram of SPEC parser (Olimex)",
                       "(time top-to-bottom, frequency left-to-right)");

    auto device = devices::makeOlimex();
    auto wl = workloads::makeSpec("parser", scale, 42);
    sim::Simulator simulator(device.sim);
    const auto cap = em::captureRun(simulator, *wl, device.probe);

    profiler::AttributionConfig cfg;
    const auto spec = dsp::stft(cap.magnitude, cfg.stft);
    profiler::SpectralAttributor attributor(cfg);
    const auto regions = attributor.segment(cap.magnitude);

    // Render: pool frames into ~40 rows, bins into ~90 columns; skip
    // the DC region that carries no shape information.
    const std::size_t rows = std::min<std::size_t>(40, spec.numFrames);
    const std::size_t first_bin = 3;
    const std::size_t cols =
        std::min<std::size_t>(90, spec.numBins - first_bin);
    const std::size_t frames_per_row = spec.numFrames / rows;
    const std::size_t bins_per_col = (spec.numBins - first_bin) / cols;
    const char shades[] = " .:-=+*#%@";

    for (std::size_t r = 0; r < rows; ++r) {
        // Pool this row's magnitudes.
        std::vector<double> pooled(cols, 0.0);
        double row_max = 1e-12;
        for (std::size_t c = 0; c < cols; ++c) {
            for (std::size_t f = r * frames_per_row;
                 f < (r + 1) * frames_per_row; ++f) {
                for (std::size_t b = 0; b < bins_per_col; ++b) {
                    pooled[c] = std::max(
                        pooled[c],
                        spec.at(f, first_bin + c * bins_per_col + b));
                }
            }
            row_max = std::max(row_max, pooled[c]);
        }
        std::printf("  %6.2fms |",
                    spec.frameTime(r * frames_per_row) * 1e3);
        for (std::size_t c = 0; c < cols; ++c) {
            const int shade = static_cast<int>(
                9.0 * pooled[c] / row_max);
            std::printf("%c", shades[std::clamp(shade, 0, 9)]);
        }
        std::printf("|");
        // Mark detected region boundaries.
        for (const auto &region : regions) {
            const std::size_t bf = region.startFrame;
            if (bf > r * frames_per_row &&
                bf <= (r + 1) * frames_per_row && region.startFrame > 0)
                std::printf("  <-- region boundary");
        }
        std::printf("\n");
    }

    std::printf("\n  detected regions (label letters match Table V):\n");
    for (const auto &region : regions) {
        std::printf("    %c: %.2f ms .. %.2f ms\n",
                    static_cast<char>('A' + region.label % 26),
                    region.startTime * 1e3, region.endTime * 1e3);
    }
    std::printf("\n  paper: three distinct regions visible, "
                "corresponding to read_dictionary,\n"
                "  init_randtable and batch_process\n");
    return 0;
}
