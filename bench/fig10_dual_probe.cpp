/**
 * @file
 * Fig. 10 — simultaneous EM monitoring of the processor and the main
 * memory (the dual-probe setup of Fig. 9): processor dips coincide
 * with bursts of memory activity.
 */

#include <cstdio>

#include "common.hpp"
#include "em/capture.hpp"
#include "workloads/microbenchmark.hpp"

using namespace emprof;

int
main()
{
    bench::printHeader(
        "Fig. 10: simultaneous processor and memory EM signals",
        "(Olimex dual-probe setup, CM=10 groups)");

    workloads::MicrobenchmarkConfig cfg;
    cfg.totalMisses = 30;
    cfg.consecutiveMisses = 10;
    cfg.microFnOps = 3'000; // long gaps between the three groups
    cfg.blankLoopIterations = 1'500;
    workloads::Microbenchmark mb(cfg);

    auto device = devices::makeOlimex();
    sim::Simulator simulator(device.sim);
    const auto result = em::dualProbeRun(simulator, mb, device.probe,
                                         em::defaultMemoryProbeChain());

    // Find the measured section via EMPROF events on the CPU signal.
    const auto prof = profiler::EmProf::analyze(
        result.cpu, bench::profilerFor(device));
    if (prof.events.size() < 10) {
        std::printf("too few events (%zu)\n", prof.events.size());
        return 1;
    }

    const uint64_t begin = prof.events.front().startSample > 40
                               ? prof.events.front().startSample - 40
                               : 0;
    const uint64_t end = prof.events.back().endSample + 40;

    std::printf("(a) three groups of LLC misses, processor probe "
                "(dips = stalls):\n");
    bench::asciiWave(result.cpu, begin, end, 8, 110, true);
    std::printf("\n    memory probe (bursts = fills):\n");
    bench::asciiWave(result.memory, begin, end, 8, 110, false);

    // Zoom on one group.
    const auto &mid = prof.events[prof.events.size() / 2];
    const uint64_t zb = mid.startSample > 120 ? mid.startSample - 120 : 0;
    std::printf("\n(b) zoom on one group, processor probe:\n");
    bench::asciiWave(result.cpu, zb, mid.endSample + 120, 8, 110, true);
    std::printf("\n    memory probe:\n");
    bench::asciiWave(result.memory, zb, mid.endSample + 120, 8, 110,
                     false);

    // Quantify the coincidence.
    const std::size_t n =
        std::min(result.cpu.samples.size(), result.memory.samples.size());
    std::vector<bool> in_dip(n, false);
    for (const auto &ev : prof.events)
        for (uint64_t i = ev.startSample; i <= ev.endSample && i < n; ++i)
            in_dip[i] = true;
    double dip_mem = 0.0, busy_mem = 0.0;
    std::size_t dips = 0, busy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        (in_dip[i] ? dip_mem : busy_mem) += result.memory.samples[i];
        (in_dip[i] ? dips : busy) += 1;
    }
    std::printf("\n  mean memory-probe level during CPU stalls: %.3f\n",
                dip_mem / static_cast<double>(dips));
    std::printf("  mean memory-probe level otherwise:         %.3f\n",
                busy_mem / static_cast<double>(busy));
    return 0;
}
