/**
 * @file
 * The three experimental devices of Table I, as simulator + probe
 * configurations.
 *
 * | Device  | SoC            | Core       | Clock     | LLC    |
 * |---------|----------------|------------|-----------|--------|
 * | Alcatel | QS MSM8909 x4  | Cortex-A7  | 1.1 GHz   | 1 MiB  |
 * | Samsung | QS MSM7625A    | Cortex-A5  | 800 MHz   | 256 KiB|
 * | Olimex  | Allwinner A13  | Cortex-A8  | 1.008 GHz | 256 KiB|
 *
 * Differences the paper leans on (Sec. VI-A) and how we model them:
 * Alcatel's 1 MiB LLC (4x the others) cuts its miss counts; Samsung's
 * hardware prefetcher hides part of its stream misses; Olimex's higher
 * clock against a similar DRAM latency (in ns) yields more stall
 * cycles per miss.  Alcatel's three idle sibling cores add background
 * EM activity.
 *
 * SCALED CAPACITIES.  The paper's SPEC runs span billions of cycles —
 * enough to exercise the capacity behaviour of megabyte LLCs.  Our
 * runs span millions, so the simulated cache capacities and workload
 * footprints are both scaled down by kCacheScale (16x).  The ratios
 * that drive every cross-device effect (Alcatel LLC = 4x the others;
 * working sets that fit one LLC but thrash another; L1 size gaps) are
 * preserved exactly.  DeviceModel records the physical capacities for
 * Table I alongside the scaled simulation values.
 */

#ifndef EMPROF_DEVICES_DEVICES_HPP
#define EMPROF_DEVICES_DEVICES_HPP

#include <string>
#include <vector>

#include "em/capture.hpp"
#include "sim/config.hpp"

namespace emprof::devices {

/** Capacity scale between physical devices and the simulated model. */
inline constexpr uint64_t kCacheScale = 16;

/** A complete modelled device. */
struct DeviceModel
{
    std::string name;

    /** Marketing/SoC description for Table I. */
    std::string soc;
    std::string core;
    uint32_t numCores = 1;

    /** Physical cache capacities (Table I values), in bytes. */
    uint64_t physicalL1Bytes = 0;
    uint64_t physicalLlcBytes = 0;

    /** Simulator configuration. */
    sim::SimConfig sim;

    /** Default probe/receiver chain for this device. */
    em::ProbeChainConfig probe;

    /** Core clock in Hz (mirrors sim.clockHz for convenience). */
    double clockHz() const { return sim.clockHz; }
};

/** Alcatel Ideal (MSM8909, 4x Cortex-A7 @ 1.1 GHz, 1 MiB LLC). */
DeviceModel makeAlcatel();

/** Samsung Galaxy Centura (MSM7625A, Cortex-A5 @ 800 MHz, 256 KiB
 *  LLC, hardware stride prefetcher). */
DeviceModel makeSamsung();

/** Olimex A13-OLinuXino-MICRO (Allwinner A13, Cortex-A8 @ 1.008 GHz,
 *  256 KiB LLC). */
DeviceModel makeOlimex();

/** All three devices in the paper's column order. */
std::vector<DeviceModel> allDevices();

/** Render Table I. */
std::string deviceTable(const std::vector<DeviceModel> &devices);

} // namespace emprof::devices

#endif // EMPROF_DEVICES_DEVICES_HPP
