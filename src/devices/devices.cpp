#include "devices/devices.hpp"

#include <cstdio>

namespace emprof::devices {

namespace {

/** Convert a DRAM latency in nanoseconds to core cycles. */
uint32_t
nsToCycles(double ns, double clock_hz)
{
    return static_cast<uint32_t>(ns * 1e-9 * clock_hz + 0.5);
}

/** Shared DRAM timing: all three devices use commodity parts with
 *  similar absolute latency (Sec. VI-A: "their main memory latencies
 *  (in nanoseconds) are very similar"). */
constexpr double kDramLatencyNs = 210.0;
constexpr double kRefreshPeriodNs = 70'000.0;
constexpr double kRefreshDurationNs = 2'400.0;

void
applyMemoryTiming(sim::SimConfig &cfg, double latency_ns = kDramLatencyNs)
{
    cfg.memory.accessLatency = nsToCycles(latency_ns, cfg.clockHz);
    cfg.memory.latencyJitter = cfg.memory.accessLatency / 10;
    cfg.memory.refreshPeriod =
        nsToCycles(kRefreshPeriodNs, cfg.clockHz);
    cfg.memory.refreshDuration =
        nsToCycles(kRefreshDurationNs, cfg.clockHz);
}

} // namespace

DeviceModel
makeOlimex()
{
    DeviceModel device;
    device.name = "Olimex";
    device.soc = "Allwinner A13";
    device.core = "Cortex-A8";
    device.numCores = 1;

    device.physicalL1Bytes = 32 * 1024;
    device.physicalLlcBytes = 256 * 1024;
    device.sim.clockHz = 1.008e9;
    // L1I stays at physical size: loop code footprints do not scale
    // with data, and a scaled L1I would thrash on loops that fit the
    // real part comfortably.  Data-side capacities are 1/kCacheScale.
    device.sim.l1i = {32 * 1024, 4, 64, 1, 1, sim::Replacement::Random};
    device.sim.l1d = {32 * 1024 / kCacheScale, 4, 64, 1, 2,
                      sim::Replacement::Random};
    device.sim.llc = {256 * 1024 / kCacheScale, 8, 64, 4, 18,
                      sim::Replacement::Random};
    device.sim.prefetcher.enabled = false;
    applyMemoryTiming(device.sim);

    // Olimex is the friendliest target: the board is open, probe
    // placement is unconstrained (Sec. V-D), so the received SNR is
    // the best of the three.
    device.probe.channel.noiseSigma = 0.03;
    return device;
}

DeviceModel
makeSamsung()
{
    DeviceModel device;
    device.name = "Samsung";
    device.soc = "Qualcomm MSM7625A";
    device.core = "Cortex-A5";
    device.numCores = 1;

    device.physicalL1Bytes = 16 * 1024;
    device.physicalLlcBytes = 256 * 1024;
    device.sim.clockHz = 800e6;
    device.sim.l1i = {16 * 1024, 4, 64, 1, 1, sim::Replacement::Random};
    device.sim.l1d = {16 * 1024 / kCacheScale, 4, 64, 1, 2,
                      sim::Replacement::Random};
    device.sim.llc = {256 * 1024 / kCacheScale, 8, 64, 4, 16,
                      sim::Replacement::Random};
    // Sec. VI-A: "Samsung device's processor has a hardware
    // prefetcher, so it is able to avoid some of the LLC misses that
    // occur in the Olimex device".
    device.sim.prefetcher.enabled = true;
    device.sim.prefetcher.degree = 2;
    applyMemoryTiming(device.sim);
    // Android services and the modem share the memory channel,
    // thickening the stall-latency tail (Fig. 11).
    device.sim.memory.backgroundPeriod = 2'900;
    device.sim.memory.backgroundBurst = 140;

    device.probe.channel.noiseSigma = 0.04;
    return device;
}

DeviceModel
makeAlcatel()
{
    DeviceModel device;
    device.name = "Alcatel";
    device.soc = "Qualcomm MSM8909";
    device.core = "Cortex-A7";
    device.numCores = 4;

    device.physicalL1Bytes = 32 * 1024;
    device.physicalLlcBytes = 1024 * 1024;
    device.sim.clockHz = 1.1e9;
    device.sim.l1i = {32 * 1024, 4, 64, 1, 1, sim::Replacement::Random};
    device.sim.l1d = {32 * 1024 / kCacheScale, 4, 64, 1, 2,
                      sim::Replacement::Random};
    // Sec. VI-A: "the LLC in Alcatel is 1 MB while Olimex and Samsung
    // device both have a 256 KB LLC".
    device.sim.llc = {1024 * 1024 / kCacheScale, 16, 64, 4, 20,
                      sim::Replacement::Random};
    device.sim.prefetcher.enabled = false;
    // The MSM8909 is the newest SoC of the three: faster LPDDR and a
    // Cortex-A7 memory system that tolerates more outstanding misses.
    device.sim.core.maxOutstandingLoads = 3;
    applyMemoryTiming(device.sim, 170.0);

    // Three sibling cores idle in the background, adding activity the
    // probe cannot separate from the profiled core — and sharing the
    // memory channel (thicker latency tail, Fig. 11).
    device.sim.memory.backgroundPeriod = 2'200;
    device.sim.memory.backgroundBurst = 170;
    device.sim.power.backgroundNoise = 0.05;
    device.probe.channel.noiseSigma = 0.045;
    return device;
}

std::vector<DeviceModel>
allDevices()
{
    return {makeAlcatel(), makeSamsung(), makeOlimex()};
}

std::string
deviceTable(const std::vector<DeviceModel> &devices)
{
    std::string out;
    char line[192];
    std::snprintf(line, sizeof(line), "  %-10s %-18s %-10s %9s %6s %8s\n",
                  "Device", "SoC", "ARM Core", "Clock", "Cores", "LLC");
    out += line;
    for (const auto &d : devices) {
        std::snprintf(line, sizeof(line),
                      "  %-10s %-18s %-10s %6.3f GHz %6u %5llu KB\n",
                      d.name.c_str(), d.soc.c_str(), d.core.c_str(),
                      d.sim.clockHz / 1e9, d.numCores,
                      static_cast<unsigned long long>(
                          d.physicalLlcBytes / 1024));
        out += line;
    }
    return out;
}

} // namespace emprof::devices
