#include "common/io/checked_file.hpp"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

#include "common/io/fault_injection.hpp"

namespace emprof::common::io {

const char *
ioErrorKindName(IoErrorKind kind)
{
    switch (kind) {
    case IoErrorKind::None: return "ok";
    case IoErrorKind::OpenFailed: return "open-failed";
    case IoErrorKind::WriteFailed: return "write-failed";
    case IoErrorKind::ShortWrite: return "short-write";
    case IoErrorKind::NoSpace: return "no-space";
    case IoErrorKind::ReadFailed: return "read-failed";
    case IoErrorKind::ShortRead: return "short-read";
    case IoErrorKind::SeekFailed: return "seek-failed";
    case IoErrorKind::SyncFailed: return "sync-failed";
    case IoErrorKind::CloseFailed: return "close-failed";
    case IoErrorKind::NotOpen: return "not-open";
    case IoErrorKind::Format: return "bad-format";
    }
    return "unknown";
}

std::string
IoError::describe() const
{
    if (ok())
        return std::string();
    std::string out = ioErrorKindName(kind);
    if (kind == IoErrorKind::Format) {
        if (!path.empty())
            out += " in " + path;
        if (!context.empty())
            out += ": " + context;
        return out;
    }
    out += " at byte " + std::to_string(offset);
    if (!path.empty())
        out += " of " + path;
    if (!context.empty())
        out += " (" + context + ")";
    if (sysErrno != 0) {
        out += ": ";
        out += std::strerror(sysErrno);
    }
    return out;
}

IoError
formatError(const std::string &path, const std::string &what)
{
    IoError e;
    e.kind = IoErrorKind::Format;
    e.path = path;
    e.context = what;
    return e;
}

namespace {

IoErrorKind
writeErrnoKind(int err)
{
    return err == ENOSPC ? IoErrorKind::NoSpace : IoErrorKind::WriteFailed;
}

} // namespace

CheckedFile::~CheckedFile()
{
    close(); // silent: finalising paths must call close() themselves
}

void
CheckedFile::reset()
{
    close();
    offset_ = 0;
    path_.clear();
    error_ = IoError{};
}

bool
CheckedFile::failWith(IoErrorKind kind, int sys_errno, uint64_t at,
                      const char *context)
{
    if (error_.ok()) { // first error wins; later ops must not mask it
        error_.kind = kind;
        error_.sysErrno = sys_errno;
        error_.offset = at;
        error_.path = path_;
        error_.context = context != nullptr ? context : "";
    }
    return false;
}

#ifndef _WIN32

bool
CheckedFile::open(const std::string &path, Mode mode)
{
    if (isOpen())
        return failWith(IoErrorKind::OpenFailed, 0, 0,
                        "file already open");
    path_ = path;
    error_ = IoError{};
    offset_ = 0;

    int flags = 0;
    switch (mode) {
    case Mode::Read: flags = O_RDONLY; break;
    case Mode::WriteTruncate: flags = O_WRONLY | O_CREAT | O_TRUNC; break;
    case Mode::ReadWriteTruncate:
        flags = O_RDWR | O_CREAT | O_TRUNC;
        break;
    }
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        return failWith(IoErrorKind::OpenFailed, errno, 0, "open");
    return true;
}

bool
CheckedFile::writeAll(const void *data, std::size_t len,
                      const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, offset_, context);

    const auto *p = static_cast<const uint8_t *>(data);
    const uint64_t start = offset_;
    while (len > 0) {
        std::size_t want = len;
        int forced_errno = 0;
        bool forced_eintr = false;
        if (FaultInjector::armed()) {
            const auto d = FaultInjector::onWrite(want);
            want = d.allow;
            forced_errno = d.failErrno;
            forced_eintr = d.eintr;
        }

        ssize_t got = 0;
        if (want > 0) {
            got = ::write(fd_, p, want);
            if (got < 0) {
                if (errno == EINTR)
                    continue; // transient; retry the same span
                return failWith(writeErrnoKind(errno), errno, offset_,
                                context);
            }
            p += got;
            len -= static_cast<std::size_t>(got);
            offset_ += static_cast<uint64_t>(got);
        }

        if (forced_eintr)
            continue; // simulated EINTR: retry transfers the rest
        if (forced_errno != 0) {
            // Injected failure.  Anything already transferred makes
            // this a torn (short) write unless errno says otherwise.
            const IoErrorKind kind =
                forced_errno == ENOSPC ? IoErrorKind::NoSpace
                : offset_ > start      ? IoErrorKind::ShortWrite
                                       : IoErrorKind::WriteFailed;
            return failWith(kind, forced_errno, offset_, context);
        }
        // got == 0 with want > 0 (or a kernel short write) just loops.
    }
    return true;
}

bool
CheckedFile::readAll(void *data, std::size_t len, const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, offset_, context);

    IoError e;
    if (!preadAt(offset_, data, len, context, &e)) {
        error_ = e;
        return false;
    }
    offset_ += len;
    return true;
}

bool
CheckedFile::preadAt(uint64_t at, void *data, std::size_t len,
                     const char *context, IoError *error) const
{
    const auto fail = [&](IoErrorKind kind, int sys_errno,
                          uint64_t where) {
        if (error != nullptr) {
            error->kind = kind;
            error->sysErrno = sys_errno;
            error->offset = where;
            error->path = path_;
            error->context = context != nullptr ? context : "";
        }
        return false;
    };
    if (!isOpen())
        return fail(IoErrorKind::NotOpen, 0, at);

    auto *p = static_cast<uint8_t *>(data);
    while (len > 0) {
        std::size_t want = len;
        int forced_errno = 0;
        bool forced_eintr = false;
        if (FaultInjector::armed()) {
            const auto d = FaultInjector::onRead(want);
            want = d.allow;
            forced_errno = d.failErrno;
            forced_eintr = d.eintr;
        }

        if (want > 0) {
            const ssize_t got =
                ::pread(fd_, p, want, static_cast<off_t>(at));
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                return fail(IoErrorKind::ReadFailed, errno, at);
            }
            if (got == 0) // real EOF before the requested count
                return fail(IoErrorKind::ShortRead, 0, at);
            p += got;
            at += static_cast<uint64_t>(got);
            len -= static_cast<std::size_t>(got);
        }

        if (forced_eintr)
            continue;
        if (forced_errno == -1) // injected EOF
            return fail(IoErrorKind::ShortRead, 0, at);
        if (forced_errno != 0)
            return fail(IoErrorKind::ReadFailed, forced_errno, at);
    }
    return true;
}

bool
CheckedFile::seekTo(uint64_t at, const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, at, context);
    if (::lseek(fd_, static_cast<off_t>(at), SEEK_SET) < 0)
        return failWith(IoErrorKind::SeekFailed, errno, at, context);
    offset_ = at;
    return true;
}

bool
CheckedFile::size(uint64_t &out, const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, 0, context);
    struct stat st{};
    if (::fstat(fd_, &st) != 0 || st.st_size < 0)
        return failWith(IoErrorKind::SeekFailed, errno, 0, context);
    out = static_cast<uint64_t>(st.st_size);
    return true;
}

bool
CheckedFile::syncToDisk(const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, offset_, context);
    int rc;
    do {
        rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return failWith(IoErrorKind::SyncFailed, errno, offset_, context);
    return true;
}

bool
CheckedFile::close()
{
    if (!isOpen())
        return error_.ok();
    const int fd = fd_;
    fd_ = -1;
    int rc;
    do {
        rc = ::close(fd);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return failWith(IoErrorKind::CloseFailed, errno, offset_,
                        "close");
    return error_.ok();
}

#else // _WIN32 fallback: FILE*-based, no fsync, handle kept by path.

// The portable fallback keeps the same contract minus durability:
// syncToDisk() is fflush-only and preadAt reopens by path (as the old
// CaptureReader fallback did).  fd_ holds 0 as a liveness token and
// file_ lives in a per-object FILE* stored via the path; to keep the
// header free of <cstdio> we reopen for each positioned read.

bool
CheckedFile::open(const std::string &path, Mode mode)
{
    if (isOpen())
        return failWith(IoErrorKind::OpenFailed, 0, 0,
                        "file already open");
    path_ = path;
    error_ = IoError{};
    offset_ = 0;
    const char *flags = mode == Mode::Read ? "rb"
                        : mode == Mode::WriteTruncate ? "wb"
                                                      : "w+b";
    std::FILE *f = std::fopen(path.c_str(), flags);
    if (f == nullptr)
        return failWith(IoErrorKind::OpenFailed, errno, 0, "open");
    handle_ = f;
    fd_ = 0;
    return true;
}

bool
CheckedFile::writeAll(const void *data, std::size_t len,
                      const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, offset_, context);
    auto *f = static_cast<std::FILE *>(handle_);
    const auto *p = static_cast<const uint8_t *>(data);
    const uint64_t start = offset_;
    while (len > 0) {
        std::size_t want = len;
        int forced_errno = 0;
        bool forced_eintr = false;
        if (FaultInjector::armed()) {
            const auto d = FaultInjector::onWrite(want);
            want = d.allow;
            forced_errno = d.failErrno;
            forced_eintr = d.eintr;
        }
        if (want > 0) {
            const std::size_t got = std::fwrite(p, 1, want, f);
            p += got;
            len -= got;
            offset_ += got;
            if (got < want)
                return failWith(offset_ > start
                                    ? IoErrorKind::ShortWrite
                                    : IoErrorKind::WriteFailed,
                                errno, offset_, context);
        }
        if (forced_eintr)
            continue;
        if (forced_errno != 0) {
            const IoErrorKind kind =
                forced_errno == ENOSPC ? IoErrorKind::NoSpace
                : offset_ > start      ? IoErrorKind::ShortWrite
                                       : IoErrorKind::WriteFailed;
            return failWith(kind, forced_errno, offset_, context);
        }
    }
    return true;
}

bool
CheckedFile::readAll(void *data, std::size_t len, const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, offset_, context);
    IoError e;
    if (!preadAt(offset_, data, len, context, &e)) {
        error_ = e;
        return false;
    }
    offset_ += len;
    if (std::fseek(static_cast<std::FILE *>(handle_),
                   static_cast<long>(offset_), SEEK_SET) != 0)
        return failWith(IoErrorKind::SeekFailed, errno, offset_, context);
    return true;
}

bool
CheckedFile::preadAt(uint64_t at, void *data, std::size_t len,
                     const char *context, IoError *error) const
{
    const auto fail = [&](IoErrorKind kind, int sys_errno,
                          uint64_t where) {
        if (error != nullptr) {
            error->kind = kind;
            error->sysErrno = sys_errno;
            error->offset = where;
            error->path = path_;
            error->context = context != nullptr ? context : "";
        }
        return false;
    };
    if (!isOpen())
        return fail(IoErrorKind::NotOpen, 0, at);
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr)
        return fail(IoErrorKind::OpenFailed, errno, at);
    bool ok = std::fseek(f, static_cast<long>(at), SEEK_SET) == 0;
    auto *p = static_cast<uint8_t *>(data);
    while (ok && len > 0) {
        std::size_t want = len;
        int forced_errno = 0;
        bool forced_eintr = false;
        if (FaultInjector::armed()) {
            const auto d = FaultInjector::onRead(want);
            want = d.allow;
            forced_errno = d.failErrno;
            forced_eintr = d.eintr;
        }
        if (want > 0) {
            const std::size_t got = std::fread(p, 1, want, f);
            p += got;
            at += got;
            len -= got;
            if (got < want) {
                std::fclose(f);
                return fail(IoErrorKind::ShortRead, 0, at);
            }
        }
        if (forced_eintr)
            continue;
        if (forced_errno == -1) {
            std::fclose(f);
            return fail(IoErrorKind::ShortRead, 0, at);
        }
        if (forced_errno != 0) {
            std::fclose(f);
            return fail(IoErrorKind::ReadFailed, forced_errno, at);
        }
    }
    std::fclose(f);
    if (!ok)
        return fail(IoErrorKind::SeekFailed, errno, at);
    return true;
}

bool
CheckedFile::seekTo(uint64_t at, const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, at, context);
    if (std::fseek(static_cast<std::FILE *>(handle_),
                   static_cast<long>(at), SEEK_SET) != 0)
        return failWith(IoErrorKind::SeekFailed, errno, at, context);
    offset_ = at;
    return true;
}

bool
CheckedFile::size(uint64_t &out, const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, 0, context);
    auto *f = static_cast<std::FILE *>(handle_);
    const long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0)
        return failWith(IoErrorKind::SeekFailed, errno, 0, context);
    const long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0)
        return failWith(IoErrorKind::SeekFailed, errno, 0, context);
    out = static_cast<uint64_t>(end);
    return true;
}

bool
CheckedFile::syncToDisk(const char *context)
{
    if (!error_.ok())
        return false;
    if (!isOpen())
        return failWith(IoErrorKind::NotOpen, 0, offset_, context);
    if (std::fflush(static_cast<std::FILE *>(handle_)) != 0)
        return failWith(IoErrorKind::SyncFailed, errno, offset_, context);
    return true;
}

bool
CheckedFile::close()
{
    if (!isOpen())
        return error_.ok();
    auto *f = static_cast<std::FILE *>(handle_);
    handle_ = nullptr;
    fd_ = -1;
    if (std::fclose(f) != 0)
        return failWith(IoErrorKind::CloseFailed, errno, offset_,
                        "close");
    return error_.ok();
}

#endif

} // namespace emprof::common::io
