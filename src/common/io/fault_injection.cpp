#include "common/io/fault_injection.hpp"

#include <atomic>
#include <cerrno>
#include <mutex>

namespace emprof::common::io {

namespace {

// `enabled` is the only thing the hot path reads while disarmed; the
// rest of the state is mutex-protected because arming and transfers
// may race in multi-threaded tests.
std::atomic<bool> enabled{false};

std::mutex state_mutex;
FaultPlan plan;            // guarded by state_mutex
bool plan_fired = false;   // guarded by state_mutex
uint64_t written_bytes = 0; // guarded by state_mutex
uint64_t read_bytes = 0;    // guarded by state_mutex

FaultInjector::Decision
decide(std::size_t want, uint64_t &stream, bool applies)
{
    FaultInjector::Decision d;
    d.allow = want;

    const uint64_t begin = stream;
    stream += want;
    if (want == 0 || !applies || plan_fired ||
        plan.kind == FaultPlan::Kind::None)
        return d;
    if (plan.triggerByte < begin || plan.triggerByte >= begin + want)
        return d; // trigger not inside this transfer

    plan_fired = true;
    const auto partial =
        static_cast<std::size_t>(plan.triggerByte - begin);
    switch (plan.kind) {
    case FaultPlan::Kind::FailWrite:
    case FaultPlan::Kind::FailRead:
        d.allow = 0;
        d.failErrno = EIO;
        break;
    case FaultPlan::Kind::TornWrite:
        d.allow = partial;
        d.failErrno = EIO;
        break;
    case FaultPlan::Kind::NoSpace:
        d.allow = partial;
        d.failErrno = ENOSPC;
        break;
    case FaultPlan::Kind::Eintr:
        d.allow = partial;
        d.eintr = true;
        break;
    case FaultPlan::Kind::ShortRead:
        d.allow = partial;
        d.failErrno = -1; // sentinel: EOF, not an errno failure
        break;
    case FaultPlan::Kind::None:
        break;
    }
    return d;
}

} // namespace

void
FaultInjector::arm(const FaultPlan &p)
{
    const std::lock_guard<std::mutex> lock(state_mutex);
    plan = p;
    plan_fired = false;
    written_bytes = 0;
    read_bytes = 0;
    enabled.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    const std::lock_guard<std::mutex> lock(state_mutex);
    enabled.store(false, std::memory_order_release);
    plan = FaultPlan{};
    plan_fired = false;
}

bool
FaultInjector::armed()
{
    return enabled.load(std::memory_order_acquire);
}

bool
FaultInjector::fired()
{
    const std::lock_guard<std::mutex> lock(state_mutex);
    return plan_fired;
}

uint64_t
FaultInjector::bytesWritten()
{
    const std::lock_guard<std::mutex> lock(state_mutex);
    return written_bytes;
}

uint64_t
FaultInjector::bytesRead()
{
    const std::lock_guard<std::mutex> lock(state_mutex);
    return read_bytes;
}

FaultInjector::Decision
FaultInjector::onWrite(std::size_t want)
{
    Decision d;
    d.allow = want;
    if (!enabled.load(std::memory_order_acquire))
        return d;
    const std::lock_guard<std::mutex> lock(state_mutex);
    return decide(want, written_bytes, plan.isWriteKind());
}

FaultInjector::Decision
FaultInjector::onRead(std::size_t want)
{
    Decision d;
    d.allow = want;
    if (!enabled.load(std::memory_order_acquire))
        return d;
    const std::lock_guard<std::mutex> lock(state_mutex);
    return decide(want, read_bytes, plan.isReadKind());
}

} // namespace emprof::common::io
