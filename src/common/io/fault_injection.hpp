/**
 * @file
 * Compile-in I/O fault injection.
 *
 * A capture rig's worst bugs live at I/O boundaries nobody can hit on
 * demand: disk full exactly between a chunk header and its payload, a
 * torn write at a power cut, EINTR in the middle of a footer.  This
 * shim sits inside CheckedFile's transfer loops and lets a test arm
 * one fault — "at cumulative written byte N, fail like ENOSPC" — so
 * the suite can walk N across an entire file and prove every single
 * I/O site either surfaces a typed IoError or recovers.
 *
 * The shim is always compiled (it is a handful of branches); when
 * disarmed it costs one relaxed atomic load per transfer.  Plans are
 * process-global and single-shot: the fault fires once at the trigger
 * byte, then the stream behaves normally — which is exactly what a
 * real transient (EINTR) or a real crash boundary looks like.
 */

#ifndef EMPROF_COMMON_IO_FAULT_INJECTION_HPP
#define EMPROF_COMMON_IO_FAULT_INJECTION_HPP

#include <cstddef>
#include <cstdint>

namespace emprof::common::io {

/** One planned fault, armed via FaultInjector::arm. */
struct FaultPlan
{
    enum class Kind : uint8_t
    {
        None,      ///< observe only: count bytes, inject nothing
        FailWrite, ///< the write op covering the trigger fails (EIO),
                   ///< transferring nothing
        TornWrite, ///< bytes up to the trigger land, then EIO —
                   ///< a power-cut-shaped partial write
        NoSpace,   ///< bytes up to the trigger land, then ENOSPC
        Eintr,     ///< bytes up to the trigger land, then one EINTR;
                   ///< a correct caller retries and succeeds
        FailRead,  ///< the read op covering the trigger fails (EIO)
        ShortRead, ///< bytes up to the trigger arrive, then EOF
    };

    Kind kind = Kind::None;

    /**
     * Cumulative byte position (within the written stream for write
     * kinds, the read stream for read kinds) at which the fault
     * fires.  Byte streams count every CheckedFile transfer since
     * arm(), across all files, in call order.
     */
    uint64_t triggerByte = 0;

    bool
    isWriteKind() const
    {
        return kind == Kind::FailWrite || kind == Kind::TornWrite ||
               kind == Kind::NoSpace || kind == Kind::Eintr;
    }
    bool
    isReadKind() const
    {
        return kind == Kind::FailRead || kind == Kind::ShortRead;
    }
};

/**
 * Process-global injector consulted by CheckedFile.  Tests arm it
 * (preferably via ScopedFaultPlan); production code never touches it
 * and pays only a relaxed atomic load while it is disarmed.
 */
class FaultInjector
{
  public:
    /** Arm @p plan; resets byte counters and the fired flag. */
    static void arm(const FaultPlan &plan);

    /** Disarm and stop counting. */
    static void disarm();

    /** True while a plan (including Kind::None) is armed. */
    static bool armed();

    /** True once the armed fault has fired. */
    static bool fired();

    /** Bytes offered to write transfers since arm(). */
    static uint64_t bytesWritten();

    /** Bytes offered to read transfers since arm(). */
    static uint64_t bytesRead();

    /** What CheckedFile should do with (part of) one transfer. */
    struct Decision
    {
        std::size_t allow = 0; ///< bytes to transfer for real first
        int failErrno = 0;     ///< then fail with this errno (0 = ok)
        bool eintr = false;    ///< then simulate one EINTR instead
    };

    /** Consulted before each write transfer of @p want bytes. */
    static Decision onWrite(std::size_t want);

    /** Consulted before each read transfer of @p want bytes. */
    static Decision onRead(std::size_t want);
};

/** RAII arm/disarm for tests. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan)
    {
        FaultInjector::arm(plan);
    }
    ~ScopedFaultPlan() { FaultInjector::disarm(); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace emprof::common::io

#endif // EMPROF_COMMON_IO_FAULT_INJECTION_HPP
