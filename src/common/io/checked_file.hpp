/**
 * @file
 * Checked file I/O: every read and write either transfers the exact
 * byte count asked for or produces a typed IoError.
 *
 * EMPROF captures are written by long unattended runs; the failure
 * modes that matter — disk full mid-chunk, a torn write at a power
 * cut, EINTR from a signal, a truncated read — all show up at the
 * libc boundary as short transfers or errno values that raw
 * fwrite/fread callers routinely drop on the floor.  CheckedFile
 * wraps one file descriptor and guarantees:
 *
 *  - writeAll/readAll loop over partial transfers and retry EINTR, so
 *    a success means the full byte count moved;
 *  - every failure is recorded as an IoError carrying the kind, the
 *    errno, the file offset, the path and a call-site context string;
 *  - syncToDisk() (fsync) lets a writer make its finalize durable;
 *  - preadAt() is positioned and const, so concurrent readers can
 *    share one open file (this is what CaptureReader's thread pool
 *    decoding relies on).
 *
 * All sequential and positioned transfers are routed through the
 * fault-injection shim (fault_injection.hpp), so tests can force a
 * failure at any byte of any I/O site and prove the caller surfaces
 * it instead of corrupting state.
 */

#ifndef EMPROF_COMMON_IO_CHECKED_FILE_HPP
#define EMPROF_COMMON_IO_CHECKED_FILE_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace emprof::common::io {

/** What went wrong, independent of the message text. */
enum class IoErrorKind : uint8_t
{
    None = 0,
    OpenFailed,  ///< could not create/open the file
    WriteFailed, ///< write() failed outright (nothing transferred)
    ShortWrite,  ///< write stopped partway (torn write)
    NoSpace,     ///< write failed with ENOSPC
    ReadFailed,  ///< read() failed outright
    ShortRead,   ///< EOF (or injected fault) before the full count
    SeekFailed,
    SyncFailed,  ///< fsync/fflush rejected the data
    CloseFailed,
    NotOpen,     ///< operation on a closed/invalidated file
    Format,      ///< contents violate the expected on-disk format
};

/** Stable name for an IoErrorKind ("short-write", "no-space", ...). */
const char *ioErrorKindName(IoErrorKind kind);

/**
 * A typed I/O failure.  `offset` is the file position the failed
 * operation started at; `context` names the structure being moved
 * ("chunk payload", "footer index", ...), so describe() pinpoints the
 * exact site: "short-write at byte 1092 of cap.emcap (chunk payload)".
 */
struct IoError
{
    IoErrorKind kind = IoErrorKind::None;
    int sysErrno = 0;
    uint64_t offset = 0;
    std::string path;
    std::string context;

    bool ok() const { return kind == IoErrorKind::None; }

    /** One-line human-readable rendering (empty when ok()). */
    std::string describe() const;
};

/** Build a Format-kind error (no errno, no offset semantics). */
IoError formatError(const std::string &path, const std::string &what);

/**
 * One open file with checked transfers.  Not copyable; the destructor
 * closes silently (finalising paths must call close() and look at the
 * result — a dropped async write error is exactly the bug class this
 * wrapper exists to kill).
 */
class CheckedFile
{
  public:
    enum class Mode
    {
        Read,           ///< existing file, read-only
        WriteTruncate,  ///< create/truncate, write-only
        ReadWriteTruncate, ///< create/truncate, read+write (back-patch)
    };

    CheckedFile() = default;
    ~CheckedFile();

    CheckedFile(const CheckedFile &) = delete;
    CheckedFile &operator=(const CheckedFile &) = delete;

    /** Open @p path; on failure error() holds an OpenFailed IoError. */
    bool open(const std::string &path, Mode mode);

    bool isOpen() const { return fd_ >= 0; }

    const std::string &path() const { return path_; }

    /** Current sequential offset (what the next writeAll/readAll uses). */
    uint64_t offset() const { return offset_; }

    /**
     * Write exactly @p len bytes or record a typed error and return
     * false.  EINTR and kernel short writes are retried; an injected
     * or real mid-transfer failure is reported as ShortWrite/NoSpace
     * with the failing offset.  After any failure the file is
     * invalidated: every later call fails with the *first* error
     * preserved in error().
     */
    bool writeAll(const void *data, std::size_t len, const char *context);

    /** Read exactly @p len bytes at the sequential offset, or fail. */
    bool readAll(void *data, std::size_t len, const char *context);

    /**
     * Positioned read of exactly @p len bytes at @p at.  Const and
     * thread-safe (does not touch the sequential offset or the stored
     * error); the failure, if any, is written to @p error.
     */
    bool preadAt(uint64_t at, void *data, std::size_t len,
                 const char *context, IoError *error = nullptr) const;

    /** Reposition the sequential offset. */
    bool seekTo(uint64_t at, const char *context);

    /** Total file size via fstat. */
    bool size(uint64_t &out, const char *context);

    /** Flush to stable storage (fsync); the finalize barrier. */
    bool syncToDisk(const char *context);

    /**
     * Close and report the close() result.  Returns false if the file
     * already carries an error (which is preserved) or if close
     * itself fails.  Safe to call twice.
     */
    bool close();

    /** First error recorded on this file (None while healthy). */
    const IoError &error() const { return error_; }

    /**
     * Close (result discarded) and clear all state, making the object
     * reusable for a fresh open().
     */
    void reset();

  private:
    bool failWith(IoErrorKind kind, int sys_errno, uint64_t at,
                  const char *context);

    int fd_ = -1;
    void *handle_ = nullptr; ///< FILE* on the portable fallback path
    uint64_t offset_ = 0;
    std::string path_;
    IoError error_;
};

} // namespace emprof::common::io

#endif // EMPROF_COMMON_IO_CHECKED_FILE_HPP
