/**
 * @file
 * A small fixed-size thread pool for batch (offline) analysis.
 *
 * Deliberately simple — one shared FIFO queue, no work stealing: the
 * parallel analyzer submits a handful of coarse, equally-sized chunk
 * tasks, so queue contention is negligible and a plain mutex+condvar
 * queue keeps the implementation easy to reason about (and easy for
 * TSan to verify).  The streaming hot path never touches this; it is
 * used only when crunching recorded captures faster than real time.
 */

#ifndef EMPROF_COMMON_THREAD_POOL_HPP
#define EMPROF_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace emprof::common {

/** Fixed-size pool of worker threads consuming a shared task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means hardwareThreads().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers after draining already-submitted tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; the returned future becomes ready when the task
     * has run (or rethrows the task's exception on get()).
     *
     * After drain() has begun the task is NOT enqueued: the returned
     * future rethrows PoolDrained on get().  This keeps the
     * late-enqueue race during shutdown well-defined — the submitter
     * always gets a future, and that future always resolves.
     */
    std::future<void> submit(std::function<void()> task);

    /** Thrown (via future) by tasks submitted after drain() began. */
    struct PoolDrained : std::runtime_error
    {
        PoolDrained() : std::runtime_error("thread pool drained") {}
    };

    /**
     * Shut down deterministically: reject all further submissions,
     * run every already-queued task to completion, and join the
     * workers.  Safe to call from any thread except a pool worker
     * (a worker joining itself would deadlock), safe to call more
     * than once, and the destructor calls it implicitly.  This is
     * what a server's SIGTERM path wants: in-flight analysis
     * completes, late arrivals get a typed rejection, and after
     * return no pool thread exists.
     */
    void drain();

    /** True once drain() has begun; submissions are being rejected. */
    bool draining() const;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Tasks queued but not yet claimed by a worker (a load signal:
     *  the serve-side LoadGovernor samples it each poll tick). */
    std::size_t queueDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    /** std::thread::hardware_concurrency(), floored at 1. */
    static std::size_t hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;

    /** Guards the join phase of drain(); joined_ lives under it. */
    std::mutex joinMutex_;
    bool joined_ = false;
};

} // namespace emprof::common

#endif // EMPROF_COMMON_THREAD_POOL_HPP
