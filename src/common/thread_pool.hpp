/**
 * @file
 * A small fixed-size thread pool for batch (offline) analysis.
 *
 * Deliberately simple — one shared FIFO queue, no work stealing: the
 * parallel analyzer submits a handful of coarse, equally-sized chunk
 * tasks, so queue contention is negligible and a plain mutex+condvar
 * queue keeps the implementation easy to reason about (and easy for
 * TSan to verify).  The streaming hot path never touches this; it is
 * used only when crunching recorded captures faster than real time.
 */

#ifndef EMPROF_COMMON_THREAD_POOL_HPP
#define EMPROF_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace emprof::common {

/** Fixed-size pool of worker threads consuming a shared task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means hardwareThreads().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers after draining already-submitted tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; the returned future becomes ready when the task
     * has run (or rethrows the task's exception on get()).
     */
    std::future<void> submit(std::function<void()> task);

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** std::thread::hardware_concurrency(), floored at 1. */
    static std::size_t hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace emprof::common

#endif // EMPROF_COMMON_THREAD_POOL_HPP
