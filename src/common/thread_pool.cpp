#include "common/thread_pool.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace emprof::common {

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = threads == 0 ? hardwareThreads() : threads;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(packaged));
        depth = queue_.size();
    }
    cv_.notify_one();
    if (obs::MetricsRegistry::enabled()) {
        static const obs::Counter submitted =
            obs::MetricsRegistry::instance().counter(
                "threadpool.tasks_submitted");
        static const obs::Gauge peak =
            obs::MetricsRegistry::instance().gauge(
                "threadpool.queue_depth_peak");
        submitted.inc();
        peak.max(static_cast<int64_t>(depth));
    }
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            // Drain remaining tasks even when stopping so submitted
            // futures always complete.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace emprof::common
