#include "common/thread_pool.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace emprof::common {

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = threads == 0 ? hardwareThreads() : threads;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    drain();
}

void
ThreadPool::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    // Joining is single-shot, but concurrent drainers must all block
    // until the workers are really gone — hence a dedicated mutex
    // (mutex_ stays free for the workers finishing their queue).
    std::lock_guard<std::mutex> join_lock(joinMutex_);
    if (joined_)
        return;
    for (auto &worker : workers_)
        worker.join();
    joined_ = true;
}

bool
ThreadPool::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stop_;
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) {
            // Late enqueue during shutdown: reject, never run.  The
            // caller still holds a resolvable future, so a generic
            // "submit then get()" call site cannot hang or crash.
            std::promise<void> rejected;
            rejected.set_exception(
                std::make_exception_ptr(PoolDrained{}));
            return rejected.get_future();
        }
        queue_.push_back(std::move(packaged));
        depth = queue_.size();
    }
    cv_.notify_one();
    if (obs::MetricsRegistry::enabled()) {
        static const obs::Counter submitted =
            obs::MetricsRegistry::instance().counter(
                "threadpool.tasks_submitted");
        static const obs::Gauge peak =
            obs::MetricsRegistry::instance().gauge(
                "threadpool.queue_depth_peak");
        submitted.inc();
        peak.max(static_cast<int64_t>(depth));
    }
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            // Drain remaining tasks even when stopping so submitted
            // futures always complete.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace emprof::common
