#include "obs/tracer.hpp"

#include <chrono>

namespace emprof::obs {

std::atomic<bool> Tracer::enabled_{false};

Tracer &
Tracer::instance()
{
    // Leaked for the same reason as MetricsRegistry: spans may be
    // recorded from worker threads during static destruction.
    static Tracer *tracer = new Tracer();
    return *tracer;
}

uint64_t
Tracer::nowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - epoch)
            .count());
}

uint32_t
Tracer::currentThreadNumber()
{
    static std::atomic<uint32_t> next{1};
    thread_local const uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

namespace {
thread_local uint64_t tls_current_span = 0;
} // namespace

uint64_t
Tracer::currentSpan()
{
    return tls_current_span;
}

uint64_t
Tracer::exchangeCurrentSpan(uint64_t id)
{
    const uint64_t old = tls_current_span;
    tls_current_span = id;
    return old;
}

void
Tracer::record(const SpanRecord &span)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(span);
    } else if (capacity_ > 0) {
        ring_[static_cast<std::size_t>(total_ % capacity_)] = span;
    }
    ++total_;
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (total_ <= capacity_ || capacity_ == 0)
        return ring_;
    // The ring wrapped: rotate so the oldest surviving span is first.
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    const std::size_t head =
        static_cast<std::size_t>(total_ % capacity_);
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
    return out;
}

uint64_t
Tracer::droppedSpans() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::size_t
Tracer::capacity() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
Tracer::resetForTest(std::size_t capacity)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    capacity_ = capacity;
    total_ = 0;
}

SpanScope::SpanScope(const char *name, const char *category)
{
    if (!Tracer::enabled())
        return;
    active_ = true;
    name_ = name;
    category_ = category;
    startNs_ = Tracer::nowNs();
    id_ = Tracer::instance().nextId_.fetch_add(
        1, std::memory_order_relaxed);
    parent_ = Tracer::exchangeCurrentSpan(id_);
}

SpanScope::~SpanScope()
{
    if (!active_)
        return;
    Tracer::exchangeCurrentSpan(parent_);
    SpanRecord span;
    span.name = name_;
    span.category = category_;
    span.startNs = startNs_;
    span.durationNs = Tracer::nowNs() - startNs_;
    span.id = id_;
    span.parent = parent_;
    span.tid = Tracer::currentThreadNumber();
    Tracer::instance().record(span);
}

} // namespace emprof::obs
