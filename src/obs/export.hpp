/**
 * @file
 * Observability export: serialize the metrics registry and the span
 * buffer to JSON files.
 *
 * Lives in its own translation unit (and CMake target, emprof_obs_io)
 * because it is the one part of the obs layer that touches the
 * filesystem: all writes go through common::io::CheckedFile — the same
 * checked, fault-injectable I/O layer as the capture store — so a disk
 * that fills up while dumping metrics surfaces as a typed IoError
 * message, never a silently truncated JSON file.  (The obs core stays
 * dependency-free so that common/ itself can be instrumented.)
 *
 * The trace export is Chrome trace_event format: an object with a
 * "traceEvents" array of complete ("ph":"X") events, timestamps in
 * microseconds — loadable directly in chrome://tracing or Perfetto.
 */

#ifndef EMPROF_OBS_EXPORT_HPP
#define EMPROF_OBS_EXPORT_HPP

#include <string>

namespace emprof::obs {

/**
 * Scrape the metrics registry and write it to @p path as JSON.
 *
 * @param error Receives a one-line reason on failure.
 */
bool writeMetricsJson(const std::string &path,
                      std::string *error = nullptr);

/** Render the metrics scrape as a JSON string (what the file gets). */
std::string metricsToJson();

/**
 * Render the metrics scrape as line-oriented text — one
 * `name value` pair per line (histograms expand to `_count`, `_sum`
 * and `_mean` lines) — the format the ingest server's scrape endpoint
 * returns, greppable and diffable without a JSON parser.
 */
std::string metricsToText();

/**
 * Write the tracer's span buffer to @p path as Chrome trace JSON.
 *
 * @param error Receives a one-line reason on failure.
 */
bool writeTraceJson(const std::string &path,
                    std::string *error = nullptr);

/** Render the span buffer as a Chrome trace JSON string. */
std::string traceToJson();

/**
 * One-line per-stage timing summary from the `stage.*` histograms,
 * e.g. "stages: tool.load 12.3 ms | analyze.parallel 45.6 ms (x1)".
 * Empty when no stage has recorded anything.
 */
std::string stageSummaryLine();

} // namespace emprof::obs

#endif // EMPROF_OBS_EXPORT_HPP
