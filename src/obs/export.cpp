#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/io/checked_file.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "obs/tracer.hpp"

namespace emprof::obs {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buf, std::min(static_cast<std::size_t>(n),
                                 sizeof(buf) - 1));
}

bool
writeStringToFile(const std::string &path, const std::string &body,
                  std::string *error)
{
    common::io::CheckedFile file;
    if (!file.open(path, common::io::CheckedFile::Mode::WriteTruncate) ||
        !file.writeAll(body.data(), body.size(), "observability json") ||
        !file.close()) {
        if (error != nullptr)
            *error = file.error().describe();
        return false;
    }
    return true;
}

} // namespace

std::string
metricsToJson()
{
    const MetricsSnapshot snap = MetricsRegistry::instance().scrape();
    std::string out = "{\n  \"counters\": {";

    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        appendf(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
                jsonEscape(name).c_str(), value);
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        appendf(out, "%s\n    \"%s\": %" PRId64, first ? "" : ",",
                jsonEscape(name).c_str(), value);
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        appendf(out,
                "%s\n    \"%s\": {\"count\": %" PRIu64
                ", \"sum\": %" PRIu64 ", \"mean\": %.3f, \"buckets\": {",
                first ? "" : ",", jsonEscape(name).c_str(), h.count,
                h.sum, h.mean());
        bool first_bucket = true;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            if (h.buckets[b] == 0)
                continue;
            // Keyed by the bucket's inclusive lower bound.
            appendf(out, "%s\"%" PRIu64 "\": %" PRIu64,
                    first_bucket ? "" : ", ", histogramBucketLo(b),
                    h.buckets[b]);
            first_bucket = false;
        }
        out += "}}";
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"labels\": {";
    first = true;
    for (const auto &[name, value] : snap.labels) {
        appendf(out, "%s\n    \"%s\": \"%s\"", first ? "" : ",",
                jsonEscape(name).c_str(), jsonEscape(value).c_str());
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    appendf(out, "  \"dropped_registrations\": %" PRIu64 "\n}\n",
            snap.droppedRegistrations);
    return out;
}

std::string
traceToJson()
{
    const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
    std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                      "  \"traceEvents\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord &s = spans[i];
        // Complete events; timestamps are microseconds in this format.
        appendf(out,
                "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", "
                "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                "\"pid\": 1, \"tid\": %u, \"args\": {\"id\": %" PRIu64
                ", \"parent\": %" PRIu64 "}}",
                i == 0 ? "" : ",", jsonEscape(s.name).c_str(),
                jsonEscape(s.category).c_str(),
                static_cast<double>(s.startNs) / 1e3,
                static_cast<double>(s.durationNs) / 1e3, s.tid, s.id,
                s.parent);
    }
    out += spans.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool
writeMetricsJson(const std::string &path, std::string *error)
{
    return writeStringToFile(path, metricsToJson(), error);
}

std::string
metricsToText()
{
    const MetricsSnapshot snap = MetricsRegistry::instance().scrape();
    std::string out;
    for (const auto &[name, value] : snap.counters)
        appendf(out, "%s %" PRIu64 "\n", name.c_str(), value);
    for (const auto &[name, value] : snap.gauges)
        appendf(out, "%s %" PRId64 "\n", name.c_str(), value);
    for (const auto &[name, h] : snap.histograms) {
        appendf(out, "%s_count %" PRIu64 "\n", name.c_str(), h.count);
        appendf(out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum);
        appendf(out, "%s_mean %.3f\n", name.c_str(), h.mean());
    }
    for (const auto &[name, value] : snap.labels)
        appendf(out, "%s %s\n", name.c_str(), value.c_str());
    if (snap.droppedRegistrations != 0)
        appendf(out, "obs.dropped_registrations %" PRIu64 "\n",
                snap.droppedRegistrations);
    return out;
}

bool
writeTraceJson(const std::string &path, std::string *error)
{
    return writeStringToFile(path, traceToJson(), error);
}

std::string
stageSummaryLine()
{
    const MetricsSnapshot snap = MetricsRegistry::instance().scrape();
    const std::string prefix = kStageMetricPrefix;
    const std::string suffix = kStageMetricSuffix;
    std::string out;
    for (const auto &[name, h] : snap.histograms) {
        if (h.count == 0 || name.size() <= prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string stage = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (out.empty())
            out = "stages:";
        else
            out += " |";
        appendf(out, " %s %.3f ms", stage.c_str(),
                static_cast<double>(h.sum) / 1e6);
        if (h.count > 1)
            appendf(out, " (x%" PRIu64 ")", h.count);
    }
    return out;
}

} // namespace emprof::obs
