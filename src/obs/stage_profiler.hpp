/**
 * @file
 * RAII stage profiling: one macro instruments a pipeline stage with
 * both a trace span and a duration histogram.
 *
 *     void Analyzer::run() {
 *         EMPROF_OBS_STAGE("analyze.parallel");
 *         ...
 *     }
 *
 * expands to a function-local static Histogram registration (named
 * `stage.analyze.parallel.ns`, performed once per call site) plus a
 * StageScope whose destructor records the elapsed monotonic time into
 * the histogram and emits a span named `analyze.parallel`.  The
 * `stage.` metric prefix is what emprof_analyze's `--verbose` summary
 * and the tests key on, so every stage instrumented this way shows up
 * in the per-stage timing line, the metrics JSON, and the trace with
 * zero additional wiring.
 *
 * Disabled-mode cost is one relaxed atomic load per constructor (the
 * SpanScope's); nothing else runs.
 */

#ifndef EMPROF_OBS_STAGE_PROFILER_HPP
#define EMPROF_OBS_STAGE_PROFILER_HPP

#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace emprof::obs {

/** Metric-name prefix shared by every EMPROF_OBS_STAGE call site. */
inline constexpr const char *kStageMetricPrefix = "stage.";

/** Metric-name suffix shared by every EMPROF_OBS_STAGE call site. */
inline constexpr const char *kStageMetricSuffix = ".ns";

/** Register the duration histogram for stage @p stage. */
inline Histogram
stageHistogram(const char *stage)
{
    return MetricsRegistry::instance().histogram(
        std::string(kStageMetricPrefix) + stage + kStageMetricSuffix);
}

/**
 * Span + duration histogram over one scope.  Prefer the
 * EMPROF_OBS_STAGE macro, which caches the histogram registration.
 */
class StageScope
{
  public:
    StageScope(const char *stage, Histogram histogram)
        : span_(stage, "stage")
    {
        if (MetricsRegistry::enabled()) {
            histogram_ = histogram;
            startNs_ = Tracer::nowNs();
            timing_ = true;
        }
    }

    ~StageScope()
    {
        if (timing_)
            histogram_.observe(Tracer::nowNs() - startNs_);
    }

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    SpanScope span_;
    Histogram histogram_;
    uint64_t startNs_ = 0;
    bool timing_ = false;
};

} // namespace emprof::obs

#define EMPROF_OBS_CONCAT_IMPL(a, b) a##b
#define EMPROF_OBS_CONCAT(a, b) EMPROF_OBS_CONCAT_IMPL(a, b)

/** Instrument the enclosing scope as pipeline stage @p stage_literal. */
#define EMPROF_OBS_STAGE(stage_literal)                                  \
    static const ::emprof::obs::Histogram EMPROF_OBS_CONCAT(             \
        emprof_obs_stage_hist_, __LINE__) =                              \
        ::emprof::obs::stageHistogram(stage_literal);                    \
    const ::emprof::obs::StageScope EMPROF_OBS_CONCAT(                   \
        emprof_obs_stage_scope_,                                         \
        __LINE__)((stage_literal),                                       \
                  EMPROF_OBS_CONCAT(emprof_obs_stage_hist_, __LINE__))

#endif // EMPROF_OBS_STAGE_PROFILER_HPP
