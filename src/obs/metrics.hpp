/**
 * @file
 * Process-wide metrics registry: counters, gauges, and histograms with
 * fixed log2 buckets.
 *
 * The paper's numbers (Tables II/III accuracy, Sec. V throughput) are
 * per-stage numbers; when a run is slow or a result drifts, aggregate
 * wall clock says nothing about *which* stage moved.  Every pipeline
 * stage therefore reports into this registry — bytes moved by the
 * store, chunks decoded, CRC failures, dips found and rejected, chunk
 * analysis timings — and the tools dump a scrape as JSON via
 * `--metrics-out`.
 *
 * Design constraints, in priority order:
 *
 *  1. Zero overhead when disabled (the default).  Every update starts
 *     with one relaxed atomic load of a process-wide flag and returns
 *     immediately when observability is off; nothing is allocated and
 *     no lock is taken.  Hot per-sample loops are never instrumented
 *     at all — only per-chunk, per-event and per-stage paths are.
 *
 *  2. Lock-free fast path when enabled.  Counter and histogram updates
 *     go to a per-thread shard (a fixed array of relaxed atomics that
 *     only the owning thread writes), so enabled-mode updates never
 *     contend either.  scrape() merges all shards under the registry
 *     mutex; shards outlive their threads (the registry owns them), so
 *     totals survive worker-pool teardown.
 *
 *  3. Handles are POD.  Registration (by name, deduplicated) happens
 *     once per call site behind a function-local static; the returned
 *     handle carries the slot offset directly, so the fast path never
 *     touches registry data structures that could grow concurrently.
 *
 * Histograms use 64 fixed log2 buckets: bucket b counts values whose
 * bit width is b (i.e. 2^(b-1) <= v < 2^b, with v == 0 in bucket 0).
 * That is exact enough for latency work (each bucket is a 2x band)
 * and makes the fast path one bit-width instruction plus two relaxed
 * adds, with no per-metric bucket configuration to get wrong.
 *
 * Gauges are single shared atomics (set/add/max) — they are updated at
 * low frequency (queue depths, pool sizes), so sharding would only
 * complicate the merge semantics of set().
 */

#ifndef EMPROF_OBS_METRICS_HPP
#define EMPROF_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace emprof::obs {

/** Number of log2 histogram buckets (covers the full uint64 range). */
constexpr std::size_t kHistogramBuckets = 64;

/** Bucket index for one observed value: its bit width, 0 for 0. */
constexpr std::size_t
histogramBucket(uint64_t value)
{
    return static_cast<std::size_t>(std::bit_width(value));
}

/** Lower bound of bucket @p b (inclusive); 0 for bucket 0. */
constexpr uint64_t
histogramBucketLo(std::size_t b)
{
    return b <= 1 ? 0 : uint64_t{1} << (b - 1);
}

class MetricsRegistry;

namespace detail {
/** Slots one thread owns; only scrape() reads other threads' shards. */
struct Shard
{
    /** Total slots a shard provides; registration past this yields
     *  inert handles (updates dropped, scrape flags it). */
    static constexpr std::size_t kCapacity = 4096;

    std::array<std::atomic<uint64_t>, kCapacity> slots{};
};

void slotAdd(uint32_t slot, uint64_t delta);
} // namespace detail

/**
 * Monotonic counter handle.  Copyable POD; obtain once per call site
 * (function-local static) via MetricsRegistry::counter().
 */
class Counter
{
  public:
    Counter() = default;

    /** Add @p delta; no-op while the registry is disabled. */
    void add(uint64_t delta) const;

    /** add(1). */
    void inc() const { add(1); }

    bool valid() const { return slot_ != UINT32_MAX; }

  private:
    friend class MetricsRegistry;
    uint32_t slot_ = UINT32_MAX;
};

/** Shared-atomic gauge handle (set / add / max semantics). */
class Gauge
{
  public:
    Gauge() = default;

    void set(int64_t value) const;
    void add(int64_t delta) const;

    /** Raise the gauge to @p value if it is below it. */
    void max(int64_t value) const;

    bool valid() const { return index_ != UINT32_MAX; }

  private:
    friend class MetricsRegistry;
    uint32_t index_ = UINT32_MAX;
};

/** Log2-bucket histogram handle. */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one observation; no-op while disabled. */
    void observe(uint64_t value) const;

    bool valid() const { return base_ != UINT32_MAX; }

  private:
    friend class MetricsRegistry;
    /** Slot layout: base_ + [0, 64) buckets, base_ + 64 the sum. */
    uint32_t base_ = UINT32_MAX;
};

/** Point-in-time merged view of every metric. */
struct MetricsSnapshot
{
    struct HistogramValue
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        std::array<uint64_t, kHistogramBuckets> buckets{};

        double
        mean() const
        {
            return count == 0 ? 0.0
                              : static_cast<double>(sum) /
                                    static_cast<double>(count);
        }
    };

    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramValue> histograms;

    /** Free-form string metrics (device names, codec names, ...). */
    std::map<std::string, std::string> labels;

    /** Registrations dropped because the slot space was exhausted. */
    uint64_t droppedRegistrations = 0;
};

/**
 * The process-wide registry.  All members are thread-safe.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Global observability switch; one relaxed load on the fast path. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * Register (or look up) a metric by name.  Same name + same kind
     * returns the same handle; a name reused with a different kind, or
     * registration past the slot capacity, returns an inert handle
     * whose updates are dropped (and scrape() reports the drop count).
     */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name);

    /** Set a string-valued metric (e.g. "store.device"). */
    void setLabel(const std::string &name, const std::string &value);

    /** Merge every shard into one consistent snapshot. */
    MetricsSnapshot scrape() const;

    /**
     * Zero every value (counters, gauges, histograms, labels) while
     * keeping all registrations — handles cached in function-local
     * statics at call sites stay valid.  Test-only.
     */
    void resetValues();

  private:
    MetricsRegistry() = default;

    enum class Kind : uint8_t
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Registration
    {
        Kind kind;
        uint32_t slot; ///< shard slot base, or gauge index
    };

    friend void detail::slotAdd(uint32_t slot, uint64_t delta);
    friend class Gauge;

    detail::Shard *shardForThisThread();
    bool allocate(Kind kind, const std::string &name,
                  std::size_t slots_needed, uint32_t &out);

    static std::atomic<bool> enabled_;

    static constexpr std::size_t kMaxGauges = 256;
    std::array<std::atomic<int64_t>, kMaxGauges> gauges_{};

    mutable std::mutex mutex_;
    std::map<std::string, Registration> byName_;
    std::map<std::string, std::string> labels_;
    std::vector<std::unique_ptr<detail::Shard>> shards_;
    uint32_t nextSlot_ = 0;
    uint32_t nextGauge_ = 0;
    uint64_t droppedRegistrations_ = 0;
};

/**
 * Escape @p s for inclusion inside a JSON string literal: quotes,
 * backslashes, and control characters (the device-name field is user
 * input and may contain any of them).
 */
std::string jsonEscape(const std::string &s);

} // namespace emprof::obs

#endif // EMPROF_OBS_METRICS_HPP
