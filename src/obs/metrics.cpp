#include "obs/metrics.hpp"

#include <cstdio>

namespace emprof::obs {

std::atomic<bool> MetricsRegistry::enabled_{false};

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: call sites cache handles in function-local
    // statics, and worker threads may record into their shards during
    // static destruction; a destructed registry would turn those into
    // use-after-free.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

detail::Shard *
MetricsRegistry::shardForThisThread()
{
    // One shard per (thread, process): only this thread writes its
    // slots, so updates are plain relaxed adds with no contention.
    // The registry owns the shard, so counts survive thread exit and
    // are still visible to later scrapes.
    thread_local detail::Shard *shard = nullptr;
    if (shard == nullptr) {
        const std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::make_unique<detail::Shard>());
        shard = shards_.back().get();
    }
    return shard;
}

namespace detail {

void
slotAdd(uint32_t slot, uint64_t delta)
{
    Shard *shard = MetricsRegistry::instance().shardForThisThread();
    shard->slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

} // namespace detail

void
Counter::add(uint64_t delta) const
{
    if (!MetricsRegistry::enabled() || !valid())
        return;
    detail::slotAdd(slot_, delta);
}

void
Histogram::observe(uint64_t value) const
{
    if (!MetricsRegistry::enabled() || !valid())
        return;
    detail::slotAdd(base_ + static_cast<uint32_t>(histogramBucket(value)),
                    1);
    detail::slotAdd(base_ + kHistogramBuckets, value);
}

void
Gauge::set(int64_t value) const
{
    if (!MetricsRegistry::enabled() || !valid())
        return;
    MetricsRegistry::instance().gauges_[index_].store(
        value, std::memory_order_relaxed);
}

void
Gauge::add(int64_t delta) const
{
    if (!MetricsRegistry::enabled() || !valid())
        return;
    MetricsRegistry::instance().gauges_[index_].fetch_add(
        delta, std::memory_order_relaxed);
}

void
Gauge::max(int64_t value) const
{
    if (!MetricsRegistry::enabled() || !valid())
        return;
    auto &cell = MetricsRegistry::instance().gauges_[index_];
    int64_t seen = cell.load(std::memory_order_relaxed);
    while (value > seen &&
           !cell.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

bool
MetricsRegistry::allocate(Kind kind, const std::string &name,
                          std::size_t slots_needed, uint32_t &out)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = byName_.find(name);
    if (it != byName_.end()) {
        if (it->second.kind != kind) {
            ++droppedRegistrations_; // name reused with another kind
            return false;
        }
        out = it->second.slot;
        return true;
    }
    if (kind == Kind::Gauge) {
        if (nextGauge_ >= kMaxGauges) {
            ++droppedRegistrations_;
            return false;
        }
        out = nextGauge_++;
    } else {
        if (nextSlot_ + slots_needed > detail::Shard::kCapacity) {
            ++droppedRegistrations_;
            return false;
        }
        out = nextSlot_;
        nextSlot_ += static_cast<uint32_t>(slots_needed);
    }
    byName_.emplace(name, Registration{kind, out});
    return true;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    Counter c;
    uint32_t slot = 0;
    if (allocate(Kind::Counter, name, 1, slot))
        c.slot_ = slot;
    return c;
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    Gauge g;
    uint32_t index = 0;
    if (allocate(Kind::Gauge, name, 1, index))
        g.index_ = index;
    return g;
}

Histogram
MetricsRegistry::histogram(const std::string &name)
{
    Histogram h;
    uint32_t base = 0;
    if (allocate(Kind::Histogram, name, kHistogramBuckets + 1, base))
        h.base_ = base;
    return h;
}

void
MetricsRegistry::setLabel(const std::string &name,
                          const std::string &value)
{
    if (!enabled())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    labels_[name] = value;
}

MetricsSnapshot
MetricsRegistry::scrape() const
{
    MetricsSnapshot snap;
    const std::lock_guard<std::mutex> lock(mutex_);

    const auto slotTotal = [&](uint32_t slot) {
        uint64_t total = 0;
        for (const auto &shard : shards_)
            total +=
                shard->slots[slot].load(std::memory_order_relaxed);
        return total;
    };

    for (const auto &[name, reg] : byName_) {
        switch (reg.kind) {
        case Kind::Counter:
            snap.counters[name] = slotTotal(reg.slot);
            break;
        case Kind::Gauge:
            snap.gauges[name] =
                gauges_[reg.slot].load(std::memory_order_relaxed);
            break;
        case Kind::Histogram: {
            MetricsSnapshot::HistogramValue h;
            for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
                h.buckets[b] =
                    slotTotal(reg.slot + static_cast<uint32_t>(b));
                h.count += h.buckets[b];
            }
            h.sum = slotTotal(reg.slot +
                              static_cast<uint32_t>(kHistogramBuckets));
            snap.histograms[name] = h;
            break;
        }
        }
    }
    snap.labels = labels_;
    snap.droppedRegistrations = droppedRegistrations_;
    return snap;
}

void
MetricsRegistry::resetValues()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_)
        for (auto &slot : shard->slots)
            slot.store(0, std::memory_order_relaxed);
    for (auto &g : gauges_)
        g.store(0, std::memory_order_relaxed);
    labels_.clear();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace emprof::obs
