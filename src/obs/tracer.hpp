/**
 * @file
 * Scoped-span tracer with Chrome trace_event export.
 *
 * Spans answer the question metrics cannot: not just "how long do
 * chunk analyses take on average" but "what did thread 3 do between
 * opening the capture and the stitch pass".  Each SpanScope records a
 * monotonic-clock interval with its enclosing span as parent (tracked
 * per thread, so nesting works across the analyzer's worker pool), and
 * the whole buffer exports as Chrome `trace_event` JSON — loadable in
 * chrome://tracing or Perfetto with per-thread swimlanes.
 *
 * Same overhead contract as the metrics registry: disabled (default),
 * a SpanScope costs one relaxed atomic load; enabled, it is two clock
 * reads plus one short mutex-protected append into a bounded ring
 * buffer (spans are per-stage/per-chunk, never per-sample, so the lock
 * is uncontended in practice and cheap at the frequencies involved —
 * the ring overwrites its oldest record once full, keeping memory
 * bounded on arbitrarily long runs).
 *
 * Span names and categories must be string literals (or otherwise
 * outlive the tracer): records store the pointers, not copies, which
 * keeps recording allocation-free.
 */

#ifndef EMPROF_OBS_TRACER_HPP
#define EMPROF_OBS_TRACER_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace emprof::obs {

/** One completed span. */
struct SpanRecord
{
    const char *name = "";
    const char *category = "";
    uint64_t startNs = 0; ///< monotonic, relative to tracer epoch
    uint64_t durationNs = 0;
    uint64_t id = 0;     ///< unique per span, 1-based
    uint64_t parent = 0; ///< enclosing span's id, 0 at top level
    uint32_t tid = 0;    ///< small dense thread number, 1-based
};

class Tracer
{
  public:
    static Tracer &instance();

    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Monotonic nanoseconds since the tracer's first use. */
    static uint64_t nowNs();

    /** Append one completed span (oldest is dropped when full). */
    void record(const SpanRecord &span);

    /** Completed spans, oldest first. */
    std::vector<SpanRecord> snapshot() const;

    /** Spans overwritten because the ring was full. */
    uint64_t droppedSpans() const;

    /** Ring capacity in spans. */
    std::size_t capacity() const;

    /** Shrink/grow the ring and clear it.  Test-only. */
    void resetForTest(std::size_t capacity = kDefaultCapacity);

    /** Dense 1-based id for the calling thread. */
    static uint32_t currentThreadNumber();

    /** Id of the innermost open span on this thread (0 if none). */
    static uint64_t currentSpan();

    static constexpr std::size_t kDefaultCapacity = 1u << 15;

  private:
    Tracer() = default;

    friend class SpanScope;

    /** Set the calling thread's open-span id, returning the old one. */
    static uint64_t exchangeCurrentSpan(uint64_t id);

    static std::atomic<bool> enabled_;

    std::atomic<uint64_t> nextId_{1};

    mutable std::mutex mutex_;
    std::vector<SpanRecord> ring_;
    std::size_t capacity_ = kDefaultCapacity;
    uint64_t total_ = 0; ///< spans ever recorded
};

/**
 * RAII span: records [construction, destruction) under @p name.
 * @p name and @p category must outlive the tracer (string literals).
 */
class SpanScope
{
  public:
    explicit SpanScope(const char *name, const char *category = "stage");
    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    bool active() const { return active_; }

  private:
    bool active_ = false;
    const char *name_ = "";
    const char *category_ = "";
    uint64_t startNs_ = 0;
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
};

} // namespace emprof::obs

#endif // EMPROF_OBS_TRACER_HPP
