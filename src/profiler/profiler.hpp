/**
 * @file
 * The EMPROF profiler facade (the paper's primary contribution).
 *
 * Pipeline, per Sec. IV: magnitude samples -> moving min/max
 * normalisation -> duration-thresholded dip detection -> event
 * classification (ordinary miss vs. refresh-coincident) -> report.
 * Everything is streaming, so the profiler can run in real time on an
 * SDR stream; a batch analyze() is provided for recorded signals.
 */

#ifndef EMPROF_PROFILER_PROFILER_HPP
#define EMPROF_PROFILER_PROFILER_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsp/types.hpp"
#include "profiler/dip_detector.hpp"
#include "profiler/events.hpp"
#include "profiler/normalizer.hpp"
#include "profiler/report.hpp"
#include "profiler/signal_quality.hpp"

namespace emprof::profiler {

/** Complete EMPROF configuration. */
struct EmProfConfig
{
    /** Target processor clock (Hz); converts durations to cycles. */
    double clockHz = 1.008e9;

    /** Signal sample rate (Hz); usually the receiver bandwidth. */
    double sampleRateHz = 40e6;

    /**
     * Normalisation envelope window in seconds.  Must exceed the
     * longest expected stall by a wide margin so the envelope always
     * sees busy level; 4 ms covers refresh-coincident stalls (2-3 us)
     * a thousand-fold.
     */
    double normWindowSeconds = 4e-3;

    /** Minimum window contrast to look for dips (see normaliser). */
    double minContrast = 0.2;

    /**
     * Dip entry/exit thresholds on the normalised signal.  A full
     * stall normalises to ~0 (the moving minimum IS the stall floor),
     * while even 1-IPC code sits well above 0.25; the gap between
     * enter and exit is hysteresis against edge noise.
     */
    double enterThreshold = 0.22;
    double exitThreshold = 0.38;

    /**
     * Duration threshold in nanoseconds: significantly shorter than
     * the memory latency, significantly longer than on-chip latencies
     * (Sec. IV).  60 ns ~= 60 cycles at 1 GHz.
     */
    double minStallNs = 60.0;

    /** Stalls at least this long are classified refresh-coincident. */
    double refreshStallNs = 1200.0;

    /**
     * Service-level attribution boundaries (duration bands, see
     * DESIGN.md §16).  Durations below llcHitMaxNs are attributed to
     * the LLC (a hit long enough to stall a dependent chain but far
     * below DRAM latency); durations in [llcHitMaxNs,
     * prefetchMaskedMaxNs) to a prefetch-masked miss (residual latency
     * of a line already in flight); [prefetchMaskedMaxNs,
     * refreshStallNs) to an ordinary DRAM demand miss; and
     * refreshStallNs and above to a refresh-lengthened DRAM access.
     * prefetchMaskedMaxNs == 0 disables the prefetch-masked band (no
     * prefetcher on the target): the DRAM band then starts at
     * llcHitMaxNs.
     */
    double llcHitMaxNs = 90.0;
    double prefetchMaskedMaxNs = 0.0;

    /**
     * Minimum dip width in samples regardless of minStallNs.  A dip
     * must contain several consecutive low samples to be
     * distinguishable from noise over multi-second captures; this is
     * the mechanism behind Sec. VI-B's bandwidth effect — at 20 MHz a
     * 4-sample requirement is ~200+ processor cycles, so the Alcatel's
     * short stalls become undetectable while very long stalls remain.
     */
    uint64_t minDurationFloorSamples = 4;

    /**
     * Signal-domain resilience layer (adaptive normalisation, segment
     * quarantine, per-event confidence).  Off by default: with
     * signal.enabled == false the pipeline is bit-identical to the
     * classic one.
     */
    SignalQualityConfig signal;

    /** Derived: envelope window in samples. */
    std::size_t
    normWindowSamples() const
    {
        const double w = normWindowSeconds * sampleRateHz;
        return w < 2.0 ? 2 : static_cast<std::size_t>(w);
    }

    /** Derived: minimum dip duration in samples.  Floored at two
     *  samples: a single low sample is indistinguishable from noise,
     *  which is what makes very narrow bandwidths lose short stalls
     *  (Sec. VI-B). */
    uint64_t
    minDurationSamples() const
    {
        const double s = minStallNs * 1e-9 * sampleRateHz;
        const auto from_ns =
            s < 1.0 ? uint64_t{1} : static_cast<uint64_t>(s + 0.5);
        return std::max(from_ns, minDurationFloorSamples);
    }

    /** Derived: adaptive pre-smoother length in samples (resilient
     *  path only).  About half the minimum dip duration, so a genuine
     *  dip still swings the smoothed signal, clamped to [2, 16]. */
    std::size_t
    smootherSamples() const
    {
        if (signal.smootherSamples != 0)
            return signal.smootherSamples;
        const uint64_t half = minDurationSamples() / 2;
        return static_cast<std::size_t>(
            std::clamp<uint64_t>(half, 2, 16));
    }

    /** Derived: quality-block length in samples. */
    std::size_t
    qualityBlockSamples() const
    {
        return signal.blockSamples != 0 ? signal.blockSamples
                                        : normWindowSamples();
    }

    /**
     * Derived: the duration threshold the dip detector actually uses.
     * The resilient path's pre-smoother widens every dip by up to
     * S - 1 samples of ramp, so the detector threshold is relaxed by
     * the same amount to keep the effective duration cut in raw
     * samples unchanged (floored at 2 — a single low sample is still
     * indistinguishable from noise).
     */
    uint64_t
    effectiveMinDurationSamples() const
    {
        const uint64_t base = minDurationSamples();
        if (!signal.enabled)
            return base;
        const uint64_t widen =
            static_cast<uint64_t>(smootherSamples()) - 1;
        return std::max<uint64_t>(
            base > widen ? base - widen : 0, 2);
    }

    /**
     * Derived: how many samples of history one output depends on —
     * the halo a parallel chunk must re-feed for bit parity.  Classic
     * path: the envelope window.  Resilient path: the envelope window
     * over smoothed values (each a function of the smoother window)
     * plus whole-block ownership of quality blocks.
     */
    std::size_t
    haloSamples() const
    {
        const std::size_t w = normWindowSamples();
        if (!signal.enabled)
            return w - 1;
        const std::size_t s = smootherSamples();
        const std::size_t q = qualityBlockSamples();
        return std::max(w + s - 2, q - 1);
    }

    /**
     * Check the config for values that would poison the analysis
     * (non-finite or non-positive rates, inverted hysteresis, negative
     * durations).  classifyStall and makeReport divide by
     * sampleRateHz / clockHz-derived quantities; an unvalidated config
     * would turn those into NaN/Inf event fields and a garbage report
     * rather than an error.  Callers with an error channel (the
     * analyzers, the tools) must validate before analysing.
     *
     * @param why Receives a one-line reason on failure.
     */
    bool validate(std::string *why = nullptr) const;

    /** Derived: the dip-detector thresholds this config implies. */
    DipDetectorConfig
    detectorConfig() const
    {
        DipDetectorConfig dc;
        dc.enterThreshold = enterThreshold;
        dc.exitThreshold = exitThreshold;
        dc.minDurationSamples = effectiveMinDurationSamples();
        return dc;
    }
};

/** Result of analysing a signal. */
struct ProfileResult
{
    std::vector<StallEvent> events;
    ProfileReport report;
};

/**
 * Convert a raw dip (sample indices + depth) into a classified stall:
 * duration in ns and cycles, ordinary miss vs. refresh-coincident.
 * Shared by the streaming facade and the parallel analyzer so both
 * paths classify identically.
 */
void classifyStall(StallEvent &ev, const EmProfConfig &config);

/**
 * Streaming EMPROF instance.
 */
class EmProf
{
  public:
    /** Live-event callback for online monitoring. */
    using EventCallback = std::function<void(const StallEvent &)>;

    explicit EmProf(const EmProfConfig &config);

    /**
     * Push one magnitude sample; completed events are appended to the
     * internal event list.
     *
     * @retval true An event was completed by this sample.
     */
    bool push(dsp::Sample magnitude);

    /**
     * Register a callback fired as each stall completes — this is how
     * a live deployment watches tail latencies as they happen (e.g.
     * alerting on refresh-coincident stalls in a real-time system)
     * instead of waiting for finish().
     */
    void
    onEvent(EventCallback callback)
    {
        callback_ = std::move(callback);
    }

    /** Flush any open dip and build the final report. */
    ProfileResult finish();

    /** Events completed so far (valid before finish() too). */
    const std::vector<StallEvent> &events() const { return events_; }

    /** Samples consumed so far. */
    uint64_t samplesSeen() const { return samples_; }

    const EmProfConfig &config() const { return config_; }

    /**
     * Batch convenience: analyse a whole recorded magnitude series.
     *
     * The series' own sample rate overrides config.sampleRateHz.
     */
    static ProfileResult analyze(const dsp::TimeSeries &magnitude,
                                 EmProfConfig config);

    /**
     * Batch convenience: analyse a recorded series on @p threads
     * worker threads (0 = hardware concurrency), producing events
     * bit-identical to analyze().  Short inputs fall back to the
     * streaming path automatically; see profiler/parallel_analyzer.hpp
     * for chunk-level control.  Implemented in parallel_analyzer.cpp.
     */
    static ProfileResult analyzeParallel(const dsp::TimeSeries &magnitude,
                                         EmProfConfig config,
                                         std::size_t threads = 0);

  private:
    /** Convert a raw dip into a classified stall event. */
    void classify(StallEvent &ev) const;

    /** Resilient-path per-sample work (adaptive norm + block stats). */
    double pushResilient(double magnitude);

    EmProfConfig config_;
    MovingMinMaxNormalizer normalizer_;
    DipDetector detector_;
    std::vector<StallEvent> events_;
    EventCallback callback_;
    uint64_t samples_ = 0;

    // Resilient path (unused when config.signal.enabled is false; the
    // hot path then costs one predicted branch).
    bool resilient_ = false;
    AdaptiveNormalizer adaptive_;
    BlockAccumulator blockAcc_;
    std::vector<SignalBlock> blocks_;
    uint64_t blockStart_ = 0;
    uint64_t blockLen_ = 0;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_PROFILER_HPP
