/**
 * @file
 * The EMPROF profiler facade (the paper's primary contribution).
 *
 * Pipeline, per Sec. IV: magnitude samples -> moving min/max
 * normalisation -> duration-thresholded dip detection -> event
 * classification (ordinary miss vs. refresh-coincident) -> report.
 * Everything is streaming, so the profiler can run in real time on an
 * SDR stream; a batch analyze() is provided for recorded signals.
 */

#ifndef EMPROF_PROFILER_PROFILER_HPP
#define EMPROF_PROFILER_PROFILER_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsp/types.hpp"
#include "profiler/dip_detector.hpp"
#include "profiler/events.hpp"
#include "profiler/normalizer.hpp"
#include "profiler/report.hpp"

namespace emprof::profiler {

/** Complete EMPROF configuration. */
struct EmProfConfig
{
    /** Target processor clock (Hz); converts durations to cycles. */
    double clockHz = 1.008e9;

    /** Signal sample rate (Hz); usually the receiver bandwidth. */
    double sampleRateHz = 40e6;

    /**
     * Normalisation envelope window in seconds.  Must exceed the
     * longest expected stall by a wide margin so the envelope always
     * sees busy level; 4 ms covers refresh-coincident stalls (2-3 us)
     * a thousand-fold.
     */
    double normWindowSeconds = 4e-3;

    /** Minimum window contrast to look for dips (see normaliser). */
    double minContrast = 0.2;

    /**
     * Dip entry/exit thresholds on the normalised signal.  A full
     * stall normalises to ~0 (the moving minimum IS the stall floor),
     * while even 1-IPC code sits well above 0.25; the gap between
     * enter and exit is hysteresis against edge noise.
     */
    double enterThreshold = 0.22;
    double exitThreshold = 0.38;

    /**
     * Duration threshold in nanoseconds: significantly shorter than
     * the memory latency, significantly longer than on-chip latencies
     * (Sec. IV).  60 ns ~= 60 cycles at 1 GHz.
     */
    double minStallNs = 60.0;

    /** Stalls at least this long are classified refresh-coincident. */
    double refreshStallNs = 1200.0;

    /**
     * Minimum dip width in samples regardless of minStallNs.  A dip
     * must contain several consecutive low samples to be
     * distinguishable from noise over multi-second captures; this is
     * the mechanism behind Sec. VI-B's bandwidth effect — at 20 MHz a
     * 4-sample requirement is ~200+ processor cycles, so the Alcatel's
     * short stalls become undetectable while very long stalls remain.
     */
    uint64_t minDurationFloorSamples = 4;

    /** Derived: envelope window in samples. */
    std::size_t
    normWindowSamples() const
    {
        const double w = normWindowSeconds * sampleRateHz;
        return w < 2.0 ? 2 : static_cast<std::size_t>(w);
    }

    /** Derived: minimum dip duration in samples.  Floored at two
     *  samples: a single low sample is indistinguishable from noise,
     *  which is what makes very narrow bandwidths lose short stalls
     *  (Sec. VI-B). */
    uint64_t
    minDurationSamples() const
    {
        const double s = minStallNs * 1e-9 * sampleRateHz;
        const auto from_ns =
            s < 1.0 ? uint64_t{1} : static_cast<uint64_t>(s + 0.5);
        return std::max(from_ns, minDurationFloorSamples);
    }

    /**
     * Check the config for values that would poison the analysis
     * (non-finite or non-positive rates, inverted hysteresis, negative
     * durations).  classifyStall and makeReport divide by
     * sampleRateHz / clockHz-derived quantities; an unvalidated config
     * would turn those into NaN/Inf event fields and a garbage report
     * rather than an error.  Callers with an error channel (the
     * analyzers, the tools) must validate before analysing.
     *
     * @param why Receives a one-line reason on failure.
     */
    bool validate(std::string *why = nullptr) const;

    /** Derived: the dip-detector thresholds this config implies. */
    DipDetectorConfig
    detectorConfig() const
    {
        DipDetectorConfig dc;
        dc.enterThreshold = enterThreshold;
        dc.exitThreshold = exitThreshold;
        dc.minDurationSamples = minDurationSamples();
        return dc;
    }
};

/** Result of analysing a signal. */
struct ProfileResult
{
    std::vector<StallEvent> events;
    ProfileReport report;
};

/**
 * Convert a raw dip (sample indices + depth) into a classified stall:
 * duration in ns and cycles, ordinary miss vs. refresh-coincident.
 * Shared by the streaming facade and the parallel analyzer so both
 * paths classify identically.
 */
void classifyStall(StallEvent &ev, const EmProfConfig &config);

/**
 * Streaming EMPROF instance.
 */
class EmProf
{
  public:
    /** Live-event callback for online monitoring. */
    using EventCallback = std::function<void(const StallEvent &)>;

    explicit EmProf(const EmProfConfig &config);

    /**
     * Push one magnitude sample; completed events are appended to the
     * internal event list.
     *
     * @retval true An event was completed by this sample.
     */
    bool push(dsp::Sample magnitude);

    /**
     * Register a callback fired as each stall completes — this is how
     * a live deployment watches tail latencies as they happen (e.g.
     * alerting on refresh-coincident stalls in a real-time system)
     * instead of waiting for finish().
     */
    void
    onEvent(EventCallback callback)
    {
        callback_ = std::move(callback);
    }

    /** Flush any open dip and build the final report. */
    ProfileResult finish();

    /** Events completed so far (valid before finish() too). */
    const std::vector<StallEvent> &events() const { return events_; }

    /** Samples consumed so far. */
    uint64_t samplesSeen() const { return samples_; }

    const EmProfConfig &config() const { return config_; }

    /**
     * Batch convenience: analyse a whole recorded magnitude series.
     *
     * The series' own sample rate overrides config.sampleRateHz.
     */
    static ProfileResult analyze(const dsp::TimeSeries &magnitude,
                                 EmProfConfig config);

    /**
     * Batch convenience: analyse a recorded series on @p threads
     * worker threads (0 = hardware concurrency), producing events
     * bit-identical to analyze().  Short inputs fall back to the
     * streaming path automatically; see profiler/parallel_analyzer.hpp
     * for chunk-level control.  Implemented in parallel_analyzer.cpp.
     */
    static ProfileResult analyzeParallel(const dsp::TimeSeries &magnitude,
                                         EmProfConfig config,
                                         std::size_t threads = 0);

  private:
    /** Convert a raw dip into a classified stall event. */
    void classify(StallEvent &ev) const;

    EmProfConfig config_;
    MovingMinMaxNormalizer normalizer_;
    DipDetector detector_;
    std::vector<StallEvent> events_;
    EventCallback callback_;
    uint64_t samples_ = 0;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_PROFILER_HPP
