/**
 * @file
 * Spectral code attribution (Sec. VI-D, Fig. 14, Table V).
 *
 * Distinct loop-level regions of a program have distinct activity
 * periodicities, so their short-term spectra differ (the basis of
 * Spectral Profiling).  This module segments the signal into regions
 * by detecting jumps in frame-to-frame spectral distance, labels
 * regions with matching signatures identically, and then attributes
 * EMPROF's stall events to the region they occur in — producing the
 * per-function miss/stall table the paper shows for `parser`.
 */

#ifndef EMPROF_PROFILER_ATTRIBUTION_HPP
#define EMPROF_PROFILER_ATTRIBUTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/stft.hpp"
#include "dsp/types.hpp"
#include "profiler/events.hpp"

namespace emprof::profiler {

/** Attribution tuning. */
struct AttributionConfig
{
    /** STFT parameters for the spectrogram. */
    dsp::StftConfig stft{1024, 512, 0, dsp::WindowKind::Hann};

    /** Frames averaged into each signature (noise suppression). */
    std::size_t smoothFrames = 8;

    /** Cosine distance above which a boundary is declared. */
    double changeThreshold = 0.18;

    /** Minimum region length in frames (shorter ones are merged). */
    std::size_t minRegionFrames = 16;

    /** Signature distance below which two regions share a label. */
    double labelMergeThreshold = 0.10;
};

/** One attributed code region. */
struct CodeRegion
{
    /** First STFT frame of the region. */
    std::size_t startFrame = 0;

    /** One past the last frame. */
    std::size_t endFrame = 0;

    /** Start/end in signal samples. */
    uint64_t startSample = 0;
    uint64_t endSample = 0;

    /** Start/end in seconds. */
    double startTime = 0.0;
    double endTime = 0.0;

    /** Label: regions with the same spectral signature share one. */
    std::size_t label = 0;

    /** Mean spectral signature (unit norm, DC excluded). */
    std::vector<double> signature;

    /**
     * Dominant activity periodicity of the region, in Hz — the
     * strongest non-DC component of its signature, i.e. the region's
     * main loop frequency.  This is the hook for the finer,
     * loop-granularity attribution the paper defers to Spectral
     * Profiling (Sec. VI-D): regions sharing a function but differing
     * in loop rate can be told apart by it.
     */
    double dominantFrequencyHz = 0.0;
};

/** Table V row: per-region profile. */
struct RegionProfile
{
    CodeRegion region;

    /** Stall events attributed to the region. */
    uint64_t totalMisses = 0;

    /** Miss rate per million cycles. */
    double missRatePerMCycles = 0.0;

    /** Memory-stall cycles as % of the region's cycles. */
    double memStallPercent = 0.0;

    /** Mean stall latency in cycles. */
    double avgMissLatencyCycles = 0.0;

    /** Fraction of total execution time spent in the region. */
    double timeSharePercent = 0.0;
};

/**
 * Spectral segmentation + event attribution.
 */
class SpectralAttributor
{
  public:
    explicit SpectralAttributor(const AttributionConfig &config = {});

    /**
     * Segment a magnitude signal into spectrally homogeneous regions.
     */
    std::vector<CodeRegion> segment(const dsp::TimeSeries &magnitude) const;

    /**
     * Attribute stall events to regions and compute Table V metrics.
     *
     * @param regions Segmented regions.
     * @param events EMPROF's detected events (same signal).
     * @param sample_rate_hz Signal sample rate.
     * @param clock_hz Target clock for cycle conversion.
     */
    std::vector<RegionProfile> attribute(
        const std::vector<CodeRegion> &regions,
        const std::vector<StallEvent> &events, double sample_rate_hz,
        double clock_hz) const;

    const AttributionConfig &config() const { return config_; }

    /** Render region profiles as a Table-V-style text table. */
    static std::string toText(const std::vector<RegionProfile> &profiles,
                              const std::vector<std::string> &names = {});

  private:
    AttributionConfig config_;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_ATTRIBUTION_HPP
