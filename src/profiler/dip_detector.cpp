#include "profiler/dip_detector.hpp"

namespace emprof::profiler {

DipDetector::DipDetector(const DipDetectorConfig &config) : config_(config)
{}

void
DipDetector::fillEvent(StallEvent &out) const
{
    out = StallEvent{};
    out.startSample = dipStart_;
    out.endSample = dipLastBelowExit_;
    out.depth = depthCount_ == 0
                    ? 0.0
                    : depthSum_ / static_cast<double>(depthCount_);
}

bool
DipDetector::push(double normalized, StallEvent &out)
{
    const uint64_t i = index_++;
    bool emitted = false;

    if (!inDip_) {
        if (normalized < config_.enterThreshold) {
            inDip_ = true;
            dipStart_ = i;
            dipLastBelowExit_ = i;
            depthSum_ = normalized;
            depthCount_ = 1;
        }
        return false;
    }

    if (normalized > config_.exitThreshold) {
        // Dip ended at the last sample that was still below exit.
        if (dipLastBelowExit_ - dipStart_ + 1 >=
            config_.minDurationSamples) {
            fillEvent(out);
            emitted = true;
        }
        inDip_ = false;
        depthSum_ = 0.0;
        depthCount_ = 0;
    } else {
        dipLastBelowExit_ = i;
        depthSum_ += normalized;
        ++depthCount_;
    }
    return emitted;
}

DipDetector::DipState
DipDetector::state() const
{
    DipState s;
    s.inDip = inDip_;
    s.start = dipStart_;
    s.lastBelowExit = dipLastBelowExit_;
    s.depthSum = depthSum_;
    s.depthCount = depthCount_;
    return s;
}

bool
DipDetector::finish(StallEvent &out)
{
    if (!inDip_)
        return false;
    inDip_ = false;
    if (dipLastBelowExit_ - dipStart_ + 1 < config_.minDurationSamples)
        return false;
    fillEvent(out);
    return true;
}

} // namespace emprof::profiler
