#include "profiler/dip_detector.hpp"

#include "obs/metrics.hpp"

namespace emprof::profiler {

namespace {

// Dip bookkeeping runs once per dip *close* — orders of magnitude
// rarer than the per-sample push path, so a guarded counter update
// here stays invisible in the throughput bench.
void
countDipOutcome(bool kept, bool at_finish)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    static const obs::Counter found =
        registry.counter("detector.dips_found");
    static const obs::Counter rejected_short =
        registry.counter("detector.dips_rejected.short_duration");
    static const obs::Counter flushed =
        registry.counter("detector.dips_flushed_at_end");
    if (kept) {
        found.inc();
        if (at_finish)
            flushed.inc();
    } else {
        rejected_short.inc();
    }
}

} // namespace

DipDetector::DipDetector(const DipDetectorConfig &config) : config_(config)
{}

void
DipDetector::fillEvent(StallEvent &out) const
{
    out = StallEvent{};
    out.startSample = dipStart_;
    out.endSample = dipLastBelowExit_;
    out.depth = depthCount_ == 0
                    ? 0.0
                    : depthSum_ / static_cast<double>(depthCount_);
}

bool
DipDetector::closeDip(StallEvent &out)
{
    // Dip ended at the last sample that was still below exit.
    bool emitted = false;
    if (dipLastBelowExit_ - dipStart_ + 1 >=
        config_.minDurationSamples) {
        fillEvent(out);
        emitted = true;
    }
    countDipOutcome(emitted, false);
    inDip_ = false;
    depthSum_ = 0.0;
    depthCount_ = 0;
    return emitted;
}

DipDetector::DipState
DipDetector::state() const
{
    DipState s;
    s.inDip = inDip_;
    s.start = dipStart_;
    s.lastBelowExit = dipLastBelowExit_;
    s.depthSum = depthSum_;
    s.depthCount = depthCount_;
    return s;
}

bool
DipDetector::finish(StallEvent &out)
{
    if (!inDip_)
        return false;
    inDip_ = false;
    if (dipLastBelowExit_ - dipStart_ + 1 < config_.minDurationSamples) {
        countDipOutcome(false, true);
        return false;
    }
    fillEvent(out);
    countDipOutcome(true, true);
    return true;
}

} // namespace emprof::profiler
