/**
 * @file
 * Naive fixed-threshold detector — a strawman baseline for EMPROF's
 * normalisation (Sec. IV).
 *
 * The obvious way to find stalls is to threshold the magnitude
 * directly.  It works while the setup is perfectly still, and fails
 * exactly the way the paper warns: probe position and supply voltage
 * scale the whole signal by slowly drifting multiplicative factors, so
 * any absolute threshold eventually sits above the busy level (flagging
 * everything) or below the stall floor (flagging nothing).  The
 * ablation bench runs this detector against EMPROF under increasing
 * gain drift.
 */

#ifndef EMPROF_PROFILER_NAIVE_THRESHOLD_HPP
#define EMPROF_PROFILER_NAIVE_THRESHOLD_HPP

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"
#include "profiler/events.hpp"

namespace emprof::profiler {

/** Configuration of the naive detector. */
struct NaiveThresholdConfig
{
    /** Absolute magnitude below which a stall is assumed.  Must be
     *  calibrated to the capture setup by hand — the whole problem. */
    double threshold = 0.6;

    /** Minimum dip width in samples (same semantics as EMPROF). */
    uint64_t minDurationSamples = 4;

    /** Target clock for duration conversion. */
    double clockHz = 1.008e9;
};

/**
 * Calibrate the naive threshold from the first samples of a capture:
 * halfway between the observed floor and ceiling — the best case this
 * approach can hope for.
 *
 * @param magnitude Captured signal.
 * @param calibration_samples Prefix used for calibration.
 */
double calibrateNaiveThreshold(const dsp::TimeSeries &magnitude,
                               std::size_t calibration_samples);

/**
 * Run the naive detector over a recorded signal.
 */
std::vector<StallEvent> naiveDetect(const dsp::TimeSeries &magnitude,
                                    const NaiveThresholdConfig &config);

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_NAIVE_THRESHOLD_HPP
