#include "profiler/profiler.hpp"

namespace emprof::profiler {

void
classifyStall(StallEvent &ev, const EmProfConfig &config)
{
    const double sample_ns = 1e9 / config.sampleRateHz;
    ev.durationNs = static_cast<double>(ev.durationSamples()) * sample_ns;
    ev.stallCycles = ev.durationNs * 1e-9 * config.clockHz;
    ev.kind = ev.durationNs >= config.refreshStallNs
                  ? StallKind::RefreshCoincident
                  : StallKind::LlcMiss;
}

EmProf::EmProf(const EmProfConfig &config)
    : config_(config),
      normalizer_(config.normWindowSamples(), config.minContrast),
      detector_(config.detectorConfig())
{}

void
EmProf::classify(StallEvent &ev) const
{
    classifyStall(ev, config_);
}

bool
EmProf::push(dsp::Sample magnitude)
{
    ++samples_;
    const double normalized = normalizer_.push(magnitude);
    StallEvent ev;
    if (detector_.push(normalized, ev)) {
        classify(ev);
        events_.push_back(ev);
        if (callback_)
            callback_(events_.back());
        return true;
    }
    return false;
}

ProfileResult
EmProf::finish()
{
    StallEvent ev;
    if (detector_.finish(ev)) {
        classify(ev);
        events_.push_back(ev);
    }

    ProfileResult result;
    result.events = events_;
    result.report = makeReport(events_, config_.sampleRateHz,
                               config_.clockHz, samples_);
    return result;
}

ProfileResult
EmProf::analyze(const dsp::TimeSeries &magnitude, EmProfConfig config)
{
    if (magnitude.sampleRateHz > 0.0)
        config.sampleRateHz = magnitude.sampleRateHz;
    EmProf prof(config);
    for (dsp::Sample s : magnitude.samples)
        prof.push(s);
    return prof.finish();
}

} // namespace emprof::profiler
