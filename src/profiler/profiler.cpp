#include "profiler/profiler.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"

namespace emprof::profiler {

namespace {

// Sample/event totals are added once per batch (never per sample) so
// the streaming hot loop stays untouched.
void
countAnalyzed(uint64_t samples, std::size_t events)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    static const obs::Counter samples_processed =
        registry.counter("profiler.samples_processed");
    static const obs::Counter events_emitted =
        registry.counter("profiler.events_emitted");
    samples_processed.add(samples);
    events_emitted.add(events);
}

} // namespace

bool
EmProfConfig::validate(std::string *why) const
{
    const auto bad = [&](const char *reason) {
        if (why != nullptr)
            *why = reason;
        return false;
    };
    if (!std::isfinite(sampleRateHz) || sampleRateHz <= 0.0)
        return bad("sampleRateHz must be finite and > 0");
    if (!std::isfinite(clockHz) || clockHz <= 0.0)
        return bad("clockHz must be finite and > 0");
    if (!std::isfinite(normWindowSeconds) || normWindowSeconds <= 0.0)
        return bad("normWindowSeconds must be finite and > 0");
    if (!std::isfinite(minContrast) || minContrast < 0.0)
        return bad("minContrast must be finite and >= 0");
    if (!std::isfinite(enterThreshold) || !std::isfinite(exitThreshold))
        return bad("dip thresholds must be finite");
    if (enterThreshold > exitThreshold)
        return bad("enterThreshold must not exceed exitThreshold "
                   "(hysteresis would invert)");
    if (!std::isfinite(minStallNs) || minStallNs < 0.0)
        return bad("minStallNs must be finite and >= 0");
    if (!std::isfinite(refreshStallNs) || refreshStallNs < 0.0)
        return bad("refreshStallNs must be finite and >= 0");
    if (!std::isfinite(llcHitMaxNs) || llcHitMaxNs < 0.0)
        return bad("llcHitMaxNs must be finite and >= 0");
    if (!std::isfinite(prefetchMaskedMaxNs) || prefetchMaskedMaxNs < 0.0)
        return bad("prefetchMaskedMaxNs must be finite and >= 0");
    if (llcHitMaxNs > refreshStallNs)
        return bad("llcHitMaxNs must not exceed refreshStallNs "
                   "(level bands would invert)");
    if (prefetchMaskedMaxNs > 0.0 &&
        (prefetchMaskedMaxNs < llcHitMaxNs ||
         prefetchMaskedMaxNs > refreshStallNs))
        return bad("prefetchMaskedMaxNs must lie between llcHitMaxNs "
                   "and refreshStallNs (level bands would invert)");
    if (!signal.validate(why))
        return false;
    return true;
}

const char *
serviceLevelName(ServiceLevel level)
{
    switch (level) {
    case ServiceLevel::LlcHit:
        return "llc-hit";
    case ServiceLevel::PrefetchMasked:
        return "prefetch-masked";
    case ServiceLevel::Dram:
        return "dram";
    case ServiceLevel::DramRefresh:
        return "dram-refresh";
    }
    return "unknown";
}

namespace {

// Confidence contribution of one band boundary: log2 distance of the
// measured duration from it, saturating at a factor of two.  Exactly on
// a boundary -> 0; ambiguous durations score low on whichever side they
// land.
double
boundaryConfidence(double duration_ns, double boundary_ns)
{
    if (boundary_ns <= 0.0)
        return 1.0;
    if (duration_ns <= 0.0)
        return 0.0;
    const double dist = std::fabs(std::log2(duration_ns / boundary_ns));
    return dist < 1.0 ? dist : 1.0;
}

} // namespace

void
classifyStall(StallEvent &ev, const EmProfConfig &config)
{
    // Belt-and-braces for callers without an error channel: a config
    // that validate() would reject yields zeroed fields, never NaN.
    // The post-hoc check below catches configs that pass the entry
    // check but still overflow the arithmetic (e.g. a denormal sample
    // rate turning sample_ns infinite).
    const auto reject = [&ev] {
        ev.durationNs = 0.0;
        ev.stallCycles = 0.0;
        ev.kind = StallKind::LlcMiss;
        ev.level = ServiceLevel::LlcHit;
        ev.levelConfidence = 0.0;
    };
    if (!std::isfinite(config.sampleRateHz) ||
        config.sampleRateHz <= 0.0 || !std::isfinite(config.clockHz)) {
        reject();
        return;
    }
    const double sample_ns = 1e9 / config.sampleRateHz;
    ev.durationNs = static_cast<double>(ev.durationSamples()) * sample_ns;
    ev.stallCycles = ev.durationNs * 1e-9 * config.clockHz;
    if (!std::isfinite(ev.durationNs) || !std::isfinite(ev.stallCycles)) {
        reject();
        return;
    }
    ev.kind = ev.durationNs >= config.refreshStallNs
                  ? StallKind::RefreshCoincident
                  : StallKind::LlcMiss;

    // Service-level attribution: duration bands ordered by latency.
    // The DRAM band starts at the prefetch boundary when the target
    // has a prefetcher, at the LLC boundary otherwise.
    const double dram_min_ns = config.prefetchMaskedMaxNs > 0.0
                                   ? config.prefetchMaskedMaxNs
                                   : config.llcHitMaxNs;
    if (ev.durationNs >= config.refreshStallNs)
        ev.level = ServiceLevel::DramRefresh;
    else if (ev.durationNs >= dram_min_ns)
        ev.level = ServiceLevel::Dram;
    else if (ev.durationNs >= config.llcHitMaxNs)
        ev.level = ServiceLevel::PrefetchMasked;
    else
        ev.level = ServiceLevel::LlcHit;

    double conf = boundaryConfidence(ev.durationNs, config.refreshStallNs);
    conf = std::min(
        conf, boundaryConfidence(ev.durationNs, config.llcHitMaxNs));
    conf = std::min(conf, boundaryConfidence(ev.durationNs,
                                             config.prefetchMaskedMaxNs));
    ev.levelConfidence = conf;
}

EmProf::EmProf(const EmProfConfig &config)
    : config_(config),
      normalizer_(config.normWindowSamples(), config.minContrast),
      detector_(config.detectorConfig()),
      resilient_(config.signal.enabled),
      // When the resilience layer is off the adaptive normaliser is
      // never pushed; size it trivially so it costs no memory.
      adaptive_(config.signal.enabled ? config.normWindowSamples() : 1,
                config.signal.enabled ? config.smootherSamples() : 1,
                config.signal.driftToleranceFraction > 0.0
                    ? config.signal.driftToleranceFraction
                    : 0.05,
                config.minContrast),
      blockLen_(config.signal.enabled ? config.qualityBlockSamples()
                                      : 0)
{}

void
EmProf::classify(StallEvent &ev) const
{
    classifyStall(ev, config_);
}

double
EmProf::pushResilient(double magnitude)
{
    const uint64_t idx = samples_;
    if (idx == 0) {
        blockAcc_.begin(0);
    } else if (idx - blockStart_ == blockLen_) {
        blocks_.push_back(blockAcc_.finish(idx, config_.signal));
        blockAcc_.begin(idx);
        blockStart_ = idx;
    }
    blockAcc_.push(magnitude);
    return adaptive_.push(magnitude);
}

bool
EmProf::push(dsp::Sample magnitude)
{
    const double m = magnitude;
    // One predicted branch keeps the classic hot path untouched.
    const double normalized =
        resilient_ ? pushResilient(m) : normalizer_.push(m);
    ++samples_;
    StallEvent ev;
    if (detector_.push(normalized, ev)) {
        classify(ev);
        events_.push_back(ev);
        if (callback_)
            callback_(events_.back());
        return true;
    }
    return false;
}

ProfileResult
EmProf::finish()
{
    StallEvent ev;
    if (detector_.finish(ev)) {
        classify(ev);
        events_.push_back(ev);
    }

    ProfileResult result;
    result.events = events_;
    SignalQualitySummary quality;
    if (resilient_) {
        if (samples_ > 0)
            blocks_.push_back(
                blockAcc_.finish(samples_, config_.signal));
        quality = applySignalQuality(result.events, blocks_,
                                     config_.detectorConfig(),
                                     config_.signal, samples_);
    }
    result.report = makeReport(result.events, config_.sampleRateHz,
                               config_.clockHz, samples_);
    result.report.quality = quality;
    return result;
}

ProfileResult
EmProf::analyze(const dsp::TimeSeries &magnitude, EmProfConfig config)
{
    EMPROF_OBS_STAGE("analyze.streaming");
    if (magnitude.sampleRateHz > 0.0)
        config.sampleRateHz = magnitude.sampleRateHz;
    EmProf prof(config);
    for (dsp::Sample s : magnitude.samples)
        prof.push(s);
    ProfileResult result = prof.finish();
    countAnalyzed(prof.samplesSeen(), result.events.size());
    return result;
}

} // namespace emprof::profiler
