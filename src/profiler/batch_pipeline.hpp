/**
 * @file
 * Per-chunk batch analysis: the vectorised envelope -> normalise ->
 * dip-detect hot path behind the parallel analyzer.
 *
 * A chunk is the unit of parallel work: samples [begin, end) plus a
 * halo of preceding samples that warms the normaliser.  Two
 * implementations produce a ChunkResult:
 *
 *  - analyzeChunkStreaming — the reference: a fresh streaming
 *    normaliser + dip detector fed sample by sample.  This is the
 *    scalar fallback and the semantics oracle; every other path is
 *    defined as "bit-identical to this for finite inputs".
 *  - analyzeChunkBatchAvx2 — the AVX2 kernel (compiled only without
 *    EMPROF_DISABLE_SIMD).  Envelope extrema come from a vectorised
 *    VHGW block scan; most samples are disposed of by a *screen* pass
 *    that proves 8 (classic) / 4 (resilient) samples at a time cannot
 *    be below the dip-entry threshold, with a conservative margin;
 *    samples that survive the screen take an exact path that
 *    reproduces the streaming normalisation arithmetic operation for
 *    operation (double precision, same rounding, no FMA).
 *
 * Parity contract: for finite input samples the two implementations
 * return bit-identical ChunkResults (events, prefix norms, open-dip
 * state, quality blocks).  The screen never skips a sample whose
 * normalised value could be below 1.05x the entry threshold, and
 * skipped samples are exactly the ones the streaming detector treats
 * as no-ops, so even the detector's internal accumulators match.  NaN
 * inputs: sliding extrema of a window containing NaN are
 * fold-order-dependent, so the batch path may diverge from streaming
 * (same caveat as dsp::slidingMinMaxBatch); no capture format produces
 * NaN magnitudes.
 *
 * analyzeChunkAuto dispatches: AVX2 kernel when compiled in, the CPU
 * has AVX2 and EMPROF_SIMD does not force "scalar"; the streaming
 * reference otherwise.
 *
 * fastMath (opt-in, --fast-math-simd): the classic kernel's exact-path
 * normalisation runs in single precision (8-wide float divide) instead
 * of double.  Normalised values then differ from the reference by at
 * most ~2 float ULP (relative ~2.4e-7), so a sample whose normalised
 * value lies within that margin of the enter/exit threshold can flip a
 * dip boundary by one sample.  The resilient kernel ignores the flag
 * (its log-grid snap is already the cost centre, not the divide).
 */

#ifndef EMPROF_PROFILER_BATCH_PIPELINE_HPP
#define EMPROF_PROFILER_BATCH_PIPELINE_HPP

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"
#include "profiler/dip_detector.hpp"
#include "profiler/profiler.hpp"
#include "profiler/signal_quality.hpp"

namespace emprof::profiler {

/**
 * Everything one chunk contributes to the stitch pass.
 *
 * All sample indices are global (capture-relative).  `prefixNorms`
 * holds the normalised values of the chunk's prefix — the leading run
 * of samples at or below the exit threshold — which is exactly the set
 * of samples that would extend a dip left open by the previous chunk.
 */
struct ChunkResult
{
    uint64_t begin = 0;
    uint64_t end = 0;
    std::vector<double> prefixNorms;
    std::vector<StallEvent> events;  // raw dips, unclassified
    std::vector<SignalBlock> blocks; // quality blocks owned here
    DipDetector::DipState open;      // dip still open at chunk end
};

/** True when analyzeChunkAuto will run the AVX2 batch kernel. */
bool batchPipelineActive();

/**
 * Analyse samples [begin, end) of a chunk; dispatches to the AVX2
 * batch kernel or the streaming reference (see file comment).
 *
 * @param data Sample storage; data[i - dataBegin] is global sample i.
 *        Must cover at least [begin - halo, end), where the halo is
 *        min(begin, config.haloSamples()).
 * @param is_final True for the last chunk, which additionally owns the
 *        trailing partial quality block.
 * @param fastMath Allow the reduced-precision normalise (see above).
 */
ChunkResult analyzeChunkAuto(const dsp::Sample *data, uint64_t dataBegin,
                             uint64_t begin, uint64_t end, bool is_final,
                             const EmProfConfig &config,
                             bool fastMath = false);

namespace detail {

/** The streaming reference implementation (always available). */
ChunkResult analyzeChunkStreaming(const dsp::Sample *data,
                                  uint64_t dataBegin, uint64_t begin,
                                  uint64_t end, bool is_final,
                                  const EmProfConfig &config);

#if !defined(EMPROF_DISABLE_SIMD)
/** The AVX2 kernel (batch_pipeline_avx2.cpp; call only when
 *  dsp::avx2Available()).  Exposed for the parity tests. */
ChunkResult analyzeChunkBatchAvx2(const dsp::Sample *data,
                                  uint64_t dataBegin, uint64_t begin,
                                  uint64_t end, bool is_final,
                                  const EmProfConfig &config,
                                  bool fastMath);
#endif

} // namespace detail

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_BATCH_PIPELINE_HPP
