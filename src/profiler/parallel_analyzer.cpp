#include "profiler/parallel_analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "profiler/dip_detector.hpp"
#include "profiler/normalizer.hpp"
#include "profiler/report.hpp"
#include "profiler/signal_quality.hpp"
#include "store/capture_reader.hpp"

namespace emprof::profiler {

namespace {

/** Batched (per analysis, never per sample) result accounting. */
void
countParallelAnalyzed(uint64_t samples, std::size_t events)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    static const obs::Counter samples_processed =
        registry.counter("profiler.samples_processed");
    static const obs::Counter events_emitted =
        registry.counter("profiler.events_emitted");
    samples_processed.add(samples);
    events_emitted.add(events);
}

/**
 * Everything one chunk contributes to the stitch pass.
 *
 * All sample indices are global (capture-relative).  `prefixNorms`
 * holds the normalised values of the chunk's prefix — the leading run
 * of samples at or below the exit threshold — which is exactly the set
 * of samples that would extend a dip left open by the previous chunk.
 */
struct ChunkResult
{
    uint64_t begin = 0;
    uint64_t end = 0;
    std::vector<double> prefixNorms;
    std::vector<StallEvent> events;       // raw dips, unclassified
    std::vector<SignalBlock> blocks;      // quality blocks owned here
    DipDetector::DipState open;           // dip still open at chunk end
};

/**
 * Analyse samples [begin, end): re-feed the halo to warm the
 * normaliser, then run a fresh dip detector over the chunk, recording
 * the prefix and the end-of-chunk open-dip state for the stitcher.
 *
 * @param data Sample storage; data[i - dataBegin] is global sample i.
 *        Must cover at least [begin - halo, end), where the halo is
 *        min(begin, config.haloSamples()) — the in-memory path passes
 *        the whole capture (dataBegin 0), the EMCAP path passes just
 *        the task's decoded span.
 * @param is_final True for the last chunk, which additionally owns the
 *        trailing partial quality block.
 */
ChunkResult
analyzeChunk(const dsp::Sample *data, uint64_t dataBegin, uint64_t begin,
             uint64_t end, bool is_final, const EmProfConfig &config)
{
    // Per-worker chunk timing: the span carries the worker's thread
    // number, the stage histogram aggregates the distribution.
    EMPROF_OBS_STAGE("analyzer.chunk");
    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        static const obs::Counter chunks =
            registry.counter("analyzer.chunks_analyzed");
        static const obs::Counter normalized =
            registry.counter("normalizer.samples_normalized");
        chunks.inc();
        normalized.add(end - begin);
    }

    ChunkResult r;
    r.begin = begin;
    r.end = end;

    const std::size_t window = config.normWindowSamples();
    const bool resilient = config.signal.enabled;
    const uint64_t halo = std::min<uint64_t>(begin, config.haloSamples());
    const auto at = [&](uint64_t i) {
        return data[static_cast<std::size_t>(i - dataBegin)];
    };

    // Warm whichever normaliser this config uses by re-feeding the
    // halo: both are pure functions of a bounded trailing history
    // (haloSamples() covers it), so the values from `begin` on are
    // bit-identical to streaming.
    MovingMinMaxNormalizer classic(window, config.minContrast);
    AdaptiveNormalizer adaptive(
        resilient ? window : 1, resilient ? config.smootherSamples() : 1,
        config.signal.driftToleranceFraction > 0.0
            ? config.signal.driftToleranceFraction
            : 0.05,
        config.minContrast);
    const auto norm = [&](double x) {
        return resilient ? adaptive.push(x) : classic.push(x);
    };
    for (uint64_t i = begin - halo; i < begin; ++i)
        norm(at(i));

    DipDetector detector(config.detectorConfig());
    bool in_prefix = true;
    StallEvent ev;
    for (uint64_t i = begin; i < end; ++i) {
        const double normalized = norm(at(i));
        if (in_prefix) {
            // The prefix ends at the first sample that would close any
            // incoming dip; from there on chunk-local detection is
            // independent of the incoming state.
            if (normalized > config.exitThreshold)
                in_prefix = false;
            else
                r.prefixNorms.push_back(normalized);
        }
        if (detector.push(normalized, ev)) {
            ev.startSample += begin;
            ev.endSample += begin;
            r.events.push_back(ev);
        }
    }

    r.open = detector.state();
    if (r.open.inDip) {
        r.open.start += begin;
        r.open.lastBelowExit += begin;
    }

    if (resilient) {
        // Quality blocks are absolute-index aligned and each is owned
        // by exactly one chunk: the one containing its last sample
        // (the final chunk also owns the trailing partial block).  The
        // owner recomputes the whole block from scratch in index
        // order, so the block is bit-identical to streaming no matter
        // how the capture was chunked.  haloSamples() >= Q - 1
        // guarantees the owner's data covers a block that started in
        // the previous chunk.
        const uint64_t q =
            std::max<uint64_t>(config.qualityBlockSamples(), 1);
        BlockAccumulator acc;
        for (uint64_t bs = (begin / q) * q; bs < end; bs += q) {
            uint64_t be = bs + q;
            if (be > end) {
                if (!is_final)
                    break; // next chunk owns it
                be = end;
            }
            acc.begin(bs);
            for (uint64_t i = bs; i < be; ++i)
                acc.push(at(i));
            r.blocks.push_back(acc.finish(be, config.signal));
        }
    }
    return r;
}

/**
 * Sequentially merge per-chunk results into the event list streaming
 * would have produced.  `carry` is the streaming detector's open-dip
 * state at each chunk boundary.
 */
std::vector<StallEvent>
stitch(const std::vector<ChunkResult> &chunks, const EmProfConfig &config)
{
    EMPROF_OBS_STAGE("analyze.stitch");
    obs::Counter carried_dips, replayed_samples;
    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        carried_dips =
            registry.counter("analyzer.stitch.carried_dips");
        replayed_samples =
            registry.counter("analyzer.stitch.replayed_samples");
    }

    std::vector<StallEvent> events;
    // Same duration cut the chunk-local detectors used (the resilient
    // path relaxes it to compensate for pre-smoother dip widening).
    const uint64_t min_duration = config.effectiveMinDurationSamples();
    DipDetector::DipState carry;

    const auto emit = [&](const DipDetector::DipState &dip) {
        if (dip.lastBelowExit - dip.start + 1 < min_duration)
            return;
        StallEvent ev;
        ev.startSample = dip.start;
        ev.endSample = dip.lastBelowExit;
        ev.depth = dip.depthCount == 0
                       ? 0.0
                       : dip.depthSum /
                             static_cast<double>(dip.depthCount);
        events.push_back(ev);
    };

    for (const auto &chunk : chunks) {
        uint64_t first_valid = chunk.begin;
        if (carry.inDip) {
            carried_dips.inc();
            replayed_samples.add(chunk.prefixNorms.size());
            // Replay the prefix into the carried dip sample by sample,
            // in order, exactly as streaming would have accumulated it.
            for (std::size_t k = 0; k < chunk.prefixNorms.size(); ++k) {
                carry.lastBelowExit = chunk.begin + k;
                carry.depthSum += chunk.prefixNorms[k];
                ++carry.depthCount;
            }
            if (chunk.prefixNorms.size() == chunk.end - chunk.begin)
                continue; // whole chunk below exit: dip stays open
            emit(carry);
            carry = DipDetector::DipState{};
            // Chunk-local events inside the prefix belong to the
            // carried dip, not to a fresh one.
            first_valid = chunk.begin + chunk.prefixNorms.size();
        }
        for (const auto &ev : chunk.events)
            if (ev.startSample >= first_valid)
                events.push_back(ev);
        if (chunk.open.inDip && chunk.open.start >= first_valid)
            carry = chunk.open;
    }

    // Capture ends mid-dip: same flush rule as EmProf::finish().
    if (carry.inDip)
        emit(carry);
    return events;
}

/**
 * Sequential tail shared by both parallel paths: stitch, classify,
 * quarantine (when the resilience layer is on), report.  Mirrors the
 * order of EmProf::finish() so the parallel result is bit-identical to
 * streaming.
 */
ProfileResult
finalizeChunks(const std::vector<ChunkResult> &chunks,
               const EmProfConfig &config, uint64_t total_samples)
{
    ProfileResult result;
    result.events = stitch(chunks, config);
    for (auto &ev : result.events)
        classifyStall(ev, config);
    SignalQualitySummary quality;
    if (config.signal.enabled) {
        std::vector<SignalBlock> blocks;
        for (const auto &chunk : chunks)
            blocks.insert(blocks.end(), chunk.blocks.begin(),
                          chunk.blocks.end());
        quality = applySignalQuality(result.events, blocks,
                                     config.detectorConfig(),
                                     config.signal, total_samples);
    }
    result.report = makeReport(result.events, config.sampleRateHz,
                               config.clockHz, total_samples);
    result.report.quality = quality;
    countParallelAnalyzed(total_samples, result.events.size());
    return result;
}

} // namespace

ParallelAnalyzer::ParallelAnalyzer(ParallelAnalyzerConfig config)
    : config_(config)
{}

ProfileResult
ParallelAnalyzer::analyze(const dsp::TimeSeries &magnitude,
                          EmProfConfig config) const
{
    if (magnitude.sampleRateHz > 0.0)
        config.sampleRateHz = magnitude.sampleRateHz;

    const std::size_t n = magnitude.samples.size();
    const std::size_t threads =
        config_.threads == 0 ? common::ThreadPool::hardwareThreads()
                             : config_.threads;

    std::size_t chunk = config_.chunkSamples;
    if (chunk == 0) {
        if (threads <= 1 || n < config_.minParallelSamples)
            return EmProf::analyze(magnitude, config);
        // A few chunks per thread for load balance, floored at eight
        // normalisation windows so the halo re-feed (one window per
        // chunk) stays under ~12% of each chunk's work.
        chunk = std::max<std::size_t>(8 * config.normWindowSamples(),
                                      (n + 3 * threads - 1) /
                                          (3 * threads));
    }
    chunk = std::max<std::size_t>(chunk, 1);

    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    if (threads <= 1 || num_chunks < 2)
        return EmProf::analyze(magnitude, config);

    EMPROF_OBS_STAGE("analyze.parallel");
    std::vector<ChunkResult> results(num_chunks);
    {
        common::ThreadPool pool(std::min(threads, num_chunks));
        std::vector<std::future<void>> pending;
        pending.reserve(num_chunks);
        const auto &samples = magnitude.samples;
        for (std::size_t c = 0; c < num_chunks; ++c) {
            const uint64_t begin = static_cast<uint64_t>(c) * chunk;
            const uint64_t end =
                std::min<uint64_t>(begin + chunk, n);
            const bool is_final = (c + 1 == num_chunks);
            pending.push_back(pool.submit([&samples, &results, begin,
                                           end, is_final, c, &config] {
                results[c] = analyzeChunk(samples.data(), 0, begin,
                                          end, is_final, config);
            }));
        }
        for (auto &f : pending)
            f.get();
    }

    return finalizeChunks(results, config, n);
}

bool
ParallelAnalyzer::analyzeCapture(const store::CaptureReader &reader,
                                 EmProfConfig config, ProfileResult &out,
                                 std::string *error) const
{
    const store::CaptureInfo &info = reader.info();
    if (info.sampleRateHz > 0.0)
        config.sampleRateHz = info.sampleRateHz;

    std::string config_error;
    if (!config.validate(&config_error)) {
        if (error != nullptr)
            *error = "invalid profiler config: " + config_error;
        return false;
    }
    const uint64_t n = info.totalSamples;

    const std::size_t threads =
        config_.threads == 0 ? common::ThreadPool::hardwareThreads()
                             : config_.threads;

    // Short/serial inputs: decode once, run the streaming path — the
    // same fallback rule (and therefore the same result) as analyze().
    const auto streaming = [&]() {
        dsp::TimeSeries series;
        if (!reader.readAll(series, error))
            return false;
        out = EmProf::analyze(series, config);
        return true;
    };

    std::size_t chunk = config_.chunkSamples;
    if (chunk == 0) {
        if (threads <= 1 || n < config_.minParallelSamples)
            return streaming();
        chunk = std::max<std::size_t>(8 * config.normWindowSamples(),
                                      (n + 3 * threads - 1) /
                                          (3 * threads));
    }
    chunk = std::max<std::size_t>(chunk, 1);

    // Analysis tasks aligned to stored-chunk boundaries, each spanning
    // enough stored chunks to reach the target analysis chunk size, so
    // no stored chunk is decoded twice except as a neighbour's halo.
    struct Span
    {
        uint64_t begin;
        uint64_t end;
    };
    std::vector<Span> spans;
    uint64_t next_begin = 0;
    for (std::size_t c = 0; c < reader.chunkCount(); ++c) {
        const auto &entry = reader.chunk(c);
        const uint64_t end = entry.firstSample + entry.sampleCount;
        if (end - next_begin >= chunk ||
            c + 1 == reader.chunkCount()) {
            spans.push_back({next_begin, end});
            next_begin = end;
        }
    }
    if (threads <= 1 || spans.size() < 2)
        return streaming();

    EMPROF_OBS_STAGE("analyze.parallel");
    std::vector<ChunkResult> results(spans.size());
    std::atomic<bool> ok{true};
    std::mutex error_mutex;
    std::string first_error;
    const uint64_t halo_depth = config.haloSamples();
    {
        common::ThreadPool pool(std::min(threads, spans.size()));
        std::vector<std::future<void>> pending;
        pending.reserve(spans.size());
        for (std::size_t t = 0; t < spans.size(); ++t) {
            pending.push_back(pool.submit([&, t] {
                if (!ok.load(std::memory_order_relaxed))
                    return; // a sibling already failed
                const Span span = spans[t];
                const uint64_t halo =
                    std::min<uint64_t>(span.begin, halo_depth);
                std::vector<dsp::Sample> local;
                std::string chunk_error;
                if (!reader.readRange(span.begin - halo,
                                      halo + (span.end - span.begin),
                                      local, &chunk_error)) {
                    ok.store(false, std::memory_order_relaxed);
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (first_error.empty())
                        first_error = chunk_error;
                    return;
                }
                results[t] =
                    analyzeChunk(local.data(), span.begin - halo,
                                 span.begin, span.end,
                                 t + 1 == spans.size(), config);
            }));
        }
        for (auto &f : pending)
            f.get();
    }
    if (!ok.load()) {
        if (error != nullptr)
            *error = first_error;
        return false;
    }

    out = finalizeChunks(results, config, n);
    return true;
}

ProfileResult
analyzeParallel(const dsp::TimeSeries &magnitude, EmProfConfig config,
                ParallelAnalyzerConfig parallel)
{
    return ParallelAnalyzer(parallel).analyze(magnitude, config);
}

bool
analyzeCaptureParallel(const store::CaptureReader &reader,
                       EmProfConfig config, ProfileResult &out,
                       ParallelAnalyzerConfig parallel,
                       std::string *error)
{
    return ParallelAnalyzer(parallel).analyzeCapture(reader, config,
                                                     out, error);
}

ProfileResult
EmProf::analyzeParallel(const dsp::TimeSeries &magnitude,
                        EmProfConfig config, std::size_t threads)
{
    ParallelAnalyzerConfig parallel;
    parallel.threads = threads;
    return profiler::analyzeParallel(magnitude, config, parallel);
}

} // namespace emprof::profiler
