#include "profiler/parallel_analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "profiler/batch_pipeline.hpp"
#include "profiler/report.hpp"
#include "profiler/stitch.hpp"
#include "store/capture_reader.hpp"

namespace emprof::profiler {

namespace {

/**
 * Worker count actually used: the requested count (0 = all cores)
 * clamped to the hardware concurrency.  The per-chunk scan is purely
 * CPU-bound, so oversubscription only adds scheduling contention;
 * requests beyond the core count degrade gracefully to it.
 */
std::size_t
effectiveWorkers(std::size_t requested)
{
    const std::size_t hw = common::ThreadPool::hardwareThreads();
    const std::size_t want = requested == 0 ? hw : requested;
    return std::max<std::size_t>(1, std::min(want, hw));
}

/** Expose the effective parallel decomposition as gauges. */
void
recordParallelGauges(std::size_t workers, std::size_t chunk,
                     std::size_t num_chunks)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    registry.gauge("parallel.workers_effective")
        .set(static_cast<int64_t>(workers));
    registry.gauge("parallel.chunk_samples_effective")
        .set(static_cast<int64_t>(chunk));
    registry.gauge("parallel.chunks")
        .set(static_cast<int64_t>(num_chunks));
    registry.gauge("parallel.batch_kernel")
        .set(batchPipelineActive() ? 1 : 0);
}

/**
 * Sequential tail shared by both parallel paths: feed the pool-ordered
 * chunk results through the incremental stitcher (see stitch.hpp), then
 * classify / quarantine / report.  The serving path drives the same
 * ChunkStitcher one chunk at a time as uploads arrive.
 */
ProfileResult
finalizeChunks(const std::vector<ChunkResult> &chunks,
               const EmProfConfig &config, uint64_t total_samples)
{
    EMPROF_OBS_STAGE("analyze.stitch");
    ChunkStitcher stitcher(config);
    for (const auto &chunk : chunks)
        stitcher.feed(chunk);
    return stitcher.finalize(total_samples);
}

} // namespace

ParallelAnalyzer::ParallelAnalyzer(ParallelAnalyzerConfig config)
    : config_(config)
{}

ProfileResult
ParallelAnalyzer::analyze(const dsp::TimeSeries &magnitude,
                          EmProfConfig config) const
{
    if (magnitude.sampleRateHz > 0.0)
        config.sampleRateHz = magnitude.sampleRateHz;

    const std::size_t n = magnitude.samples.size();
    const std::size_t workers = effectiveWorkers(config_.threads);

    std::size_t chunk = config_.chunkSamples;
    if (chunk == 0) {
        // Automatic decomposition.  The chunked path only pays off when
        // there is either real parallelism or the batch kernel; tiny
        // inputs and scalar single-worker runs degrade to streaming.
        if (n < config_.minParallelSamples ||
            (workers <= 1 && !batchPipelineActive()))
            return EmProf::analyze(magnitude, config);
        // One span per worker: static partitioning, no queue
        // contention.  The floor of eight normalisation windows keeps
        // the halo re-feed (one window per chunk) under ~12% of each
        // chunk's work.
        chunk = std::max<std::size_t>(8 * config.normWindowSamples(),
                                      (n + workers - 1) / workers);
    }
    chunk = std::max<std::size_t>(chunk, 1);

    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    if (num_chunks == 0)
        return EmProf::analyze(magnitude, config);
    recordParallelGauges(workers, chunk, num_chunks);

    EMPROF_OBS_STAGE("analyze.parallel");
    std::vector<ChunkResult> results(num_chunks);
    const auto &samples = magnitude.samples;
    const bool fast = config_.fastMathSimd;
    const auto run = [&, chunk, n](std::size_t c) {
        const uint64_t begin = static_cast<uint64_t>(c) * chunk;
        const uint64_t end = std::min<uint64_t>(begin + chunk, n);
        results[c] = analyzeChunkAuto(samples.data(), 0, begin, end,
                                      c + 1 == num_chunks, config, fast);
    };
    if (workers <= 1 || num_chunks < 2) {
        // Explicitly-sized chunks still go through the chunk + stitch
        // machinery on one worker (results are identical; tests rely on
        // exercising the stitcher regardless of core count) — just
        // without spinning up a pool.
        for (std::size_t c = 0; c < num_chunks; ++c)
            run(c);
    } else {
        common::ThreadPool pool(std::min(workers, num_chunks));
        std::vector<std::future<void>> pending;
        pending.reserve(num_chunks);
        for (std::size_t c = 0; c < num_chunks; ++c)
            pending.push_back(pool.submit([&run, c] { run(c); }));
        for (auto &f : pending)
            f.get();
    }

    return finalizeChunks(results, config, n);
}

bool
ParallelAnalyzer::analyzeCapture(const store::CaptureReader &reader,
                                 EmProfConfig config, ProfileResult &out,
                                 std::string *error) const
{
    const store::CaptureInfo &info = reader.info();
    if (info.sampleRateHz > 0.0)
        config.sampleRateHz = info.sampleRateHz;

    std::string config_error;
    if (!config.validate(&config_error)) {
        if (error != nullptr)
            *error = "invalid profiler config: " + config_error;
        return false;
    }
    const uint64_t n = info.totalSamples;

    const std::size_t workers = effectiveWorkers(config_.threads);

    // Short inputs: decode once, run the streaming path — the same
    // fallback rule (and therefore the same result) as analyze().
    const auto streaming = [&]() {
        dsp::TimeSeries series;
        if (!reader.readAll(series, error))
            return false;
        out = EmProf::analyze(series, config);
        return true;
    };

    std::size_t chunk = config_.chunkSamples;
    if (chunk == 0) {
        if (n < config_.minParallelSamples ||
            (workers <= 1 && !batchPipelineActive()))
            return streaming();
        chunk = std::max<std::size_t>(8 * config.normWindowSamples(),
                                      (n + workers - 1) / workers);
    }
    chunk = std::max<std::size_t>(chunk, 1);

    // Analysis tasks aligned to stored-chunk boundaries, each spanning
    // enough stored chunks to reach the target analysis chunk size, so
    // no stored chunk is decoded twice except as a neighbour's halo.
    struct Span
    {
        uint64_t begin;
        uint64_t end;
    };
    std::vector<Span> spans;
    uint64_t next_begin = 0;
    for (std::size_t c = 0; c < reader.chunkCount(); ++c) {
        const auto &entry = reader.chunk(c);
        const uint64_t end = entry.firstSample + entry.sampleCount;
        if (end - next_begin >= chunk ||
            c + 1 == reader.chunkCount()) {
            spans.push_back({next_begin, end});
            next_begin = end;
        }
    }
    if (spans.empty())
        return streaming();
    recordParallelGauges(workers, chunk, spans.size());

    EMPROF_OBS_STAGE("analyze.parallel");
    std::vector<ChunkResult> results(spans.size());
    std::atomic<bool> ok{true};
    std::mutex error_mutex;
    std::string first_error;
    const uint64_t halo_depth = config.haloSamples();
    const bool fast = config_.fastMathSimd;
    const auto run = [&](std::size_t t) {
        if (!ok.load(std::memory_order_relaxed))
            return; // a sibling already failed
        const Span span = spans[t];
        const uint64_t halo = std::min<uint64_t>(span.begin, halo_depth);
        std::vector<dsp::Sample> local;
        std::string chunk_error;
        if (!reader.readRange(span.begin - halo,
                              halo + (span.end - span.begin), local,
                              &chunk_error)) {
            ok.store(false, std::memory_order_relaxed);
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (first_error.empty())
                first_error = chunk_error;
            return;
        }
        results[t] = analyzeChunkAuto(local.data(), span.begin - halo,
                                      span.begin, span.end,
                                      t + 1 == spans.size(), config,
                                      fast);
    };
    if (workers <= 1 || spans.size() < 2) {
        for (std::size_t t = 0; t < spans.size(); ++t)
            run(t);
    } else {
        common::ThreadPool pool(std::min(workers, spans.size()));
        std::vector<std::future<void>> pending;
        pending.reserve(spans.size());
        for (std::size_t t = 0; t < spans.size(); ++t)
            pending.push_back(pool.submit([&run, t] { run(t); }));
        for (auto &f : pending)
            f.get();
    }
    if (!ok.load()) {
        if (error != nullptr)
            *error = first_error;
        return false;
    }

    out = finalizeChunks(results, config, n);
    return true;
}

ProfileResult
analyzeParallel(const dsp::TimeSeries &magnitude, EmProfConfig config,
                ParallelAnalyzerConfig parallel)
{
    return ParallelAnalyzer(parallel).analyze(magnitude, config);
}

bool
analyzeCaptureParallel(const store::CaptureReader &reader,
                       EmProfConfig config, ProfileResult &out,
                       ParallelAnalyzerConfig parallel,
                       std::string *error)
{
    return ParallelAnalyzer(parallel).analyzeCapture(reader, config,
                                                     out, error);
}

ProfileResult
EmProf::analyzeParallel(const dsp::TimeSeries &magnitude,
                        EmProfConfig config, std::size_t threads)
{
    ParallelAnalyzerConfig parallel;
    parallel.threads = threads;
    return profiler::analyzeParallel(magnitude, config, parallel);
}

} // namespace emprof::profiler
