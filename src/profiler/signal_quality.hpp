/**
 * @file
 * Signal-quality model: segment quarantine and per-event confidence.
 *
 * A real capture is not uniformly usable — a clipped span has no dip
 * contrast left, a dropout span is one giant fake dip, and a span whose
 * local SNR collapsed yields noise events.  This module scores the
 * signal in fixed disjoint blocks, classifies each block clean /
 * degraded / unusable, drops events that touch unusable blocks, and
 * attaches a [0, 1] confidence (threshold margin × duration × local
 * SNR) to every surviving event.
 *
 * Determinism contract: every block statistic is computed from that
 * block's own samples alone, in index order, so the streaming path and
 * any chunked parallel path produce bit-identical blocks as long as
 * chunk boundaries respect block ownership (the chunk containing a
 * block's last sample computes the whole block via its halo).
 */

#ifndef EMPROF_PROFILER_SIGNAL_QUALITY_HPP
#define EMPROF_PROFILER_SIGNAL_QUALITY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/dip_detector.hpp"
#include "profiler/events.hpp"

namespace emprof::profiler {

/** Knobs for the resilience layer; disabled by default, and the whole
 *  layer is an exact no-op (bit-identical events) when disabled. */
struct SignalQualityConfig
{
    /** Master switch for adaptive normalisation + quarantine. */
    bool enabled = false;

    /** Quality-block length in samples; 0 = one normalisation window. */
    std::size_t blockSamples = 0;

    /** Adaptive pre-smoother length in samples; 0 derives it from the
     *  minimum dip duration (about half of it, clamped to [2, 16]). */
    std::size_t smootherSamples = 0;

    /** Envelope recalibration granularity: the adaptive normaliser
     *  snaps its floor/ceiling to a grid this coarse (as a fraction of
     *  the ceiling), so calibration only moves when the window estimate
     *  drifts across a grid step — hysteresis against jitter. */
    double driftToleranceFraction = 0.05;

    /** A block is unusable when more than this fraction of its samples
     *  sit at its (repeated) maximum — ADC clipping plateau. */
    double maxClipFraction = 0.05;

    /** A block is unusable when more than this fraction of its samples
     *  are zero or exact repeats of their predecessor — dropouts. */
    double maxDropoutFraction = 0.05;

    /** A block is unusable below this estimated local SNR (dB). */
    double minSnrDb = 3.0;

    /** A block is merely degraded below this estimated SNR (dB). */
    double degradedSnrDb = 10.0;

    /** SNR (dB) at which the confidence SNR factor saturates at 1. */
    double fullConfidenceSnrDb = 30.0;

    /** Reject out-of-range fields with a one-line reason. */
    bool validate(std::string *why = nullptr) const;
};

/** Block classification tiers. */
enum class BlockClass : uint8_t
{
    Clean,
    Degraded,
    Unusable,
};

/** Why a block was quarantined (meaningful when Unusable). */
enum class QuarantineReason : uint8_t
{
    None,
    Clipping,
    Dropout,
    LowSnr,
};

/** Quality statistics of one disjoint block of samples. */
struct SignalBlock
{
    uint64_t begin = 0; ///< first sample (global index)
    uint64_t end = 0;   ///< one past the last sample

    uint64_t samplesAtMax = 0; ///< samples equal to the block max
    uint64_t zeroSamples = 0;
    uint64_t repeatSamples = 0; ///< exact repeats of the predecessor

    double minValue = 0.0;
    double maxValue = 0.0;
    double mean = 0.0;

    /** Noise sigma estimated from the mean absolute first difference
     *  (robust against the slow signal component). */
    double noiseSigma = 0.0;

    /** 20·log10(mean / noiseSigma), clamped to ±99 dB. */
    double snrDb = 0.0;

    BlockClass cls = BlockClass::Clean;
    QuarantineReason reason = QuarantineReason::None;

    uint64_t samples() const { return end - begin; }
};

/**
 * Streaming per-block statistics accumulator.  All state is reset by
 * begin(); push order is sample order, so a chunked path that replays
 * a whole block through a fresh accumulator reproduces the streaming
 * block bit for bit.
 *
 * The floating-point sums are kept in four bins indexed by the
 * sample's position within the block modulo 4, and combined in a fixed
 * order at finish().  That makes the totals reproducible by a 4-lane
 * vectorised fill (lane k owns bin k) — the batch analyzer computes
 * the identical bits without replaying samples one by one.
 */
class BlockAccumulator
{
  public:
    /**
     * Raw, order-insensitive statistics of one block.  Every field is
     * either a pure selection (min/max), an exact integer count, or a
     * 4-way binned sum with a fixed combine order — so a vectorised
     * producer and the streaming push() agree bit for bit on finite
     * input.  (NaN samples poison the two paths differently; callers
     * feeding NaN get the streaming semantics only from push().)
     */
    struct RawStats
    {
        uint64_t start = 0;
        uint64_t count = 0;
        double sum[4] = {0.0, 0.0, 0.0, 0.0};
        double sumAbsDx[4] = {0.0, 0.0, 0.0, 0.0};
        double min = 0.0;
        double max = 0.0;
        uint64_t atMax = 0;
        uint64_t zeros = 0;
        uint64_t repeats = 0;
    };

    /** Start a new block at global sample index @p start. */
    void begin(uint64_t start);

    /** Account one sample. */
    void push(double x);

    /** Close the block at @p end (exclusive) and classify it. */
    SignalBlock finish(uint64_t end,
                       const SignalQualityConfig &config) const;

    /** Classify directly from raw stats (shared with the batch path). */
    static SignalBlock classifyStats(const RawStats &stats, uint64_t end,
                                     const SignalQualityConfig &config);

  private:
    RawStats s_;
    double prev_ = 0.0;
};

/** What the quarantine/confidence pass did, for the report and JSON. */
struct SignalQualitySummary
{
    /** False when the resilience layer was off (all defaults below). */
    bool enabled = false;

    uint64_t totalBlocks = 0;
    uint64_t cleanBlocks = 0;
    uint64_t degradedBlocks = 0;
    uint64_t unusableBlocks = 0;

    /** Unusable blocks by reason. */
    uint64_t quarantinedClipping = 0;
    uint64_t quarantinedDropout = 0;
    uint64_t quarantinedLowSnr = 0;

    /** Events dropped because they touched an unusable block. */
    uint64_t eventsDropped = 0;

    /** Fraction of samples in non-quarantined blocks. */
    double coverageFraction = 1.0;

    /** Mean confidence of the surviving events (0 when none). */
    double meanConfidence = 0.0;
};

/**
 * Confidence of one event given the quality block containing its first
 * sample: margin below the exit threshold × duration (saturating at
 * twice the minimum) × local SNR (saturating at fullConfidenceSnrDb).
 */
double eventConfidence(const StallEvent &ev, const SignalBlock &block,
                       const DipDetectorConfig &detector,
                       const SignalQualityConfig &config);

/**
 * The quarantine + confidence pass shared by the streaming and the
 * parallel analyzers (sequential, after stitching): drops events
 * overlapping any unusable block, attaches confidence to the
 * survivors, and summarises coverage.  @p blocks must be sorted,
 * disjoint, and cover [0, total_samples).
 */
SignalQualitySummary
applySignalQuality(std::vector<StallEvent> &events,
                   const std::vector<SignalBlock> &blocks,
                   const DipDetectorConfig &detector,
                   const SignalQualityConfig &config,
                   uint64_t total_samples);

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_SIGNAL_QUALITY_HPP
