/**
 * @file
 * Streaming reference implementation of the per-chunk analysis plus
 * the runtime dispatch to the AVX2 batch kernel.
 */

#include "profiler/batch_pipeline.hpp"

#include <algorithm>

#include "dsp/batch_minmax.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "profiler/normalizer.hpp"

namespace emprof::profiler {

bool
batchPipelineActive()
{
#if !defined(EMPROF_DISABLE_SIMD)
    return dsp::activeSimdVariant() == dsp::SimdVariant::Avx2;
#else
    return false;
#endif
}

ChunkResult
analyzeChunkAuto(const dsp::Sample *data, uint64_t dataBegin,
                 uint64_t begin, uint64_t end, bool is_final,
                 const EmProfConfig &config, bool fastMath)
{
    // Per-worker chunk timing: the span carries the worker's thread
    // number, the stage histogram aggregates the distribution.
    EMPROF_OBS_STAGE("analyzer.chunk");
    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        static const obs::Counter chunks =
            registry.counter("analyzer.chunks_analyzed");
        static const obs::Counter normalized =
            registry.counter("normalizer.samples_normalized");
        chunks.inc();
        normalized.add(end - begin);
    }

#if !defined(EMPROF_DISABLE_SIMD)
    if (batchPipelineActive())
        return detail::analyzeChunkBatchAvx2(data, dataBegin, begin,
                                             end, is_final, config,
                                             fastMath);
#endif
    (void)fastMath;
    return detail::analyzeChunkStreaming(data, dataBegin, begin, end,
                                         is_final, config);
}

namespace detail {

/**
 * Analyse samples [begin, end): re-feed the halo to warm the
 * normaliser, then run a fresh dip detector over the chunk, recording
 * the prefix and the end-of-chunk open-dip state for the stitcher.
 */
ChunkResult
analyzeChunkStreaming(const dsp::Sample *data, uint64_t dataBegin,
                      uint64_t begin, uint64_t end, bool is_final,
                      const EmProfConfig &config)
{
    ChunkResult r;
    r.begin = begin;
    r.end = end;

    const std::size_t window = config.normWindowSamples();
    const bool resilient = config.signal.enabled;
    const uint64_t halo = std::min<uint64_t>(begin, config.haloSamples());
    const auto at = [&](uint64_t i) {
        return data[static_cast<std::size_t>(i - dataBegin)];
    };

    // Warm whichever normaliser this config uses by re-feeding the
    // halo: both are pure functions of a bounded trailing history
    // (haloSamples() covers it), so the values from `begin` on are
    // bit-identical to streaming.
    MovingMinMaxNormalizer classic(window, config.minContrast);
    AdaptiveNormalizer adaptive(
        resilient ? window : 1, resilient ? config.smootherSamples() : 1,
        config.signal.driftToleranceFraction > 0.0
            ? config.signal.driftToleranceFraction
            : 0.05,
        config.minContrast);
    const auto norm = [&](double x) {
        return resilient ? adaptive.push(x) : classic.push(x);
    };
    for (uint64_t i = begin - halo; i < begin; ++i)
        norm(at(i));

    DipDetector detector(config.detectorConfig());
    bool in_prefix = true;
    StallEvent ev;
    for (uint64_t i = begin; i < end; ++i) {
        const double normalized = norm(at(i));
        if (in_prefix) {
            // The prefix ends at the first sample that would close any
            // incoming dip; from there on chunk-local detection is
            // independent of the incoming state.
            if (normalized > config.exitThreshold)
                in_prefix = false;
            else
                r.prefixNorms.push_back(normalized);
        }
        if (detector.push(normalized, ev)) {
            ev.startSample += begin;
            ev.endSample += begin;
            r.events.push_back(ev);
        }
    }

    r.open = detector.state();
    if (r.open.inDip) {
        r.open.start += begin;
        r.open.lastBelowExit += begin;
    }

    if (resilient) {
        // Quality blocks are absolute-index aligned and each is owned
        // by exactly one chunk: the one containing its last sample
        // (the final chunk also owns the trailing partial block).  The
        // owner recomputes the whole block from scratch in index
        // order, so the block is bit-identical to streaming no matter
        // how the capture was chunked.  haloSamples() >= Q - 1
        // guarantees the owner's data covers a block that started in
        // the previous chunk.
        const uint64_t q =
            std::max<uint64_t>(config.qualityBlockSamples(), 1);
        BlockAccumulator acc;
        for (uint64_t bs = (begin / q) * q; bs < end; bs += q) {
            uint64_t be = bs + q;
            if (be > end) {
                if (!is_final)
                    break; // next chunk owns it
                be = end;
            }
            acc.begin(bs);
            for (uint64_t i = bs; i < be; ++i)
                acc.push(at(i));
            r.blocks.push_back(acc.finish(be, config.signal));
        }
    }
    return r;
}

} // namespace detail

} // namespace emprof::profiler
