#include "profiler/normalizer.hpp"

#include <algorithm>

namespace emprof::profiler {

MovingMinMaxNormalizer::MovingMinMaxNormalizer(std::size_t window,
                                               double min_contrast)
    : minmax_(window), minContrast_(min_contrast)
{}

double
MovingMinMaxNormalizer::push(double magnitude)
{
    minmax_.push(magnitude);
    const double lo = minmax_.min();
    const double hi = minmax_.max();
    const double range = hi - lo;

    // No stall floor in the window: everything is "busy".
    if (hi <= 0.0 || range < minContrast_ * hi)
        return 1.0;

    return std::clamp((magnitude - lo) / range, 0.0, 1.0);
}

} // namespace emprof::profiler
