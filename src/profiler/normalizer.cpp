#include "profiler/normalizer.hpp"

#include <algorithm>
#include <cmath>

namespace emprof::profiler {

MovingMinMaxNormalizer::MovingMinMaxNormalizer(std::size_t window,
                                               double min_contrast)
    : minmax_(window), minContrast_(min_contrast)
{}

double
MovingMinMaxNormalizer::push(double magnitude)
{
    minmax_.push(magnitude);
    const double lo = minmax_.min();
    const double hi = minmax_.max();
    const double range = hi - lo;

    // No stall floor in the window: everything is "busy".
    if (hi <= 0.0 || range < minContrast_ * hi)
        return 1.0;

    return std::clamp((magnitude - lo) / range, 0.0, 1.0);
}

BoxSmoother::BoxSmoother(std::size_t window)
    : ring_(window == 0 ? 1 : window, 0.0)
{
    const std::size_t w = ring_.size();
    if ((w & (w - 1)) == 0)
        invWindow_ = 1.0 / static_cast<double>(w);
}

double
BoxSmoother::push(double x)
{
    const std::size_t w = ring_.size();
    ring_[head_] = x;
    head_ = (head_ + 1 == w) ? 0 : head_ + 1;
    ++count_;

    const std::size_t n =
        count_ < w ? static_cast<std::size_t>(count_) : w;
    // Recompute the sum oldest-to-newest every push: the fixed
    // summation order (by global sample index) is what makes a
    // halo-refed chunk reproduce the streaming output bit for bit.
    std::size_t idx = (count_ >= w) ? head_ : 0;
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        sum += ring_[idx];
        idx = (idx + 1 == w) ? 0 : idx + 1;
    }
    if (n == w && invWindow_ != 0.0)
        return sum * invWindow_;
    return sum / static_cast<double>(n);
}

void
BoxSmoother::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0.0);
    head_ = 0;
    count_ = 0;
}

AdaptiveNormalizer::AdaptiveNormalizer(std::size_t window,
                                       std::size_t smoother,
                                       double drift_tolerance,
                                       double min_contrast)
    : smoother_(smoother),
      minmax_(window),
      minContrast_(min_contrast),
      snap_(drift_tolerance)
{}

double
AdaptiveNormalizer::push(double magnitude)
{
    const double smoothed = smoother_.push(magnitude);
    minmax_.push(smoothed);
    const double lo = minmax_.min();
    const double hi = minmax_.max();

    if (hi <= 0.0) {
        lastLo_ = 0.0;
        lastHi_ = 0.0;
        return 1.0;
    }

    // Snap the ceiling up to a logarithmic grid with ratio
    // (1 + driftTolerance) between steps, then quantise the floor to
    // linear steps of driftTolerance x ceiling.  Both snaps are pure
    // functions of the window extrema — no latched state — yet the
    // calibration in use only changes when an extremum crosses a grid
    // step, which is the hysteresis that keeps per-sample jitter from
    // modulating the normalised signal.
    double loCal;
    double hiCal;
    snap_.snap(lo, hi, loCal, hiCal);
    lastLo_ = loCal;
    lastHi_ = hiCal;

    const double range = hiCal - loCal;
    if (range < minContrast_ * hiCal)
        return 1.0;

    // Normalise the raw magnitude (not the smoothed one) so dip edges
    // stay sharp; the smoothing only stabilises the envelope estimate.
    return std::clamp((magnitude - loCal) / range, 0.0, 1.0);
}

} // namespace emprof::profiler
