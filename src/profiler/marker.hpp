/**
 * @file
 * Marker-loop section isolation (Sec. V-B).
 *
 * The validation microbenchmark brackets its memory-access section with
 * tight compute-only loops whose signal is high and very stable.  This
 * module finds those marker regions in the magnitude signal — runs of
 * high mean and very low relative variance — and returns the section
 * between them so EMPROF's counts can be compared against the known
 * miss count of just that section.
 */

#ifndef EMPROF_PROFILER_MARKER_HPP
#define EMPROF_PROFILER_MARKER_HPP

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace emprof::profiler {

/** A half-open sample interval [begin, end). */
struct SampleInterval
{
    uint64_t begin = 0;
    uint64_t end = 0;

    uint64_t length() const { return end - begin; }
    bool empty() const { return end <= begin; }
};

/** Marker-detector tuning. */
struct MarkerConfig
{
    /** Block size (samples) for local mean/variance classification. */
    std::size_t blockSamples = 64;

    /** Max relative std-dev (std/mean) for a block to be marker-like. */
    double maxRelStd = 0.035;

    /** Min mean level, relative to the global 95th percentile. */
    double minRelLevel = 0.75;

    /** Minimum marker run length, in blocks. */
    std::size_t minBlocks = 24;
};

/** Result of marker analysis. */
struct MarkerSections
{
    /** Detected marker intervals, in sample indices, time order. */
    std::vector<SampleInterval> markers;

    /** Section between the first and last marker (empty if < 2). */
    SampleInterval measured;
};

/**
 * Locate marker loops and the measured section between them.
 */
MarkerSections findMarkerSections(const dsp::TimeSeries &magnitude,
                                  const MarkerConfig &config = {});

/** Extract a sub-series for a sample interval (copies). */
dsp::TimeSeries slice(const dsp::TimeSeries &in, SampleInterval interval);

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_MARKER_HPP
