/**
 * @file
 * Stall events as EMPROF reports them.
 */

#ifndef EMPROF_PROFILER_EVENTS_HPP
#define EMPROF_PROFILER_EVENTS_HPP

#include <cstddef>
#include <cstdint>

namespace emprof::profiler {

/** Classification of a detected stall (Sec. III-C). */
enum class StallKind : uint8_t
{
    /** Ordinary LLC-miss-induced stall (~hundreds of ns). */
    LlcMiss,

    /** LLC miss that coincided with a DRAM refresh (2-3 us); reported
     *  separately because of its outsized tail-latency impact. */
    RefreshCoincident,
};

/**
 * Memory service level a stall is attributed to (multi-level
 * attribution, beyond the paper's binary miss/refresh split).  The
 * levels are ordered by service latency, which is what the duration
 * classifier keys on.
 */
enum class ServiceLevel : uint8_t
{
    /** Served by the LLC: a hit whose latency still stalled the core
     *  (dependent-load chains); tens of cycles. */
    LlcHit,

    /** A miss whose latency was mostly hidden by the prefetcher — the
     *  demand access found the line already in flight and paid only the
     *  residual latency. */
    PrefetchMasked,

    /** A demand miss served by DRAM at ordinary access latency. */
    Dram,

    /** A DRAM access lengthened by a refresh window (tRFC); the
     *  outsized tail-latency class (2-3 us). */
    DramRefresh,
};

/** Number of service levels (confusion-matrix dimension). */
inline constexpr std::size_t kServiceLevelCount = 4;

/** Stable lower-case name for a service level (reports, metrics). */
const char *serviceLevelName(ServiceLevel level);

/**
 * One stall detected in the signal.
 *
 * Durations are measured in receiver samples and converted using the
 * signal's sample rate and the target's clock frequency, exactly as
 * the paper does with delta-t in Fig. 1.
 */
struct StallEvent
{
    /** First sample index of the dip. */
    uint64_t startSample = 0;

    /** Last sample index of the dip (inclusive). */
    uint64_t endSample = 0;

    /** Mean normalised level inside the dip (diagnostic). */
    double depth = 0.0;

    /** Stall duration in nanoseconds. */
    double durationNs = 0.0;

    /** Stall duration in target clock cycles. */
    double stallCycles = 0.0;

    /**
     * Detection confidence in [0, 1]: threshold margin x duration x
     * local SNR (see profiler/signal_quality.hpp).  1.0 when the
     * resilience layer is disabled, so legacy consumers see no change.
     */
    double confidence = 1.0;

    StallKind kind = StallKind::LlcMiss;

    /** Attributed memory service level (duration-band classifier). */
    ServiceLevel level = ServiceLevel::Dram;

    /**
     * Attribution confidence in [0, 1]: how far the measured duration
     * sits from the nearest level boundary on a log scale (a factor of
     * two away saturates at 1.0; exactly on a boundary is 0.0).
     * Orthogonal to @ref confidence, which scores detection quality.
     */
    double levelConfidence = 1.0;

    uint64_t durationSamples() const { return endSample - startSample + 1; }
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_EVENTS_HPP
