/**
 * @file
 * Stall events as EMPROF reports them.
 */

#ifndef EMPROF_PROFILER_EVENTS_HPP
#define EMPROF_PROFILER_EVENTS_HPP

#include <cstdint>

namespace emprof::profiler {

/** Classification of a detected stall (Sec. III-C). */
enum class StallKind : uint8_t
{
    /** Ordinary LLC-miss-induced stall (~hundreds of ns). */
    LlcMiss,

    /** LLC miss that coincided with a DRAM refresh (2-3 us); reported
     *  separately because of its outsized tail-latency impact. */
    RefreshCoincident,
};

/**
 * One stall detected in the signal.
 *
 * Durations are measured in receiver samples and converted using the
 * signal's sample rate and the target's clock frequency, exactly as
 * the paper does with delta-t in Fig. 1.
 */
struct StallEvent
{
    /** First sample index of the dip. */
    uint64_t startSample = 0;

    /** Last sample index of the dip (inclusive). */
    uint64_t endSample = 0;

    /** Mean normalised level inside the dip (diagnostic). */
    double depth = 0.0;

    /** Stall duration in nanoseconds. */
    double durationNs = 0.0;

    /** Stall duration in target clock cycles. */
    double stallCycles = 0.0;

    /**
     * Detection confidence in [0, 1]: threshold margin x duration x
     * local SNR (see profiler/signal_quality.hpp).  1.0 when the
     * resilience layer is disabled, so legacy consumers see no change.
     */
    double confidence = 1.0;

    StallKind kind = StallKind::LlcMiss;

    uint64_t durationSamples() const { return endSample - startSample + 1; }
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_EVENTS_HPP
