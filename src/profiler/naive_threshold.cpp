#include "profiler/naive_threshold.hpp"

#include <algorithm>

namespace emprof::profiler {

double
calibrateNaiveThreshold(const dsp::TimeSeries &magnitude,
                        std::size_t calibration_samples)
{
    const std::size_t n =
        std::min(calibration_samples, magnitude.samples.size());
    if (n == 0)
        return 0.0;
    float lo = magnitude.samples[0], hi = magnitude.samples[0];
    for (std::size_t i = 1; i < n; ++i) {
        lo = std::min(lo, magnitude.samples[i]);
        hi = std::max(hi, magnitude.samples[i]);
    }
    return 0.5 * (static_cast<double>(lo) + static_cast<double>(hi));
}

std::vector<StallEvent>
naiveDetect(const dsp::TimeSeries &magnitude,
            const NaiveThresholdConfig &config)
{
    std::vector<StallEvent> events;
    const double sample_ns = 1e9 / magnitude.sampleRateHz;

    bool in_dip = false;
    uint64_t start = 0;
    auto close = [&](uint64_t end) {
        if (end - start + 1 < config.minDurationSamples)
            return;
        StallEvent ev;
        ev.startSample = start;
        ev.endSample = end;
        ev.durationNs =
            static_cast<double>(ev.durationSamples()) * sample_ns;
        ev.stallCycles = ev.durationNs * 1e-9 * config.clockHz;
        events.push_back(ev);
    };

    for (std::size_t i = 0; i < magnitude.samples.size(); ++i) {
        const bool low = magnitude.samples[i] < config.threshold;
        if (low && !in_dip) {
            in_dip = true;
            start = i;
        } else if (!low && in_dip) {
            in_dip = false;
            close(i - 1);
        }
    }
    if (in_dip)
        close(magnitude.samples.size() - 1);
    return events;
}

} // namespace emprof::profiler
