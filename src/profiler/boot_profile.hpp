/**
 * @file
 * Boot-sequence profiling (Sec. VI-C, Fig. 13): the time series of LLC
 * miss rate over an execution, built from detected stall events.
 *
 * EMPROF can profile a system's boot from its very first instruction —
 * before any performance-monitoring infrastructure exists — because it
 * needs nothing from the target.  This module turns an event list into
 * the miss-rate-vs-time curve the paper plots.
 */

#ifndef EMPROF_PROFILER_BOOT_PROFILE_HPP
#define EMPROF_PROFILER_BOOT_PROFILE_HPP

#include <string>
#include <vector>

#include "profiler/events.hpp"

namespace emprof::profiler {

/** One time bucket of the boot profile. */
struct BootBucket
{
    /** Bucket start time, seconds from capture start. */
    double timeSeconds = 0.0;

    /** Detected LLC-miss stalls in this bucket. */
    uint64_t events = 0;

    /** Miss rate, events per millisecond. */
    double eventsPerMs = 0.0;

    /** Stall time within the bucket, as a percentage. */
    double stallPercent = 0.0;
};

/** Boot profile: bucketed miss-rate time series. */
struct BootProfile
{
    std::vector<BootBucket> buckets;

    /** Bucket width in seconds. */
    double bucketSeconds = 0.0;

    /** Render as an aligned text table with a rate bar chart. */
    std::string toText() const;
};

/**
 * Build the miss-rate time series from detected events.
 *
 * @param events Detected stall events.
 * @param sample_rate_hz Sample rate of the analysed signal.
 * @param total_samples Length of the analysed signal.
 * @param bucket_seconds Time-bucket width.
 */
BootProfile makeBootProfile(const std::vector<StallEvent> &events,
                            double sample_rate_hz, uint64_t total_samples,
                            double bucket_seconds);

/**
 * Similarity of two boot profiles in [0, 1]: normalised correlation of
 * their rate curves (truncated to the shorter).  Used to show that two
 * boots of the same device produce consistent profiles (Fig. 13 plots
 * two distinct runs).
 */
double bootProfileSimilarity(const BootProfile &a, const BootProfile &b);

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_BOOT_PROFILE_HPP
