/**
 * @file
 * Parallel chunked batch analysis of recorded captures.
 *
 * A recorded capture is split into contiguous chunks; every chunk is
 * normalised and dip-detected independently on a thread pool, and a
 * sequential stitch pass merges dips that straddle chunk boundaries.
 * The result is *bit-identical* to the streaming path (EmProf::analyze)
 * — same events, same sample indices, same depths — at N× real time on
 * N cores.  See DESIGN.md, "Parallel analysis & threading model", for
 * the chunk/halo diagram and the determinism argument.
 *
 * Two properties make exact equivalence possible:
 *
 *  1. Normalisation is a pure function of a bounded history: the value
 *     at sample i depends only on the last normWindowSamples() raw
 *     samples.  Each chunk therefore re-feeds a "halo" of that many
 *     preceding samples into a fresh normaliser before its own range,
 *     reproducing the streaming envelope exactly.
 *
 *  2. The dip detector's cross-chunk dependence collapses at the first
 *     normalised sample above the exit threshold: whatever the incoming
 *     state was, the detector is guaranteed "not in a dip" right after
 *     it.  Each chunk records its *prefix* (the leading run of samples
 *     at or below exit) so the stitcher can replay those samples into a
 *     dip left open by the previous chunk, sample for sample, in
 *     order — preserving even the floating-point summation order of
 *     the depth accumulator.
 */

#ifndef EMPROF_PROFILER_PARALLEL_ANALYZER_HPP
#define EMPROF_PROFILER_PARALLEL_ANALYZER_HPP

#include <cstddef>
#include <string>

#include "dsp/types.hpp"
#include "profiler/profiler.hpp"

namespace emprof::store {
class CaptureReader;
}

namespace emprof::profiler {

/** Tuning knobs for the parallel batch analyzer. */
struct ParallelAnalyzerConfig
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    std::size_t threads = 0;

    /**
     * Chunk length in samples; 0 picks one automatically (one span per
     * effective worker — static partitioning — floored at eight
     * normalisation windows so the halo re-normalisation overhead
     * stays small).  An explicit value always runs the chunk + stitch
     * machinery, even on one worker (tests use tiny chunks to exercise
     * boundary stitching regardless of core count).
     */
    std::size_t chunkSamples = 0;

    /**
     * With automatic chunking, inputs shorter than this run on the
     * plain streaming path — the pool spin-up and halo overhead would
     * dwarf any speedup.  Ignored when chunkSamples is set explicitly.
     */
    std::size_t minParallelSamples = 1u << 20;

    /**
     * Allow the batch kernel's reduced-precision (single-precision
     * divide) normalisation on the classic path.  Off by default:
     * results are then bit-identical to streaming.  When on, normalised
     * values may differ from the reference by ~2 float ULP, which can
     * move a dip boundary by one sample in razor-edge cases (see
     * batch_pipeline.hpp).
     */
    bool fastMathSimd = false;
};

/**
 * Batch analyzer producing streaming-identical events from recorded
 * captures using a pool of worker threads.
 */
class ParallelAnalyzer
{
  public:
    explicit ParallelAnalyzer(ParallelAnalyzerConfig config = {});

    /**
     * Analyse a whole recorded magnitude series.
     *
     * The series' own sample rate overrides config.sampleRateHz, as in
     * EmProf::analyze.  Falls back to the streaming path when the input
     * is short or only one thread is available.
     */
    ProfileResult analyze(const dsp::TimeSeries &magnitude,
                          EmProfConfig config) const;

    /**
     * Analyse an EMCAP capture straight off disk.
     *
     * Each worker seeks to its own span of chunks via the footer index
     * and decodes them concurrently with everyone else's dip
     * detection — the capture is never materialised in one buffer, so
     * peak memory is O(threads * task span), and decode overlaps
     * analysis instead of serialising in a front-end loader.  The
     * events are bit-identical to readAll() + analyze() (and therefore
     * to the streaming path) for every thread count and chunk layout.
     *
     * The capture's sample rate overrides config.sampleRateHz; its
     * clock is NOT applied to config (callers decide, since a command
     * line may override the recorded clock).
     *
     * @retval false A chunk failed its CRC or decode; @p error (if
     *         non-null) says which.
     */
    bool analyzeCapture(const store::CaptureReader &reader,
                        EmProfConfig config, ProfileResult &out,
                        std::string *error = nullptr) const;

    const ParallelAnalyzerConfig &config() const { return config_; }

  private:
    ParallelAnalyzerConfig config_;
};

/** One-shot convenience wrapper around ParallelAnalyzer. */
ProfileResult analyzeParallel(const dsp::TimeSeries &magnitude,
                              EmProfConfig config,
                              ParallelAnalyzerConfig parallel = {});

/** One-shot convenience wrapper for EMCAP captures. */
bool analyzeCaptureParallel(const store::CaptureReader &reader,
                            EmProfConfig config, ProfileResult &out,
                            ParallelAnalyzerConfig parallel = {},
                            std::string *error = nullptr);

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_PARALLEL_ANALYZER_HPP
