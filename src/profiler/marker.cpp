#include "profiler/marker.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/series_ops.hpp"

namespace emprof::profiler {

MarkerSections
findMarkerSections(const dsp::TimeSeries &magnitude,
                   const MarkerConfig &config)
{
    MarkerSections out;
    const std::size_t n = magnitude.samples.size();
    const std::size_t block = std::max<std::size_t>(2, config.blockSamples);
    const std::size_t num_blocks = n / block;
    if (num_blocks == 0)
        return out;

    // Global reference level: 95th percentile of a subsample (for
    // speed) of the magnitude.
    std::vector<double> sample_pool;
    sample_pool.reserve(n / 16 + 1);
    for (std::size_t i = 0; i < n; i += 16)
        sample_pool.push_back(magnitude.samples[i]);
    const double ref_level = dsp::percentile(std::move(sample_pool), 95.0);

    // Classify blocks.
    std::vector<bool> marker_like(num_blocks, false);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        double sum = 0.0, sum_sq = 0.0;
        for (std::size_t i = b * block; i < (b + 1) * block; ++i) {
            const double v = magnitude.samples[i];
            sum += v;
            sum_sq += v * v;
        }
        const double m = sum / static_cast<double>(block);
        const double var =
            std::max(0.0, sum_sq / static_cast<double>(block) - m * m);
        const double rel_std = m > 0.0 ? std::sqrt(var) / m : 1.0;
        marker_like[b] =
            m >= config.minRelLevel * ref_level && rel_std <= config.maxRelStd;
    }

    // Runs of marker-like blocks.
    std::size_t run_start = 0;
    bool in_run = false;
    for (std::size_t b = 0; b <= num_blocks; ++b) {
        const bool flag = b < num_blocks && marker_like[b];
        if (flag && !in_run) {
            in_run = true;
            run_start = b;
        } else if (!flag && in_run) {
            in_run = false;
            if (b - run_start >= config.minBlocks) {
                out.markers.push_back(
                    {run_start * block, b * block});
            }
        }
    }

    if (out.markers.size() >= 2) {
        out.measured = {out.markers.front().end,
                        out.markers.back().begin};
    }
    return out;
}

dsp::TimeSeries
slice(const dsp::TimeSeries &in, SampleInterval interval)
{
    dsp::TimeSeries out;
    out.sampleRateHz = in.sampleRateHz;
    const uint64_t begin = std::min<uint64_t>(interval.begin,
                                              in.samples.size());
    const uint64_t end = std::min<uint64_t>(interval.end,
                                            in.samples.size());
    out.samples.assign(in.samples.begin() + static_cast<std::ptrdiff_t>(begin),
                       in.samples.begin() + static_cast<std::ptrdiff_t>(end));
    return out;
}

} // namespace emprof::profiler
