/**
 * @file
 * Incremental chunk stitching: the sequential tail of chunked analysis.
 *
 * Chunked analysis (parallel batch, or a long-lived serving session
 * feeding chunks as they arrive off a socket) produces one ChunkResult
 * per contiguous span of samples.  ChunkStitcher consumes those results
 * *in order* and maintains exactly the state the streaming detector
 * would have had at each chunk boundary: the open-dip carry, the event
 * list so far, and the quality blocks.  finalize() then classifies,
 * applies the signal-quality layer and builds the report in the same
 * order as EmProf::finish(), so the stitched result is bit-identical to
 * the streaming path no matter how the input was cut into chunks — or
 * how long the gaps between feed() calls were.
 *
 * This is the piece that makes analysis *resumable*: a server session
 * can feed a chunk, go idle for seconds while the next upload frame
 * crosses the network, and feed the next — the stitcher carries the
 * detector state across feeds with no buffered samples at all.
 *
 * Extracted from ParallelAnalyzer (which now drives it with
 * pool-ordered results) so the one-shot and served paths share one
 * stitch implementation.  See DESIGN.md §8 for the carry/replay
 * argument and §14 for the serving pipeline built on top.
 */

#ifndef EMPROF_PROFILER_STITCH_HPP
#define EMPROF_PROFILER_STITCH_HPP

#include <cstdint>
#include <vector>

#include "profiler/batch_pipeline.hpp"
#include "profiler/profiler.hpp"

namespace emprof::profiler {

/**
 * Order-sensitive accumulator over ChunkResults.
 *
 * feed() must be called with contiguous, in-order chunks (chunk N's
 * begin == chunk N-1's end).  finalize() may be called exactly once;
 * the stitcher is single-use.
 */
class ChunkStitcher
{
  public:
    explicit ChunkStitcher(const EmProfConfig &config);

    /** Merge one chunk's result into the running streaming state. */
    void feed(const ChunkResult &chunk);

    /**
     * Flush the open dip (same rule as EmProf::finish()), classify,
     * apply signal quality, and build the report over @p totalSamples.
     */
    ProfileResult finalize(uint64_t totalSamples);

    /** Events completed so far (pre-classification, pre-finalize). */
    const std::vector<StallEvent> &events() const { return events_; }

    /** Samples of chunk prefixes replayed into carried dips so far. */
    uint64_t replayedSamples() const { return replayedSamples_; }

    /** Dips carried open across a chunk boundary so far. */
    uint64_t carriedDips() const { return carriedDips_; }

  private:
    void emitCarry();

    EmProfConfig config_;
    uint64_t minDuration_;
    std::vector<StallEvent> events_;
    std::vector<SignalBlock> blocks_;
    DipDetector::DipState carry_;
    uint64_t carriedDips_ = 0;
    uint64_t replayedSamples_ = 0;
    bool finalized_ = false;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_STITCH_HPP
