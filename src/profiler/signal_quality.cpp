#include "profiler/signal_quality.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"

namespace emprof::profiler {

namespace {

// sqrt(pi / 2): converts the mean absolute difference of consecutive
// Gaussian-noise samples into the noise sigma (E|dx| = 2 sigma/sqrt(pi)
// for the first difference of iid noise, dx sigma = sigma * sqrt(2)).
constexpr double kMadToSigma = 0.886226925452758;

void
countQuality(const SignalQualitySummary &summary)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &reg = obs::MetricsRegistry::instance();
    static const obs::Counter clean =
        reg.counter("signal.blocks_clean");
    static const obs::Counter degraded =
        reg.counter("signal.blocks_degraded");
    static const obs::Counter unusable =
        reg.counter("signal.blocks_unusable");
    static const obs::Counter clip =
        reg.counter("signal.quarantine.clipping");
    static const obs::Counter drop =
        reg.counter("signal.quarantine.dropout");
    static const obs::Counter snr =
        reg.counter("signal.quarantine.low_snr");
    static const obs::Counter dropped =
        reg.counter("signal.events_dropped");
    static const obs::Gauge coverage =
        reg.gauge("signal.coverage_fraction");
    clean.add(summary.cleanBlocks);
    degraded.add(summary.degradedBlocks);
    unusable.add(summary.unusableBlocks);
    clip.add(summary.quarantinedClipping);
    drop.add(summary.quarantinedDropout);
    snr.add(summary.quarantinedLowSnr);
    dropped.add(summary.eventsDropped);
    coverage.set(summary.coverageFraction);
}

} // namespace

bool
SignalQualityConfig::validate(std::string *why) const
{
    auto fail = [&](const char *msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (!(driftToleranceFraction > 0.0) || driftToleranceFraction > 1.0)
        return fail("signal.driftToleranceFraction must be in (0, 1]");
    if (!(maxClipFraction >= 0.0) || maxClipFraction > 1.0)
        return fail("signal.maxClipFraction must be in [0, 1]");
    if (!(maxDropoutFraction >= 0.0) || maxDropoutFraction > 1.0)
        return fail("signal.maxDropoutFraction must be in [0, 1]");
    if (std::isnan(minSnrDb) || std::isnan(degradedSnrDb))
        return fail("signal SNR thresholds must not be NaN");
    if (degradedSnrDb < minSnrDb)
        return fail("signal.degradedSnrDb must be >= signal.minSnrDb");
    if (!(fullConfidenceSnrDb > 0.0))
        return fail("signal.fullConfidenceSnrDb must be > 0");
    return true;
}

void
BlockAccumulator::begin(uint64_t start)
{
    s_ = RawStats{};
    s_.start = start;
    prev_ = 0.0;
}

void
BlockAccumulator::push(double x)
{
    if (s_.count == 0) {
        s_.min = x;
        s_.max = x;
        s_.atMax = 1;
    } else {
        if (x < s_.min)
            s_.min = x;
        if (x > s_.max) {
            s_.max = x;
            s_.atMax = 1;
        } else if (x == s_.max) {
            ++s_.atMax;
        }
        s_.sumAbsDx[s_.count & 3] += std::fabs(x - prev_);
        if (x == prev_)
            ++s_.repeats;
    }
    if (x == 0.0)
        ++s_.zeros;
    s_.sum[s_.count & 3] += x;
    prev_ = x;
    ++s_.count;
}

SignalBlock
BlockAccumulator::finish(uint64_t end,
                         const SignalQualityConfig &config) const
{
    return classifyStats(s_, end, config);
}

SignalBlock
BlockAccumulator::classifyStats(const RawStats &s, uint64_t end,
                                const SignalQualityConfig &config)
{
    SignalBlock b;
    b.begin = s.start;
    b.end = end;
    b.samplesAtMax = s.atMax;
    b.zeroSamples = s.zeros;
    b.repeatSamples = s.repeats;
    b.minValue = s.min;
    b.maxValue = s.max;

    // Fixed bin-combine order (0+2)+(1+3): matches a 4-lane vector
    // reduction of low half + high half, then lane 0 + lane 1.
    const double sum = (s.sum[0] + s.sum[2]) + (s.sum[1] + s.sum[3]);
    const double sumAbsDx =
        (s.sumAbsDx[0] + s.sumAbsDx[2]) + (s.sumAbsDx[1] + s.sumAbsDx[3]);

    const double n = static_cast<double>(s.count);
    b.mean = s.count > 0 ? sum / n : 0.0;
    b.noiseSigma =
        s.count > 1 ? (sumAbsDx / (n - 1.0)) * kMadToSigma : 0.0;
    if (b.noiseSigma <= 0.0)
        b.snrDb = 99.0; // noiseless (e.g. constant block)
    else if (b.mean <= 0.0)
        b.snrDb = -99.0;
    else
        b.snrDb = std::clamp(20.0 * std::log10(b.mean / b.noiseSigma),
                             -99.0, 99.0);

    // A lone maximum is the normal case; only a repeated plateau at the
    // top of the range smells like ADC clipping.
    const double clipFrac = (s.count > 0 && s.atMax > 1 && s.max > 0.0)
                                ? static_cast<double>(s.atMax) / n
                                : 0.0;
    const double dropFrac =
        s.count > 0
            ? static_cast<double>(std::max(s.zeros, s.repeats)) / n
            : 0.0;

    if (clipFrac > config.maxClipFraction) {
        b.cls = BlockClass::Unusable;
        b.reason = QuarantineReason::Clipping;
    } else if (dropFrac > config.maxDropoutFraction) {
        b.cls = BlockClass::Unusable;
        b.reason = QuarantineReason::Dropout;
    } else if (b.snrDb < config.minSnrDb) {
        b.cls = BlockClass::Unusable;
        b.reason = QuarantineReason::LowSnr;
    } else if (clipFrac > 0.5 * config.maxClipFraction ||
               dropFrac > 0.5 * config.maxDropoutFraction ||
               b.snrDb < config.degradedSnrDb) {
        b.cls = BlockClass::Degraded;
    } else {
        b.cls = BlockClass::Clean;
    }
    return b;
}

double
eventConfidence(const StallEvent &ev, const SignalBlock &block,
                const DipDetectorConfig &detector,
                const SignalQualityConfig &config)
{
    const double exit = detector.exitThreshold;
    const double margin =
        exit > 0.0 ? std::clamp((exit - ev.depth) / exit, 0.0, 1.0)
                   : 1.0;
    const double min_dur =
        static_cast<double>(std::max<std::size_t>(
            detector.minDurationSamples, 1));
    const double duration = std::min(
        1.0, static_cast<double>(ev.durationSamples()) / (2.0 * min_dur));
    const double snr = std::clamp(
        block.snrDb / config.fullConfidenceSnrDb, 0.0, 1.0);
    return margin * duration * snr;
}

SignalQualitySummary
applySignalQuality(std::vector<StallEvent> &events,
                   const std::vector<SignalBlock> &blocks,
                   const DipDetectorConfig &detector,
                   const SignalQualityConfig &config,
                   uint64_t total_samples)
{
    EMPROF_OBS_STAGE("analyze.signal_quality");

    SignalQualitySummary summary;
    summary.enabled = true;
    summary.totalBlocks = blocks.size();

    uint64_t usable_samples = 0;
    for (const SignalBlock &b : blocks) {
        switch (b.cls) {
        case BlockClass::Clean:
            ++summary.cleanBlocks;
            break;
        case BlockClass::Degraded:
            ++summary.degradedBlocks;
            break;
        case BlockClass::Unusable:
            ++summary.unusableBlocks;
            switch (b.reason) {
            case QuarantineReason::Clipping:
                ++summary.quarantinedClipping;
                break;
            case QuarantineReason::Dropout:
                ++summary.quarantinedDropout;
                break;
            case QuarantineReason::LowSnr:
                ++summary.quarantinedLowSnr;
                break;
            case QuarantineReason::None:
                break;
            }
            break;
        }
        if (b.cls != BlockClass::Unusable)
            usable_samples += b.samples();
    }
    summary.coverageFraction =
        (total_samples > 0 && !blocks.empty())
            ? static_cast<double>(usable_samples) /
                  static_cast<double>(total_samples)
            : 1.0;

    // Events and blocks are both sorted and disjoint: walk them with
    // two cursors.  An event is quarantined when any block it overlaps
    // is unusable; otherwise its confidence comes from the block that
    // holds its first sample.
    std::vector<StallEvent> kept;
    kept.reserve(events.size());
    double confidence_sum = 0.0;
    std::size_t bi = 0;
    for (StallEvent &ev : events) {
        while (bi < blocks.size() && blocks[bi].end <= ev.startSample)
            ++bi;
        bool quarantined = false;
        const SignalBlock *home = nullptr;
        for (std::size_t j = bi;
             j < blocks.size() && blocks[j].begin <= ev.endSample; ++j) {
            if (blocks[j].cls == BlockClass::Unusable)
                quarantined = true;
            if (!home && ev.startSample >= blocks[j].begin &&
                ev.startSample < blocks[j].end)
                home = &blocks[j];
        }
        if (quarantined) {
            ++summary.eventsDropped;
            continue;
        }
        if (home)
            ev.confidence = eventConfidence(ev, *home, detector, config);
        confidence_sum += ev.confidence;
        kept.push_back(ev);
    }
    events.swap(kept);
    summary.meanConfidence =
        events.empty() ? 0.0
                       : confidence_sum /
                             static_cast<double>(events.size());

    countQuality(summary);
    return summary;
}

} // namespace emprof::profiler
