/**
 * @file
 * Dip detector: finds significant drops in the normalised signal whose
 * duration exceeds a threshold (Sec. IV).
 *
 * The duration threshold is chosen "significantly shorter than the LLC
 * latency but significantly longer than typical on-chip latencies", so
 * L1/LLC-hit stalls are rejected while every memory-latency stall is
 * kept.  Hysteresis (separate enter/exit thresholds) keeps one noisy
 * sample at the dip edge from splitting a stall in two.
 */

#ifndef EMPROF_PROFILER_DIP_DETECTOR_HPP
#define EMPROF_PROFILER_DIP_DETECTOR_HPP

#include <cstdint>
#include <vector>

#include "profiler/events.hpp"

namespace emprof::profiler {

/** Dip-detector thresholds. */
struct DipDetectorConfig
{
    /** Normalised level below which a dip begins. */
    double enterThreshold = 0.35;

    /** Normalised level above which a dip ends (> enterThreshold). */
    double exitThreshold = 0.50;

    /** Minimum dip length, in samples, to report an event. */
    uint64_t minDurationSamples = 2;
};

/**
 * Streaming dip detector over normalised samples.
 *
 * Emits raw events carrying sample indices and depth; duration/cycle
 * conversion and classification happen in the profiler facade.
 */
class DipDetector
{
  public:
    /**
     * Snapshot of an in-progress dip — everything the streaming state
     * machine carries across a sample boundary.  The parallel analyzer
     * uses this to hand a dip that is still open at the end of one
     * chunk to the stitcher, which continues it into the next chunk
     * with exactly the accumulators streaming would have had.
     */
    struct DipState
    {
        bool inDip = false;
        uint64_t start = 0;
        uint64_t lastBelowExit = 0;
        double depthSum = 0.0;
        uint64_t depthCount = 0;
    };

    explicit DipDetector(const DipDetectorConfig &config);

    /**
     * Push one normalised sample.
     *
     * Inline because this sits on the per-sample hot path of both the
     * streaming and the batch analyzers; only the dip-close bookkeeping
     * (orders of magnitude rarer) is out of line.
     *
     * @param normalized Sample in [0, 1].
     * @param out Receives a completed event.
     * @retval true An event (a dip that just ended) was written.
     */
    bool
    push(double normalized, StallEvent &out)
    {
        const uint64_t i = index_++;
        if (!inDip_) {
            if (normalized < config_.enterThreshold) {
                inDip_ = true;
                dipStart_ = i;
                dipLastBelowExit_ = i;
                depthSum_ = normalized;
                depthCount_ = 1;
            }
            return false;
        }
        if (normalized > config_.exitThreshold)
            return closeDip(out);
        dipLastBelowExit_ = i;
        depthSum_ += normalized;
        ++depthCount_;
        return false;
    }

    /**
     * Flush: if the signal ends inside a dip, emit it.
     *
     * @retval true A trailing event was written to @p out.
     */
    bool finish(StallEvent &out);

    /** Samples processed so far. */
    uint64_t samplesSeen() const { return index_; }

    /**
     * Skip @p n samples the caller has proven are no-ops: outside a
     * dip, a sample at or above enterThreshold only consumes an index
     * in push(), so advancing the index directly is exactly equivalent
     * to n pushes.  The batch analyzer uses this for vector runs its
     * screen pass proved dip-free.  Must not be called while a dip is
     * open (an in-dip sample always mutates state).
     */
    void advance(uint64_t n) { index_ += n; }

    /** True while a dip is currently open. */
    bool inDip() const { return inDip_; }

    /** State of the currently open dip (inDip == false if none). */
    DipState state() const;

    const DipDetectorConfig &config() const { return config_; }

  private:
    /** Populate @p out from the currently open dip. */
    void fillEvent(StallEvent &out) const;

    /** Close the open dip (a sample above exit arrived): emit if long
     *  enough, reset the accumulators, update the dip counters. */
    bool closeDip(StallEvent &out);

    DipDetectorConfig config_;
    uint64_t index_ = 0;
    bool inDip_ = false;
    uint64_t dipStart_ = 0;
    uint64_t dipLastBelowExit_ = 0;
    double depthSum_ = 0.0;
    uint64_t depthCount_ = 0;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_DIP_DETECTOR_HPP
