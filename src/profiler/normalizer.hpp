/**
 * @file
 * Moving min/max signal normalisation (Sec. IV).
 *
 * Probe position and supply voltage scale the whole signal by slowly
 * varying multiplicative factors.  EMPROF compensates by tracking a
 * moving minimum and maximum of the magnitude and mapping each sample
 * to [0, 1] between them: 0 is the recent stall floor, 1 the recent
 * busy ceiling.  Detection thresholds then become device- and
 * setup-independent.
 */

#ifndef EMPROF_PROFILER_NORMALIZER_HPP
#define EMPROF_PROFILER_NORMALIZER_HPP

#include <cstddef>

#include "dsp/minmax_filter.hpp"

namespace emprof::profiler {

/**
 * Streaming [0, 1] normaliser against a moving min/max envelope.
 */
class MovingMinMaxNormalizer
{
  public:
    /**
     * @param window Envelope window length in samples.  Must be long
     *        enough to contain busy activity on either side of the
     *        longest expected stall (several ms worth of samples).
     * @param min_contrast Minimum (max-min)/max dynamic range for the
     *        window to be considered contrasted.  A window with less
     *        contrast contains no stall floor, so its samples are
     *        reported as fully busy (1.0) rather than letting noise
     *        span the full normalised range.
     */
    explicit MovingMinMaxNormalizer(std::size_t window,
                                    double min_contrast = 0.2);

    /** Push one magnitude sample, get its normalised value in [0,1]. */
    double push(double magnitude);

    /** Current envelope floor. */
    double envelopeMin() const { return minmax_.min(); }

    /** Current envelope ceiling. */
    double envelopeMax() const { return minmax_.max(); }

    /** True once the envelope window is fully populated. */
    bool warm() const { return minmax_.warm(); }

    std::size_t window() const { return minmax_.window(); }

  private:
    // VHGW sliding min/max: bit-identical extrema to the monotonic
    // wedge (dsp::MovingMinMax) but with a branch-light fixed cost per
    // sample, which is what the hot path wants.
    dsp::MinMaxFilter<double> minmax_;
    double minContrast_;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_NORMALIZER_HPP
