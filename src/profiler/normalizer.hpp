/**
 * @file
 * Moving min/max signal normalisation (Sec. IV).
 *
 * Probe position and supply voltage scale the whole signal by slowly
 * varying multiplicative factors.  EMPROF compensates by tracking a
 * moving minimum and maximum of the magnitude and mapping each sample
 * to [0, 1] between them: 0 is the recent stall floor, 1 the recent
 * busy ceiling.  Detection thresholds then become device- and
 * setup-independent.
 */

#ifndef EMPROF_PROFILER_NORMALIZER_HPP
#define EMPROF_PROFILER_NORMALIZER_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/minmax_filter.hpp"

namespace emprof::profiler {

/**
 * Memoised log-grid envelope snap shared by AdaptiveNormalizer and the
 * batch analyzer's resilient kernel.
 *
 * snap() is a pure function of (lo, hi) — identical inputs give
 * identical bits — but the ceiling/floor grids are recomputed only
 * when their inputs change, which is what makes the per-sample cost
 * negligible: inside a stable envelope stretch the exp2/log2/floor
 * pipeline runs once, not per sample.
 */
class LogGridSnap
{
  public:
    explicit LogGridSnap(double drift_tolerance)
        : driftTolerance_(drift_tolerance),
          gridScale_(1.0 / std::log2(1.0 + drift_tolerance))
    {}

    /** Snap envelope (lo, hi); requires hi > 0. */
    void
    snap(double lo, double hi, double &loCal, double &hiCal)
    {
        if (hi != cachedHi_) {
            cachedHi_ = hi;
            cachedHiCal_ = std::exp2(
                std::ceil(std::log2(hi) * gridScale_) / gridScale_);
        }
        hiCal = cachedHiCal_;
        const double q = driftTolerance_ * hiCal;
        if (lo != cachedLo_ || q != cachedQ_) {
            cachedLo_ = lo;
            cachedQ_ = q;
            cachedLoCal_ = std::floor(lo / q) * q;
        }
        loCal = cachedLoCal_;
    }

    double driftTolerance() const { return driftTolerance_; }

  private:
    double driftTolerance_;
    double gridScale_; // 1 / log2(1 + driftTolerance)
    double cachedHi_ = -1.0;
    double cachedHiCal_ = 0.0;
    double cachedLo_ = -1.0;
    double cachedQ_ = -1.0;
    double cachedLoCal_ = 0.0;
};

/**
 * Streaming [0, 1] normaliser against a moving min/max envelope.
 */
class MovingMinMaxNormalizer
{
  public:
    /**
     * @param window Envelope window length in samples.  Must be long
     *        enough to contain busy activity on either side of the
     *        longest expected stall (several ms worth of samples).
     * @param min_contrast Minimum (max-min)/max dynamic range for the
     *        window to be considered contrasted.  A window with less
     *        contrast contains no stall floor, so its samples are
     *        reported as fully busy (1.0) rather than letting noise
     *        span the full normalised range.
     */
    explicit MovingMinMaxNormalizer(std::size_t window,
                                    double min_contrast = 0.2);

    /** Push one magnitude sample, get its normalised value in [0,1]. */
    double push(double magnitude);

    /** Current envelope floor. */
    double envelopeMin() const { return minmax_.min(); }

    /** Current envelope ceiling. */
    double envelopeMax() const { return minmax_.max(); }

    /** True once the envelope window is fully populated. */
    bool warm() const { return minmax_.warm(); }

    std::size_t window() const { return minmax_.window(); }

  private:
    // VHGW sliding min/max: bit-identical extrema to the monotonic
    // wedge (dsp::MovingMinMax) but with a branch-light fixed cost per
    // sample, which is what the hot path wants.
    dsp::MinMaxFilter<double> minmax_;
    double minContrast_;
};

/**
 * Exact windowed-mean pre-smoother for the adaptive normaliser.
 *
 * The sum over the (at most @c window) most recent samples is
 * recomputed from the ring oldest-to-newest on every push.  That is
 * O(window) instead of O(1), but the windows here are tiny (<= 16
 * samples) and it buys the property the parallel analyzer depends on:
 * the output at index i is a pure function of the last `window` raw
 * samples, with a fixed summation order, so a chunk that re-feeds a
 * halo reproduces the streaming values bit for bit.
 */
class BoxSmoother
{
  public:
    explicit BoxSmoother(std::size_t window);

    /** Push a raw sample, get the mean of the trailing window. */
    double push(double x);

    void reset();

    std::size_t window() const { return ring_.size(); }

  private:
    std::vector<double> ring_;
    std::size_t head_ = 0; // next write position
    uint64_t count_ = 0;
    // 1/window when the window is a power of two (division by a power
    // of two is exact, so multiplying by the reciprocal returns the
    // same bits as dividing while dodging the divide latency); 0 when
    // the window is not a power of two.
    double invWindow_ = 0.0;
};

/**
 * Self-recalibrating normaliser for impaired captures.
 *
 * Same moving min/max idea as MovingMinMaxNormalizer, with two
 * additions for noisy/drifting signals:
 *
 *  - the envelope is tracked over a short boxcar-smoothed version of
 *    the magnitude, so single-sample noise spikes and impulse bursts
 *    do not poison the floor/ceiling estimates for a whole window;
 *  - the floor and ceiling are snapped to a deterministic logarithmic
 *    grid (step = driftTolerance x ceiling) before use, so the
 *    calibration only moves when the envelope genuinely drifts across
 *    a grid step — sub-step jitter of the window extrema leaves the
 *    mapping untouched.
 *
 * The snap is memoryless (a pure function of the current window
 * extrema), which keeps the output at index i a pure function of the
 * last window+smoother-1 raw samples — the invariant the parallel
 * analyzer's halo re-feed relies on for bit parity with streaming.
 */
class AdaptiveNormalizer
{
  public:
    /**
     * @param window Envelope window length in samples (over the
     *        smoothed signal).
     * @param smoother Pre-smoother length in samples.
     * @param drift_tolerance Calibration grid step as a fraction of
     *        the envelope ceiling, in (0, 1].
     * @param min_contrast As for MovingMinMaxNormalizer.
     */
    AdaptiveNormalizer(std::size_t window, std::size_t smoother,
                       double drift_tolerance,
                       double min_contrast = 0.2);

    /** Push one magnitude sample, get its normalised value in [0,1]. */
    double push(double magnitude);

    /** Current (snapped) envelope floor. */
    double envelopeMin() const { return lastLo_; }

    /** Current (snapped) envelope ceiling. */
    double envelopeMax() const { return lastHi_; }

    std::size_t window() const { return minmax_.window(); }

    std::size_t smoother() const { return smoother_.window(); }

  private:
    BoxSmoother smoother_;
    dsp::MinMaxFilter<double> minmax_;
    double minContrast_;
    LogGridSnap snap_;
    double lastLo_ = 0.0;
    double lastHi_ = 0.0;
};

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_NORMALIZER_HPP
