/**
 * @file
 * AVX2 batch kernel for the per-chunk envelope -> normalise ->
 * dip-detect pipeline.  See batch_pipeline.hpp for the parity
 * contract; this file is compiled with -mavx2 (and intentionally
 * without -mfma, so every arithmetic operation rounds exactly like the
 * plain-C streaming reference).
 *
 * Structure, per normalisation-window-sized block (the VHGW
 * decomposition used by dsp::slidingMinMaxBatch):
 *
 *  1. a backward vector scan builds the block's suffix-extrema tables
 *     (and, as a by-product, the block totals);
 *  2. a forward pass walks the block one vector at a time keeping only
 *     per-lane running extrema (one min/max per vector — not the full
 *     prefix scan), and *screens* each vector: using the block totals
 *     of this and the previous block, it derives a conservative bound
 *     `thresh >= 1.05 * enterThreshold * range` valid for every window
 *     ending in the block, and a lane with
 *     `sample - laneRunningMin >= thresh` provably normalises to at
 *     least 1.05x the entry threshold.  A fully screened vector is
 *     disposed of with DipDetector::advance() — by the detector's
 *     contract an exact no-op;
 *  3. a vector that survives the screen (or overlaps the chunk prefix,
 *     an open dip, or the halo boundary) takes the exact path: the
 *     per-lane prefix extrema are reconstructed from the pre-vector
 *     carry (a horizontal reduction of the running extrema) plus an
 *     in-vector scan, combined with the previous block's suffix table,
 *     and the normalisation runs in double precision with the exact
 *     operation sequence of the streaming normaliser.
 *
 * The screen can only *fail* to skip (costing the exact path), never
 * skip a sample whose normalised value could reach the entry
 * threshold: the running lane minimum is a minimum over a subset of
 * the lane's window, so `sample - laneRunningMin` underestimates
 * `sample - windowLow`, and the 5% margin absorbs the float rounding
 * of the bound itself.
 */

#if !defined(__AVX2__)
#error "batch_pipeline_avx2.cpp must be compiled with -mavx2"
#endif

#include "profiler/batch_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <immintrin.h>
#include <limits>
#include <vector>

#include "dsp/batch_minmax_impl.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "profiler/normalizer.hpp"

namespace emprof::profiler::detail {

namespace {

using Lanes = dsp::lanes::Avx2;
using OpsF8 = dsp::detail::OpsF<Lanes>;
using OpsD4 = dsp::detail::OpsD<Lanes>;

constexpr float kInfF = std::numeric_limits<float>::infinity();
constexpr double kInfD = std::numeric_limits<double>::infinity();

/**
 * Chunk-side emission state shared by both kernels: the dip-detector
 * state machine (indexed chunk-locally, i.e. 0 at `begin`), the prefix
 * recorder, and the event collector.
 *
 * The detector is open-coded here instead of wrapping a DipDetector so
 * the kernels can lift its state into a register-resident DipCursor:
 * a vector push_back inside the per-lane loop would otherwise force
 * every field through memory on every lane (the compiler must assume
 * the call observes them).  Only the dip *close* — orders of magnitude
 * rarer than a lane step — touches the heap, in a cold out-of-line
 * member.  The transition rules are copied verbatim from
 * DipDetector::push/closeDip, which stays the reference.
 */
struct Emitter
{
    /** The streaming detector state a lane step mutates. */
    struct DipCursor
    {
        uint64_t idx = 0; // samples pushed so far (detector index)
        bool inDip = false;
        uint64_t start = 0;
        uint64_t last = 0; // last sample at or below exit
        double sum = 0.0;
        uint64_t cnt = 0;
    };

    ChunkResult *r;
    uint64_t begin;
    double enterT;
    double exitT;
    uint64_t minDur;
    double prefixExit;
    bool inPrefix = true;
    DipCursor cur;

    Emitter(const EmProfConfig &config, ChunkResult *result)
        : r(result), begin(result->begin),
          enterT(config.detectorConfig().enterThreshold),
          exitT(config.detectorConfig().exitThreshold),
          minDur(config.detectorConfig().minDurationSamples),
          prefixExit(config.exitThreshold)
    {}

    /** Dip close: emit if long enough, mirror DipDetector's metrics. */
    __attribute__((cold, noinline)) void
    closeDip(uint64_t start, uint64_t last, double sum, uint64_t cnt)
    {
        const bool kept = last - start + 1 >= minDur;
        if (kept) {
            StallEvent ev{};
            ev.startSample = start + begin;
            ev.endSample = last + begin;
            ev.depth =
                cnt == 0 ? 0.0 : sum / static_cast<double>(cnt);
            r->events.push_back(ev);
        }
        if (obs::MetricsRegistry::enabled()) {
            auto &registry = obs::MetricsRegistry::instance();
            static const obs::Counter found =
                registry.counter("detector.dips_found");
            static const obs::Counter rejected_short =
                registry.counter("detector.dips_rejected.short_duration");
            if (kept)
                found.inc();
            else
                rejected_short.inc();
        }
    }

    /** Prefix recording: every norm until the first one above exit. */
    __attribute__((cold)) void
    pushPrefix(double normalized)
    {
        if (normalized > prefixExit)
            inPrefix = false;
        else
            r->prefixNorms.push_back(normalized);
    }

    /** Full streaming push (prefix + detector), Emitter-resident
     *  cursor.  The kernels' careful (halo/prefix) vectors use this;
     *  hot vectors run dipStep on a local cursor instead. */
    inline void push(double normalized);

    /** Detector snapshot in the DipState shape stitching expects. */
    DipDetector::DipState
    state() const
    {
        DipDetector::DipState s;
        s.inDip = cur.inDip;
        s.start = cur.start;
        s.lastBelowExit = cur.last;
        s.depthSum = cur.sum;
        s.depthCount = cur.cnt;
        return s;
    }
};

/**
 * One detector step — DipDetector::push with the cursor in @p c and
 * the thresholds passed by value, so nothing in the hot loop reloads
 * through `em` (the cold closeDip call would otherwise force it).
 */
inline void
dipStep(Emitter &em, Emitter::DipCursor &c, double enterT, double exitT,
        double normalized)
{
    const uint64_t i = c.idx++;
    if (!c.inDip) {
        if (normalized < enterT) {
            c.inDip = true;
            c.start = i;
            c.last = i;
            c.sum = normalized;
            c.cnt = 1;
        }
        return;
    }
    if (normalized > exitT) {
        em.closeDip(c.start, c.last, c.sum, c.cnt);
        c.inDip = false;
        c.sum = 0.0;
        c.cnt = 0;
        return;
    }
    c.last = i;
    c.sum += normalized;
    ++c.cnt;
}

inline void
Emitter::push(double normalized)
{
    if (inPrefix)
        pushPrefix(normalized);
    dipStep(*this, cur, enterT, exitT, normalized);
}

// ---------------------------------------------------------------- classic

/**
 * Forward pass over one classic block.  @p B is the block's offset in
 * the chunk's virtual stream (which starts at begin - halo with a
 * fresh normaliser); samples at virtual index >= @p emitFrom belong to
 * [begin, end) and feed the detector.
 */
void
classicForwardBlock(const float *xb, uint64_t B, std::size_t len,
                    bool first, const float *sprevMin,
                    const float *sprevMax, float threshf,
                    uint64_t emitFrom, double minContrast, bool fastMath,
                    Emitter &em)
{
    const __m256 inf8 = _mm256_set1_ps(kInfF);
    const __m256 ninf8 = _mm256_set1_ps(-kInfF);
    const __m256 vthresh = _mm256_set1_ps(threshf);
    const __m256d zero4 = _mm256_setzero_pd();
    const __m256d one4 = _mm256_set1_pd(1.0);
    const __m256d minc4 = _mm256_set1_pd(minContrast);
    __m256 accMin = inf8;
    __m256 accMax = ninf8;

    // Detector state lives in a local cursor for the duration of the
    // block so the lane loop keeps it in registers; only the careful
    // (halo-straddling / prefix) vectors route through the
    // Emitter-resident copy.
    Emitter::DipCursor c = em.cur;
    bool prefixDone = !em.inPrefix;
    const double enterT = em.enterT;
    const double exitT = em.exitT;

    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        const __m256 v = _mm256_loadu_ps(xb + i);
        const __m256 accMinB = accMin;
        const __m256 accMaxB = accMax;
        accMin = _mm256_min_ps(v, accMin);
        accMax = _mm256_max_ps(v, accMax);
        const uint64_t g = B + i;
        if (g + 8 <= emitFrom)
            continue; // halo warm-up: envelope state only
        if (prefixDone && !c.inDip && g >= emitFrom) {
            const __m256 num = _mm256_sub_ps(v, accMin);
            if (_mm256_movemask_ps(
                    _mm256_cmp_ps(num, vthresh, _CMP_LT_OQ)) == 0) {
                c.idx += 8;
                continue;
            }
        }

        // Exact path: per-lane window extrema = (carry over the block
        // prefix before this vector) + in-vector prefix scan, combined
        // with the previous block's suffix (suffix operand first, as
        // in the streaming filter's combine).
        const __m256 carryMin = _mm256_set1_ps(Lanes::f8_hmin(accMinB));
        const __m256 carryMax = _mm256_set1_ps(Lanes::f8_hmax(accMaxB));
        const __m256 pmin =
            _mm256_min_ps(OpsF8::scanUpMin(v, inf8), carryMin);
        const __m256 pmax =
            _mm256_max_ps(OpsF8::scanUpMax(v, ninf8), carryMax);
        __m256 lo = pmin;
        __m256 hi = pmax;
        if (!first) {
            lo = _mm256_min_ps(_mm256_loadu_ps(sprevMin + i + 1), pmin);
            hi = _mm256_max_ps(_mm256_loadu_ps(sprevMax + i + 1), pmax);
        }

        double nb[8];
        if (fastMath) {
            // Opt-in reduced precision: float divide, <= ~2 float ULP
            // from the double reference (see batch_pipeline.hpp).
            const __m256 zf = _mm256_setzero_ps();
            const __m256 onef = _mm256_set1_ps(1.0f);
            const __m256 mincf =
                _mm256_set1_ps(static_cast<float>(minContrast));
            const __m256 rangef = _mm256_sub_ps(hi, lo);
            const __m256 gate = _mm256_or_ps(
                _mm256_cmp_ps(hi, zf, _CMP_LE_OQ),
                _mm256_cmp_ps(rangef, _mm256_mul_ps(mincf, hi),
                              _CMP_LT_OQ));
            __m256 nf = _mm256_div_ps(_mm256_sub_ps(v, lo), rangef);
            nf = _mm256_max_ps(zf, nf);
            nf = _mm256_min_ps(onef, nf);
            nf = _mm256_blendv_ps(nf, onef, gate);
            float tmp[8];
            _mm256_storeu_ps(tmp, nf);
            for (int k = 0; k < 8; ++k)
                nb[k] = tmp[k];
        } else {
            // Double precision, the streaming operation sequence:
            // range = hi-lo; gate = hi<=0 || range < minContrast*hi;
            // clamp((v-lo)/range, 0, 1).  max(0,x)/min(1,x) reproduce
            // std::clamp bit for bit (including the NaN pass-through).
            for (int h = 0; h < 2; ++h) {
                const __m256d lod =
                    h == 0 ? Lanes::cvt_lo(lo) : Lanes::cvt_hi(lo);
                const __m256d hid =
                    h == 0 ? Lanes::cvt_lo(hi) : Lanes::cvt_hi(hi);
                const __m256d vd =
                    h == 0 ? Lanes::cvt_lo(v) : Lanes::cvt_hi(v);
                const __m256d range = _mm256_sub_pd(hid, lod);
                const __m256d gate = _mm256_or_pd(
                    _mm256_cmp_pd(hid, zero4, _CMP_LE_OQ),
                    _mm256_cmp_pd(range, _mm256_mul_pd(minc4, hid),
                                  _CMP_LT_OQ));
                __m256d nv =
                    _mm256_div_pd(_mm256_sub_pd(vd, lod), range);
                nv = _mm256_max_pd(zero4, nv);
                nv = _mm256_min_pd(one4, nv);
                nv = _mm256_blendv_pd(nv, one4, gate);
                _mm256_storeu_pd(nb + 4 * h, nv);
            }
        }
        if (prefixDone && g >= emitFrom) {
            for (int k = 0; k < 8; ++k)
                dipStep(em, c, enterT, exitT, nb[k]);
        } else {
            em.cur = c;
            for (int k = 0; k < 8; ++k) {
                if (g + static_cast<uint64_t>(k) < emitFrom)
                    continue;
                em.push(nb[k]);
            }
            c = em.cur;
            prefixDone = !em.inPrefix;
        }
    }
    em.cur = c;

    // Scalar tail (len % 8): continue the prefix fold from the vector
    // carry; exact double normalisation in both precision modes.
    float sm = Lanes::f8_hmin(accMin);
    float sM = Lanes::f8_hmax(accMax);
    for (; i < len; ++i) {
        const float xv = xb[i];
        sm = xv < sm ? xv : sm;
        sM = xv > sM ? xv : sM;
        float lof = sm;
        float hif = sM;
        if (!first) {
            const float a = sprevMin[i + 1];
            lof = a < lof ? a : lof;
            const float b = sprevMax[i + 1];
            hif = b > hif ? b : hif;
        }
        if (B + i < emitFrom)
            continue;
        const double lo = lof;
        const double hi = hif;
        const double m = xv;
        const double range = hi - lo;
        double normalized;
        if (hi <= 0.0 || range < minContrast * hi)
            normalized = 1.0;
        else
            normalized = std::clamp((m - lo) / range, 0.0, 1.0);
        em.push(normalized);
    }
}

/** Classic kernel over the chunk's whole virtual stream x[0..N). */
void
classicKernel(const float *x, std::size_t N, uint64_t emitFrom,
              const EmProfConfig &config, bool fastMath, Emitter &em)
{
    const std::size_t w =
        std::max<std::size_t>(config.normWindowSamples(), 1);

    // Previous/current block suffix tables with a +/-inf sentinel at
    // [w] (handles the prefix-only output branch-free) and slack lanes
    // for unmasked vector loads.
    std::vector<float> bufMinA(w + 8, kInfF), bufMaxA(w + 8, -kInfF);
    std::vector<float> bufMinB(w + 8, kInfF), bufMaxB(w + 8, -kInfF);
    float *sprevMin = bufMinA.data();
    float *sprevMax = bufMaxA.data();
    float *scurMin = bufMinB.data();
    float *scurMax = bufMaxB.data();

    const float screenScale =
        static_cast<float>(1.05 * config.enterThreshold);
    float prevMin = kInfF;
    float prevMax = -kInfF;

    const std::size_t nblocks = (N + w - 1) / w;
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t B = b * w;
        const std::size_t len = std::min(w, N - B);
        {
            EMPROF_OBS_STAGE("analyze.normalize");
            dsp::detail::suffixScanBlock<OpsF8, float>(x + B, len,
                                                       scurMin, scurMax);
        }
        // Every window ending in this block lies inside prev + cur, so
        // the combined totals bound its range from above.
        const float curMin = scurMin[0];
        const float curMax = scurMax[0];
        const float combMin = prevMin < curMin ? prevMin : curMin;
        const float combMax = prevMax > curMax ? prevMax : curMax;
        const float threshf = screenScale * (combMax - combMin);
        {
            EMPROF_OBS_STAGE("analyze.detect");
            classicForwardBlock(x + B, B, len, b == 0, sprevMin,
                                sprevMax, threshf, emitFrom,
                                config.minContrast, fastMath, em);
        }
        std::swap(sprevMin, scurMin);
        std::swap(sprevMax, scurMax);
        prevMin = curMin;
        prevMax = curMax;
    }
}

// -------------------------------------------------------------- resilient

/** One adaptive normalisation, streaming operation order (matches
 *  AdaptiveNormalizer::push after the envelope is known). */
inline double
resilientNorm(double m, double lo, double hi, LogGridSnap &snap,
              double minContrast)
{
    if (hi <= 0.0)
        return 1.0;
    double loCal;
    double hiCal;
    snap.snap(lo, hi, loCal, hiCal);
    const double range = hiCal - loCal;
    if (range < minContrast * hiCal)
        return 1.0;
    return std::clamp((m - loCal) / range, 0.0, 1.0);
}

/**
 * Resilient kernel: boxcar pre-smooth (exact summation order), sliding
 * extrema over the smoothed signal, log-grid snapped normalisation of
 * the raw signal, dip detection — the AdaptiveNormalizer pipeline.
 */
void
resilientKernel(const float *x, std::size_t N, uint64_t emitFrom,
                const EmProfConfig &config, Emitter &em)
{
    const std::size_t w =
        std::max<std::size_t>(config.normWindowSamples(), 1);
    const std::size_t s =
        std::max<std::size_t>(config.smootherSamples(), 1);
    const double dt = config.signal.driftToleranceFraction > 0.0
                          ? config.signal.driftToleranceFraction
                          : 0.05;
    const double minContrast = config.minContrast;
    LogGridSnap snap(dt);       // exact path (memoised, as streaming)
    LogGridSnap screenSnap(dt); // per-block screen bound only

    // The raw samples are widened to double on the fly (float->double
    // is exact, so converting at use matches staging bit for bit and
    // saves a full store+reload pass over the block); only the
    // smoothed block needs a buffer.
    std::vector<double> smBuf(w + 8, 0.0);
    double *sm = smBuf.data();
    std::vector<double> sufMinA(w + 4, kInfD), sufMaxA(w + 4, -kInfD);
    std::vector<double> sufMinB(w + 4, kInfD), sufMaxB(w + 4, -kInfD);
    double *sprevMin = sufMinA.data();
    double *sprevMax = sufMaxA.data();
    double *scurMin = sufMinB.data();
    double *scurMax = sufMaxB.data();

    // Exact reciprocal only for power-of-two windows, as BoxSmoother.
    const bool pow2 = (s & (s - 1)) == 0;
    const double invS = 1.0 / static_cast<double>(s);
    const __m256d invSv = _mm256_set1_pd(invS);
    const __m256d sVec = _mm256_set1_pd(static_cast<double>(s));

    double prevMin = kInfD; // smoothed block totals
    double prevMax = -kInfD;

    const std::size_t nblocks = (N + w - 1) / w;
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t B = b * w;
        const std::size_t len = std::min(w, N - B);
        const bool first = b == 0;
        {
            EMPROF_OBS_STAGE("analyze.normalize");
            const float *xf = x + B; // this block; history via xf[-t]

            // Boxcar smoother.  Sum order is oldest-to-newest per
            // output (each lane runs its own left-to-right fold), the
            // exact order BoxSmoother uses — bit parity by
            // construction.  Growing warm-up windows exist only while
            // the virtual stream index is below s-1.
            std::size_t j = 0;
            for (; j < len && B + j + 1 < s; ++j) {
                double sum = 0.0;
                for (std::ptrdiff_t t = -static_cast<std::ptrdiff_t>(B);
                     t <= static_cast<std::ptrdiff_t>(j); ++t)
                    sum += static_cast<double>(xf[t]);
                sm[j] = sum / static_cast<double>(B + j + 1);
            }
            const std::ptrdiff_t back =
                static_cast<std::ptrdiff_t>(s) - 1;
            for (; j + 4 <= len; j += 4) {
                const std::ptrdiff_t base =
                    static_cast<std::ptrdiff_t>(j) - back;
                __m256d acc =
                    _mm256_cvtps_pd(_mm_loadu_ps(xf + base));
                for (std::ptrdiff_t t = 1; t <= back; ++t)
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_cvtps_pd(_mm_loadu_ps(xf + base + t)));
                acc = pow2 ? _mm256_mul_pd(acc, invSv)
                           : _mm256_div_pd(acc, sVec);
                _mm256_storeu_pd(sm + j, acc);
            }
            for (; j < len; ++j) {
                double sum = 0.0;
                for (std::ptrdiff_t t =
                         static_cast<std::ptrdiff_t>(j) - back;
                     t <= static_cast<std::ptrdiff_t>(j); ++t)
                    sum += static_cast<double>(xf[t]);
                sm[j] = pow2 ? sum * invS
                             : sum / static_cast<double>(s);
            }

            dsp::detail::suffixScanBlock<OpsD4, double>(sm, len, scurMin,
                                                        scurMax);
        }

        // Screen bound over the snapped envelope.  Snap-up is monotone
        // in hi, so any window ceiling snaps to <= hiCal(combMax), and
        // any window floor snaps to >= lo - dt*hiCal(combMax) >=
        // combMin - dt*hiCal(combMax).  With combMax <= 0 every
        // window's ceiling is <= 0, so every sample normalises to 1.0:
        // a -inf threshold screens them all out.
        const double curMin = scurMin[0];
        const double curMax = scurMax[0];
        const double combMin = prevMin < curMin ? prevMin : curMin;
        const double combMax = prevMax > curMax ? prevMax : curMax;
        double threshd = -kInfD;
        if (combMax > 0.0) {
            double loCalLb;
            double hiCalUb;
            screenSnap.snap(combMin, combMax, loCalLb, hiCalUb);
            const double rangeUb = hiCalUb + dt * hiCalUb - combMin;
            threshd = 1.05 * config.enterThreshold * rangeUb;
        }

        {
            EMPROF_OBS_STAGE("analyze.detect");
            const __m256d inf4 = _mm256_set1_pd(kInfD);
            const __m256d ninf4 = _mm256_set1_pd(-kInfD);
            const __m256d vthresh = _mm256_set1_pd(threshd);
            __m256d accMin = inf4;
            __m256d accMax = ninf4;
            Emitter::DipCursor c = em.cur;
            bool prefixDone = !em.inPrefix;
            const double enterT = em.enterT;
            const double exitT = em.exitT;
            std::size_t i = 0;
            for (; i + 4 <= len; i += 4) {
                const __m256d smv = _mm256_loadu_pd(sm + i);
                const __m256d accMinB = accMin;
                const __m256d accMaxB = accMax;
                accMin = _mm256_min_pd(smv, accMin);
                accMax = _mm256_max_pd(smv, accMax);
                const uint64_t g = B + i;
                if (g + 4 <= emitFrom)
                    continue;
                if (prefixDone && !c.inDip && g >= emitFrom) {
                    // The raw sample normalises against the *snapped*
                    // floor loCal <= lo <= laneRunningMin(smoothed),
                    // so raw - laneRunningMin underestimates the
                    // normalisation numerator.
                    const __m256d xv =
                        _mm256_cvtps_pd(_mm_loadu_ps(x + B + i));
                    const __m256d num = _mm256_sub_pd(xv, accMin);
                    if (_mm256_movemask_pd(_mm256_cmp_pd(
                            num, vthresh, _CMP_LT_OQ)) == 0) {
                        c.idx += 4;
                        continue;
                    }
                }
                // Exact path, scalar per lane.
                double pmn = Lanes::d4_hmin(accMinB);
                double pmx = Lanes::d4_hmax(accMaxB);
                if (prefixDone && g >= emitFrom) {
                    for (int k = 0; k < 4; ++k) {
                        const double svk = sm[i + k];
                        pmn = svk < pmn ? svk : pmn;
                        pmx = svk > pmx ? svk : pmx;
                        double lo = pmn;
                        double hi = pmx;
                        if (!first) {
                            double a = sprevMin[i + k + 1];
                            lo = a < lo ? a : lo;
                            a = sprevMax[i + k + 1];
                            hi = a > hi ? a : hi;
                        }
                        dipStep(em, c, enterT, exitT,
                                resilientNorm(static_cast<double>(x[B + i + k]), lo, hi, snap,
                                              minContrast));
                    }
                } else {
                    em.cur = c;
                    for (int k = 0; k < 4; ++k) {
                        const double svk = sm[i + k];
                        pmn = svk < pmn ? svk : pmn;
                        pmx = svk > pmx ? svk : pmx;
                        double lo = pmn;
                        double hi = pmx;
                        if (!first) {
                            double a = sprevMin[i + k + 1];
                            lo = a < lo ? a : lo;
                            a = sprevMax[i + k + 1];
                            hi = a > hi ? a : hi;
                        }
                        if (g + static_cast<uint64_t>(k) < emitFrom)
                            continue;
                        em.push(resilientNorm(static_cast<double>(x[B + i + k]), lo, hi, snap,
                                              minContrast));
                    }
                    c = em.cur;
                    prefixDone = !em.inPrefix;
                }
            }
            em.cur = c;
            // Scalar tail (len % 4).
            double pmn = Lanes::d4_hmin(accMin);
            double pmx = Lanes::d4_hmax(accMax);
            for (; i < len; ++i) {
                const double svk = sm[i];
                pmn = svk < pmn ? svk : pmn;
                pmx = svk > pmx ? svk : pmx;
                double lo = pmn;
                double hi = pmx;
                if (!first) {
                    double a = sprevMin[i + 1];
                    lo = a < lo ? a : lo;
                    a = sprevMax[i + 1];
                    hi = a > hi ? a : hi;
                }
                if (B + i < emitFrom)
                    continue;
                em.push(
                    resilientNorm(static_cast<double>(x[B + i]), lo, hi, snap, minContrast));
            }
        }

        std::swap(sprevMin, scurMin);
        std::swap(sprevMax, scurMax);
        prevMin = curMin;
        prevMax = curMax;
    }
}

// ------------------------------------------------------------ block stats

/**
 * RawStats of one quality block, vectorised.  Bit parity with the
 * streaming BlockAccumulator comes from its 4-way binned sums: lane k
 * of the 4-wide accumulators owns bin k, and every bin's terms are
 * added in index order.  min/max are selections; the counts are exact
 * integers; atMax is counted in a post-pass (the streaming run counter
 * nets out to "occurrences of the final maximum").
 */
SignalBlock
statsBlock(const float *xb, uint64_t bs, uint64_t be,
           const SignalQualityConfig &cfg)
{
    const std::size_t n = static_cast<std::size_t>(be - bs);
    if (n < 8) {
        BlockAccumulator acc;
        acc.begin(bs);
        for (std::size_t i = 0; i < n; ++i)
            acc.push(xb[i]);
        return acc.finish(be, cfg);
    }

    BlockAccumulator::RawStats st;
    st.start = bs;
    st.count = n;

    // Head (samples 0..3): seeds the binned sums (bin k's first term
    // is x[k], added to 0.0 — exact either way) and the scalar stats.
    double mn = xb[0];
    double mx = xb[0];
    uint64_t zeros = 0;
    uint64_t repeats = 0;
    __m256d sumV = _mm256_cvtps_pd(_mm_loadu_ps(xb));
    double abs0[4] = {0.0, 0.0, 0.0, 0.0};
    for (int k = 1; k < 4; ++k) {
        const double xk = xb[k];
        const double xp = xb[k - 1];
        if (xk < mn)
            mn = xk;
        if (xk > mx)
            mx = xk;
        abs0[k] = std::fabs(xk - xp);
        if (xk == xp)
            ++repeats;
    }
    for (int k = 0; k < 4; ++k)
        if (xb[k] == 0.0f)
            ++zeros;
    __m256d absV = _mm256_loadu_pd(abs0);

    const __m256d zero4 = _mm256_setzero_pd();
    const __m256d signbit = _mm256_set1_pd(-0.0);
    __m256d minV = _mm256_set1_pd(kInfD);
    __m256d maxV = _mm256_set1_pd(-kInfD);
    std::size_t j = 4;
    for (; j + 4 <= n; j += 4) {
        const __m256d xv = _mm256_cvtps_pd(_mm_loadu_ps(xb + j));
        const __m256d xp = _mm256_cvtps_pd(_mm_loadu_ps(xb + j - 1));
        sumV = _mm256_add_pd(sumV, xv);
        absV = _mm256_add_pd(
            absV, _mm256_andnot_pd(signbit, _mm256_sub_pd(xv, xp)));
        minV = _mm256_min_pd(xv, minV);
        maxV = _mm256_max_pd(xv, maxV);
        zeros += static_cast<uint64_t>(
            __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_cmp_pd(xv, zero4, _CMP_EQ_OQ)))));
        repeats += static_cast<uint64_t>(
            __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_cmp_pd(xv, xp, _CMP_EQ_OQ)))));
    }
    double sums[4];
    double abss[4];
    _mm256_storeu_pd(sums, sumV);
    _mm256_storeu_pd(abss, absV);
    {
        const double vm = Lanes::d4_hmin(minV);
        const double vM = Lanes::d4_hmax(maxV);
        if (vm < mn)
            mn = vm;
        if (vM > mx)
            mx = vM;
    }
    // Scalar tail continues every bin in index order.
    double prev = xb[j - 1];
    for (; j < n; ++j) {
        const double xk = xb[j];
        sums[j & 3] += xk;
        abss[j & 3] += std::fabs(xk - prev);
        if (xk < mn)
            mn = xk;
        if (xk > mx)
            mx = xk;
        if (xk == 0.0)
            ++zeros;
        if (xk == prev)
            ++repeats;
        prev = xk;
    }

    st.min = mn;
    st.max = mx;
    st.zeros = zeros;
    st.repeats = repeats;
    for (int k = 0; k < 4; ++k) {
        st.sum[k] = sums[k];
        st.sumAbsDx[k] = abss[k];
    }

    // atMax post-pass: count samples equal to the block maximum (the
    // value is a float sample widened, so the narrowing is exact).
    const float fmx = static_cast<float>(mx);
    const __m256 mv = _mm256_set1_ps(fmx);
    uint64_t atMax = 0;
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8)
        atMax += static_cast<uint64_t>(
            __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_cmp_ps(_mm256_loadu_ps(xb + k), mv,
                              _CMP_EQ_OQ)))));
    for (; k < n; ++k)
        if (xb[k] == fmx)
            ++atMax;
    st.atMax = atMax;

    return BlockAccumulator::classifyStats(st, be, cfg);
}

} // namespace

ChunkResult
analyzeChunkBatchAvx2(const dsp::Sample *data, uint64_t dataBegin,
                      uint64_t begin, uint64_t end, bool is_final,
                      const EmProfConfig &config, bool fastMath)
{
    ChunkResult r;
    r.begin = begin;
    r.end = end;

    // The kernel runs over the chunk's *virtual stream*: halo + body,
    // exactly the samples the streaming reference feeds its fresh
    // normaliser.  Outputs below `halo` warm the envelope only.
    const uint64_t halo = std::min<uint64_t>(begin, config.haloSamples());
    const uint64_t fstart = begin - halo;
    const float *x =
        data + static_cast<std::size_t>(fstart - dataBegin);
    const std::size_t N = static_cast<std::size_t>(end - fstart);

    Emitter em(config, &r);
    if (config.signal.enabled) {
        resilientKernel(x, N, halo, config, em);
        {
            EMPROF_OBS_STAGE("analyze.block_stats");
            const uint64_t q =
                std::max<uint64_t>(config.qualityBlockSamples(), 1);
            for (uint64_t bs = (begin / q) * q; bs < end; bs += q) {
                uint64_t be = bs + q;
                if (be > end) {
                    if (!is_final)
                        break; // next chunk owns it
                    be = end;
                }
                r.blocks.push_back(statsBlock(
                    x + static_cast<std::size_t>(bs - fstart), bs, be,
                    config.signal));
            }
        }
    } else {
        classicKernel(x, N, halo, config, fastMath, em);
    }

    r.open = em.state();
    if (r.open.inDip) {
        r.open.start += begin;
        r.open.lastBelowExit += begin;
    }
    return r;
}

} // namespace emprof::profiler::detail
