/**
 * @file
 * Profile report: the statistics EMPROF publishes per run — event
 * counts (split by kind), total stall time as a fraction of execution,
 * per-stall latency statistics and the latency histogram (Fig. 11,
 * Table IV).
 */

#ifndef EMPROF_PROFILER_REPORT_HPP
#define EMPROF_PROFILER_REPORT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/series_ops.hpp"
#include "profiler/events.hpp"
#include "profiler/signal_quality.hpp"

namespace emprof::profiler {

/** Aggregated profiling statistics. */
struct ProfileReport
{
    /** All detected stall events. */
    uint64_t totalEvents = 0;

    /** Ordinary LLC-miss stalls. */
    uint64_t missEvents = 0;

    /** Refresh-coincident stalls (reported separately, Sec. III-C). */
    uint64_t refreshEvents = 0;

    /** Signal duration analysed, in seconds. */
    double durationSeconds = 0.0;

    /** Signal duration in target clock cycles. */
    double executionCycles = 0.0;

    /** Sum of stall durations, in cycles. */
    double totalStallCycles = 0.0;

    /** Miss latency as % of total execution time (Table IV). */
    double stallPercent = 0.0;

    /** Per-stall latency statistics, in cycles. */
    double avgStallCycles = 0.0;
    double medianStallCycles = 0.0;
    double p95StallCycles = 0.0;
    double p99StallCycles = 0.0;
    double maxStallCycles = 0.0;

    /** LLC miss rate in events per million cycles. */
    double missesPerMillionCycles = 0.0;

    /**
     * Service-level attribution breakdown (DESIGN.md §16): event count
     * and summed stall cycles per level, indexed by ServiceLevel.
     */
    uint64_t levelEvents[kServiceLevelCount] = {0, 0, 0, 0};
    double levelStallCycles[kServiceLevelCount] = {0.0, 0.0, 0.0, 0.0};

    /** Mean per-event attribution confidence (1.0 when no events). */
    double meanLevelConfidence = 1.0;

    /** Signal-quality outcome (quality.enabled == false unless the
     *  resilience layer ran; all-defaults then). */
    SignalQualitySummary quality;

    /** Render as a human-readable block of text. */
    std::string toText(const std::string &title = "") const;
};

/**
 * Build a report from detected events.
 *
 * @param events Detected stalls (already classified).
 * @param sample_rate_hz Signal sample rate.
 * @param clock_hz Target processor clock.
 * @param total_samples Number of analysed samples.
 */
ProfileReport makeReport(const std::vector<StallEvent> &events,
                         double sample_rate_hz, double clock_hz,
                         uint64_t total_samples);

/**
 * Latency histogram over events (log-spaced cycle bins), for Fig. 11.
 */
dsp::Histogram latencyHistogram(const std::vector<StallEvent> &events,
                                double lo_cycles = 20.0,
                                double hi_cycles = 20000.0,
                                std::size_t bins = 20);

} // namespace emprof::profiler

#endif // EMPROF_PROFILER_REPORT_HPP
