#include "profiler/attribution.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace emprof::profiler {

namespace {

/** Unit-normalise a spectrum in place (DC region excluded).
 *
 *  The first few bins are zeroed, not just bin 0: the signal rides on
 *  a large constant level whose window leakage spreads across the
 *  analysis window's main lobe, and that leakage is common to every
 *  region — keeping it would wash out the shape differences the
 *  segmentation relies on. */
void
normaliseSignature(std::vector<double> &spectrum)
{
    for (std::size_t b = 0; b < spectrum.size() && b < 3; ++b)
        spectrum[b] = 0.0; // level is not shape
    double norm = 0.0;
    for (double v : spectrum)
        norm += v * v;
    norm = std::sqrt(norm);
    if (norm <= 0.0)
        return;
    for (double &v : spectrum)
        v /= norm;
}

/** Mean of spectrogram frames [begin, end) as a normalised signature. */
std::vector<double>
meanSignature(const dsp::Spectrogram &spec, std::size_t begin,
              std::size_t end)
{
    std::vector<double> sig(spec.numBins, 0.0);
    for (std::size_t f = begin; f < end; ++f) {
        for (std::size_t b = 0; b < spec.numBins; ++b)
            sig[b] += spec.at(f, b);
    }
    normaliseSignature(sig);
    return sig;
}

} // namespace

SpectralAttributor::SpectralAttributor(const AttributionConfig &config)
    : config_(config)
{}

std::vector<CodeRegion>
SpectralAttributor::segment(const dsp::TimeSeries &magnitude) const
{
    std::vector<CodeRegion> regions;
    const auto spec = dsp::stft(magnitude, config_.stft);
    if (spec.numFrames < 2 * config_.smoothFrames + 2)
        return regions;

    // Smoothed, normalised signatures.
    const std::size_t smooth = std::max<std::size_t>(1, config_.smoothFrames);
    const std::size_t num_sigs = spec.numFrames - smooth + 1;
    std::vector<std::vector<double>> sigs(num_sigs);
    for (std::size_t f = 0; f < num_sigs; ++f)
        sigs[f] = meanSignature(spec, f, f + smooth);

    // Change score between adjacent non-overlapping signatures.
    std::vector<double> change(num_sigs, 0.0);
    for (std::size_t f = smooth; f < num_sigs; ++f)
        change[f] = dsp::spectralDistance(sigs[f - smooth], sigs[f]);

    // Boundaries: local maxima of the change score above threshold,
    // separated by at least minRegionFrames.
    std::vector<std::size_t> boundaries;
    boundaries.push_back(0);
    std::size_t last_boundary = 0;
    for (std::size_t f = smooth + 1; f + 1 < num_sigs; ++f) {
        if (change[f] < config_.changeThreshold)
            continue;
        if (change[f] < change[f - 1] || change[f] < change[f + 1])
            continue;
        // Boundary lands between the two compared windows.
        const std::size_t frame = f;
        if (frame - last_boundary < config_.minRegionFrames)
            continue;
        boundaries.push_back(frame);
        last_boundary = frame;
    }
    boundaries.push_back(spec.numFrames);

    // Build regions and assign labels by signature matching.
    std::vector<std::vector<double>> label_sigs;
    for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
        CodeRegion region;
        region.startFrame = boundaries[i];
        region.endFrame = boundaries[i + 1];
        region.startSample =
            static_cast<uint64_t>(region.startFrame) * spec.hop;
        region.endSample = std::min<uint64_t>(
            static_cast<uint64_t>(region.endFrame) * spec.hop +
                config_.stft.frameSize,
            magnitude.samples.size());
        region.startTime =
            static_cast<double>(region.startSample) / magnitude.sampleRateHz;
        region.endTime =
            static_cast<double>(region.endSample) / magnitude.sampleRateHz;

        // Exclude a margin near the boundaries from the signature (the
        // transition frames mix both regions).
        std::size_t sig_begin = region.startFrame;
        std::size_t sig_end = std::min(region.endFrame, num_sigs);
        if (sig_end > sig_begin + 4) {
            ++sig_begin;
            --sig_end;
        }
        region.signature = meanSignature(spec, sig_begin,
                                         std::max(sig_end, sig_begin + 1));

        // Dominant loop frequency: strongest non-DC signature bin.
        std::size_t best_bin = 0;
        for (std::size_t b = 1; b < region.signature.size(); ++b) {
            if (region.signature[b] > region.signature[best_bin])
                best_bin = b;
        }
        region.dominantFrequencyHz = spec.binFrequency(best_bin);

        // Label: reuse the first matching signature.
        std::size_t label = label_sigs.size();
        for (std::size_t l = 0; l < label_sigs.size(); ++l) {
            if (dsp::spectralDistance(label_sigs[l], region.signature) <
                config_.labelMergeThreshold) {
                label = l;
                break;
            }
        }
        if (label == label_sigs.size())
            label_sigs.push_back(region.signature);
        region.label = label;
        regions.push_back(std::move(region));
    }
    return regions;
}

std::vector<RegionProfile>
SpectralAttributor::attribute(const std::vector<CodeRegion> &regions,
                              const std::vector<StallEvent> &events,
                              double sample_rate_hz, double clock_hz) const
{
    std::vector<RegionProfile> profiles;
    profiles.reserve(regions.size());
    const double cycles_per_sample = clock_hz / sample_rate_hz;

    double total_samples = 0.0;
    for (const auto &region : regions)
        total_samples +=
            static_cast<double>(region.endSample - region.startSample);

    for (const auto &region : regions) {
        RegionProfile profile;
        profile.region = region;

        double stall_cycles = 0.0;
        for (const auto &ev : events) {
            // An event belongs to the region containing its midpoint.
            const uint64_t mid = (ev.startSample + ev.endSample) / 2;
            if (mid >= region.startSample && mid < region.endSample) {
                ++profile.totalMisses;
                stall_cycles += ev.stallCycles;
            }
        }

        const double region_cycles =
            static_cast<double>(region.endSample - region.startSample) *
            cycles_per_sample;
        if (region_cycles > 0.0) {
            profile.missRatePerMCycles =
                1e6 * static_cast<double>(profile.totalMisses) /
                region_cycles;
            profile.memStallPercent = 100.0 * stall_cycles / region_cycles;
        }
        if (profile.totalMisses > 0) {
            profile.avgMissLatencyCycles =
                stall_cycles / static_cast<double>(profile.totalMisses);
        }
        if (total_samples > 0.0) {
            profile.timeSharePercent =
                100.0 *
                static_cast<double>(region.endSample - region.startSample) /
                total_samples;
        }
        profiles.push_back(std::move(profile));
    }
    return profiles;
}

std::string
SpectralAttributor::toText(const std::vector<RegionProfile> &profiles,
                           const std::vector<std::string> &names)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-8s %-18s %10s %14s %12s %12s %9s\n", "Region",
                  "Function", "TotalMiss", "Miss/Mcycle", "MemStall%",
                  "AvgLat(cyc)", "Time%");
    out += line;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const auto &p = profiles[i];
        const char region_letter = static_cast<char>('A' + (p.region.label % 26));
        const std::string name = p.region.label < names.size()
                                     ? names[p.region.label]
                                     : std::string("region_") + region_letter;
        std::snprintf(line, sizeof(line),
                      "  %-8c %-18s %10llu %14.2f %12.2f %12.2f %9.2f\n",
                      region_letter, name.c_str(),
                      static_cast<unsigned long long>(p.totalMisses),
                      p.missRatePerMCycles, p.memStallPercent,
                      p.avgMissLatencyCycles, p.timeSharePercent);
        out += line;
    }
    return out;
}

} // namespace emprof::profiler
