#include "profiler/boot_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace emprof::profiler {

BootProfile
makeBootProfile(const std::vector<StallEvent> &events,
                double sample_rate_hz, uint64_t total_samples,
                double bucket_seconds)
{
    BootProfile profile;
    profile.bucketSeconds = bucket_seconds;
    if (total_samples == 0 || sample_rate_hz <= 0.0 ||
        bucket_seconds <= 0.0) {
        return profile;
    }

    const double duration =
        static_cast<double>(total_samples) / sample_rate_hz;
    const std::size_t num_buckets = static_cast<std::size_t>(
        std::ceil(duration / bucket_seconds));
    profile.buckets.resize(num_buckets);
    for (std::size_t i = 0; i < num_buckets; ++i)
        profile.buckets[i].timeSeconds =
            static_cast<double>(i) * bucket_seconds;

    const double samples_per_bucket = bucket_seconds * sample_rate_hz;
    std::vector<double> stall_samples(num_buckets, 0.0);
    for (const auto &ev : events) {
        const std::size_t b = std::min<std::size_t>(
            static_cast<std::size_t>(
                static_cast<double>(ev.startSample) / samples_per_bucket),
            num_buckets - 1);
        profile.buckets[b].events += 1;
        stall_samples[b] += static_cast<double>(ev.durationSamples());
    }

    for (std::size_t i = 0; i < num_buckets; ++i) {
        profile.buckets[i].eventsPerMs =
            static_cast<double>(profile.buckets[i].events) /
            (bucket_seconds * 1e3);
        profile.buckets[i].stallPercent =
            100.0 * stall_samples[i] / samples_per_bucket;
    }
    return profile;
}

double
bootProfileSimilarity(const BootProfile &a, const BootProfile &b)
{
    const std::size_t n = std::min(a.buckets.size(), b.buckets.size());
    if (n == 0)
        return 0.0;
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = a.buckets[i].eventsPerMs;
        const double y = b.buckets[i].eventsPerMs;
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if (na <= 0.0 || nb <= 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

std::string
BootProfile::toText() const
{
    std::string out;
    char line[192];
    double max_rate = 1e-9;
    for (const auto &bucket : buckets)
        max_rate = std::max(max_rate, bucket.eventsPerMs);

    for (const auto &bucket : buckets) {
        const int bar =
            static_cast<int>(48.0 * bucket.eventsPerMs / max_rate);
        std::snprintf(line, sizeof(line),
                      "  %8.2f ms %8.1f ev/ms %6.2f%% stall |",
                      bucket.timeSeconds * 1e3, bucket.eventsPerMs,
                      bucket.stallPercent);
        out += line;
        out.append(static_cast<std::size_t>(bar), '#');
        out += '\n';
    }
    return out;
}

} // namespace emprof::profiler
