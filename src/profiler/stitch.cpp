#include "profiler/stitch.hpp"

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "profiler/report.hpp"
#include "profiler/signal_quality.hpp"

namespace emprof::profiler {

ChunkStitcher::ChunkStitcher(const EmProfConfig &config)
    : config_(config),
      // Same duration cut the chunk-local detectors used (the resilient
      // path relaxes it to compensate for pre-smoother dip widening).
      minDuration_(config.effectiveMinDurationSamples())
{}

void
ChunkStitcher::emitCarry()
{
    if (carry_.lastBelowExit - carry_.start + 1 < minDuration_)
        return;
    StallEvent ev;
    ev.startSample = carry_.start;
    ev.endSample = carry_.lastBelowExit;
    ev.depth = carry_.depthCount == 0
                   ? 0.0
                   : carry_.depthSum /
                         static_cast<double>(carry_.depthCount);
    events_.push_back(ev);
}

void
ChunkStitcher::feed(const ChunkResult &chunk)
{
    uint64_t first_valid = chunk.begin;
    if (carry_.inDip) {
        ++carriedDips_;
        replayedSamples_ += chunk.prefixNorms.size();
        // Replay the prefix into the carried dip sample by sample, in
        // order, exactly as streaming would have accumulated it.
        for (std::size_t k = 0; k < chunk.prefixNorms.size(); ++k) {
            carry_.lastBelowExit = chunk.begin + k;
            carry_.depthSum += chunk.prefixNorms[k];
            ++carry_.depthCount;
        }
        if (chunk.prefixNorms.size() != chunk.end - chunk.begin) {
            emitCarry();
            carry_ = DipDetector::DipState{};
            // Chunk-local events inside the prefix belong to the
            // carried dip, not to a fresh one.
            first_valid = chunk.begin + chunk.prefixNorms.size();
        }
        // else: whole chunk below exit — the dip stays open and the
        // chunk can have produced neither events nor an open dip of
        // its own that starts outside the prefix.
    }
    if (!carry_.inDip) {
        for (const auto &ev : chunk.events)
            if (ev.startSample >= first_valid)
                events_.push_back(ev);
        if (chunk.open.inDip && chunk.open.start >= first_valid)
            carry_ = chunk.open;
    }
    if (config_.signal.enabled)
        blocks_.insert(blocks_.end(), chunk.blocks.begin(),
                       chunk.blocks.end());
}

ProfileResult
ChunkStitcher::finalize(uint64_t totalSamples)
{
    EMPROF_OBS_STAGE("analyze.stitch_finalize");
    // Input ends mid-dip: same flush rule as EmProf::finish().
    if (!finalized_ && carry_.inDip) {
        emitCarry();
        carry_ = DipDetector::DipState{};
    }
    finalized_ = true;

    ProfileResult result;
    result.events = std::move(events_);
    events_.clear();
    for (auto &ev : result.events)
        classifyStall(ev, config_);
    SignalQualitySummary quality;
    if (config_.signal.enabled)
        quality = applySignalQuality(result.events, blocks_,
                                     config_.detectorConfig(),
                                     config_.signal, totalSamples);
    result.report = makeReport(result.events, config_.sampleRateHz,
                               config_.clockHz, totalSamples);
    result.report.quality = quality;

    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        static const obs::Counter samples_processed =
            registry.counter("profiler.samples_processed");
        static const obs::Counter events_emitted =
            registry.counter("profiler.events_emitted");
        static const obs::Counter carried_dips =
            registry.counter("analyzer.stitch.carried_dips");
        static const obs::Counter replayed_samples =
            registry.counter("analyzer.stitch.replayed_samples");
        samples_processed.add(totalSamples);
        events_emitted.add(result.events.size());
        carried_dips.add(carriedDips_);
        replayed_samples.add(replayedSamples_);
    }
    return result;
}

} // namespace emprof::profiler
