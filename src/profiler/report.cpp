#include "profiler/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"

namespace emprof::profiler {

namespace {

// Per-level attribution totals, added once per report build (never per
// event in the hot loops).  The histogram buckets mean confidence in
// per-mille so the log2 buckets resolve the [0, 1] range.
void
countAttributed(const ProfileReport &report)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    static const obs::Counter llc_hit =
        registry.counter("emprof.attr.llc_hit");
    static const obs::Counter prefetch_masked =
        registry.counter("emprof.attr.prefetch_masked");
    static const obs::Counter dram = registry.counter("emprof.attr.dram");
    static const obs::Counter dram_refresh =
        registry.counter("emprof.attr.dram_refresh");
    static const obs::Histogram confidence_mille =
        registry.histogram("emprof.attr.level_confidence_mille");
    llc_hit.add(
        report.levelEvents[static_cast<int>(ServiceLevel::LlcHit)]);
    prefetch_masked.add(
        report.levelEvents[static_cast<int>(ServiceLevel::PrefetchMasked)]);
    dram.add(report.levelEvents[static_cast<int>(ServiceLevel::Dram)]);
    dram_refresh.add(
        report.levelEvents[static_cast<int>(ServiceLevel::DramRefresh)]);
    if (report.totalEvents > 0)
        confidence_mille.observe(
            static_cast<uint64_t>(report.meanLevelConfidence * 1000.0));
}

} // namespace

ProfileReport
makeReport(const std::vector<StallEvent> &events, double sample_rate_hz,
           double clock_hz, uint64_t total_samples)
{
    EMPROF_OBS_STAGE("report.build");
    ProfileReport report;
    report.totalEvents = events.size();
    // A non-positive or non-finite rate cannot produce a duration; the
    // derived fields stay 0 instead of going NaN/Inf (callers with an
    // error channel reject such configs via EmProfConfig::validate).
    if (std::isfinite(sample_rate_hz) && sample_rate_hz > 0.0)
        report.durationSeconds =
            static_cast<double>(total_samples) / sample_rate_hz;
    if (std::isfinite(clock_hz) && clock_hz > 0.0)
        report.executionCycles = report.durationSeconds * clock_hz;

    std::vector<double> latencies;
    latencies.reserve(events.size());
    double level_confidence_sum = 0.0;
    for (const auto &ev : events) {
        if (ev.kind == StallKind::RefreshCoincident)
            ++report.refreshEvents;
        else
            ++report.missEvents;
        report.totalStallCycles += ev.stallCycles;
        latencies.push_back(ev.stallCycles);
        const auto li = static_cast<std::size_t>(ev.level);
        if (li < kServiceLevelCount) {
            ++report.levelEvents[li];
            report.levelStallCycles[li] += ev.stallCycles;
        }
        level_confidence_sum += ev.levelConfidence;
    }
    if (!events.empty())
        report.meanLevelConfidence =
            level_confidence_sum / static_cast<double>(events.size());
    countAttributed(report);

    if (report.executionCycles > 0.0) {
        report.stallPercent =
            100.0 * report.totalStallCycles / report.executionCycles;
        report.missesPerMillionCycles =
            1e6 * static_cast<double>(report.totalEvents) /
            report.executionCycles;
    }
    if (!latencies.empty()) {
        report.avgStallCycles = dsp::mean(latencies);
        // One sort serves every percentile; four percentile() calls
        // would copy and sort the latency vector four times, a serial
        // tail that caps the parallel analyzer's speedup on
        // event-dense captures.
        std::sort(latencies.begin(), latencies.end());
        report.medianStallCycles = dsp::percentileSorted(latencies, 50.0);
        report.p95StallCycles = dsp::percentileSorted(latencies, 95.0);
        report.p99StallCycles = dsp::percentileSorted(latencies, 99.0);
        report.maxStallCycles = dsp::percentileSorted(latencies, 100.0);
    }
    return report;
}

dsp::Histogram
latencyHistogram(const std::vector<StallEvent> &events, double lo_cycles,
                 double hi_cycles, std::size_t bins)
{
    auto hist = dsp::Histogram::logarithmic(lo_cycles, hi_cycles, bins);
    for (const auto &ev : events)
        hist.add(ev.stallCycles);
    return hist;
}

std::string
ProfileReport::toText(const std::string &title) const
{
    std::string out;
    char line[256];
    if (!title.empty()) {
        out += title;
        out += '\n';
    }
    std::snprintf(line, sizeof(line),
                  "  events: %llu (miss %llu, refresh-coincident %llu)\n",
                  static_cast<unsigned long long>(totalEvents),
                  static_cast<unsigned long long>(missEvents),
                  static_cast<unsigned long long>(refreshEvents));
    out += line;
    std::snprintf(line, sizeof(line),
                  "  execution: %.3f ms (%.0f cycles)\n",
                  durationSeconds * 1e3, executionCycles);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  stall time: %.0f cycles (%.2f%% of execution)\n",
                  totalStallCycles, stallPercent);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  per-stall cycles: avg %.1f, median %.1f, p95 %.1f, "
                  "p99 %.1f, max %.1f\n",
                  avgStallCycles, medianStallCycles, p95StallCycles,
                  p99StallCycles, maxStallCycles);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  miss rate: %.1f per million cycles\n",
                  missesPerMillionCycles);
    out += line;
    std::snprintf(
        line, sizeof(line),
        "  service levels: llc-hit %llu, prefetch-masked %llu, "
        "dram %llu, dram-refresh %llu (mean confidence %.2f)\n",
        static_cast<unsigned long long>(
            levelEvents[static_cast<int>(ServiceLevel::LlcHit)]),
        static_cast<unsigned long long>(
            levelEvents[static_cast<int>(ServiceLevel::PrefetchMasked)]),
        static_cast<unsigned long long>(
            levelEvents[static_cast<int>(ServiceLevel::Dram)]),
        static_cast<unsigned long long>(
            levelEvents[static_cast<int>(ServiceLevel::DramRefresh)]),
        meanLevelConfidence);
    out += line;
    std::snprintf(
        line, sizeof(line),
        "  stall cycles by level: llc-hit %.0f, prefetch-masked %.0f, "
        "dram %.0f, dram-refresh %.0f\n",
        levelStallCycles[static_cast<int>(ServiceLevel::LlcHit)],
        levelStallCycles[static_cast<int>(ServiceLevel::PrefetchMasked)],
        levelStallCycles[static_cast<int>(ServiceLevel::Dram)],
        levelStallCycles[static_cast<int>(ServiceLevel::DramRefresh)]);
    out += line;
    if (quality.enabled) {
        std::snprintf(
            line, sizeof(line),
            "  signal quality: coverage %.1f%%, blocks %llu "
            "(clean %llu, degraded %llu, unusable %llu)\n",
            quality.coverageFraction * 100.0,
            static_cast<unsigned long long>(quality.totalBlocks),
            static_cast<unsigned long long>(quality.cleanBlocks),
            static_cast<unsigned long long>(quality.degradedBlocks),
            static_cast<unsigned long long>(quality.unusableBlocks));
        out += line;
        std::snprintf(
            line, sizeof(line),
            "  quarantined: clipping %llu, dropout %llu, low-SNR %llu; "
            "events dropped %llu; mean confidence %.2f\n",
            static_cast<unsigned long long>(quality.quarantinedClipping),
            static_cast<unsigned long long>(quality.quarantinedDropout),
            static_cast<unsigned long long>(quality.quarantinedLowSnr),
            static_cast<unsigned long long>(quality.eventsDropped),
            quality.meanConfidence);
        out += line;
    }
    return out;
}

} // namespace emprof::profiler
