#include "profiler/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/stage_profiler.hpp"

namespace emprof::profiler {

ProfileReport
makeReport(const std::vector<StallEvent> &events, double sample_rate_hz,
           double clock_hz, uint64_t total_samples)
{
    EMPROF_OBS_STAGE("report.build");
    ProfileReport report;
    report.totalEvents = events.size();
    // A non-positive or non-finite rate cannot produce a duration; the
    // derived fields stay 0 instead of going NaN/Inf (callers with an
    // error channel reject such configs via EmProfConfig::validate).
    if (std::isfinite(sample_rate_hz) && sample_rate_hz > 0.0)
        report.durationSeconds =
            static_cast<double>(total_samples) / sample_rate_hz;
    if (std::isfinite(clock_hz) && clock_hz > 0.0)
        report.executionCycles = report.durationSeconds * clock_hz;

    std::vector<double> latencies;
    latencies.reserve(events.size());
    for (const auto &ev : events) {
        if (ev.kind == StallKind::RefreshCoincident)
            ++report.refreshEvents;
        else
            ++report.missEvents;
        report.totalStallCycles += ev.stallCycles;
        latencies.push_back(ev.stallCycles);
    }

    if (report.executionCycles > 0.0) {
        report.stallPercent =
            100.0 * report.totalStallCycles / report.executionCycles;
        report.missesPerMillionCycles =
            1e6 * static_cast<double>(report.totalEvents) /
            report.executionCycles;
    }
    if (!latencies.empty()) {
        report.avgStallCycles = dsp::mean(latencies);
        // One sort serves every percentile; four percentile() calls
        // would copy and sort the latency vector four times, a serial
        // tail that caps the parallel analyzer's speedup on
        // event-dense captures.
        std::sort(latencies.begin(), latencies.end());
        report.medianStallCycles = dsp::percentileSorted(latencies, 50.0);
        report.p95StallCycles = dsp::percentileSorted(latencies, 95.0);
        report.p99StallCycles = dsp::percentileSorted(latencies, 99.0);
        report.maxStallCycles = dsp::percentileSorted(latencies, 100.0);
    }
    return report;
}

dsp::Histogram
latencyHistogram(const std::vector<StallEvent> &events, double lo_cycles,
                 double hi_cycles, std::size_t bins)
{
    auto hist = dsp::Histogram::logarithmic(lo_cycles, hi_cycles, bins);
    for (const auto &ev : events)
        hist.add(ev.stallCycles);
    return hist;
}

std::string
ProfileReport::toText(const std::string &title) const
{
    std::string out;
    char line[256];
    if (!title.empty()) {
        out += title;
        out += '\n';
    }
    std::snprintf(line, sizeof(line),
                  "  events: %llu (miss %llu, refresh-coincident %llu)\n",
                  static_cast<unsigned long long>(totalEvents),
                  static_cast<unsigned long long>(missEvents),
                  static_cast<unsigned long long>(refreshEvents));
    out += line;
    std::snprintf(line, sizeof(line),
                  "  execution: %.3f ms (%.0f cycles)\n",
                  durationSeconds * 1e3, executionCycles);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  stall time: %.0f cycles (%.2f%% of execution)\n",
                  totalStallCycles, stallPercent);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  per-stall cycles: avg %.1f, median %.1f, p95 %.1f, "
                  "p99 %.1f, max %.1f\n",
                  avgStallCycles, medianStallCycles, p95StallCycles,
                  p99StallCycles, maxStallCycles);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  miss rate: %.1f per million cycles\n",
                  missesPerMillionCycles);
    out += line;
    if (quality.enabled) {
        std::snprintf(
            line, sizeof(line),
            "  signal quality: coverage %.1f%%, blocks %llu "
            "(clean %llu, degraded %llu, unusable %llu)\n",
            quality.coverageFraction * 100.0,
            static_cast<unsigned long long>(quality.totalBlocks),
            static_cast<unsigned long long>(quality.cleanBlocks),
            static_cast<unsigned long long>(quality.degradedBlocks),
            static_cast<unsigned long long>(quality.unusableBlocks));
        out += line;
        std::snprintf(
            line, sizeof(line),
            "  quarantined: clipping %llu, dropout %llu, low-SNR %llu; "
            "events dropped %llu; mean confidence %.2f\n",
            static_cast<unsigned long long>(quality.quarantinedClipping),
            static_cast<unsigned long long>(quality.quarantinedDropout),
            static_cast<unsigned long long>(quality.quarantinedLowSnr),
            static_cast<unsigned long long>(quality.eventsDropped),
            quality.meanConfidence);
        out += line;
    }
    return out;
}

} // namespace emprof::profiler
