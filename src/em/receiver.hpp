/**
 * @file
 * SDR receiver model: bandwidth selection, decimation, quantisation,
 * and envelope output.
 *
 * Substitutes for the ThinkRF WSA5000 + PX14400 chain (Sec. VI): the
 * receiver is tuned to the processor clock (implicit — the input is
 * already complex baseband around it), band-limits to the configured
 * measurement bandwidth with an anti-alias FIR, decimates so that the
 * IQ sample rate equals the bandwidth, and optionally quantises like
 * a real ADC.  EMPROF consumes the magnitude of the IQ stream.
 */

#ifndef EMPROF_EM_RECEIVER_HPP
#define EMPROF_EM_RECEIVER_HPP

#include <cstdint>

#include "dsp/fir.hpp"
#include "dsp/types.hpp"
#include "em/config.hpp"

namespace emprof::em {

/**
 * Streaming receiver (IQ in at the clock rate, IQ out at the
 * measurement bandwidth).
 */
class SdrReceiver
{
  public:
    /**
     * @param config Receiver parameters.
     * @param input_rate_hz Input IQ sample rate (the core clock).
     */
    SdrReceiver(const ReceiverConfig &config, double input_rate_hz);

    /**
     * Push one input sample.
     *
     * @param x Input IQ sample.
     * @param out Receives an output IQ sample when one is produced.
     * @retval true An output sample was produced.
     */
    bool push(dsp::Complex x, dsp::Complex &out);

    /** Output IQ sample rate (input_rate / decimation). */
    double outputRateHz() const { return outputRate_; }

    /** Decimation factor in use. */
    std::size_t decimation() const { return fir_.factor(); }

    /** Anti-alias filter length actually in use. */
    std::size_t numTaps() const { return fir_.numTaps(); }

    const ReceiverConfig &config() const { return config_; }

  private:
    /** Apply ADC quantisation to one component. */
    float quantise(float v) const;

    ReceiverConfig config_;
    dsp::DecimatingFir<dsp::Complex> fir_;
    double outputRate_;
};

} // namespace emprof::em

#endif // EMPROF_EM_RECEIVER_HPP
