#include "em/emanation.hpp"

#include <cmath>
#include <numbers>

namespace emprof::em {

EmanationSynthesizer::EmanationSynthesizer(const EmanationConfig &config)
    : config_(config), phaseNoise_(config.phaseNoiseStep, config.seed)
{}

dsp::Complex
EmanationSynthesizer::push(dsp::Sample power)
{
    phase_ += phaseNoise_.real();
    // Keep the phase bounded to preserve precision on long runs.
    if (phase_ > std::numbers::pi)
        phase_ -= 2.0 * std::numbers::pi;
    else if (phase_ < -std::numbers::pi)
        phase_ += 2.0 * std::numbers::pi;

    // The phase walk is slow (~0.01 rad/sample), so the trig pair is
    // refreshed on a coarse grid; the staleness (< 0.1 rad) is far
    // below the phase uncertainty the walk itself models, and the
    // magnitude — all EMPROF uses — is unaffected.
    if ((sampleIndex_++ & 7) == 0) {
        cosPhase_ = std::cos(phase_);
        sinPhase_ = std::sin(phase_);
    }

    const double amplitude =
        config_.carrierLeak + config_.activityGain * power;
    return {static_cast<float>(amplitude * cosPhase_),
            static_cast<float>(amplitude * sinPhase_)};
}

} // namespace emprof::em
