#include "em/receiver.hpp"

#include <algorithm>
#include <cmath>

namespace emprof::em {

namespace {

std::size_t
decimationFor(double input_rate_hz, double bandwidth_hz)
{
    const double ratio = input_rate_hz / bandwidth_hz;
    return std::max<std::size_t>(1,
                                 static_cast<std::size_t>(ratio + 0.5));
}

std::size_t
tapsFor(const ReceiverConfig &config, std::size_t decimation)
{
    if (config.firTaps != 0)
        return config.firTaps;
    return std::max<std::size_t>(15, decimation * 5 / 2);
}

} // namespace

SdrReceiver::SdrReceiver(const ReceiverConfig &config, double input_rate_hz)
    : config_(config),
      fir_(dsp::designLowPass(
               tapsFor(config, decimationFor(input_rate_hz,
                                             config.bandwidthHz)),
               // Complex baseband of bandwidth B spans +/- B/2; with
               // decimation M the output Nyquist is input_rate/(2M).
               // Cut slightly below it to suppress aliasing.
               0.45 / static_cast<double>(
                          decimationFor(input_rate_hz, config.bandwidthHz))),
           decimationFor(input_rate_hz, config.bandwidthHz)),
      outputRate_(input_rate_hz /
                  static_cast<double>(
                      decimationFor(input_rate_hz, config.bandwidthHz)))
{}

float
SdrReceiver::quantise(float v) const
{
    if (config_.adcBits == 0)
        return v;
    const double levels = static_cast<double>(1u << (config_.adcBits - 1));
    const double step = config_.adcFullScale / levels;
    const double clamped =
        std::clamp(static_cast<double>(v), -config_.adcFullScale,
                   config_.adcFullScale);
    return static_cast<float>(std::round(clamped / step) * step);
}

bool
SdrReceiver::push(dsp::Complex x, dsp::Complex &out)
{
    dsp::Complex filtered;
    if (!fir_.push(x, filtered))
        return false;
    // Discard the settling transient: outputs computed while the FIR
    // history still contains zeros ramp up from nothing and would skew
    // any downstream envelope tracking.
    if (!fir_.warm())
        return false;
    out = {quantise(filtered.real()), quantise(filtered.imag())};
    return true;
}

} // namespace emprof::em
