/**
 * @file
 * Emanation synthesiser: per-cycle power -> complex-baseband EM sample.
 *
 * Switching activity amplitude-modulates the emanation around the clock
 * frequency (Sec. II-A, III-A): busy cycles emit strongly, stalled
 * cycles fall back to the residual clock-tree leak.  A slow phase
 * random walk models oscillator phase noise.
 */

#ifndef EMPROF_EM_EMANATION_HPP
#define EMPROF_EM_EMANATION_HPP

#include "dsp/noise.hpp"
#include "dsp/types.hpp"
#include "em/config.hpp"

namespace emprof::em {

/**
 * Streaming power-to-IQ synthesiser (one sample in, one sample out).
 */
class EmanationSynthesizer
{
  public:
    explicit EmanationSynthesizer(const EmanationConfig &config);

    /** Convert one power sample to one baseband IQ sample. */
    dsp::Complex push(dsp::Sample power);

    const EmanationConfig &config() const { return config_; }

  private:
    EmanationConfig config_;
    dsp::AwgnSource phaseNoise_;
    double phase_ = 0.0;
    double cosPhase_ = 1.0;
    double sinPhase_ = 0.0;
    uint64_t sampleIndex_ = 0;
};

} // namespace emprof::em

#endif // EMPROF_EM_EMANATION_HPP
