/**
 * @file
 * Propagation/probe channel: multiplicative gain drift, supply ripple
 * and additive noise.
 *
 * These are exactly the distortions EMPROF's moving min/max
 * normalisation is designed to cancel (Sec. IV): probe-position gain is
 * a slowly wandering multiplicative factor, and power-supply variation
 * modulates the overall signal strength over time.
 */

#ifndef EMPROF_EM_CHANNEL_HPP
#define EMPROF_EM_CHANNEL_HPP

#include "dsp/noise.hpp"
#include "dsp/types.hpp"
#include "em/config.hpp"

namespace emprof::em {

/**
 * Streaming channel model (one IQ sample in, one out).
 */
class Channel
{
  public:
    /**
     * @param config Channel parameters.
     * @param sample_rate_hz Input sample rate (for the ripple phase).
     */
    Channel(const ChannelConfig &config, double sample_rate_hz);

    /** Apply gain drift, ripple and noise to one sample. */
    dsp::Complex push(dsp::Complex x);

    /** Current instantaneous gain (for tests). */
    double currentGain() const;

    const ChannelConfig &config() const { return config_; }

  private:
    ChannelConfig config_;
    dsp::RandomWalk gainWalk_;
    dsp::AwgnSource noise_;
    double ripplePhaseStep_;
    double ripplePhase_ = 0.0;
    double rippleValue_ = 0.0;
    float cachedGain_ = 1.0f;
    uint64_t sampleIndex_ = 0;
};

} // namespace emprof::em

#endif // EMPROF_EM_CHANNEL_HPP
