#include "em/capture.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"

namespace emprof::em {

namespace {

// One call per capture run, never per sample/cycle.
void
countCapture(uint64_t cycles, std::size_t magnitude_samples)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    static const obs::Counter cycles_simulated =
        registry.counter("capture.cycles_simulated");
    static const obs::Counter samples_out =
        registry.counter("capture.magnitude_samples");
    cycles_simulated.add(cycles);
    samples_out.add(magnitude_samples);
}

} // namespace

ProbeChain::ProbeChain(const ProbeChainConfig &config, double clock_hz)
    : emanation_(config.emanation),
      channel_(config.channel, clock_hz),
      receiver_(config.receiver, clock_hz)
{
    if (config.impairment.any())
        impairer_.emplace(config.impairment, receiver_.outputRateHz());
}

bool
ProbeChain::push(dsp::Sample power, dsp::Sample &mag_out)
{
    dsp::Complex iq = channel_.push(emanation_.push(power));
    dsp::Complex received;
    if (!receiver_.push(iq, received))
        return false;
    mag_out = std::abs(received);
    if (impairer_)
        mag_out = impairer_->push(mag_out);
    return true;
}

EmCaptureResult
captureRun(sim::Simulator &simulator, sim::TraceSource &trace,
           const ProbeChainConfig &config, sim::Cycle max_cycles)
{
    EMPROF_OBS_STAGE("capture.synthesis");
    EmCaptureResult result;
    ProbeChain chain(config, simulator.config().clockHz);
    result.magnitude.sampleRateHz = chain.outputRateHz();

    auto sink = [&](dsp::Sample power) {
        dsp::Sample mag;
        if (chain.push(power, mag))
            result.magnitude.samples.push_back(mag);
    };
    result.simResult = simulator.run(trace, sink, max_cycles);
    countCapture(result.simResult.cycles, result.magnitude.samples.size());
    return result;
}

dsp::TimeSeries
processPowerTrace(const dsp::TimeSeries &power,
                  const ProbeChainConfig &config)
{
    ProbeChain chain(config, power.sampleRateHz);
    dsp::TimeSeries out;
    out.sampleRateHz = chain.outputRateHz();
    out.samples.reserve(power.samples.size() /
                            std::max<std::size_t>(
                                1, static_cast<std::size_t>(
                                       power.sampleRateHz /
                                       config.receiver.bandwidthHz)) +
                        1);
    for (dsp::Sample p : power.samples) {
        dsp::Sample mag;
        if (chain.push(p, mag))
            out.samples.push_back(mag);
    }
    return out;
}

ProbeChainConfig
defaultMemoryProbeChain()
{
    ProbeChainConfig chain;
    chain.emanation.carrierLeak = 0.02;
    chain.channel.noiseSigma = 0.015;
    chain.channel.supplyRippleAmp = 0.01;
    return chain;
}

dsp::TimeSeries
synthesizeMemoryPower(const std::vector<sim::CasEvent> &events,
                      sim::Cycle total_cycles, double clock_hz,
                      const MemoryEmanationConfig &config)
{
    dsp::TimeSeries out;
    out.sampleRateHz = clock_hz;
    out.samples.assign(total_cycles,
                       static_cast<dsp::Sample>(config.idleLevel));

    for (const auto &ev : events) {
        double level = config.idleLevel;
        switch (ev.kind) {
          case sim::CasEvent::Kind::Read:
            level = config.readBurstLevel;
            break;
          case sim::CasEvent::Kind::Write:
            level = config.writeBurstLevel;
            break;
          case sim::CasEvent::Kind::Refresh:
            level = config.refreshLevel;
            break;
        }
        const sim::Cycle begin = std::min<sim::Cycle>(ev.start, total_cycles);
        const sim::Cycle end =
            std::min<sim::Cycle>(ev.start + ev.duration, total_cycles);
        for (sim::Cycle c = begin; c < end; ++c) {
            out.samples[c] = std::max(out.samples[c],
                                      static_cast<dsp::Sample>(level));
        }
    }
    return out;
}

DualProbeResult
dualProbeRun(sim::Simulator &simulator, sim::TraceSource &trace,
             const ProbeChainConfig &cpu_chain,
             const ProbeChainConfig &mem_chain,
             const MemoryEmanationConfig &mem_levels)
{
    EMPROF_OBS_STAGE("capture.dual_probe");
    DualProbeResult result;
    const double clock_hz = simulator.config().clockHz;

    // CPU probe streams during the run; the memory probe is synthesised
    // from the CAS trace afterwards (the events are timestamped, so the
    // two captures stay aligned).
    ProbeChain chain(cpu_chain, clock_hz);
    result.cpu.sampleRateHz = chain.outputRateHz();
    auto sink = [&](dsp::Sample power) {
        dsp::Sample mag;
        if (chain.push(power, mag))
            result.cpu.samples.push_back(mag);
    };
    result.simResult = simulator.run(trace, sink);

    const auto mem_power = synthesizeMemoryPower(
        simulator.hierarchy().memory().casTrace(), result.simResult.cycles,
        clock_hz, mem_levels);
    result.memory = processPowerTrace(mem_power, mem_chain);
    return result;
}

} // namespace emprof::em
