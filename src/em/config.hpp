/**
 * @file
 * Configuration for the EM side-channel model: emanation synthesis,
 * propagation/probe channel, and SDR receiver.
 *
 * This subsystem substitutes for the paper's physical setup (near-field
 * magnetic probe + Keysight N9020A / ThinkRF WSA5000 + PX14400
 * digitizers).  The signal is modelled directly in complex baseband
 * around the processor clock frequency, which is where the receiver
 * tunes (Sec. III-A), so no multi-GHz carrier sampling is needed.
 */

#ifndef EMPROF_EM_CONFIG_HPP
#define EMPROF_EM_CONFIG_HPP

#include <cstdint>

namespace emprof::em {

/** Power-to-emanation synthesis. */
struct EmanationConfig
{
    /** Residual carrier amplitude independent of activity (clock tree
     *  leaks at the clock frequency even when fully stalled). */
    double carrierLeak = 0.15;

    /** Amplitude contributed per unit of modelled power. */
    double activityGain = 1.0;

    /** Phase-noise random-walk step per cycle (radians). */
    double phaseNoiseStep = 0.01;

    uint64_t seed = 0xE31ull;
};

/** Probe + environment channel. */
struct ChannelConfig
{
    /** Nominal probe-coupling gain. */
    double gain = 1.0;

    /**
     * Per-cycle random-walk step of the multiplicative gain, as a
     * fraction of the nominal gain.  Models probe-position sensitivity
     * (Sec. IV: "even small changes in probe/antenna position can
     * dramatically change the overall magnitude").
     */
    double gainWalkStep = 2e-7;

    /** Bounds on the wandering gain, relative to nominal. */
    double gainMin = 0.5;
    double gainMax = 2.0;

    /** Amplitude of periodic supply-voltage ripple (relative). */
    double supplyRippleAmp = 0.03;

    /** Supply ripple frequency in Hz (switching regulator). */
    double supplyRippleHz = 120e3;

    /** AWGN standard deviation per real dimension, at the input. */
    double noiseSigma = 0.03;

    uint64_t seed = 0xC4A2ull;
};

/** SDR receiver front end. */
struct ReceiverConfig
{
    /** Measurement bandwidth in Hz; IQ sample rate equals this.
     *  The paper sweeps 20/40/60/80/160 MHz (Sec. VI-B). */
    double bandwidthHz = 40e6;

    /** Anti-alias FIR length (odd).  0 = automatic: the filter spans
     *  ~2.5 decimation periods, as a real anti-alias stage must — this
     *  is what makes narrow bandwidths smear short stalls (Fig. 12). */
    uint32_t firTaps = 0;

    /** ADC resolution in bits; 0 disables quantisation. */
    uint32_t adcBits = 14;

    /** Full-scale amplitude for the ADC. */
    double adcFullScale = 4.0;
};

} // namespace emprof::em

#endif // EMPROF_EM_CONFIG_HPP
