#include "em/channel.hpp"

#include <cmath>
#include <numbers>

namespace emprof::em {

Channel::Channel(const ChannelConfig &config, double sample_rate_hz)
    : config_(config),
      gainWalk_(config.gain, config.gain * config.gainWalkStep,
                config.gain * config.gainMin, config.gain * config.gainMax,
                config.seed ^ 0x9A1),
      noise_(config.noiseSigma, config.seed ^ 0x77E),
      ripplePhaseStep_(2.0 * std::numbers::pi * config.supplyRippleHz /
                       sample_rate_hz)
{}

double
Channel::currentGain() const
{
    return gainWalk_.value() * (1.0 + config_.supplyRippleAmp * rippleValue_);
}

dsp::Complex
Channel::push(dsp::Complex x)
{
    // The gain terms change slowly (supply ripple is ~100 kHz, the
    // probe walk slower still) while samples arrive at the clock rate,
    // so the combined gain is refreshed on a 64-sample grid — far
    // below the ripple period.
    if ((sampleIndex_ & 63) == 0) {
        rippleValue_ = std::sin(ripplePhase_);
        gainWalk_.step();
        cachedGain_ = static_cast<float>(
            gainWalk_.value() *
            (1.0 + config_.supplyRippleAmp * rippleValue_));
    }
    ripplePhase_ += ripplePhaseStep_;
    if (ripplePhase_ > 2.0 * std::numbers::pi)
        ripplePhase_ -= 2.0 * std::numbers::pi;
    ++sampleIndex_;

    return x * cachedGain_ + noise_.complex();
}

} // namespace emprof::em
