/**
 * @file
 * End-to-end capture: simulator -> emanation -> channel -> receiver ->
 * magnitude series, plus the dual-probe (CPU + DRAM) setup of Fig. 9/10.
 */

#ifndef EMPROF_EM_CAPTURE_HPP
#define EMPROF_EM_CAPTURE_HPP

#include <optional>
#include <vector>

#include "dsp/impairment.hpp"
#include "dsp/types.hpp"
#include "em/channel.hpp"
#include "em/config.hpp"
#include "em/emanation.hpp"
#include "em/receiver.hpp"
#include "sim/memory.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace emprof::em {

/** Full probe-chain configuration. */
struct ProbeChainConfig
{
    EmanationConfig emanation;
    ChannelConfig channel;
    ReceiverConfig receiver;

    /**
     * Post-receiver RF impairments (AWGN, gain drift, impulses,
     * dropouts, clipping, hum) applied to the magnitude stream.
     * Defaults to none; see dsp/impairment.hpp for the model and
     * parseImpairmentSpec for the command-line grammar.  In the
     * streaming chain the impairment reference level must be set
     * explicitly (spec.referenceLevel); it defaults to 1.0 here since
     * a stream has no RMS to measure up front.
     */
    dsp::ImpairmentSpec impairment;
};

/**
 * Streaming probe chain: power sample in (at clock rate), magnitude
 * sample out (at the measurement bandwidth).
 */
class ProbeChain
{
  public:
    ProbeChain(const ProbeChainConfig &config, double clock_hz);

    /**
     * Push one power sample.
     *
     * @param power Modelled power for one cycle.
     * @param mag_out Receives a magnitude sample when produced.
     * @retval true A magnitude sample was produced.
     */
    bool push(dsp::Sample power, dsp::Sample &mag_out);

    /** Magnitude output sample rate in Hz. */
    double outputRateHz() const { return receiver_.outputRateHz(); }

  private:
    EmanationSynthesizer emanation_;
    Channel channel_;
    SdrReceiver receiver_;
    std::optional<dsp::ImpairmentInjector> impairer_;
};

/** Result of an instrumented run. */
struct EmCaptureResult
{
    sim::SimResult simResult;

    /** Received signal magnitude at the measurement bandwidth. */
    dsp::TimeSeries magnitude;
};

/**
 * Run a trace on a simulator while "probing" it: the per-cycle power is
 * streamed through the probe chain and only the decimated magnitude is
 * retained, so memory stays O(cycles / decimation).
 */
EmCaptureResult captureRun(sim::Simulator &simulator,
                           sim::TraceSource &trace,
                           const ProbeChainConfig &config,
                           sim::Cycle max_cycles = sim::kNoCycle);

/** Push an already-recorded power trace through a probe chain. */
dsp::TimeSeries processPowerTrace(const dsp::TimeSeries &power,
                                  const ProbeChainConfig &config);

/** DRAM-side emanation synthesis levels (arbitrary units). */
struct MemoryEmanationConfig
{
    double idleLevel = 0.05;
    double readBurstLevel = 1.0;
    double writeBurstLevel = 0.9;
    double refreshLevel = 0.7;
};

/**
 * Probe chain suited to the memory-side measurement of Fig. 9: a
 * passive probe on the CAS pin, measured off a resistor — direct
 * contact, so essentially no residual carrier leak and little noise
 * compared to the near-field CPU probe.
 */
ProbeChainConfig defaultMemoryProbeChain();

/**
 * Build the DRAM-side activity trace (one sample per core cycle) from
 * the recorded CAS events.
 */
dsp::TimeSeries synthesizeMemoryPower(
    const std::vector<sim::CasEvent> &events, sim::Cycle total_cycles,
    double clock_hz, const MemoryEmanationConfig &config = {});

/** Result of the dual-probe experiment (Fig. 10). */
struct DualProbeResult
{
    sim::SimResult simResult;

    /** Processor-probe magnitude. */
    dsp::TimeSeries cpu;

    /** Memory-probe magnitude (time-aligned with cpu). */
    dsp::TimeSeries memory;
};

/**
 * Run a trace while simultaneously probing the processor and the DRAM,
 * reproducing the measurement setup of Fig. 9.
 *
 * @param cpu_chain Processor-probe chain configuration.
 * @param mem_chain Memory-probe chain configuration (typically the
 *        same receiver bandwidth so the two series align).
 */
DualProbeResult dualProbeRun(sim::Simulator &simulator,
                             sim::TraceSource &trace,
                             const ProbeChainConfig &cpu_chain,
                             const ProbeChainConfig &mem_chain,
                             const MemoryEmanationConfig &mem_levels = {});

} // namespace emprof::em

#endif // EMPROF_EM_CAPTURE_HPP
