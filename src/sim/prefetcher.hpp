/**
 * @file
 * PC-indexed stride prefetcher.
 *
 * The Samsung device's core has a hardware prefetcher that hides part
 * of its LLC miss stream (Sec. VI-A), while the paper's microbenchmark
 * randomises its access pattern specifically to defeat stride
 * prefetching (Sec. V-B).  This model reproduces both behaviours: it
 * trains per-PC stride entries and issues prefetch fills only once a
 * stride has been confirmed.
 */

#ifndef EMPROF_SIM_PREFETCHER_HPP
#define EMPROF_SIM_PREFETCHER_HPP

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace emprof::sim {

/** A prefetch request the owner should issue to memory. */
struct PrefetchRequest
{
    Addr lineAddr = 0;
};

/** Prefetcher statistics. */
struct PrefetcherStats
{
    uint64_t trainings = 0;
    uint64_t issued = 0;
};

/**
 * Classic reference-prediction-table stride prefetcher.
 */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &config,
                              uint32_t line_bytes);

    /**
     * Observe a demand access and emit any prefetches it triggers.
     *
     * @param pc PC of the load.
     * @param addr Accessed byte address.
     * @param out Receives zero or more prefetch line addresses.
     */
    void observe(Addr pc, Addr addr, std::vector<PrefetchRequest> &out);

    const PrefetcherStats &stats() const { return stats_; }
    bool enabled() const { return config_.enabled; }

  private:
    struct Entry
    {
        Addr pcTag = 0;
        Addr lastAddr = 0;
        int64_t stride = 0;
        uint32_t confidence = 0;
        bool valid = false;
    };

    PrefetcherConfig config_;
    uint32_t lineBytes_;
    std::vector<Entry> table_;
    PrefetcherStats stats_;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_PREFETCHER_HPP
