#include "sim/simulator.hpp"

namespace emprof::sim {

Simulator::Simulator(const SimConfig &config)
    : config_(config),
      gt_(std::make_unique<GroundTruth>(config.detailedGroundTruth)),
      hier_(std::make_unique<MemoryHierarchy>(config, *gt_)),
      power_(std::make_unique<PowerModel>(config.power))
{}

SimResult
Simulator::run(TraceSource &trace, dsp::SampleSink power_sink,
               Cycle max_cycles)
{
    InOrderCore core(config_, trace, *hier_, *gt_, *power_,
                     std::move(power_sink));
    const auto outcome = core.run(max_cycles);

    SimResult result;
    result.cycles = outcome.cycles;
    result.instructions = outcome.instructions;
    result.rawLlcMisses = gt_->rawLlcMisses();
    result.stallIntervals = gt_->stallIntervals().size();
    result.missStallCycles = gt_->missStallCycles();
    result.otherStallCycles = gt_->otherStallCycles();
    result.l1iStats = hier_->l1i().stats();
    result.l1dStats = hier_->l1d().stats();
    result.llcStats = hier_->llc().stats();
    result.memoryStats = hier_->memory().stats();
    result.stalls = core.stallBreakdown();
    return result;
}

SimResult
Simulator::runWithPowerTrace(TraceSource &trace, dsp::TimeSeries &power,
                             Cycle max_cycles)
{
    power.sampleRateHz = config_.clockHz;
    power.samples.clear();
    auto sink = [&power](dsp::Sample s) { power.samples.push_back(s); };
    return run(trace, sink, max_cycles);
}

} // namespace emprof::sim
