/**
 * @file
 * Ground-truth recorder: exactly what the paper's enhanced SESC emits
 * (Sec. V-C) — when each LLC miss is detected, and where each resulting
 * full-stall interval begins and ends.
 *
 * Two counts matter and they are deliberately different:
 *  - rawLlcMisses(): every demand LLC miss, including misses whose
 *    latency is fully hidden and misses that overlap other misses.
 *    This is what a hardware LLC-miss counter counts.
 *  - stallIntervals(): maximal runs of fully-stalled cycles during
 *    which at least one LLC miss is outstanding.  Overlapped misses
 *    coalesce into one interval (Fig. 3b); fully-hidden misses produce
 *    none (Fig. 3a).  This is the event EMPROF can and should see, and
 *    Table III "miss accuracy" compares against it.
 */

#ifndef EMPROF_SIM_GROUND_TRUTH_HPP
#define EMPROF_SIM_GROUND_TRUTH_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace emprof::sim {

/** Maximum number of workload phases tracked. */
inline constexpr std::size_t kMaxPhases = 16;

/**
 * Memory service level of a stall interval — the simulator-side twin
 * of profiler::ServiceLevel, kept separate so the sim library never
 * depends on the profiler (src/validate/ maps between the two).
 */
enum class StallLevel : uint8_t
{
    LlcHit,         ///< waiting on an LLC hit (dependent-load chain)
    PrefetchMasked, ///< residual latency of an in-flight prefetch
    Dram,           ///< ordinary DRAM demand miss
    DramRefresh,    ///< DRAM fill lengthened by a refresh window
};

/** Number of stall levels (confusion-matrix dimension). */
inline constexpr std::size_t kStallLevelCount = 4;

/** Stable lower-case name for a stall level. */
const char *stallLevelName(StallLevel level);

/**
 * How the misses behind one stalled cycle were served; the core model
 * fills this from AccessOutcome fields (DESIGN.md §16).  The default
 * matches the legacy 4-argument onMissStallCycle call: a plain demand
 * miss.
 */
struct StallLevelFlags
{
    /** A demand miss (or demand-class prefetch residual) outstanding. */
    bool demandMiss = true;

    /** An in-flight-prefetch residual outstanding (masked latency). */
    bool prefetchMasked = false;

    /** An outstanding fill queued behind refresh for at least the
     *  configured labeling threshold. */
    bool refreshLengthened = false;
};

/** One maximal LLC-miss-induced full-stall interval. */
struct StallInterval
{
    /** First fully-stalled cycle. */
    Cycle begin = 0;

    /** Last fully-stalled cycle (inclusive). */
    Cycle end = 0;

    /** Maximum number of LLC misses outstanding during the interval. */
    uint32_t overlappedMisses = 1;

    /** The interval was lengthened by a DRAM refresh window. */
    bool refreshAffected = false;

    /** Workload phase the interval occurred in. */
    uint8_t phase = 0;

    /** Union of per-cycle service flags over the interval. */
    StallLevelFlags flags;

    Cycle durationCycles() const { return end - begin + 1; }

    /**
     * Service level of the interval: the slowest class that
     * contributed, since it dominates the measured duration.
     */
    StallLevel
    level() const
    {
        if (flags.refreshLengthened)
            return StallLevel::DramRefresh;
        if (flags.demandMiss)
            return StallLevel::Dram;
        if (flags.prefetchMasked)
            return StallLevel::PrefetchMasked;
        return StallLevel::LlcHit;
    }
};

/** One raw LLC miss (recorded only in detailed mode). */
struct RawMissEvent
{
    /** Cycle the miss was detected at the LLC. */
    Cycle detect = 0;

    /** Instruction-side (I$ path) rather than data-side miss. */
    bool fetchSide = false;

    /** The fill waited on a DRAM refresh window. */
    bool refreshDelayed = false;
};

/** Per-phase aggregate counters (for Table V ground truth). */
struct PhaseCounters
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llcMisses = 0;
    uint64_t missStallCycles = 0;
};

/**
 * Collects miss and stall ground truth during a simulation.
 */
class GroundTruth
{
  public:
    /**
     * @param detailed Keep the per-event raw miss list (memory heavy on
     *        long runs; aggregate counters are always kept).
     */
    explicit GroundTruth(bool detailed = false) : detailed_(detailed) {}

    /** Record a demand LLC miss. */
    void
    onLlcMiss(Cycle detect, bool fetch_side, bool refresh_delayed,
              uint8_t phase)
    {
        ++rawLlcMisses_;
        phaseOf(phase).llcMisses += 1;
        if (refresh_delayed)
            ++refreshDelayedMisses_;
        if (detailed_)
            rawEvents_.push_back({detect, fetch_side, refresh_delayed});
    }

    /**
     * Record one fully-stalled cycle attributable to LLC misses.
     *
     * @param cycle The stalled cycle.
     * @param outstanding Number of LLC misses outstanding.
     * @param refresh_affected Any outstanding fill is refresh-delayed.
     * @param phase Current workload phase.
     * @param flags How the outstanding fills are being served; the
     *        default (plain demand miss) keeps legacy callers'
     *        intervals labeled StallLevel::Dram.
     */
    void
    onMissStallCycle(Cycle cycle, uint32_t outstanding,
                     bool refresh_affected, uint8_t phase,
                     StallLevelFlags flags = {})
    {
        ++missStallCycles_;
        phaseOf(phase).missStallCycles += 1;
        if (open_ && cycle == current_.end + 1) {
            current_.end = cycle;
            current_.overlappedMisses =
                std::max(current_.overlappedMisses, outstanding);
            current_.refreshAffected |= refresh_affected;
            current_.flags.demandMiss |= flags.demandMiss;
            current_.flags.prefetchMasked |= flags.prefetchMasked;
            current_.flags.refreshLengthened |= flags.refreshLengthened;
        } else {
            closeInterval();
            current_ = {cycle, cycle, std::max(outstanding, 1u),
                        refresh_affected, phase, flags};
            open_ = true;
        }
    }

    /**
     * Record a fully-stalled cycle spent waiting on an LLC *hit* (a
     * dependent-load chain bottoming out in the LLC).  Builds a
     * separate interval list so stallIntervals() — the paper's miss
     * ground truth — is unchanged; also counted in otherStallCycles()
     * exactly as before this level existed.
     */
    void
    onHitStallCycle(Cycle cycle, uint8_t phase)
    {
        ++otherStallCycles_;
        ++hitStallCycles_;
        if (hitOpen_ && cycle == currentHit_.end + 1) {
            currentHit_.end = cycle;
        } else {
            closeHitInterval();
            currentHit_ = {cycle, cycle, 0, false, phase,
                           {false, false, false}};
            hitOpen_ = true;
        }
    }

    /** Record a fully-stalled cycle with no LLC miss outstanding. */
    void onOtherStallCycle() { ++otherStallCycles_; }

    /** Per-cycle phase accounting. */
    void onCycle(uint8_t phase) { phaseOf(phase).cycles += 1; }

    /** Per-retired-op accounting. */
    void onInstruction(uint8_t phase) { phaseOf(phase).instructions += 1; }

    /** Close any open interval; call when the simulation ends. */
    void
    finalize()
    {
        closeInterval();
        closeHitInterval();
    }

    /** Every demand LLC miss (the hardware-counter view). */
    uint64_t rawLlcMisses() const { return rawLlcMisses_; }

    /** Misses whose fills waited on refresh. */
    uint64_t refreshDelayedMisses() const { return refreshDelayedMisses_; }

    /** Total fully-stalled cycles attributed to LLC misses. */
    uint64_t missStallCycles() const { return missStallCycles_; }

    /** Fully-stalled cycles with no miss outstanding. */
    uint64_t otherStallCycles() const { return otherStallCycles_; }

    /** Coalesced stall intervals (EMPROF's ground truth). */
    const std::vector<StallInterval> &
    stallIntervals() const
    {
        return intervals_;
    }

    /** Coalesced LLC-hit wait intervals (level LlcHit), kept apart
     *  from the paper's miss ground truth above. */
    const std::vector<StallInterval> &
    hitStallIntervals() const
    {
        return hitIntervals_;
    }

    /** Fully-stalled cycles spent waiting on LLC hits (a subset of
     *  otherStallCycles()). */
    uint64_t hitStallCycles() const { return hitStallCycles_; }

    /**
     * All stall intervals — miss-induced and LLC-hit waits — merged
     * into one begin-sorted list, adjacent-or-overlapping neighbours
     * coalesced (gap <= @p max_gap), keeping results of at least
     * @p min_cycles.  A merged interval takes the level of whichever
     * source contributed the most cycles, except that a slower class
     * always outranks LlcHit — this is the per-event ground truth the
     * classifier is scored against (DESIGN.md §16).
     */
    std::vector<StallInterval>
    labeledIntervals(Cycle max_gap = 0, Cycle min_cycles = 1) const;

    /**
     * Number of stall intervals at least @p min_cycles long.  EMPROF
     * cannot see stalls shorter than its duration threshold, so
     * accuracy comparisons use the same floor on both sides.
     */
    uint64_t countIntervalsAtLeast(Cycle min_cycles) const;

    /** Total stalled cycles in intervals at least @p min_cycles long. */
    uint64_t stallCyclesInIntervalsAtLeast(Cycle min_cycles) const;

    /**
     * Interval count after merging neighbours separated by less than
     * @p max_gap cycles, keeping merged intervals of at least
     * @p min_cycles.  A signal-based detector cannot resolve two
     * stalls whose separation is below its duration threshold, so
     * accuracy comparisons use the same resolution on the ground
     * truth (the paper folds "several highly-overlapped LLC misses"
     * into one MISS for the same reason, Sec. II-B).
     */
    uint64_t countCoalescedIntervals(Cycle max_gap, Cycle min_cycles) const;

    /** Raw per-miss events (detailed mode only). */
    const std::vector<RawMissEvent> &rawEvents() const { return rawEvents_; }

    /** Per-phase counters. */
    const std::array<PhaseCounters, kMaxPhases> &
    phases() const
    {
        return phases_;
    }

  private:
    PhaseCounters &
    phaseOf(uint8_t phase)
    {
        return phases_[phase < kMaxPhases ? phase : kMaxPhases - 1];
    }

    void
    closeInterval()
    {
        if (open_) {
            intervals_.push_back(current_);
            open_ = false;
        }
    }

    void
    closeHitInterval()
    {
        if (hitOpen_) {
            hitIntervals_.push_back(currentHit_);
            hitOpen_ = false;
        }
    }

    bool detailed_;
    uint64_t rawLlcMisses_ = 0;
    uint64_t refreshDelayedMisses_ = 0;
    uint64_t missStallCycles_ = 0;
    uint64_t otherStallCycles_ = 0;
    uint64_t hitStallCycles_ = 0;
    std::vector<StallInterval> intervals_;
    std::vector<StallInterval> hitIntervals_;
    std::vector<RawMissEvent> rawEvents_;
    std::array<PhaseCounters, kMaxPhases> phases_{};
    StallInterval current_{};
    StallInterval currentHit_{};
    bool open_ = false;
    bool hitOpen_ = false;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_GROUND_TRUTH_HPP
