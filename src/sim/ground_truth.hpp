/**
 * @file
 * Ground-truth recorder: exactly what the paper's enhanced SESC emits
 * (Sec. V-C) — when each LLC miss is detected, and where each resulting
 * full-stall interval begins and ends.
 *
 * Two counts matter and they are deliberately different:
 *  - rawLlcMisses(): every demand LLC miss, including misses whose
 *    latency is fully hidden and misses that overlap other misses.
 *    This is what a hardware LLC-miss counter counts.
 *  - stallIntervals(): maximal runs of fully-stalled cycles during
 *    which at least one LLC miss is outstanding.  Overlapped misses
 *    coalesce into one interval (Fig. 3b); fully-hidden misses produce
 *    none (Fig. 3a).  This is the event EMPROF can and should see, and
 *    Table III "miss accuracy" compares against it.
 */

#ifndef EMPROF_SIM_GROUND_TRUTH_HPP
#define EMPROF_SIM_GROUND_TRUTH_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace emprof::sim {

/** Maximum number of workload phases tracked. */
inline constexpr std::size_t kMaxPhases = 16;

/** One maximal LLC-miss-induced full-stall interval. */
struct StallInterval
{
    /** First fully-stalled cycle. */
    Cycle begin = 0;

    /** Last fully-stalled cycle (inclusive). */
    Cycle end = 0;

    /** Maximum number of LLC misses outstanding during the interval. */
    uint32_t overlappedMisses = 1;

    /** The interval was lengthened by a DRAM refresh window. */
    bool refreshAffected = false;

    /** Workload phase the interval occurred in. */
    uint8_t phase = 0;

    Cycle durationCycles() const { return end - begin + 1; }
};

/** One raw LLC miss (recorded only in detailed mode). */
struct RawMissEvent
{
    /** Cycle the miss was detected at the LLC. */
    Cycle detect = 0;

    /** Instruction-side (I$ path) rather than data-side miss. */
    bool fetchSide = false;

    /** The fill waited on a DRAM refresh window. */
    bool refreshDelayed = false;
};

/** Per-phase aggregate counters (for Table V ground truth). */
struct PhaseCounters
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llcMisses = 0;
    uint64_t missStallCycles = 0;
};

/**
 * Collects miss and stall ground truth during a simulation.
 */
class GroundTruth
{
  public:
    /**
     * @param detailed Keep the per-event raw miss list (memory heavy on
     *        long runs; aggregate counters are always kept).
     */
    explicit GroundTruth(bool detailed = false) : detailed_(detailed) {}

    /** Record a demand LLC miss. */
    void
    onLlcMiss(Cycle detect, bool fetch_side, bool refresh_delayed,
              uint8_t phase)
    {
        ++rawLlcMisses_;
        phaseOf(phase).llcMisses += 1;
        if (refresh_delayed)
            ++refreshDelayedMisses_;
        if (detailed_)
            rawEvents_.push_back({detect, fetch_side, refresh_delayed});
    }

    /**
     * Record one fully-stalled cycle attributable to LLC misses.
     *
     * @param cycle The stalled cycle.
     * @param outstanding Number of LLC misses outstanding.
     * @param refresh_affected Any outstanding fill is refresh-delayed.
     * @param phase Current workload phase.
     */
    void
    onMissStallCycle(Cycle cycle, uint32_t outstanding,
                     bool refresh_affected, uint8_t phase)
    {
        ++missStallCycles_;
        phaseOf(phase).missStallCycles += 1;
        if (open_ && cycle == current_.end + 1) {
            current_.end = cycle;
            current_.overlappedMisses =
                std::max(current_.overlappedMisses, outstanding);
            current_.refreshAffected |= refresh_affected;
        } else {
            closeInterval();
            current_ = {cycle, cycle, std::max(outstanding, 1u),
                        refresh_affected, phase};
            open_ = true;
        }
    }

    /** Record a fully-stalled cycle with no LLC miss outstanding. */
    void onOtherStallCycle() { ++otherStallCycles_; }

    /** Per-cycle phase accounting. */
    void onCycle(uint8_t phase) { phaseOf(phase).cycles += 1; }

    /** Per-retired-op accounting. */
    void onInstruction(uint8_t phase) { phaseOf(phase).instructions += 1; }

    /** Close any open interval; call when the simulation ends. */
    void finalize() { closeInterval(); }

    /** Every demand LLC miss (the hardware-counter view). */
    uint64_t rawLlcMisses() const { return rawLlcMisses_; }

    /** Misses whose fills waited on refresh. */
    uint64_t refreshDelayedMisses() const { return refreshDelayedMisses_; }

    /** Total fully-stalled cycles attributed to LLC misses. */
    uint64_t missStallCycles() const { return missStallCycles_; }

    /** Fully-stalled cycles with no miss outstanding. */
    uint64_t otherStallCycles() const { return otherStallCycles_; }

    /** Coalesced stall intervals (EMPROF's ground truth). */
    const std::vector<StallInterval> &
    stallIntervals() const
    {
        return intervals_;
    }

    /**
     * Number of stall intervals at least @p min_cycles long.  EMPROF
     * cannot see stalls shorter than its duration threshold, so
     * accuracy comparisons use the same floor on both sides.
     */
    uint64_t countIntervalsAtLeast(Cycle min_cycles) const;

    /** Total stalled cycles in intervals at least @p min_cycles long. */
    uint64_t stallCyclesInIntervalsAtLeast(Cycle min_cycles) const;

    /**
     * Interval count after merging neighbours separated by less than
     * @p max_gap cycles, keeping merged intervals of at least
     * @p min_cycles.  A signal-based detector cannot resolve two
     * stalls whose separation is below its duration threshold, so
     * accuracy comparisons use the same resolution on the ground
     * truth (the paper folds "several highly-overlapped LLC misses"
     * into one MISS for the same reason, Sec. II-B).
     */
    uint64_t countCoalescedIntervals(Cycle max_gap, Cycle min_cycles) const;

    /** Raw per-miss events (detailed mode only). */
    const std::vector<RawMissEvent> &rawEvents() const { return rawEvents_; }

    /** Per-phase counters. */
    const std::array<PhaseCounters, kMaxPhases> &
    phases() const
    {
        return phases_;
    }

  private:
    PhaseCounters &
    phaseOf(uint8_t phase)
    {
        return phases_[phase < kMaxPhases ? phase : kMaxPhases - 1];
    }

    void
    closeInterval()
    {
        if (open_) {
            intervals_.push_back(current_);
            open_ = false;
        }
    }

    bool detailed_;
    uint64_t rawLlcMisses_ = 0;
    uint64_t refreshDelayedMisses_ = 0;
    uint64_t missStallCycles_ = 0;
    uint64_t otherStallCycles_ = 0;
    std::vector<StallInterval> intervals_;
    std::vector<RawMissEvent> rawEvents_;
    std::array<PhaseCounters, kMaxPhases> phases_{};
    StallInterval current_{};
    bool open_ = false;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_GROUND_TRUTH_HPP
