/**
 * @file
 * The two-level cache hierarchy glue: L1I, L1D, unified LLC, stride
 * prefetcher and main memory, with ground-truth hooks.
 *
 * Mirrors the paper's simulated configuration (Sec. III-B): two levels
 * of caches with random replacement in front of a DRAM model, with the
 * LLC unified for instructions and data.
 */

#ifndef EMPROF_SIM_HIERARCHY_HPP
#define EMPROF_SIM_HIERARCHY_HPP

#include <unordered_map>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/ground_truth.hpp"
#include "sim/memory.hpp"
#include "sim/prefetcher.hpp"

namespace emprof::sim {

/** Timing outcome of one demand access. */
struct AccessOutcome
{
    /** Cycle the data is usable by the core. */
    Cycle completion = 0;

    /** The access was a demand LLC miss (hardware-counter view). */
    bool llcMiss = false;

    /**
     * The access waits on DRAM for longer than an LLC hit — demand
     * misses, but also demand hits on still-in-flight prefetches.
     * Stalls on such accesses are memory-induced and show up in the
     * EM signal exactly like miss stalls, so ground-truth stall
     * attribution uses this flag rather than llcMiss.
     */
    bool memoryStall = false;

    /** The DRAM fill waited on a refresh window. */
    bool refreshDelayed = false;

    /** The LLC tag array was accessed (for the power model). */
    bool llcAccessed = false;

    /** memoryStall came from a demand hit on an in-flight prefetch —
     *  the core pays only the residual latency. */
    bool prefetchMasked = false;

    /** Cycles the fill queued behind a DRAM refresh window. */
    Cycle refreshDelayCycles = 0;

    /** Memory-path service time (completion - request), in cycles,
     *  for memory-stalling accesses; ground-truth level labeling keys
     *  on it (DESIGN.md §16). */
    Cycle serviceCycles = 0;
};

/**
 * L1I + L1D + unified LLC + prefetcher + memory.
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const SimConfig &config, GroundTruth &gt);

    /** Demand data access (load or store drain). */
    AccessOutcome dataAccess(Addr pc, Addr addr, bool is_store, Cycle now,
                             uint8_t phase);

    /** Instruction fetch of the line containing @p pc. */
    AccessOutcome fetchAccess(Addr pc, Cycle now, uint8_t phase);

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &llc() { return llc_; }
    MemorySystem &memory() { return memory_; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }

    /** Demand LLC misses avoided because a prefetch covered them. */
    uint64_t prefetchCoveredMisses() const { return prefetch_covered_; }

  private:
    /**
     * Shared L1-miss path: LLC lookup, prefetch-in-flight check, DRAM
     * access, fills, and ground-truth recording.
     */
    AccessOutcome llcPath(Addr line, bool is_store, bool fetch_side,
                          Cycle now, uint8_t phase);

    /** Issue prefetches suggested by the stride table. */
    void issuePrefetches(Addr pc, Addr addr, Cycle now);

    SimConfig config_;
    GroundTruth &gt_;
    Cache l1i_;
    Cache l1d_;
    Cache llc_;
    MemorySystem memory_;
    StridePrefetcher prefetcher_;

    /** In-flight prefetch fills: line address -> ready cycle. */
    std::unordered_map<Addr, Cycle> prefetchInFlight_;

    std::vector<PrefetchRequest> prefetchScratch_;
    uint64_t prefetch_covered_ = 0;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_HIERARCHY_HPP
