#include "sim/memory.hpp"

#include <algorithm>

namespace emprof::sim {

MemorySystem::MemorySystem(const MemoryConfig &config)
    : config_(config), rng_(config.seed)
{}

Cycle
MemorySystem::refreshStart(uint64_t k) const
{
    return k * config_.refreshPeriod;
}

bool
MemorySystem::inRefresh(Cycle cycle) const
{
    if (!config_.refreshEnabled || cycle < config_.refreshPeriod)
        return false;
    const Cycle offset = cycle % config_.refreshPeriod;
    return offset < config_.refreshDuration;
}

Cycle
MemorySystem::avoidRefresh(Cycle start, bool &delayed, Cycle *delay_cycles)
{
    if (!config_.refreshEnabled)
        return start;
    if (inRefresh(start)) {
        const uint64_t k = start / config_.refreshPeriod;
        delayed = true;
        const Cycle moved = refreshStart(k) + config_.refreshDuration;
        if (delay_cycles != nullptr)
            *delay_cycles += moved - start;
        return moved;
    }
    return start;
}

void
MemorySystem::catchUpRefresh(Cycle now)
{
    if (!config_.refreshEnabled)
        return;
    while (refreshStart(nextRefreshToEmit_) < now) {
        if (cas_enabled_) {
            cas_trace_.push_back(
                {refreshStart(nextRefreshToEmit_),
                 static_cast<uint32_t>(config_.refreshDuration),
                 CasEvent::Kind::Refresh});
        }
        ++stats_.refreshWindows;
        ++nextRefreshToEmit_;
    }
}

void
MemorySystem::catchUpBackground(Cycle now)
{
    if (config_.backgroundPeriod == 0)
        return;
    while (nextBackground_ <= now) {
        // The burst occupies the channel when the channel gets to it.
        busyUntil_ = std::max(busyUntil_, nextBackground_) +
                     config_.backgroundBurst;
        nextBackground_ += config_.backgroundPeriod;
    }
}

MemoryReadResult
MemorySystem::read(Cycle now)
{
    catchUpRefresh(now);
    catchUpBackground(now);
    ++stats_.reads;

    MemoryReadResult result;
    Cycle start = std::max(now, busyUntil_);
    start = avoidRefresh(start, result.refreshDelayed,
                         &result.refreshDelayCycles);
    if (result.refreshDelayed)
        ++stats_.refreshDelayedReads;

    const int64_t jitter =
        config_.latencyJitter == 0
            ? 0
            : static_cast<int64_t>(
                  rng_.below(2 * config_.latencyJitter + 1)) -
                  static_cast<int64_t>(config_.latencyJitter);

    const Cycle latency = static_cast<Cycle>(
        std::max<int64_t>(1, static_cast<int64_t>(config_.accessLatency) +
                                 jitter));
    result.completion = start + latency;
    busyUntil_ = start + config_.burstCycles;

    if (cas_enabled_) {
        // The observable DRAM activity (activate..data..precharge)
        // ends when the data returns.
        const uint32_t obs = config_.casObservableCycles;
        const Cycle obs_start =
            result.completion > obs ? result.completion - obs : 0;
        cas_trace_.push_back({obs_start, obs, CasEvent::Kind::Read});
    }
    return result;
}

void
MemorySystem::write(Cycle now)
{
    catchUpRefresh(now);
    ++stats_.writes;

    bool delayed = false;
    Cycle start = std::max(now, busyUntil_);
    start = avoidRefresh(start, delayed);
    busyUntil_ = start + config_.burstCycles;

    if (cas_enabled_) {
        cas_trace_.push_back(
            {start, config_.casObservableCycles, CasEvent::Kind::Write});
    }
}

} // namespace emprof::sim
