#include "sim/hierarchy.hpp"

namespace emprof::sim {

MemoryHierarchy::MemoryHierarchy(const SimConfig &config, GroundTruth &gt)
    : config_(config),
      gt_(gt),
      l1i_(config.l1i, config.seed ^ 0x11),
      l1d_(config.l1d, config.seed ^ 0x22),
      llc_(config.llc, config.seed ^ 0x33),
      memory_(config.memory),
      prefetcher_(config.prefetcher, config.l1d.lineBytes)
{}

AccessOutcome
MemoryHierarchy::llcPath(Addr line, bool is_store, bool fetch_side,
                         Cycle now, uint8_t phase)
{
    AccessOutcome out;
    out.llcAccessed = true;

    const auto llc_result = llc_.access(line, is_store);
    if (llc_result.hit) {
        out.completion = now + llc_.config().hitLatency;
        return out;
    }

    // LLC tag miss: a prefetch may already be bringing the line in.
    const auto it = prefetchInFlight_.find(line);
    if (it != prefetchInFlight_.end()) {
        const Cycle ready = it->second;
        prefetchInFlight_.erase(it);
        ++prefetch_covered_;
        // The line was allocated by llc_.access() above (fill).  The
        // demand access waits only for the remainder of the prefetch,
        // so it is not a demand miss for ground-truth purposes: its
        // latency is (mostly) hidden, exactly the effect the Samsung
        // device's prefetcher has in Sec. VI-A.
        out.completion =
            std::max(ready, now + llc_.config().hitLatency);
        out.memoryStall =
            out.completion > now + 2 * llc_.config().hitLatency;
        out.prefetchMasked = out.memoryStall;
        out.serviceCycles = out.completion - now;
        return out;
    }

    // True demand miss: go to DRAM.
    const auto mem = memory_.read(now + llc_.config().hitLatency);
    out.llcMiss = true;
    out.memoryStall = true;
    out.refreshDelayed = mem.refreshDelayed;
    out.refreshDelayCycles = mem.refreshDelayCycles;
    out.completion = mem.completion;
    out.serviceCycles = out.completion - now;
    gt_.onLlcMiss(now, fetch_side, mem.refreshDelayed, phase);

    if (llc_result.dirtyEviction)
        memory_.write(now + llc_.config().hitLatency);
    return out;
}

void
MemoryHierarchy::issuePrefetches(Addr pc, Addr addr, Cycle now)
{
    if (!prefetcher_.enabled())
        return;
    prefetchScratch_.clear();
    prefetcher_.observe(pc, addr, prefetchScratch_);
    for (const auto &req : prefetchScratch_) {
        const Addr line = llc_.lineAddr(req.lineAddr);
        if (llc_.probe(line) || prefetchInFlight_.count(line))
            continue;
        const auto mem = memory_.read(now);
        prefetchInFlight_[line] = mem.completion;
    }
}

AccessOutcome
MemoryHierarchy::dataAccess(Addr pc, Addr addr, bool is_store, Cycle now,
                            uint8_t phase)
{
    const Addr line = l1d_.lineAddr(addr);
    const auto l1 = l1d_.access(line, is_store);
    if (l1.hit) {
        AccessOutcome out;
        out.completion = now + l1d_.config().hitLatency;
        return out;
    }

    // L1 victim write-backs are absorbed by the LLC at no timing cost;
    // mark the line dirty there so LLC evictions generate DRAM writes.
    if (l1.dirtyEviction)
        llc_.access(l1.victimLine, true);

    issuePrefetches(pc, addr, now);
    auto out = llcPath(line, is_store, false, now, phase);
    out.completion += l1d_.config().hitLatency;
    return out;
}

AccessOutcome
MemoryHierarchy::fetchAccess(Addr pc, Cycle now, uint8_t phase)
{
    const Addr line = l1i_.lineAddr(pc);
    const auto l1 = l1i_.access(line, false);
    if (l1.hit) {
        AccessOutcome out;
        out.completion = now + l1i_.config().hitLatency;
        return out;
    }
    auto out = llcPath(line, false, true, now, phase);
    out.completion += l1i_.config().hitLatency;
    return out;
}

} // namespace emprof::sim
