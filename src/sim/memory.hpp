/**
 * @file
 * Main-memory model: controller serialisation, latency jitter, periodic
 * refresh, and a CAS-activity event trace.
 *
 * Refresh matters to EMPROF: an LLC miss that arrives while the DRAM is
 * refreshing is stalled for microseconds rather than hundreds of
 * nanoseconds (Fig. 5), and the profiler classifies and reports such
 * stalls separately.  The CAS event trace feeds the memory-side EM
 * probe model used for the dual-probe validation (Fig. 10).
 */

#ifndef EMPROF_SIM_MEMORY_HPP
#define EMPROF_SIM_MEMORY_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "dsp/rng.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace emprof::sim {

/** One burst of observable DRAM activity. */
struct CasEvent
{
    enum class Kind : uint8_t
    {
        Read,
        Write,
        Refresh,
    };

    /** Cycle the burst starts. */
    Cycle start = 0;

    /** Burst length in cycles. */
    uint32_t duration = 0;

    Kind kind = Kind::Read;
};

/** Outcome of a demand read. */
struct MemoryReadResult
{
    /** Cycle at which the data is available at the LLC. */
    Cycle completion = 0;

    /** The request waited on a refresh window. */
    bool refreshDelayed = false;

    /** How long the request queued behind the refresh window, in
     *  cycles (0 unless refreshDelayed).  Ground-truth labeling uses
     *  the magnitude: a fill that brushed the tail of a window is
     *  indistinguishable from an ordinary miss in the EM signal. */
    Cycle refreshDelayCycles = 0;
};

/** Aggregate memory statistics. */
struct MemoryStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t refreshDelayedReads = 0;
    uint64_t refreshWindows = 0;
};

/**
 * DRAM + memory-controller timing model.
 *
 * Single-channel: requests serialise on the channel for burstCycles
 * each, then complete accessLatency (+/- jitter) after they start
 * service.  Refresh windows recur every refreshPeriod cycles and block
 * service for refreshDuration cycles.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config);

    /**
     * Issue a demand read (LLC miss fill).
     *
     * @param now Cycle the request reaches the controller.
     * @return Completion cycle and refresh-delay flag.
     */
    MemoryReadResult read(Cycle now);

    /**
     * Issue a write-back.  Writes are posted: they occupy the channel
     * but never stall the core directly.
     */
    void write(Cycle now);

    /**
     * Emit any refresh CAS events up to @p now into the event trace.
     * Called implicitly by read/write; call once at end of simulation
     * to flush trailing refresh activity.
     */
    void catchUpRefresh(Cycle now);

    /** True if @p cycle falls inside a refresh window. */
    bool inRefresh(Cycle cycle) const;

    /** All recorded DRAM activity (sorted by construction order;
     *  reads/writes are appended in request order, refreshes lazily). */
    const std::vector<CasEvent> &casTrace() const { return cas_trace_; }

    /** Enable/disable CAS event recording (large runs disable it). */
    void setCasTraceEnabled(bool enabled) { cas_enabled_ = enabled; }

    const MemoryStats &stats() const { return stats_; }
    const MemoryConfig &config() const { return config_; }

  private:
    /** Start of the refresh window with index @p k (1-based). */
    Cycle refreshStart(uint64_t k) const;

    /** Move a service start time out of any refresh window; adds the
     *  displacement to @p delay_cycles when one applies. */
    Cycle avoidRefresh(Cycle start, bool &delayed,
                       Cycle *delay_cycles = nullptr);

    /** Inject pending background bursts up to @p now. */
    void catchUpBackground(Cycle now);

    MemoryConfig config_;
    Cycle busyUntil_ = 0;
    Cycle nextBackground_ = 0;
    uint64_t nextRefreshToEmit_ = 1;
    bool cas_enabled_ = true;
    std::vector<CasEvent> cas_trace_;
    MemoryStats stats_;
    dsp::Rng rng_;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_MEMORY_HPP
