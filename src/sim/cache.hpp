/**
 * @file
 * Set-associative tag-array cache model.
 *
 * The simulator is timing-only, so caches track tags and dirty bits but
 * no data.  Random replacement is the default because that is what the
 * modelled IoT-class parts use (Cortex-A8 L1/L2 are random-replacement)
 * and what the paper's SESC configuration mimics (Sec. III-B).
 */

#ifndef EMPROF_SIM_CACHE_HPP
#define EMPROF_SIM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "dsp/rng.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace emprof::sim {

/** Result of a cache lookup-and-fill operation. */
struct CacheAccessResult
{
    /** Tag was present. */
    bool hit = false;

    /** A dirty line was evicted (generates a write-back). */
    bool dirtyEviction = false;

    /** Line address of the evicted victim (valid if dirtyEviction). */
    Addr victimLine = 0;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    uint64_t accesses() const { return hits + misses; }

    double
    missRate() const
    {
        const uint64_t total = accesses();
        return total == 0 ? 0.0 : static_cast<double>(misses) /
                                      static_cast<double>(total);
    }
};

/**
 * Tag-array cache with LRU or random replacement.
 */
class Cache
{
  public:
    /**
     * @param config Geometry and policy.
     * @param seed Seed for random replacement decisions.
     */
    Cache(const CacheConfig &config, uint64_t seed);

    /**
     * Probe without side effects.
     *
     * @param addr Byte address.
     * @retval true The containing line is present.
     */
    bool probe(Addr addr) const;

    /**
     * Access the cache: on hit update recency, on miss allocate the
     * line (evicting a victim if needed).
     *
     * @param addr Byte address.
     * @param is_write Marks the allocated/updated line dirty.
     * @return Hit/miss and eviction information.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /**
     * Insert a line without counting a demand access (prefetch fill).
     */
    CacheAccessResult insert(Addr addr);

    /** Invalidate the whole cache (used by the perf-baseline model). */
    void flush();

    /** Invalidate a single line if present. @retval true if it was. */
    bool invalidate(Addr addr);

    /** Line-aligned address of the line containing @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }

    /** Bank index of an address (LLC banking). */
    uint32_t
    bank(Addr addr) const
    {
        return static_cast<uint32_t>((addr >> lineShift_) %
                                     config_.banks);
    }

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Way
    {
        Addr tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    /** Set index and tag for an address. */
    uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /** Pick a victim way in a set (invalid first, then policy). */
    std::size_t pickVictim(std::size_t set_base);

    CacheConfig config_;
    uint64_t numSets_;
    uint64_t lineMask_;
    uint32_t lineShift_;
    std::vector<Way> ways_; // numSets_ * assoc, set-major
    uint64_t useCounter_ = 0;
    CacheStats stats_;
    dsp::Rng rng_;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_CACHE_HPP
