/**
 * @file
 * Top-level simulator facade: wires trace, core, hierarchy, power model
 * and ground truth together, and exposes one-call runs.
 */

#ifndef EMPROF_SIM_SIMULATOR_HPP
#define EMPROF_SIM_SIMULATOR_HPP

#include <memory>

#include "dsp/types.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/ground_truth.hpp"
#include "sim/hierarchy.hpp"
#include "sim/memory.hpp"
#include "sim/power.hpp"
#include "sim/trace.hpp"

namespace emprof::sim {

/** Aggregate results of one simulation run. */
struct SimResult
{
    Cycle cycles = 0;
    uint64_t instructions = 0;

    /** Hardware-counter-style raw LLC miss count. */
    uint64_t rawLlcMisses = 0;

    /** Coalesced LLC-miss stall intervals (EMPROF's ground truth). */
    uint64_t stallIntervals = 0;

    /** Fully-stalled cycles attributed to LLC misses. */
    uint64_t missStallCycles = 0;

    /** Fully-stalled cycles with no miss outstanding. */
    uint64_t otherStallCycles = 0;

    CacheStats l1iStats;
    CacheStats l1dStats;
    CacheStats llcStats;
    MemoryStats memoryStats;
    StallBreakdown stalls;

    /** Fraction of execution time spent in LLC-miss stalls. */
    double
    missStallFraction() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(missStallCycles) /
                                 static_cast<double>(cycles);
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0 : static_cast<double>(instructions) /
                                       static_cast<double>(cycles);
    }
};

/**
 * One simulated device run.
 *
 * A Simulator instance is single-shot: construct, run(), then inspect
 * groundTruth()/hierarchy().  Construct a fresh instance per run.
 */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /**
     * Run a trace to completion.
     *
     * @param trace Dynamic op stream.
     * @param power_sink Optional per-cycle power sample consumer.
     * @param max_cycles Safety cap.
     */
    SimResult run(TraceSource &trace, dsp::SampleSink power_sink = nullptr,
                  Cycle max_cycles = kNoCycle);

    /**
     * Run a trace and capture the power side-channel signal, exactly
     * like the paper's enhanced SESC (one sample per cycle, sample
     * rate = clock frequency).
     */
    SimResult runWithPowerTrace(TraceSource &trace, dsp::TimeSeries &power,
                                Cycle max_cycles = kNoCycle);

    const GroundTruth &groundTruth() const { return *gt_; }
    GroundTruth &groundTruth() { return *gt_; }
    MemoryHierarchy &hierarchy() { return *hier_; }
    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
    std::unique_ptr<GroundTruth> gt_;
    std::unique_ptr<MemoryHierarchy> hier_;
    std::unique_ptr<PowerModel> power_;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_SIMULATOR_HPP
