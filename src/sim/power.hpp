/**
 * @file
 * Unit-activity power model.
 *
 * Mirrors the paper's SESC enhancement (Sec. III-B): each cycle the
 * core reports which units were active, and the model converts that to
 * one power sample.  A fully-stalled cycle draws only static power, so
 * the power trace drops to a low, flat level during LLC-miss stalls —
 * the very feature EMPROF detects.
 */

#ifndef EMPROF_SIM_POWER_HPP
#define EMPROF_SIM_POWER_HPP

#include <cstdint>

#include "dsp/noise.hpp"
#include "sim/config.hpp"
#include "sim/isa.hpp"

namespace emprof::sim {

/** Per-cycle unit activity, filled by the core. */
struct ActivityCounters
{
    uint32_t fetched = 0;
    uint32_t issuedAlu = 0;
    uint32_t issuedMul = 0;
    uint32_t issuedDiv = 0;
    uint32_t issuedFp = 0;
    uint32_t issuedLoad = 0;
    uint32_t issuedStore = 0;
    uint32_t issuedBranch = 0;
    uint32_t l1Accesses = 0;
    uint32_t llcAccesses = 0;

    void reset() { *this = ActivityCounters{}; }

    uint32_t
    issuedTotal() const
    {
        return issuedAlu + issuedMul + issuedDiv + issuedFp + issuedLoad +
               issuedStore + issuedBranch;
    }
};

/**
 * Converts per-cycle activity into a power sample.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &config);

    /** Power for one cycle of the given activity (arbitrary units). */
    double sample(const ActivityCounters &activity);

    /** Power of a fully-stalled cycle (static + background only). */
    double stalledLevel() const { return config_.staticPower; }

    const PowerConfig &config() const { return config_; }

  private:
    PowerConfig config_;
    dsp::AwgnSource background_;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_POWER_HPP
