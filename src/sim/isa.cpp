#include "sim/isa.hpp"

namespace emprof::sim {

std::string_view
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return "IntAlu";
      case OpClass::IntMul:
        return "IntMul";
      case OpClass::IntDiv:
        return "IntDiv";
      case OpClass::FpAlu:
        return "FpAlu";
      case OpClass::Load:
        return "Load";
      case OpClass::Store:
        return "Store";
      case OpClass::Branch:
        return "Branch";
      case OpClass::Nop:
        return "Nop";
    }
    return "Unknown";
}

} // namespace emprof::sim
