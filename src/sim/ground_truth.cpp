#include "sim/ground_truth.hpp"

#include <algorithm>

namespace emprof::sim {

const char *
stallLevelName(StallLevel level)
{
    switch (level) {
    case StallLevel::LlcHit:
        return "llc-hit";
    case StallLevel::PrefetchMasked:
        return "prefetch-masked";
    case StallLevel::Dram:
        return "dram";
    case StallLevel::DramRefresh:
        return "dram-refresh";
    }
    return "unknown";
}

std::vector<StallInterval>
GroundTruth::labeledIntervals(Cycle max_gap, Cycle min_cycles) const
{
    std::vector<StallInterval> all;
    all.reserve(intervals_.size() + hitIntervals_.size());
    all.insert(all.end(), intervals_.begin(), intervals_.end());
    all.insert(all.end(), hitIntervals_.begin(), hitIntervals_.end());
    std::sort(all.begin(), all.end(),
              [](const StallInterval &a, const StallInterval &b) {
                  return a.begin < b.begin;
              });

    std::vector<StallInterval> merged;
    // Cycle contribution per level for the interval being built; the
    // dominant contributor names the merged interval, except that any
    // memory-class cycles outrank LlcHit (the slower service is what
    // the measured duration reflects).
    std::array<uint64_t, kStallLevelCount> cycles{};
    StallInterval acc{};
    bool open = false;

    const auto finish = [&] {
        if (!open)
            return;
        if (acc.durationCycles() >= min_cycles) {
            std::size_t best = static_cast<std::size_t>(StallLevel::LlcHit);
            uint64_t best_cycles = 0;
            for (std::size_t level = 1; level < kStallLevelCount;
                 ++level) {
                if (cycles[level] >= best_cycles && cycles[level] > 0) {
                    best = level;
                    best_cycles = cycles[level];
                }
            }
            acc.flags.demandMiss = false;
            acc.flags.prefetchMasked = false;
            acc.flags.refreshLengthened = false;
            switch (static_cast<StallLevel>(best)) {
            case StallLevel::LlcHit:
                break;
            case StallLevel::PrefetchMasked:
                acc.flags.prefetchMasked = true;
                break;
            case StallLevel::Dram:
                acc.flags.demandMiss = true;
                break;
            case StallLevel::DramRefresh:
                acc.flags.refreshLengthened = true;
                break;
            }
            merged.push_back(acc);
        }
        open = false;
        cycles.fill(0);
    };

    for (const auto &interval : all) {
        if (open && interval.begin <= acc.end + max_gap + 1) {
            acc.end = std::max(acc.end, interval.end);
            acc.overlappedMisses = std::max(acc.overlappedMisses,
                                            interval.overlappedMisses);
            acc.refreshAffected |= interval.refreshAffected;
        } else {
            finish();
            acc = interval;
            open = true;
        }
        cycles[static_cast<std::size_t>(interval.level())] +=
            interval.durationCycles();
    }
    finish();
    return merged;
}

uint64_t
GroundTruth::countIntervalsAtLeast(Cycle min_cycles) const
{
    uint64_t n = 0;
    for (const auto &interval : intervals_) {
        if (interval.durationCycles() >= min_cycles)
            ++n;
    }
    return n;
}

uint64_t
GroundTruth::stallCyclesInIntervalsAtLeast(Cycle min_cycles) const
{
    uint64_t n = 0;
    for (const auto &interval : intervals_) {
        if (interval.durationCycles() >= min_cycles)
            n += interval.durationCycles();
    }
    return n;
}

uint64_t
GroundTruth::countCoalescedIntervals(Cycle max_gap, Cycle min_cycles) const
{
    uint64_t n = 0;
    bool open = false;
    Cycle merged_begin = 0;
    Cycle merged_end = 0;
    for (const auto &interval : intervals_) {
        if (open && interval.begin <= merged_end + max_gap) {
            merged_end = interval.end;
            continue;
        }
        if (open && merged_end - merged_begin + 1 >= min_cycles)
            ++n;
        merged_begin = interval.begin;
        merged_end = interval.end;
        open = true;
    }
    if (open && merged_end - merged_begin + 1 >= min_cycles)
        ++n;
    return n;
}

} // namespace emprof::sim
