#include "sim/ground_truth.hpp"

namespace emprof::sim {

uint64_t
GroundTruth::countIntervalsAtLeast(Cycle min_cycles) const
{
    uint64_t n = 0;
    for (const auto &interval : intervals_) {
        if (interval.durationCycles() >= min_cycles)
            ++n;
    }
    return n;
}

uint64_t
GroundTruth::stallCyclesInIntervalsAtLeast(Cycle min_cycles) const
{
    uint64_t n = 0;
    for (const auto &interval : intervals_) {
        if (interval.durationCycles() >= min_cycles)
            n += interval.durationCycles();
    }
    return n;
}

uint64_t
GroundTruth::countCoalescedIntervals(Cycle max_gap, Cycle min_cycles) const
{
    uint64_t n = 0;
    bool open = false;
    Cycle merged_begin = 0;
    Cycle merged_end = 0;
    for (const auto &interval : intervals_) {
        if (open && interval.begin <= merged_end + max_gap) {
            merged_end = interval.end;
            continue;
        }
        if (open && merged_end - merged_begin + 1 >= min_cycles)
            ++n;
        merged_begin = interval.begin;
        merged_end = interval.end;
        open = true;
    }
    if (open && merged_end - merged_begin + 1 >= min_cycles)
        ++n;
    return n;
}

} // namespace emprof::sim
