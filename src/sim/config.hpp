/**
 * @file
 * Configuration structs for every simulator component.
 *
 * Defaults approximate the Olimex A13-OLinuXino-MICRO (Allwinner A13,
 * Cortex-A8 class): a 4-wide in-order core at ~1 GHz with 32 KB split
 * L1s, a 256 KB unified LLC with random replacement, and DDR3 memory.
 * Device models in src/devices/ override these per Table I.
 */

#ifndef EMPROF_SIM_CONFIG_HPP
#define EMPROF_SIM_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace emprof::sim {

/** Cache replacement policies. */
enum class Replacement : uint8_t
{
    Lru,
    Random,
};

/** One cache level. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    uint64_t sizeBytes = 256 * 1024;

    /** Associativity (ways). */
    uint32_t assoc = 8;

    /** Line size in bytes. */
    uint32_t lineBytes = 64;

    /** Number of banks (LLC only; enables overlapped accesses). */
    uint32_t banks = 1;

    /** Hit latency in cycles. */
    uint32_t hitLatency = 2;

    /** Replacement policy. */
    Replacement replacement = Replacement::Random;

    uint64_t numLines() const { return sizeBytes / lineBytes; }
    uint64_t numSets() const { return numLines() / assoc; }
};

/** Main-memory (DRAM + controller) timing. */
struct MemoryConfig
{
    /** Mean demand-read service latency, in core cycles. */
    uint32_t accessLatency = 220;

    /** Uniform latency jitter, +/- cycles around the mean. */
    uint32_t latencyJitter = 20;

    /** Channel occupancy per burst (serialisation between requests). */
    uint32_t burstCycles = 8;

    /** Observable DRAM activity per access (activate..precharge), in
     *  cycles — what the memory-side probe of Fig. 9/10 sees.  Longer
     *  than the data burst itself. */
    uint32_t casObservableCycles = 40;

    /**
     * Interval between refresh windows, in core cycles.
     *
     * The paper observes refresh-lengthened stalls at least every
     * ~70 us on the Olimex's H5TQ2G63BFR DDR3 part (Sec. III-C); the
     * default reproduces that cadence at ~1 GHz.
     */
    uint64_t refreshPeriod = 70'000;

    /** Length of a refresh window, in core cycles (~2-3 us observed). */
    uint64_t refreshDuration = 2'400;

    /** Enable periodic refresh blocking. */
    bool refreshEnabled = true;

    /** Cycles between background memory bursts from other masters
     *  (sibling cores, OS DMA, display refresh).  0 disables.  Demand
     *  misses that queue behind a burst pick up extra latency — the
     *  source of the phones' thicker stall-latency tails (Fig. 11). */
    uint64_t backgroundPeriod = 0;

    /** Channel occupancy of one background burst, in cycles. */
    uint32_t backgroundBurst = 150;

    /** Seed for latency jitter. */
    uint64_t seed = 0xD3A11ull;
};

/** Stride prefetcher (present on the Samsung device per Sec. VI-A). */
struct PrefetcherConfig
{
    bool enabled = false;

    /** PC-indexed stride table entries. */
    uint32_t tableEntries = 64;

    /** Prefetch degree: lines fetched ahead once a stride locks. */
    uint32_t degree = 2;

    /** Confirmations required before issuing prefetches. */
    uint32_t trainThreshold = 2;
};

/** In-order superscalar core. */
struct CoreConfig
{
    /** Ops fetched per cycle. */
    uint32_t fetchWidth = 4;

    /** Ops issued per cycle. */
    uint32_t issueWidth = 4;

    /** Fetch-buffer capacity in ops. */
    uint32_t fetchBufferOps = 16;

    /** Outstanding demand-load misses tolerated before issue blocks.
     *  Small on in-order cores; this is what bounds MLP. */
    uint32_t maxOutstandingLoads = 2;

    /** Store-buffer entries. */
    uint32_t storeBufferEntries = 8;

    /** Redirect penalty for a mispredicted branch, in cycles. */
    uint32_t branchPenalty = 3;

    /** Branch-predictor hit rate on taken branches.  Tight loops are
     *  predicted near-perfectly on real cores; the residual
     *  mispredictions keep some front-end turbulence in the signal. */
    double branchPredictAccuracy = 0.94;

    /** Latency (cycles) of each op class. */
    uint32_t aluLatency = 1;
    uint32_t mulLatency = 3;
    uint32_t divLatency = 12;
    uint32_t fpLatency = 4;
};

/** Unit activity energies, arbitrary units per cycle/event.
 *
 *  Only relative magnitudes matter: the EM chain normalises absolute
 *  level away, exactly as EMPROF itself must (Sec. IV).
 */
struct PowerConfig
{
    /** Leakage + clock tree: drawn every cycle, stalled or not.  Kept
     *  well below one issued op's energy so that even 1-IPC code is
     *  clearly separated from a full stall, as the deep dips of
     *  Fig. 1/4 show on real devices. */
    double staticPower = 0.20;

    /** Fetch/decode activity per fetched op. */
    double fetchEnergy = 0.05;

    /** Issue/execute energy per op class. */
    double aluEnergy = 0.12;
    double mulEnergy = 0.20;
    double divEnergy = 0.16;
    double fpEnergy = 0.17;
    double loadEnergy = 0.14;
    double storeEnergy = 0.13;
    double branchEnergy = 0.09;

    /** Cache array access energies. */
    double l1Energy = 0.05;
    double llcEnergy = 0.09;

    /** Background activity amplitude from other cores / SoC blocks. */
    double backgroundNoise = 0.0;

    /** Seed for background activity. */
    uint64_t seed = 0xB06ull;
};

/**
 * Ground-truth service-level labeling thresholds (DESIGN.md §16).
 *
 * The simulator knows exactly how each stalled load was served; these
 * thresholds fold the continuous quantities (prefetch residual latency,
 * refresh queueing delay) into the discrete level taxonomy the
 * profiler-side classifier predicts.
 */
struct LabelConfig
{
    /**
     * A prefetch-masked fill whose residual latency is at least this
     * many cycles is labeled as a plain DRAM miss — the prefetch hid
     * nothing worth distinguishing.  0 derives 3/4 of
     * memory.accessLatency.
     */
    uint32_t prefetchDemandClassCycles = 0;

    /**
     * A DRAM fill queued behind a refresh window for at least this
     * many cycles is labeled refresh-lengthened; shorter brushes stay
     * in the plain DRAM class (their measured duration is
     * indistinguishable from ordinary misses).  0 derives
     * memory.refreshDuration / 4.
     */
    uint64_t refreshLengthenedCycles = 0;
};

/** Complete simulator configuration. */
struct SimConfig
{
    /** Core clock in Hz (sets the power-trace sample rate). */
    double clockHz = 1.008e9;

    CoreConfig core;
    CacheConfig l1i{32 * 1024, 4, 64, 1, 1, Replacement::Random};
    CacheConfig l1d{32 * 1024, 4, 64, 1, 2, Replacement::Random};
    CacheConfig llc{256 * 1024, 8, 64, 4, 18, Replacement::Random};
    MemoryConfig memory;
    PrefetcherConfig prefetcher;
    PowerConfig power;
    LabelConfig label;

    /** Resolved prefetch demand-class threshold (see LabelConfig). */
    uint32_t
    prefetchDemandClassCycles() const
    {
        return label.prefetchDemandClassCycles != 0
                   ? label.prefetchDemandClassCycles
                   : memory.accessLatency - memory.accessLatency / 4;
    }

    /** Resolved refresh-lengthened threshold (see LabelConfig). */
    uint64_t
    refreshLengthenedCycles() const
    {
        return label.refreshLengthenedCycles != 0
                   ? label.refreshLengthenedCycles
                   : memory.refreshDuration / 4;
    }

    /** Seed for cache replacement decisions. */
    uint64_t seed = 0x5E5Cull;

    /** Record detailed per-event ground truth (raw miss list). */
    bool detailedGroundTruth = false;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_CONFIG_HPP
