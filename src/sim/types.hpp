/**
 * @file
 * Basic scalar types for the cycle-level simulator.
 */

#ifndef EMPROF_SIM_TYPES_HPP
#define EMPROF_SIM_TYPES_HPP

#include <cstdint>

namespace emprof::sim {

/** Processor cycle count. */
using Cycle = uint64_t;

/** Physical/virtual address (the simulator does not distinguish). */
using Addr = uint64_t;

/** Sentinel for "no cycle". */
inline constexpr Cycle kNoCycle = ~0ull;

} // namespace emprof::sim

#endif // EMPROF_SIM_TYPES_HPP
