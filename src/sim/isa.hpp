/**
 * @file
 * The simulator's micro-operation format.
 *
 * The simulator is trace-driven: workloads supply a dynamic stream of
 * MicroOps (see sim/trace.hpp).  Each op carries the fields the timing
 * model needs — a PC for instruction-cache behaviour and spectral
 * attribution, an op class for functional-unit latency and power, a
 * memory address for loads/stores, and a producer distance for
 * stall-on-use dependence modelling.
 */

#ifndef EMPROF_SIM_ISA_HPP
#define EMPROF_SIM_ISA_HPP

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace emprof::sim {

/** Operation classes distinguished by the timing and power models. */
enum class OpClass : uint8_t
{
    IntAlu,  ///< single-cycle integer op
    IntMul,  ///< pipelined multiply
    IntDiv,  ///< unpipelined divide
    FpAlu,   ///< pipelined floating-point op
    Load,    ///< memory load
    Store,   ///< memory store (retires via the store buffer)
    Branch,  ///< control transfer (taken branches redirect fetch)
    Nop,     ///< no-op (fetch/decode activity only)
};

/** Human-readable op-class name. */
std::string_view opClassName(OpClass cls);

/**
 * One dynamic micro-operation.
 *
 * @note `depDist == 0` means no register dependence; `depDist == k`
 *       means this op reads the result of the k-th most recently
 *       issued op (dynamic distance), stalling issue until that
 *       producer completes.  This is how workloads express pointer
 *       chasing (load -> load chains) versus independent streaming.
 */
struct MicroOp
{
    /** Program counter; drives I$ behaviour and attribution. */
    Addr pc = 0;

    /** Memory address, meaningful for Load/Store. */
    Addr memAddr = 0;

    /** Operation class. */
    OpClass cls = OpClass::IntAlu;

    /** Dynamic producer distance for RAW dependence (0 = none). */
    uint16_t depDist = 0;

    /** Workload phase tag, used for per-phase ground truth. */
    uint8_t phase = 0;

    /** Taken control transfer (Branch only): redirects fetch. */
    bool taken = false;

    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isMemRef() const { return isLoad() || isStore(); }
};

/** Factory helpers used throughout the workload generators. */
inline MicroOp
makeAlu(Addr pc, uint16_t dep = 0)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::IntAlu;
    op.depDist = dep;
    return op;
}

inline MicroOp
makeLoad(Addr pc, Addr addr, uint16_t dep = 0)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Load;
    op.memAddr = addr;
    op.depDist = dep;
    return op;
}

inline MicroOp
makeStore(Addr pc, Addr addr, uint16_t dep = 0)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Store;
    op.memAddr = addr;
    op.depDist = dep;
    return op;
}

inline MicroOp
makeBranch(Addr pc, bool taken)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Branch;
    op.taken = taken;
    return op;
}

} // namespace emprof::sim

#endif // EMPROF_SIM_ISA_HPP
