#include "sim/prefetcher.hpp"

namespace emprof::sim {

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &config,
                                   uint32_t line_bytes)
    : config_(config), lineBytes_(line_bytes),
      table_(config.tableEntries)
{}

void
StridePrefetcher::observe(Addr pc, Addr addr,
                          std::vector<PrefetchRequest> &out)
{
    if (!config_.enabled || table_.empty())
        return;

    Entry &entry = table_[pc % table_.size()];
    if (!entry.valid || entry.pcTag != pc) {
        entry.valid = true;
        entry.pcTag = pc;
        entry.lastAddr = addr;
        entry.stride = 0;
        entry.confidence = 0;
        return;
    }

    const int64_t stride =
        static_cast<int64_t>(addr) - static_cast<int64_t>(entry.lastAddr);
    entry.lastAddr = addr;
    if (stride == 0)
        return;

    if (stride == entry.stride) {
        if (entry.confidence < config_.trainThreshold + 4)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 1;
        ++stats_.trainings;
        return;
    }

    if (entry.confidence < config_.trainThreshold)
        return;

    // Confirmed stride: prefetch `degree` lines ahead.
    const Addr line_mask = ~static_cast<Addr>(lineBytes_ - 1);
    for (uint32_t d = 1; d <= config_.degree; ++d) {
        const Addr target = static_cast<Addr>(
            static_cast<int64_t>(addr) +
            stride * static_cast<int64_t>(d));
        out.push_back({target & line_mask});
        ++stats_.issued;
    }
}

} // namespace emprof::sim
